//! `hllc` — command-line front-end for the hybrid-LLC simulator.
//!
//! ```text
//! hllc policies                          list the insertion policies
//! hllc mixes                             list the Table V workloads
//! hllc run      --policy cp_sd --mix 1   one simulation phase, cache stats
//! hllc forecast --policy bh    --mix 1   age the NVM part to 50% capacity
//! hllc compare  --mix 1 --jobs 4         all policies side by side, in parallel
//! hllc sweep    --policies bh,cp_sd --mixes 1,2 --seeds 2 --jobs 4 --json out.json
//! ```

use std::process::ExitCode;

use hybrid_llc::cli::{parse_args, parse_sweep_args, Args, SweepArgs};
use hybrid_llc::forecast::{Forecast, ForecastConfig};
use hybrid_llc::llc::{HybridConfig, HybridLlc};
use hybrid_llc::runner::{report_json, run_indexed, run_sweep, SweepSpec};
use hybrid_llc::sim::{EnergyModel, Hierarchy, SystemConfig};
use hybrid_llc::trace::{drive_cycles, mixes};
use hybrid_llc::LlcPort;

fn cmd_policies() {
    println!("available insertion policies (Table III):");
    for (flag, desc) in [
        (
            "bh",
            "baseline hybrid: global LRU, NVM-unaware, frame-disabling",
        ),
        ("bh_cp", "BH + compression: global Fit-LRU, byte-disabling"),
        ("ca", "naive compression-aware, CP_th = 58"),
        ("ca_rwr", "compression + read/write-reuse aware, CP_th = 58"),
        ("cp_sd", "CA_RWR + Set Dueling (the paper's proposal)"),
        ("cp_sd_th4", "CP_SD with the rule-based Th=4% knob"),
        ("cp_sd_th8", "CP_SD with the rule-based Th=8% knob"),
        ("lhybrid", "loop-block aware state of the art"),
        ("tap", "thrashing-aware state of the art"),
    ] {
        println!("  {flag:<10} {desc}");
    }
}

fn cmd_mixes() {
    println!("Table V workloads:");
    for m in mixes() {
        let names: Vec<&str> = m.apps.iter().map(|a| a.name).collect();
        println!("  {:<7} {}", m.name, names.join(", "));
    }
}

fn cmd_run(args: &Args) {
    let system = SystemConfig::scaled_down();
    let mix = &mixes()[args.mix];
    println!(
        "running {} under {} for {:.1}M cycles...",
        mix.name,
        args.policy.name(),
        args.cycles / 1e6
    );

    let llc_cfg = HybridConfig::from_geometry(system.llc, args.policy)
        .with_endurance(1e8, 0.2)
        .with_epoch_cycles(100_000)
        .with_dueling_smoothing(0.6);
    let mut h = Hierarchy::new(&system, HybridLlc::new(&llc_cfg), mix.data_model(args.seed));
    let mut streams = mix.instantiate(system.llc.sets as f64 / 4096.0, args.seed);
    drive_cycles(&mut h, &mut streams, 0.2 * args.cycles);
    h.reset_stats();
    drive_cycles(&mut h, &mut streams, 1.2 * args.cycles);

    let s = *h.llc().stats();
    let energy = EnergyModel::default_16nm().breakdown(&s, args.cycles, system.timing.freq_ghz);
    println!("  system IPC        {:.3}", h.system_ipc());
    println!(
        "  LLC hit rate      {:.1}% ({} of {} requests)",
        100.0 * s.hit_rate(),
        s.hits,
        s.requests()
    );
    println!("  hits SRAM/NVM     {} / {}", s.sram_hits, s.nvm_hits);
    println!(
        "  inserts SRAM/NVM  {} / {} (migrations {})",
        s.sram_inserts, s.nvm_inserts, s.migrations
    );
    println!("  NVM bytes written {}", s.nvm_bytes_written);
    println!("  LLC energy        {:.2} mJ", energy.total_mj());
    if let Some(d) = h.llc().dueling() {
        println!("  Set Dueling CP_th {}", d.current_cp_th());
    }
}

fn cmd_forecast(args: &Args) {
    let mix = &mixes()[args.mix];
    println!(
        "forecasting {} under {} (scaled mu=1e8; multiply times by 100 for paper scale)...",
        mix.name,
        args.policy.name()
    );
    let series = Forecast::new(ForecastConfig::scaled(args.policy)).run(mix, args.seed);
    println!("{:>10} {:>10} {:>8}", "time [h]", "capacity", "IPC");
    for p in &series.points {
        println!(
            "{:>10.2} {:>9.1}% {:>8.3}",
            p.time_seconds / 3600.0,
            p.capacity * 100.0,
            p.ipc
        );
    }
    match series.lifetime_seconds(0.5) {
        Some(s) => println!("=> 50% capacity after {:.2} scaled hours", s / 3600.0),
        None => println!("=> never reached 50% capacity (SRAM-only or idle NVM)"),
    }
}

fn cmd_compare(args: &Args) {
    use hybrid_llc::cli::parse_policy;
    let mix = &mixes()[args.mix];
    println!(
        "comparing all policies on {} ({:.1}M cycles each)...\n",
        mix.name,
        args.cycles / 1e6
    );
    println!(
        "{:<12} {:>8} {:>10} {:>14} {:>12}",
        "policy", "IPC", "LLC hit%", "NVM bytes", "energy [mJ]"
    );
    // One job per policy; every job uses the same seed as the serial loop
    // did, and rows print in job order, so --jobs only changes wall-clock.
    let policies: Vec<_> = [
        "bh",
        "bh_cp",
        "ca",
        "ca_rwr",
        "cp_sd",
        "cp_sd_th8",
        "lhybrid",
        "tap",
    ]
    .iter()
    .map(|p| parse_policy(p).unwrap())
    .collect();
    let rows = run_indexed(policies, args.jobs, |_, policy| {
        let system = SystemConfig::scaled_down();
        let llc_cfg = HybridConfig::from_geometry(system.llc, policy)
            .with_endurance(1e8, 0.2)
            .with_epoch_cycles(100_000)
            .with_dueling_smoothing(0.6);
        let mut h = Hierarchy::new(&system, HybridLlc::new(&llc_cfg), mix.data_model(args.seed));
        let mut streams = mix.instantiate(system.llc.sets as f64 / 4096.0, args.seed);
        drive_cycles(&mut h, &mut streams, 0.2 * args.cycles);
        h.reset_stats();
        drive_cycles(&mut h, &mut streams, 1.2 * args.cycles);
        let s = *h.llc().stats();
        let e = EnergyModel::default_16nm().breakdown(&s, args.cycles, system.timing.freq_ghz);
        format!(
            "{:<12} {:>8.3} {:>9.1}% {:>14} {:>12.2}",
            policy.name(),
            h.system_ipc(),
            100.0 * s.hit_rate(),
            s.nvm_bytes_written,
            e.total_mj()
        )
    });
    for row in rows {
        println!("{row}");
    }
}

fn cmd_sweep(args: &SweepArgs) -> Result<(), String> {
    let spec = SweepSpec {
        policies: args.policies.clone(),
        mixes: args.mixes.clone(),
        seeds: args.seeds,
        capacities: args.capacities.clone(),
        base_seed: args.seed,
        sets: args.sets,
        warmup_cycles: 0.2 * args.cycles,
        measure_cycles: args.cycles,
        threads: args.jobs,
    };
    println!(
        "sweeping {} policies x {} capacities x {} mixes x {} seeds = {} jobs on {} threads...",
        spec.policies.len(),
        spec.capacities.len(),
        spec.mixes.len(),
        spec.seeds,
        spec.job_count(),
        spec.threads,
    );
    let report = run_sweep(&spec);

    println!(
        "\n{:<12} {:>9} {:>8} {:>10} {:>14}",
        "policy", "capacity", "IPC", "LLC hit%", "NVM bytes"
    );
    for (label, _) in &spec.policies {
        for &capacity in &spec.capacities {
            let cell: Vec<_> = report
                .results
                .iter()
                .filter(|r| &r.policy == label && r.capacity == capacity)
                .collect();
            let n = cell.len() as f64;
            let ipc: f64 = cell.iter().map(|r| r.ipc).sum::<f64>() / n;
            let hit: f64 = cell.iter().map(|r| r.hit_rate).sum::<f64>() / n;
            let bytes: u64 = cell.iter().map(|r| r.nvm_bytes_written).sum();
            println!(
                "{label:<12} {capacity:>9.2} {ipc:>8.3} {:>9.1}% {bytes:>14}",
                100.0 * hit
            );
        }
    }

    if let Some(path) = &args.json {
        let text = serde_json::to_string_pretty(&report_json(&report))
            .map_err(|e| format!("serializing report: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nreport written to {path}");
    }
    Ok(())
}

fn cmd_figures() {
    println!("paper tables and figures are regenerated by bench targets:");
    for (bench, what) in [
        ("table1", "Table I  — BDI compression encodings"),
        ("table3", "Table III — policy taxonomy"),
        ("table4", "Table IV — system specification"),
        ("table5", "Table V  — workload mixes"),
        ("fig2", "Figure 2  — per-app compressibility"),
        ("fig6", "Figure 6  — hit rate vs CP_th"),
        ("fig7", "Figure 7  — NVM bytes vs CP_th"),
        ("fig8a", "Figure 8a — optimal CP_th vs capacity"),
        ("fig8b", "Figure 8b — optimal CP_th per mix"),
        ("fig9", "Figure 9  — Th/Tw trade-off"),
        ("fig10a", "Figure 1/10a — performance vs lifetime"),
        ("fig10b", "Figure 10b — 3/13 way split"),
        ("fig10c", "Figure 10c — cv = 0.25"),
        ("fig11a", "Figure 11a — L2 doubled"),
        ("fig11b", "Figure 11b — NVM latency x1.5"),
        ("fig11c", "Figure 11c — equal storage cost"),
        ("energy", "extension — LLC energy"),
        ("variability", "extension — seed noise floor"),
        ("ablation_fit_lru", "ablation — Fit-LRU"),
        ("ablation_epoch", "ablation — dueling epoch"),
        ("ablation_compressor", "ablation — BDI vs FPC"),
        ("ablation_memory", "ablation — DRAM model"),
        ("micro", "Criterion microbenches"),
    ] {
        println!("  cargo bench -p hllc-bench --bench {bench:<20} # {what}");
    }
}

fn usage() {
    println!(
        "usage: hllc <policies|mixes|figures|run|forecast|compare|sweep> \
        [--policy P] [--mix 1..10] [--cycles N] [--seed S] [--jobs N]\n\
        \x20      hllc sweep [--policies a,b] [--mixes 1,2] [--seeds K] [--capacities 1.0,0.7] \
        [--sets N] [--json out.json]"
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "policies" => cmd_policies(),
        "mixes" => cmd_mixes(),
        "figures" => cmd_figures(),
        "run" | "forecast" | "compare" => match parse_args(&argv[1..]) {
            Ok(args) if cmd == "run" => cmd_run(&args),
            Ok(args) if cmd == "compare" => cmd_compare(&args),
            Ok(args) => cmd_forecast(&args),
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                return ExitCode::FAILURE;
            }
        },
        "sweep" => match parse_sweep_args(&argv[1..]).and_then(|args| cmd_sweep(&args)) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                return ExitCode::FAILURE;
            }
        },
        "-h" | "--help" | "help" => usage(),
        other => {
            eprintln!("error: unknown command '{other}'");
            usage();
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
