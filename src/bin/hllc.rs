//! `hllc` — command-line front-end for the hybrid-LLC simulator.
//!
//! ```text
//! hllc policies                          list the insertion policies
//! hllc mixes                             list the Table V workloads
//! hllc spec --preset paper               print (or --dump) an experiment spec
//! hllc run      --policy cp_sd --mix 1   one simulation phase, cache stats
//! hllc run      --spec specs/paper.json  the same, from a spec file or preset
//! hllc forecast --policy bh    --mix 1   age the NVM part to 50% capacity
//! hllc compare  --mix 1 --jobs 4         all policies side by side, in parallel
//! hllc sweep    --policies bh,cp_sd --way-splits 4/12,3/13 --nvm-latency 1.0,1.5
//! hllc record   --mix 1 --out m1.trc     capture a live run into a trace file
//! hllc replay   --trace m1.trc           rerun a trace file (bit-identical)
//! hllc trace-info m1.trc                 inspect and verify a trace file
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use hybrid_llc::cli::{
    parse_args, parse_bench_kernel_args, parse_policy, parse_record_args, parse_replay_args,
    parse_spec_args, parse_sweep_args, parse_trace_info_args, Args, BenchKernelArgs, RecordArgs,
    ReplayArgs, SpecArgs, SweepArgs,
};
use hybrid_llc::config::ExperimentSpec;
use hybrid_llc::forecast::{Forecast, ForecastConfig};
use hybrid_llc::runner::{report_json, run_indexed, run_sweep, SweepSpec};
use hybrid_llc::session::{
    live_session, record_session, recording_header, replay_session_with, stats_json, trace_spec,
    SessionStats,
};
use hybrid_llc::sim::{EnergyModel, Op, SystemConfig};
use hybrid_llc::trace::mixes;
use hybrid_llc::traceio::{create_trace, load_trace, open_trace, Chunk, TraceContent, VERSION};

fn cmd_policies() {
    println!("available insertion policies (Table III):");
    for (flag, desc) in [
        (
            "bh",
            "baseline hybrid: global LRU, NVM-unaware, frame-disabling",
        ),
        ("bh_cp", "BH + compression: global Fit-LRU, byte-disabling"),
        ("ca", "naive compression-aware, CP_th = 58"),
        ("ca_rwr", "compression + read/write-reuse aware, CP_th = 58"),
        ("cp_sd", "CA_RWR + Set Dueling (the paper's proposal)"),
        ("cp_sd_th4", "CP_SD with the rule-based Th=4% knob"),
        ("cp_sd_th8", "CP_SD with the rule-based Th=8% knob"),
        ("lhybrid", "loop-block aware state of the art"),
        ("tap", "thrashing-aware state of the art"),
    ] {
        println!("  {flag:<10} {desc}");
    }
}

fn cmd_mixes() {
    println!("Table V workloads:");
    for m in mixes() {
        let names: Vec<&str> = m.apps.iter().map(|a| a.name).collect();
        println!("  {:<7} {}", m.name, names.join(", "));
    }
}

fn cmd_spec(args: &SpecArgs) -> Result<(), String> {
    match &args.dump {
        Some(path) => {
            args.spec.store(path).map_err(|e| e.to_string())?;
            println!("spec written to {path}");
        }
        None => print!("{}", args.spec.to_string_pretty()),
    }
    Ok(())
}

fn print_stats(stats: &SessionStats, cycles: f64, system: &SystemConfig) {
    let s = stats.llc;
    let energy = EnergyModel::default_16nm().breakdown(&s, cycles, system.timing.freq_ghz);
    println!("  system IPC        {:.3}", stats.ipc);
    println!(
        "  LLC hit rate      {:.1}% ({} of {} requests)",
        100.0 * s.hit_rate(),
        s.hits,
        s.requests()
    );
    println!("  hits SRAM/NVM     {} / {}", s.sram_hits, s.nvm_hits);
    println!(
        "  inserts SRAM/NVM  {} / {} (migrations {})",
        s.sram_inserts, s.nvm_inserts, s.migrations
    );
    println!("  NVM bytes written {}", s.nvm_bytes_written);
    println!("  LLC energy        {:.2} mJ", energy.total_mj());
    if let Some(th) = stats.cp_th {
        println!("  Set Dueling CP_th {th}");
    }
    if let Some((total, retained)) = stats.dueling_epochs {
        println!("  dueling epochs    {total} ({retained} retained)");
    }
}

/// Writes session stats JSON to `path` when given (the CI round-trip check
/// diffs these files between a recorded live run and its replay).
fn write_stats_json(
    path: Option<&str>,
    policy: &str,
    workload: &str,
    stats: &SessionStats,
) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    let text = serde_json::to_string_pretty(&stats_json(policy, workload, stats))
        .map_err(|e| format!("serializing stats: {e}"))?;
    std::fs::write(path, text + "\n").map_err(|e| format!("writing {path}: {e}"))?;
    println!("stats written to {path}");
    Ok(())
}

/// The spec a replay runs under: the explicitly requested one when `--spec`
/// was passed (geometry-checked against the recording downstream), else the
/// recording's own.
fn replay_spec(args: &Args, content: &TraceContent) -> Result<ExperimentSpec, String> {
    if args.explicit_spec {
        Ok(args.spec.clone())
    } else {
        trace_spec(content)
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let quiet = args.json;
    let (stats, workload, system) = match &args.trace {
        Some(path) => {
            let content = load_trace(path).map_err(|e| format!("{path}: {e}"))?;
            if !quiet {
                println!(
                    "replaying {} ({} accesses, recorded under {}) with {} for {:.1}M cycles...",
                    path,
                    content.accesses.len(),
                    content.header.policy,
                    args.policy().name(),
                    args.cycles() / 1e6
                );
            }
            let workload = content.header.workload.clone();
            let spec = replay_spec(args, &content)?;
            let stats = replay_session_with(&content, &spec, args.policy(), Some(args.cycles()))?;
            (stats, workload, spec.system_config())
        }
        None => {
            let mix = &mixes()[args.mix_index()];
            if !quiet {
                println!(
                    "running {} under {} for {:.1}M cycles...",
                    mix.name,
                    args.policy().name(),
                    args.cycles() / 1e6
                );
            }
            let system = args.spec.system_config();
            (
                live_session(args, system.cores),
                mix.name.to_string(),
                system,
            )
        }
    };
    if args.json {
        // Sorted-key JSON only — the golden determinism tests diff this
        // output byte for byte, so nothing else may reach stdout.
        let value = stats_json(&args.policy().name(), &workload, &stats);
        let text =
            serde_json::to_string_pretty(&value).map_err(|e| format!("serializing stats: {e}"))?;
        println!("{text}");
    } else {
        print_stats(&stats, args.cycles(), &system);
    }
    Ok(())
}

fn cmd_bench_kernel(args: &BenchKernelArgs) -> Result<(), String> {
    use hybrid_llc::bench::kernel::{kernel_policies, kernel_report, measure_kernel};

    if !args.json {
        println!(
            "measuring LLC kernel throughput ({} accesses per policy, seed {}) -> [{}] of {} ...",
            args.accesses, args.seed, args.label, args.out
        );
    }
    let results: Vec<_> = kernel_policies()
        .into_iter()
        .map(|(_, policy)| measure_kernel(policy, args.accesses, args.seed))
        .collect();

    let existing = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok());
    let report = kernel_report(existing.as_ref(), &args.label, &results, args.seed);
    let text =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serializing report: {e}"))?;
    std::fs::write(&args.out, text.clone() + "\n")
        .map_err(|e| format!("writing {}: {e}", args.out))?;

    if args.json {
        println!("{text}");
    } else {
        for r in &results {
            println!(
                "  {:<12} {:>12.0} accesses/sec",
                r.policy, r.accesses_per_sec
            );
        }
        if let Some(mean) = report.get("speedup").and_then(|s| s.get("mean")) {
            println!(
                "  speedup (after/before, mean): {:.2}x",
                mean.as_f64().unwrap_or(0.0)
            );
        }
        println!("report written to {}", args.out);
    }
    Ok(())
}

fn cmd_record(args: &RecordArgs) -> Result<(), String> {
    let header = recording_header(&args.run, args.cores);
    let writer = create_trace(&args.out, &header).map_err(|e| format!("{}: {e}", args.out))?;
    println!(
        "recording {} under {} for {:.1}M cycles on {} cores -> {} ...",
        header.workload,
        header.policy,
        args.run.cycles() / 1e6,
        header.cores,
        args.out
    );
    let (stats, _) = record_session(&args.run, args.cores, writer)?;
    print_stats(&stats, args.run.cycles(), &args.run.spec.system_config());
    write_stats_json(
        args.json.as_deref(),
        &header.policy,
        &header.workload,
        &stats,
    )?;
    println!("trace written to {}", args.out);
    Ok(())
}

fn cmd_replay(args: &ReplayArgs) -> Result<(), String> {
    let content = load_trace(&args.trace).map_err(|e| format!("{}: {e}", args.trace))?;
    let policy = match args.policy {
        Some(p) => p,
        None => parse_policy(&content.header.policy).ok_or_else(|| {
            format!(
                "cannot reconstruct recorded policy '{}'; pass --policy",
                content.header.policy
            )
        })?,
    };
    let spec = match &args.spec {
        Some(s) => s.clone(),
        None => trace_spec(&content)?,
    };
    let cycles = args.cycles.unwrap_or(content.header.cycles);
    println!(
        "replaying {} ({} cores, {} accesses, {} block sizes) under {} for {:.1}M cycles...",
        args.trace,
        content.header.cores,
        content.accesses.len(),
        content.sizes.len(),
        policy.name(),
        cycles / 1e6
    );
    let stats = replay_session_with(&content, &spec, policy, args.cycles)?;
    print_stats(&stats, cycles, &spec.system_config());
    write_stats_json(
        args.json.as_deref(),
        &policy.name(),
        &content.header.workload,
        &stats,
    )
}

fn cmd_trace_info(path: &str) -> Result<(), String> {
    let mut reader = open_trace(path).map_err(|e| format!("{path}: {e}"))?;
    let h = reader.header().clone();
    println!("{path}:");
    println!("  format        HLLCTRC (reader v{VERSION})");
    println!("  cores         {}", h.cores);
    println!("  workload      {} (mix {})", h.workload, h.mix);
    println!("  policy        {}", h.policy);
    println!("  seed          {}", h.seed);
    println!("  llc sets      {}", h.sets);
    println!("  cycle budget  {:.1}M", h.cycles / 1e6);
    match &h.spec_json {
        Some(text) => match ExperimentSpec::from_str(text) {
            Ok(spec) => println!("  spec          embedded ('{}', v2 header)", spec.name),
            Err(e) => println!("  spec          embedded but unreadable: {e}"),
        },
        None => println!("  spec          none (v1 header)"),
    }
    let mut chunks = 0u64;
    let mut sizes = 0u64;
    let mut stores = 0u64;
    let mut per_core = vec![0u64; usize::from(h.cores)];
    loop {
        match reader.next_chunk() {
            Ok(None) => break,
            Ok(Some(Chunk::Accesses(v))) => {
                chunks += 1;
                for a in &v {
                    per_core[usize::from(a.core)] += 1;
                    stores += u64::from(a.op == Op::Store);
                }
            }
            Ok(Some(Chunk::Sizes(v))) => {
                chunks += 1;
                sizes += v.len() as u64;
            }
            Err(e) => return Err(format!("{path}: {e}")),
        }
    }
    let accesses: u64 = per_core.iter().sum();
    println!("  chunks        {chunks}");
    println!("  accesses      {accesses} ({stores} stores)");
    for (core, n) in per_core.iter().enumerate() {
        println!("    core {core}      {n}");
    }
    println!("  block sizes   {sizes}");
    Ok(())
}

fn cmd_forecast(args: &Args) -> Result<(), String> {
    if args.trace.is_some() {
        return Err("forecast alternates synthetic phases; --trace is not supported".into());
    }
    let mix = &mixes()[args.mix_index()];
    println!(
        "forecasting {} under {} (spec '{}', mu={:.0e} writes/frame)...",
        mix.name,
        args.policy().name(),
        args.spec.name,
        args.spec.hybrid.endurance_mean,
    );
    let series = Forecast::new(ForecastConfig::from_spec(&args.spec).with_policy(args.policy()))
        .run(mix, args.seed());
    println!("{:>10} {:>10} {:>8}", "time [h]", "capacity", "IPC");
    for p in &series.points {
        println!(
            "{:>10.2} {:>9.1}% {:>8.3}",
            p.time_seconds / 3600.0,
            p.capacity * 100.0,
            p.ipc
        );
    }
    match series.lifetime_seconds(0.5) {
        Some(s) => println!("=> 50% capacity after {:.2} scaled hours", s / 3600.0),
        None => println!("=> never reached 50% capacity (SRAM-only or idle NVM)"),
    }
    Ok(())
}

/// Loads (and core-count-validates) the trace named by a `--trace` flag.
fn load_trace_arg(
    trace: &Option<String>,
    system_cores: usize,
) -> Result<Option<Arc<TraceContent>>, String> {
    let Some(path) = trace else { return Ok(None) };
    let content = load_trace(path).map_err(|e| format!("{path}: {e}"))?;
    let cores = usize::from(content.header.cores);
    if cores > system_cores {
        return Err(format!(
            "{path}: trace has {cores} cores but the system only has {system_cores}"
        ));
    }
    Ok(Some(Arc::new(content)))
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let trace = load_trace_arg(&args.trace, args.spec.system.cores)?;
    let replay = match &trace {
        Some(content) => Some(Arc::new(replay_spec(args, content)?)),
        None => None,
    };
    let workload = match (&trace, &args.trace) {
        (Some(content), Some(path)) => format!("{} (trace {path})", content.header.workload),
        _ => mixes()[args.mix_index()].name.to_string(),
    };
    println!(
        "comparing all policies on {} ({:.1}M cycles each)...\n",
        workload,
        args.cycles() / 1e6
    );
    println!(
        "{:<12} {:>8} {:>10} {:>14} {:>12}",
        "policy", "IPC", "LLC hit%", "NVM bytes", "energy [mJ]"
    );
    // One job per policy; every job uses the same seed as the serial loop
    // did, and rows print in job order, so --jobs only changes wall-clock.
    let policies: Vec<_> = [
        "bh",
        "bh_cp",
        "ca",
        "ca_rwr",
        "cp_sd",
        "cp_sd_th8",
        "lhybrid",
        "tap",
    ]
    .iter()
    .map(|p| parse_policy(p).unwrap())
    .collect();
    let rows = run_indexed(policies, args.jobs, |_, policy| {
        let system = args.spec.system_config();
        let stats = match (&trace, &replay) {
            (Some(content), Some(spec)) => {
                replay_session_with(content, spec, policy, Some(args.cycles()))
                    .expect("trace geometry validated before dispatch")
            }
            _ => {
                let mut job_args = args.clone();
                job_args.spec.hybrid.policy = policy.label();
                live_session(&job_args, system.cores)
            }
        };
        let e = EnergyModel::default_16nm().breakdown(
            &stats.llc,
            args.cycles(),
            system.timing.freq_ghz,
        );
        format!(
            "{:<12} {:>8.3} {:>9.1}% {:>14} {:>12.2}",
            policy.name(),
            stats.ipc,
            100.0 * stats.llc.hit_rate(),
            stats.llc.nvm_bytes_written,
            e.total_mj()
        )
    });
    for row in rows {
        println!("{row}");
    }
    Ok(())
}

fn cmd_sweep(args: &SweepArgs) -> Result<(), String> {
    let trace = load_trace_arg(&args.trace, args.spec.system.cores)?;
    if let (Some(content), Some(path)) = (&trace, &args.trace) {
        println!(
            "replaying trace {path} ({} accesses) in every job; mixes only label the grid",
            content.accesses.len()
        );
    }
    let spec = SweepSpec {
        policies: args.policies.clone(),
        mixes: args.mixes.clone(),
        seeds: args.seeds,
        capacities: args.capacities.clone(),
        way_splits: args.way_splits.clone(),
        nvm_latency_factors: args.nvm_latency_factors.clone(),
        base_seed: args.spec.workload.seed,
        spec: args.spec.clone(),
        warmup_cycles: args.spec.run.warmup_fraction * args.cycles,
        measure_cycles: args.cycles,
        threads: args.jobs,
        trace,
    };
    println!(
        "sweeping {} policies x {} capacities x {} way splits x {} latencies x {} mixes x {} seeds = {} jobs on {} threads...",
        spec.policies.len(),
        spec.capacities.len(),
        spec.way_splits.len(),
        spec.nvm_latency_factors.len(),
        spec.mixes.len(),
        spec.seeds,
        spec.job_count(),
        spec.threads,
    );
    let report = run_sweep(&spec);

    println!(
        "\n{:<12} {:>9} {:>8} {:>10} {:>14}",
        "policy", "capacity", "IPC", "LLC hit%", "NVM bytes"
    );
    for (label, _) in &spec.policies {
        for &capacity in &spec.capacities {
            let cell: Vec<_> = report
                .results
                .iter()
                .filter(|r| &r.policy == label && r.capacity == capacity)
                .collect();
            let n = cell.len() as f64;
            let ipc: f64 = cell.iter().map(|r| r.ipc).sum::<f64>() / n;
            let hit: f64 = cell.iter().map(|r| r.hit_rate).sum::<f64>() / n;
            let bytes: u64 = cell.iter().map(|r| r.nvm_bytes_written).sum();
            println!(
                "{label:<12} {capacity:>9.2} {ipc:>8.3} {:>9.1}% {bytes:>14}",
                100.0 * hit
            );
        }
    }

    if let Some(path) = &args.json {
        let text = serde_json::to_string_pretty(&report_json(&report))
            .map_err(|e| format!("serializing report: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nreport written to {path}");
    }
    Ok(())
}

fn cmd_figures() {
    println!("paper tables and figures are regenerated by bench targets:");
    for (bench, what) in [
        ("table1", "Table I  — BDI compression encodings"),
        ("table3", "Table III — policy taxonomy"),
        ("table4", "Table IV — system specification"),
        ("table5", "Table V  — workload mixes"),
        ("fig2", "Figure 2  — per-app compressibility"),
        ("fig6", "Figure 6  — hit rate vs CP_th"),
        ("fig7", "Figure 7  — NVM bytes vs CP_th"),
        ("fig8a", "Figure 8a — optimal CP_th vs capacity"),
        ("fig8b", "Figure 8b — optimal CP_th per mix"),
        ("fig9", "Figure 9  — Th/Tw trade-off"),
        ("fig10a", "Figure 1/10a — performance vs lifetime"),
        ("fig10b", "Figure 10b — 3/13 way split"),
        ("fig10c", "Figure 10c — cv = 0.25"),
        ("fig11a", "Figure 11a — L2 doubled"),
        ("fig11b", "Figure 11b — NVM latency x1.5"),
        ("fig11c", "Figure 11c — equal storage cost"),
        ("energy", "extension — LLC energy"),
        ("variability", "extension — seed noise floor"),
        ("ablation_fit_lru", "ablation — Fit-LRU"),
        ("ablation_epoch", "ablation — dueling epoch"),
        ("ablation_compressor", "ablation — BDI vs FPC"),
        ("ablation_memory", "ablation — DRAM model"),
        ("micro", "Criterion microbenches"),
    ] {
        println!("  cargo bench -p hllc-bench --bench {bench:<20} # {what}");
    }
}

fn usage() {
    println!(
        "usage: hllc <policies|mixes|figures|spec|run|forecast|compare|sweep|record|replay|trace-info|bench-kernel> \
        [--spec file|preset] [--policy P] [--mix 1..10] [--cycles N] [--seed S] [--jobs N] [--trace f.trc] [--json]\n\
        \x20      hllc spec [--preset name] [--dump out.json]           (presets: {})\n\
        \x20      hllc sweep [--spec file|preset] [--policies a,b] [--mixes 1,2] [--seeds K] [--capacities 1.0,0.7] \
        [--way-splits 4/12,3/13] [--nvm-latency 1.0,1.5] [--sets N] [--json out.json] [--trace f.trc]\n\
        \x20      hllc record --out f.trc [--cores N] [--json stats.json] [run flags]\n\
        \x20      hllc replay --trace f.trc [--policy P] [--cycles N] [--spec file|preset] [--json stats.json]\n\
        \x20      hllc trace-info f.trc\n\
        \x20      hllc bench-kernel [--label before|after] [--accesses N] [--seed S] [--out f.json] [--json]",
        ExperimentSpec::preset_names().join(", ")
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let outcome = match cmd.as_str() {
        "policies" => {
            cmd_policies();
            Ok(())
        }
        "mixes" => {
            cmd_mixes();
            Ok(())
        }
        "figures" => {
            cmd_figures();
            Ok(())
        }
        "spec" => parse_spec_args(&argv[1..]).and_then(|args| cmd_spec(&args)),
        "run" | "forecast" | "compare" => {
            parse_args(&argv[1..]).and_then(|args| match cmd.as_str() {
                "run" => cmd_run(&args),
                "compare" => cmd_compare(&args),
                _ => cmd_forecast(&args),
            })
        }
        "sweep" => parse_sweep_args(&argv[1..]).and_then(|args| cmd_sweep(&args)),
        "bench-kernel" => {
            parse_bench_kernel_args(&argv[1..]).and_then(|args| cmd_bench_kernel(&args))
        }
        "record" => parse_record_args(&argv[1..]).and_then(|args| cmd_record(&args)),
        "replay" => parse_replay_args(&argv[1..]).and_then(|args| cmd_replay(&args)),
        "trace-info" => parse_trace_info_args(&argv[1..]).and_then(|path| cmd_trace_info(&path)),
        "-h" | "--help" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        usage();
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
