//! Command-line parsing for the `hllc` binary, split out of the binary so
//! the flag grammar is unit-testable.

use hllc_core::Policy;

/// Parses a policy flag value into a [`Policy`] (Table III aliases).
///
/// `cp_sd_th<N>` takes any positive percentage `N` (e.g. `cp_sd_th2`,
/// `cp_sd_th16`, `cp_sd_th0.5`), not just the paper's 4 and 8.
pub fn parse_policy(name: &str) -> Option<Policy> {
    let name = name.to_ascii_lowercase();
    if let Some(th) = name.strip_prefix("cp_sd_th") {
        let th: f64 = th.parse().ok()?;
        if !th.is_finite() || th <= 0.0 || th > 100.0 {
            return None;
        }
        return Some(Policy::cp_sd_th(th));
    }
    match name.as_str() {
        "bh" => Some(Policy::Bh),
        "bh_cp" | "bhcp" => Some(Policy::BhCp),
        "ca" => Some(Policy::Ca { cp_th: 58 }),
        "ca_rwr" | "carwr" => Some(Policy::CaRwr { cp_th: 58 }),
        "cp_sd" | "cpsd" => Some(Policy::cp_sd()),
        "lhybrid" => Some(Policy::LHybrid),
        "tap" => Some(Policy::tap()),
        _ => None,
    }
}

/// Arguments of `hllc run|forecast|compare`.
#[derive(Clone, Debug)]
pub struct Args {
    /// Insertion policy (`run`/`forecast` only; `compare` runs them all).
    pub policy: Policy,
    /// Table V mix, stored 0-based.
    pub mix: usize,
    /// Simulated cycles.
    pub cycles: f64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (`compare` only; results are independent of it).
    pub jobs: usize,
    /// Trace file replacing the synthetic mix (`run`/`compare` only).
    pub trace: Option<String>,
    /// Print the stats as sorted-key JSON instead of the human summary
    /// (`run` only) — the output the golden determinism tests diff.
    pub json: bool,
}

/// Parses the flags of `hllc run|forecast|compare`.
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        policy: Policy::cp_sd(),
        mix: 0,
        cycles: 2.0e6,
        seed: 42,
        jobs: hllc_runner::default_threads(),
        trace: None,
        json: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--policy" => {
                let v = value()?;
                args.policy = parse_policy(v)
                    .ok_or_else(|| format!("unknown policy '{v}' (try `hllc policies`)"))?;
            }
            "--mix" => {
                let v: usize = value()?
                    .parse()
                    .map_err(|_| "--mix expects 1..10".to_string())?;
                if !(1..=10).contains(&v) {
                    return Err("--mix expects 1..10".into());
                }
                args.mix = v - 1;
            }
            "--cycles" => {
                args.cycles = value()?
                    .parse()
                    .map_err(|_| "--cycles expects a number".to_string())?;
            }
            "--seed" => {
                args.seed = value()?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--jobs" => {
                args.jobs = parse_jobs(value()?)?;
            }
            "--trace" => args.trace = Some(value()?.clone()),
            "--json" => args.json = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// Arguments of `hllc sweep`.
#[derive(Clone, Debug)]
pub struct SweepArgs {
    /// Policies to sweep, as `(label, policy)` pairs in flag order.
    pub policies: Vec<(String, Policy)>,
    /// Table V mixes, stored 0-based.
    pub mixes: Vec<usize>,
    /// Seed replicates per grid cell.
    pub seeds: usize,
    /// NVM capacity fractions (1.0 = pristine).
    pub capacities: Vec<f64>,
    /// Worker threads; any value yields byte-identical reports.
    pub jobs: usize,
    /// Measured cycles per job (warm-up is 20% on top).
    pub cycles: f64,
    /// Base seed of the per-job SplitMix64 streams.
    pub seed: u64,
    /// LLC sets.
    pub sets: usize,
    /// Where to write the JSON report, if anywhere.
    pub json: Option<String>,
    /// Trace file replacing the synthetic mixes.
    pub trace: Option<String>,
}

/// Parses the flags of `hllc sweep`.
pub fn parse_sweep_args(argv: &[String]) -> Result<SweepArgs, String> {
    let mut args = SweepArgs {
        policies: parse_policy_list("bh,cp_sd").unwrap(),
        mixes: vec![0, 1, 2, 3],
        seeds: 1,
        capacities: vec![1.0],
        jobs: hllc_runner::default_threads(),
        cycles: 2.0e5,
        seed: 42,
        sets: 512,
        json: None,
        trace: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--policies" => args.policies = parse_policy_list(value()?)?,
            "--mixes" => args.mixes = parse_mix_list(value()?)?,
            "--seeds" => {
                args.seeds = value()?
                    .parse()
                    .ok()
                    .filter(|&k: &usize| k >= 1)
                    .ok_or_else(|| "--seeds expects an integer >= 1".to_string())?;
            }
            "--capacities" => {
                let v = value()?;
                args.capacities = v
                    .split(',')
                    .map(|c| {
                        c.trim()
                            .parse::<f64>()
                            .ok()
                            .filter(|&f| f > 0.0 && f <= 1.0)
                            .ok_or_else(|| format!("bad capacity '{c}' (expects 0..=1)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--jobs" => args.jobs = parse_jobs(value()?)?,
            "--cycles" => {
                args.cycles = value()?
                    .parse()
                    .map_err(|_| "--cycles expects a number".to_string())?;
            }
            "--seed" => {
                args.seed = value()?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--sets" => {
                args.sets = value()?
                    .parse()
                    .ok()
                    .filter(|&s: &usize| s >= 1)
                    .ok_or_else(|| "--sets expects an integer >= 1".to_string())?;
            }
            "--json" => args.json = Some(value()?.clone()),
            "--trace" => args.trace = Some(value()?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    v.parse()
        .ok()
        .filter(|&n: &usize| n >= 1)
        .ok_or_else(|| "--jobs expects an integer >= 1".to_string())
}

/// Arguments of `hllc record`.
#[derive(Clone, Debug)]
pub struct RecordArgs {
    /// The live run to capture (policy, mix, cycles, seed).
    pub run: Args,
    /// Cores to record — the first N streams of the mix.
    pub cores: usize,
    /// Trace file to write.
    pub out: String,
    /// Where to write the live run's stats JSON, if anywhere.
    pub json: Option<String>,
}

/// Parses the flags of `hllc record`: the `run` flags plus `--cores N`,
/// a required `--out <file>`, and an optional `--json <file>`.
pub fn parse_record_args(argv: &[String]) -> Result<RecordArgs, String> {
    let mut cores = 4usize;
    let mut out: Option<String> = None;
    let mut json: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--cores" => {
                cores = it
                    .next()
                    .ok_or_else(|| "--cores needs a value".to_string())?
                    .parse()
                    .ok()
                    .filter(|&c: &usize| (1..=8).contains(&c))
                    .ok_or_else(|| "--cores expects 1..8".to_string())?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--json" => json = Some(it.next().ok_or("--json needs a value")?.clone()),
            _ => rest.push(flag.clone()),
        }
    }
    let run = parse_args(&rest)?;
    if run.trace.is_some() {
        return Err("record captures a live run; it does not take --trace".into());
    }
    Ok(RecordArgs {
        run,
        cores,
        out: out.ok_or_else(|| "record requires --out <file>".to_string())?,
        json,
    })
}

/// Arguments of `hllc replay`.
#[derive(Clone, Debug)]
pub struct ReplayArgs {
    /// Trace file to replay.
    pub trace: String,
    /// Policy override; `None` replays under the recorded policy.
    pub policy: Option<Policy>,
    /// Cycle-budget override; `None` uses the recording's budget.
    pub cycles: Option<f64>,
    /// Where to write the replay's stats JSON, if anywhere.
    pub json: Option<String>,
}

/// Parses the flags of `hllc replay`: a required `--trace <file>` plus
/// optional `--policy`, `--cycles`, and `--json` overrides.
pub fn parse_replay_args(argv: &[String]) -> Result<ReplayArgs, String> {
    let mut trace: Option<String> = None;
    let mut policy: Option<Policy> = None;
    let mut cycles: Option<f64> = None;
    let mut json: Option<String> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--trace" => trace = Some(value()?.clone()),
            "--policy" => {
                let v = value()?;
                policy = Some(
                    parse_policy(v)
                        .ok_or_else(|| format!("unknown policy '{v}' (try `hllc policies`)"))?,
                );
            }
            "--cycles" => {
                cycles = Some(
                    value()?
                        .parse()
                        .map_err(|_| "--cycles expects a number".to_string())?,
                );
            }
            "--json" => json = Some(value()?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(ReplayArgs {
        trace: trace.ok_or_else(|| "replay requires --trace <file>".to_string())?,
        policy,
        cycles,
        json,
    })
}

/// Parses `hllc trace-info <file>`: exactly one path.
pub fn parse_trace_info_args(argv: &[String]) -> Result<String, String> {
    match argv {
        [path] if !path.starts_with("--") => Ok(path.clone()),
        _ => Err("trace-info expects exactly one trace file".into()),
    }
}

/// Arguments of `hllc bench-kernel`.
#[derive(Clone, Debug)]
pub struct BenchKernelArgs {
    /// Which report section the measurement lands in (`before`/`after`) —
    /// the other section of an existing report is preserved, so a PR can
    /// record its baseline first and its result after the change.
    pub label: String,
    /// References driven through the LLC kernel per policy.
    pub accesses: u64,
    /// Workload/endurance seed.
    pub seed: u64,
    /// Print the full report JSON to stdout instead of the summary table.
    pub json: bool,
    /// Report file, written in-place (default `BENCH_kernel.json`).
    pub out: String,
}

/// Parses the flags of `hllc bench-kernel`.
pub fn parse_bench_kernel_args(argv: &[String]) -> Result<BenchKernelArgs, String> {
    let mut args = BenchKernelArgs {
        label: "after".into(),
        accesses: hllc_bench::kernel::DEFAULT_ACCESSES,
        seed: 42,
        json: false,
        out: "BENCH_kernel.json".into(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--label" => {
                let v = value()?;
                if v != "before" && v != "after" {
                    return Err("--label expects 'before' or 'after'".into());
                }
                args.label = v.clone();
            }
            "--accesses" => {
                args.accesses = value()?
                    .parse()
                    .ok()
                    .filter(|&n: &u64| n >= 1000)
                    .ok_or_else(|| "--accesses expects an integer >= 1000".to_string())?;
            }
            "--seed" => {
                args.seed = value()?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--json" => args.json = true,
            "--out" => args.out = value()?.clone(),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// Parses a comma-separated policy list, keeping the flag spelling as label.
fn parse_policy_list(v: &str) -> Result<Vec<(String, Policy)>, String> {
    let list: Vec<(String, Policy)> = v
        .split(',')
        .map(|name| {
            let name = name.trim();
            parse_policy(name)
                .map(|p| (name.to_string(), p))
                .ok_or_else(|| format!("unknown policy '{name}' (try `hllc policies`)"))
        })
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err("--policies expects at least one policy".into());
    }
    Ok(list)
}

/// Parses a comma-separated 1-based mix list into 0-based indices.
fn parse_mix_list(v: &str) -> Result<Vec<usize>, String> {
    let list: Vec<usize> = v
        .split(',')
        .map(|m| {
            m.trim()
                .parse::<usize>()
                .ok()
                .filter(|n| (1..=10).contains(n))
                .map(|n| n - 1)
                .ok_or_else(|| format!("bad mix '{m}' (expects 1..10)"))
        })
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err("--mixes expects at least one mix".into());
    }
    Ok(list)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn every_documented_alias_parses() {
        for alias in [
            "bh",
            "bh_cp",
            "bhcp",
            "ca",
            "ca_rwr",
            "carwr",
            "cp_sd",
            "cpsd",
            "cp_sd_th4",
            "cp_sd_th8",
            "lhybrid",
            "tap",
        ] {
            assert!(parse_policy(alias).is_some(), "alias '{alias}' rejected");
            assert!(
                parse_policy(&alias.to_uppercase()).is_some(),
                "'{alias}' not case-folded"
            );
        }
        assert!(parse_policy("nonsense").is_none());
    }

    #[test]
    fn cp_sd_th_accepts_any_threshold() {
        assert_eq!(parse_policy("cp_sd_th4"), Some(Policy::cp_sd_th(4.0)));
        assert_eq!(parse_policy("cp_sd_th8"), Some(Policy::cp_sd_th(8.0)));
        assert_eq!(parse_policy("cp_sd_th2"), Some(Policy::cp_sd_th(2.0)));
        assert_eq!(parse_policy("cp_sd_th16"), Some(Policy::cp_sd_th(16.0)));
        assert_eq!(parse_policy("CP_SD_TH0.5"), Some(Policy::cp_sd_th(0.5)));
    }

    #[test]
    fn cp_sd_th_rejects_malformed_thresholds() {
        for bad in [
            "cp_sd_th",
            "cp_sd_thx",
            "cp_sd_th-1",
            "cp_sd_th0",
            "cp_sd_th101",
            "cp_sd_thnan",
            "cp_sd_thinf",
            "cp_sd_th1e999",
            "cp_sd_th4%",
        ] {
            assert!(parse_policy(bad).is_none(), "'{bad}' accepted");
        }
    }

    #[test]
    fn alias_pairs_agree() {
        assert_eq!(parse_policy("bh_cp"), parse_policy("bhcp"));
        assert_eq!(parse_policy("ca_rwr"), parse_policy("carwr"));
        assert_eq!(parse_policy("cp_sd"), parse_policy("cpsd"));
    }

    #[test]
    fn parse_args_reads_every_flag() {
        let a = parse_args(&argv("--policy bh --mix 3 --cycles 5e5 --seed 7 --jobs 2")).unwrap();
        assert_eq!(a.policy, Policy::Bh);
        assert_eq!(a.mix, 2, "mixes are stored 0-based");
        assert_eq!(a.cycles, 5.0e5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.jobs, 2);
    }

    #[test]
    fn parse_args_rejects_out_of_range_mixes() {
        assert!(parse_args(&argv("--mix 0")).is_err());
        assert!(parse_args(&argv("--mix 11")).is_err());
        assert!(parse_args(&argv("--mix 1")).is_ok());
        assert!(parse_args(&argv("--mix 10")).is_ok());
    }

    #[test]
    fn parse_args_rejects_missing_values() {
        for flags in ["--policy", "--mix", "--cycles", "--seed", "--jobs"] {
            let e = parse_args(&argv(flags)).unwrap_err();
            assert!(e.contains("needs a value"), "'{flags}': {e}");
        }
    }

    #[test]
    fn parse_args_rejects_unknown_flags_and_bad_values() {
        assert!(parse_args(&argv("--frobnicate 3")).is_err());
        assert!(parse_args(&argv("--policy nonsense")).is_err());
        assert!(parse_args(&argv("--jobs 0")).is_err());
    }

    #[test]
    fn parse_sweep_args_reads_the_grid() {
        let a = parse_sweep_args(&argv(
            "--policies bh,cp_sd,tap --mixes 1,5,10 --seeds 3 --capacities 1.0,0.7 \
             --jobs 4 --cycles 1e5 --seed 9 --sets 256 --json out.json",
        ))
        .unwrap();
        assert_eq!(a.policies.len(), 3);
        assert_eq!(a.policies[2].0, "tap");
        assert_eq!(a.mixes, vec![0, 4, 9]);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.capacities, vec![1.0, 0.7]);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.cycles, 1.0e5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.sets, 256);
        assert_eq!(a.json.as_deref(), Some("out.json"));
    }

    #[test]
    fn parse_sweep_args_rejects_bad_grids() {
        assert!(parse_sweep_args(&argv("--mixes 0")).is_err());
        assert!(parse_sweep_args(&argv("--mixes 11")).is_err());
        assert!(parse_sweep_args(&argv("--policies nope")).is_err());
        assert!(parse_sweep_args(&argv("--seeds 0")).is_err());
        assert!(parse_sweep_args(&argv("--capacities 1.5")).is_err());
        assert!(parse_sweep_args(&argv("--capacities 0")).is_err());
        assert!(parse_sweep_args(&argv("--json")).is_err());
    }

    #[test]
    fn zero_jobs_are_rejected_everywhere() {
        let e = parse_args(&argv("--jobs 0")).unwrap_err();
        assert!(e.contains(">= 1"), "unclear error: {e}");
        let e = parse_sweep_args(&argv("--jobs 0")).unwrap_err();
        assert!(e.contains(">= 1"), "unclear error: {e}");
        assert!(parse_args(&argv("--jobs -1")).is_err());
        assert!(parse_sweep_args(&argv("--jobs many")).is_err());
        assert!(parse_args(&argv("--jobs 1")).is_ok());
        assert!(parse_sweep_args(&argv("--jobs 1")).is_ok());
    }

    #[test]
    fn parse_record_args_reads_run_flags_and_its_own() {
        let a = parse_record_args(&argv(
            "--policy bh --mix 2 --cycles 1e5 --seed 3 --cores 2 --out t.trc --json s.json",
        ))
        .unwrap();
        assert_eq!(a.run.policy, Policy::Bh);
        assert_eq!(a.run.mix, 1);
        assert_eq!(a.run.cycles, 1.0e5);
        assert_eq!(a.run.seed, 3);
        assert_eq!(a.cores, 2);
        assert_eq!(a.out, "t.trc");
        assert_eq!(a.json.as_deref(), Some("s.json"));
    }

    #[test]
    fn parse_record_args_requires_out_and_sane_cores() {
        assert!(parse_record_args(&argv("--cores 2")).is_err());
        assert!(parse_record_args(&argv("--out t.trc --cores 0")).is_err());
        assert!(parse_record_args(&argv("--out t.trc --cores 9")).is_err());
        assert!(parse_record_args(&argv("--out t.trc --trace x.trc")).is_err());
        assert!(parse_record_args(&argv("--out t.trc")).is_ok());
    }

    #[test]
    fn parse_replay_args_reads_overrides() {
        let a = parse_replay_args(&argv(
            "--trace t.trc --policy tap --cycles 5e4 --json r.json",
        ))
        .unwrap();
        assert_eq!(a.trace, "t.trc");
        assert_eq!(a.policy, Some(Policy::tap()));
        assert_eq!(a.cycles, Some(5.0e4));
        assert_eq!(a.json.as_deref(), Some("r.json"));
        let d = parse_replay_args(&argv("--trace t.trc")).unwrap();
        assert!(d.policy.is_none() && d.cycles.is_none() && d.json.is_none());
    }

    #[test]
    fn parse_replay_args_rejects_bad_flags() {
        assert!(parse_replay_args(&argv("--policy bh")).is_err(), "no trace");
        assert!(parse_replay_args(&argv("--trace t.trc --policy nope")).is_err());
        assert!(parse_replay_args(&argv("--trace t.trc --frobnicate 1")).is_err());
    }

    #[test]
    fn parse_trace_info_args_wants_one_path() {
        assert_eq!(parse_trace_info_args(&argv("t.trc")).unwrap(), "t.trc");
        assert!(parse_trace_info_args(&argv("")).is_err());
        assert!(parse_trace_info_args(&argv("a b")).is_err());
        assert!(parse_trace_info_args(&argv("--trace")).is_err());
    }

    #[test]
    fn run_and_sweep_accept_a_trace_flag() {
        let a = parse_args(&argv("--trace t.trc")).unwrap();
        assert_eq!(a.trace.as_deref(), Some("t.trc"));
        let s = parse_sweep_args(&argv("--trace t.trc")).unwrap();
        assert_eq!(s.trace.as_deref(), Some("t.trc"));
    }

    #[test]
    fn run_json_flag_is_a_boolean() {
        assert!(!parse_args(&argv("--policy bh")).unwrap().json);
        let a = parse_args(&argv("--policy bh --json")).unwrap();
        assert!(a.json);
        assert_eq!(a.policy, Policy::Bh);
    }

    #[test]
    fn parse_bench_kernel_args_reads_every_flag() {
        let a = parse_bench_kernel_args(&argv(
            "--label before --accesses 50000 --seed 9 --json --out bk.json",
        ))
        .unwrap();
        assert_eq!(a.label, "before");
        assert_eq!(a.accesses, 50_000);
        assert_eq!(a.seed, 9);
        assert!(a.json);
        assert_eq!(a.out, "bk.json");
    }

    #[test]
    fn parse_bench_kernel_args_defaults_and_rejects() {
        let d = parse_bench_kernel_args(&[]).unwrap();
        assert_eq!(d.label, "after");
        assert!(d.accesses >= 1000 && !d.json);
        assert_eq!(d.out, "BENCH_kernel.json");
        assert!(parse_bench_kernel_args(&argv("--label during")).is_err());
        assert!(parse_bench_kernel_args(&argv("--accesses 10")).is_err());
        assert!(parse_bench_kernel_args(&argv("--frobnicate 1")).is_err());
    }

    #[test]
    fn parse_sweep_args_defaults_are_sane() {
        let a = parse_sweep_args(&[]).unwrap();
        assert!(!a.policies.is_empty());
        assert!(!a.mixes.is_empty());
        assert!(a.seeds >= 1 && a.jobs >= 1 && a.sets >= 1);
        assert!(a.json.is_none());
    }
}
