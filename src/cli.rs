//! Command-line parsing for the `hllc` binary, split out of the binary so
//! the flag grammar is unit-testable.
//!
//! Every command resolves one [`ExperimentSpec`] — the `scaled` preset
//! unless `--spec <file|preset>` says otherwise — and the familiar flags
//! (`--policy`, `--mix`, `--cycles`, `--seed`, `--sets`) are edits applied
//! on top of it. The final spec is validated once, so every command
//! reports the same structured errors for the same mistakes.

use hllc_config::ExperimentSpec;
use hllc_core::Policy;

/// Parses a policy flag value into a [`Policy`] (Table III aliases plus
/// the parameterized spellings, e.g. `cp_sd_th4`, `ca_cpth40`, `tap_h5`).
pub fn parse_policy(name: &str) -> Option<Policy> {
    Policy::parse(name)
}

/// Arguments of `hllc run|forecast|compare`.
#[derive(Clone, Debug)]
pub struct Args {
    /// The resolved experiment: preset or file, with flag edits applied.
    pub spec: ExperimentSpec,
    /// Whether `--spec` was passed explicitly. Replay paths use this to
    /// decide between reconstructing the recorded system and enforcing
    /// the requested one.
    pub explicit_spec: bool,
    /// Worker threads (`compare` only; results are independent of it).
    pub jobs: usize,
    /// Trace file replacing the synthetic mix (`run`/`compare` only).
    pub trace: Option<String>,
    /// Print the stats as sorted-key JSON instead of the human summary
    /// (`run` only) — the output the golden determinism tests diff.
    pub json: bool,
}

impl Args {
    /// The parsed insertion policy.
    pub fn policy(&self) -> Policy {
        self.spec.policy()
    }

    /// The 0-based Table V mix index.
    pub fn mix_index(&self) -> usize {
        self.spec.mix_index()
    }

    /// The measured cycle budget.
    pub fn cycles(&self) -> f64 {
        self.spec.run.cycles
    }

    /// The base seed.
    pub fn seed(&self) -> u64 {
        self.spec.workload.seed
    }

    /// An `Args` over the `scaled` preset with the common overrides — the
    /// constructor tests and benches use.
    pub fn scaled(policy: Policy, mix_index: usize, cycles: f64, seed: u64) -> Args {
        let mut spec = ExperimentSpec::preset("scaled").expect("builtin preset");
        spec.hybrid.policy = policy.label();
        spec.workload.mix = mix_index + 1;
        spec.run.cycles = cycles;
        spec.workload.seed = seed;
        spec.validate().expect("scaled preset with test overrides");
        Args {
            spec,
            explicit_spec: false,
            jobs: 1,
            trace: None,
            json: false,
        }
    }
}

/// First pass over the flags: resolve `--spec` (preset name or file path)
/// before the remaining flags edit it. Returns the spec and whether it was
/// explicit.
fn resolve_spec_flag(argv: &[String]) -> Result<(ExperimentSpec, bool), String> {
    let mut found: Option<String> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "--spec" {
            found = Some(
                it.next()
                    .ok_or_else(|| "--spec needs a value".to_string())?
                    .clone(),
            );
        }
    }
    match found {
        Some(arg) => ExperimentSpec::resolve(&arg)
            .map(|s| (s, true))
            .map_err(|e| e.to_string()),
        None => Ok((
            ExperimentSpec::preset("scaled").expect("builtin preset"),
            false,
        )),
    }
}

/// Parses the flags of `hllc run|forecast|compare`.
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let (spec, explicit_spec) = resolve_spec_flag(argv)?;
    let mut args = Args {
        spec,
        explicit_spec,
        jobs: hllc_runner::default_threads(),
        trace: None,
        json: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--spec" => {
                value()?; // consumed by resolve_spec_flag
            }
            "--policy" => {
                let v = value()?;
                parse_policy(v)
                    .ok_or_else(|| format!("unknown policy '{v}' (try `hllc policies`)"))?;
                args.spec.hybrid.policy = v.clone();
            }
            "--mix" => {
                let v: usize = value()?
                    .parse()
                    .map_err(|_| "--mix expects 1..10".to_string())?;
                if !(1..=10).contains(&v) {
                    return Err("--mix expects 1..10".into());
                }
                args.spec.workload.mix = v;
            }
            "--cycles" => {
                args.spec.run.cycles = value()?
                    .parse()
                    .map_err(|_| "--cycles expects a number".to_string())?;
            }
            "--seed" => {
                args.spec.workload.seed = value()?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--jobs" => {
                args.jobs = parse_jobs(value()?)?;
            }
            "--trace" => args.trace = Some(value()?.clone()),
            "--json" => args.json = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    args.spec.validate().map_err(|e| e.to_string())?;
    Ok(args)
}

/// Arguments of `hllc sweep`.
#[derive(Clone, Debug)]
pub struct SweepArgs {
    /// Base experiment: geometry, endurance, and workload seed of every
    /// job; the grid axes below are edits applied per job.
    pub spec: ExperimentSpec,
    /// Policies to sweep, as `(label, policy)` pairs in flag order.
    pub policies: Vec<(String, Policy)>,
    /// Table V mixes, stored 0-based.
    pub mixes: Vec<usize>,
    /// Seed replicates per grid cell.
    pub seeds: usize,
    /// NVM capacity fractions (1.0 = pristine).
    pub capacities: Vec<f64>,
    /// SRAM/NVM way splits (Fig. 10b-style axis); defaults to the spec's.
    pub way_splits: Vec<(usize, usize)>,
    /// NVM latency factors (Fig. 11b-style axis); defaults to the spec's.
    pub nvm_latency_factors: Vec<f64>,
    /// Worker threads; any value yields byte-identical reports.
    pub jobs: usize,
    /// Measured cycles per job (warm-up is 20% on top).
    pub cycles: f64,
    /// Where to write the JSON report, if anywhere.
    pub json: Option<String>,
    /// Trace file replacing the synthetic mixes.
    pub trace: Option<String>,
}

/// Parses the flags of `hllc sweep`.
pub fn parse_sweep_args(argv: &[String]) -> Result<SweepArgs, String> {
    let (spec, _) = resolve_spec_flag(argv)?;
    let mut args = SweepArgs {
        spec,
        policies: parse_policy_list("bh,cp_sd").unwrap(),
        mixes: vec![0, 1, 2, 3],
        seeds: 1,
        capacities: vec![1.0],
        way_splits: Vec::new(),
        nvm_latency_factors: Vec::new(),
        jobs: hllc_runner::default_threads(),
        cycles: 2.0e5,
        json: None,
        trace: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--spec" => {
                value()?; // consumed by resolve_spec_flag
            }
            "--policies" => args.policies = parse_policy_list(value()?)?,
            "--mixes" => args.mixes = parse_mix_list(value()?)?,
            "--seeds" => {
                args.seeds = value()?
                    .parse()
                    .ok()
                    .filter(|&k: &usize| k >= 1)
                    .ok_or_else(|| "--seeds expects an integer >= 1".to_string())?;
            }
            "--capacities" => {
                let v = value()?;
                args.capacities = v
                    .split(',')
                    .map(|c| {
                        c.trim()
                            .parse::<f64>()
                            .ok()
                            .filter(|&f| f > 0.0 && f <= 1.0)
                            .ok_or_else(|| format!("bad capacity '{c}' (expects 0..=1)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--way-splits" => args.way_splits = parse_way_splits(value()?)?,
            "--nvm-latency" => {
                let v = value()?;
                args.nvm_latency_factors = v
                    .split(',')
                    .map(|f| {
                        f.trim()
                            .parse::<f64>()
                            .ok()
                            .filter(|x| x.is_finite() && *x > 0.0)
                            .ok_or_else(|| format!("bad latency factor '{f}' (expects > 0)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--jobs" => args.jobs = parse_jobs(value()?)?,
            "--cycles" => {
                args.cycles = value()?
                    .parse()
                    .map_err(|_| "--cycles expects a number".to_string())?;
            }
            "--seed" => {
                args.spec.workload.seed = value()?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--sets" => {
                args.spec.system.llc_sets = value()?
                    .parse()
                    .ok()
                    .filter(|&s: &usize| s >= 1)
                    .ok_or_else(|| "--sets expects an integer >= 1".to_string())?;
            }
            "--json" => args.json = Some(value()?.clone()),
            "--trace" => args.trace = Some(value()?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.way_splits.is_empty() {
        args.way_splits = vec![(args.spec.system.sram_ways, args.spec.system.nvm_ways)];
    }
    if args.nvm_latency_factors.is_empty() {
        args.nvm_latency_factors = vec![args.spec.system.nvm_latency_factor];
    }
    args.spec.validate().map_err(|e| e.to_string())?;
    Ok(args)
}

/// Parses a comma-separated way-split list, e.g. `4/12,3/13`.
fn parse_way_splits(v: &str) -> Result<Vec<(usize, usize)>, String> {
    let list: Vec<(usize, usize)> = v
        .split(',')
        .map(|pair| {
            let bad = || format!("bad way split '{pair}' (expects SRAM/NVM, e.g. 4/12)");
            let (s, n) = pair.trim().split_once('/').ok_or_else(bad)?;
            let s: usize = s.trim().parse().map_err(|_| bad())?;
            let n: usize = n.trim().parse().map_err(|_| bad())?;
            if s + n == 0 || s + n > hllc_config::MAX_WAYS {
                return Err(format!(
                    "bad way split '{pair}' (1 <= SRAM+NVM <= {})",
                    hllc_config::MAX_WAYS
                ));
            }
            Ok((s, n))
        })
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err("--way-splits expects at least one SRAM/NVM pair".into());
    }
    Ok(list)
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    v.parse()
        .ok()
        .filter(|&n: &usize| n >= 1)
        .ok_or_else(|| "--jobs expects an integer >= 1".to_string())
}

/// Arguments of `hllc record`.
#[derive(Clone, Debug)]
pub struct RecordArgs {
    /// The live run to capture (policy, mix, cycles, seed).
    pub run: Args,
    /// Cores to record — the first N streams of the mix.
    pub cores: usize,
    /// Trace file to write.
    pub out: String,
    /// Where to write the live run's stats JSON, if anywhere.
    pub json: Option<String>,
}

/// Parses the flags of `hllc record`: the `run` flags plus `--cores N`,
/// a required `--out <file>`, and an optional `--json <file>`.
pub fn parse_record_args(argv: &[String]) -> Result<RecordArgs, String> {
    let mut cores = 4usize;
    let mut out: Option<String> = None;
    let mut json: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--cores" => {
                cores = it
                    .next()
                    .ok_or_else(|| "--cores needs a value".to_string())?
                    .parse()
                    .ok()
                    .filter(|&c: &usize| (1..=hllc_config::MAX_CORES).contains(&c))
                    .ok_or_else(|| format!("--cores expects 1..{}", hllc_config::MAX_CORES))?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--json" => json = Some(it.next().ok_or("--json needs a value")?.clone()),
            _ => rest.push(flag.clone()),
        }
    }
    let run = parse_args(&rest)?;
    if run.trace.is_some() {
        return Err("record captures a live run; it does not take --trace".into());
    }
    Ok(RecordArgs {
        run,
        cores,
        out: out.ok_or_else(|| "record requires --out <file>".to_string())?,
        json,
    })
}

/// Arguments of `hllc replay`.
#[derive(Clone, Debug)]
pub struct ReplayArgs {
    /// Trace file to replay.
    pub trace: String,
    /// Policy override; `None` replays under the recorded policy.
    pub policy: Option<Policy>,
    /// Cycle-budget override; `None` uses the recording's budget.
    pub cycles: Option<f64>,
    /// System override; `None` reconstructs the recorded system. When
    /// given, the geometry must match the recording's.
    pub spec: Option<ExperimentSpec>,
    /// Where to write the replay's stats JSON, if anywhere.
    pub json: Option<String>,
}

/// Parses the flags of `hllc replay`: a required `--trace <file>` plus
/// optional `--policy`, `--cycles`, `--spec`, and `--json` overrides.
pub fn parse_replay_args(argv: &[String]) -> Result<ReplayArgs, String> {
    let mut trace: Option<String> = None;
    let mut policy: Option<Policy> = None;
    let mut cycles: Option<f64> = None;
    let mut spec: Option<ExperimentSpec> = None;
    let mut json: Option<String> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--trace" => trace = Some(value()?.clone()),
            "--policy" => {
                let v = value()?;
                policy = Some(
                    parse_policy(v)
                        .ok_or_else(|| format!("unknown policy '{v}' (try `hllc policies`)"))?,
                );
            }
            "--cycles" => {
                cycles = Some(
                    value()?
                        .parse()
                        .map_err(|_| "--cycles expects a number".to_string())?,
                );
            }
            "--spec" => {
                spec = Some(ExperimentSpec::resolve(value()?).map_err(|e| e.to_string())?);
            }
            "--json" => json = Some(value()?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(ReplayArgs {
        trace: trace.ok_or_else(|| "replay requires --trace <file>".to_string())?,
        policy,
        cycles,
        spec,
        json,
    })
}

/// Arguments of `hllc spec`.
#[derive(Clone, Debug)]
pub struct SpecArgs {
    /// The resolved spec (`--preset`/`--spec`; default `scaled`).
    pub spec: ExperimentSpec,
    /// Where to write the spec as pretty JSON instead of stdout.
    pub dump: Option<String>,
}

/// Parses the flags of `hllc spec`: `--preset <name>` (or `--spec
/// <file|preset>`) plus an optional `--dump <file>`.
pub fn parse_spec_args(argv: &[String]) -> Result<SpecArgs, String> {
    let mut spec: Option<ExperimentSpec> = None;
    let mut dump: Option<String> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--preset" | "--spec" => {
                spec = Some(ExperimentSpec::resolve(value()?).map_err(|e| e.to_string())?);
            }
            "--dump" => dump = Some(value()?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(SpecArgs {
        spec: match spec {
            Some(s) => s,
            None => ExperimentSpec::preset("scaled").expect("builtin preset"),
        },
        dump,
    })
}

/// Parses `hllc trace-info <file>`: exactly one path.
pub fn parse_trace_info_args(argv: &[String]) -> Result<String, String> {
    match argv {
        [path] if !path.starts_with("--") => Ok(path.clone()),
        _ => Err("trace-info expects exactly one trace file".into()),
    }
}

/// Arguments of `hllc bench-kernel`.
#[derive(Clone, Debug)]
pub struct BenchKernelArgs {
    /// Which report section the measurement lands in (`before`/`after`) —
    /// the other section of an existing report is preserved, so a PR can
    /// record its baseline first and its result after the change.
    pub label: String,
    /// References driven through the LLC kernel per policy.
    pub accesses: u64,
    /// Workload/endurance seed.
    pub seed: u64,
    /// Print the full report JSON to stdout instead of the summary table.
    pub json: bool,
    /// Report file, written in-place (default `BENCH_kernel.json`).
    pub out: String,
}

/// Parses the flags of `hllc bench-kernel`.
pub fn parse_bench_kernel_args(argv: &[String]) -> Result<BenchKernelArgs, String> {
    let mut args = BenchKernelArgs {
        label: "after".into(),
        accesses: hllc_bench::kernel::DEFAULT_ACCESSES,
        seed: 42,
        json: false,
        out: "BENCH_kernel.json".into(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--label" => {
                let v = value()?;
                if v != "before" && v != "after" {
                    return Err("--label expects 'before' or 'after'".into());
                }
                args.label = v.clone();
            }
            "--accesses" => {
                args.accesses = value()?
                    .parse()
                    .ok()
                    .filter(|&n: &u64| n >= 1000)
                    .ok_or_else(|| "--accesses expects an integer >= 1000".to_string())?;
            }
            "--seed" => {
                args.seed = value()?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--json" => args.json = true,
            "--out" => args.out = value()?.clone(),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// Parses a comma-separated policy list, keeping the flag spelling as label.
fn parse_policy_list(v: &str) -> Result<Vec<(String, Policy)>, String> {
    let list: Vec<(String, Policy)> = v
        .split(',')
        .map(|name| {
            let name = name.trim();
            parse_policy(name)
                .map(|p| (name.to_string(), p))
                .ok_or_else(|| format!("unknown policy '{name}' (try `hllc policies`)"))
        })
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err("--policies expects at least one policy".into());
    }
    Ok(list)
}

/// Parses a comma-separated 1-based mix list into 0-based indices.
fn parse_mix_list(v: &str) -> Result<Vec<usize>, String> {
    let list: Vec<usize> = v
        .split(',')
        .map(|m| {
            m.trim()
                .parse::<usize>()
                .ok()
                .filter(|n| (1..=10).contains(n))
                .map(|n| n - 1)
                .ok_or_else(|| format!("bad mix '{m}' (expects 1..10)"))
        })
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err("--mixes expects at least one mix".into());
    }
    Ok(list)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn every_documented_alias_parses() {
        for alias in [
            "bh",
            "bh_cp",
            "bhcp",
            "ca",
            "ca_rwr",
            "carwr",
            "cp_sd",
            "cpsd",
            "cp_sd_th4",
            "cp_sd_th8",
            "lhybrid",
            "tap",
        ] {
            assert!(parse_policy(alias).is_some(), "alias '{alias}' rejected");
            assert!(
                parse_policy(&alias.to_uppercase()).is_some(),
                "'{alias}' not case-folded"
            );
        }
        assert!(parse_policy("nonsense").is_none());
    }

    #[test]
    fn cp_sd_th_accepts_any_threshold() {
        assert_eq!(parse_policy("cp_sd_th4"), Some(Policy::cp_sd_th(4.0)));
        assert_eq!(parse_policy("cp_sd_th8"), Some(Policy::cp_sd_th(8.0)));
        assert_eq!(parse_policy("cp_sd_th2"), Some(Policy::cp_sd_th(2.0)));
        assert_eq!(parse_policy("cp_sd_th16"), Some(Policy::cp_sd_th(16.0)));
        assert_eq!(parse_policy("CP_SD_TH0.5"), Some(Policy::cp_sd_th(0.5)));
    }

    #[test]
    fn cp_sd_th_rejects_malformed_thresholds() {
        for bad in [
            "cp_sd_th",
            "cp_sd_thx",
            "cp_sd_th-1",
            "cp_sd_th0",
            "cp_sd_th101",
            "cp_sd_thnan",
            "cp_sd_thinf",
            "cp_sd_th1e999",
            "cp_sd_th4%",
        ] {
            assert!(parse_policy(bad).is_none(), "'{bad}' accepted");
        }
    }

    #[test]
    fn alias_pairs_agree() {
        assert_eq!(parse_policy("bh_cp"), parse_policy("bhcp"));
        assert_eq!(parse_policy("ca_rwr"), parse_policy("carwr"));
        assert_eq!(parse_policy("cp_sd"), parse_policy("cpsd"));
    }

    #[test]
    fn parse_args_reads_every_flag() {
        let a = parse_args(&argv("--policy bh --mix 3 --cycles 5e5 --seed 7 --jobs 2")).unwrap();
        assert_eq!(a.policy(), Policy::Bh);
        assert_eq!(a.mix_index(), 2, "mixes are stored 1-based in the spec");
        assert_eq!(a.cycles(), 5.0e5);
        assert_eq!(a.seed(), 7);
        assert_eq!(a.jobs, 2);
        assert!(!a.explicit_spec);
    }

    #[test]
    fn parse_args_defaults_to_the_scaled_preset() {
        let a = parse_args(&[]).unwrap();
        assert_eq!(a.spec.name, "scaled");
        assert_eq!(a.spec.system.llc_sets, 512);
        assert_eq!(a.policy(), Policy::cp_sd());
        assert_eq!(a.cycles(), 2.0e6);
        assert_eq!(a.seed(), 42);
    }

    #[test]
    fn parse_args_resolves_spec_presets_with_flag_edits_on_top() {
        let a = parse_args(&argv("--spec waysplit-3-13 --policy bh --cycles 1e5")).unwrap();
        assert!(a.explicit_spec);
        assert_eq!(a.spec.system.sram_ways, 3);
        assert_eq!(a.spec.system.nvm_ways, 13);
        assert_eq!(a.policy(), Policy::Bh, "flags edit the resolved spec");
        assert_eq!(a.cycles(), 1.0e5);
    }

    #[test]
    fn parse_args_reports_spec_errors() {
        let e = parse_args(&argv("--spec warp-speed")).unwrap_err();
        assert!(e.contains("warp-speed"), "{e}");
        let e = parse_args(&argv("--spec")).unwrap_err();
        assert!(e.contains("needs a value"), "{e}");
    }

    #[test]
    fn parse_args_rejects_out_of_range_mixes() {
        assert!(parse_args(&argv("--mix 0")).is_err());
        assert!(parse_args(&argv("--mix 11")).is_err());
        assert!(parse_args(&argv("--mix 1")).is_ok());
        assert!(parse_args(&argv("--mix 10")).is_ok());
    }

    #[test]
    fn parse_args_rejects_missing_values() {
        for flags in ["--policy", "--mix", "--cycles", "--seed", "--jobs"] {
            let e = parse_args(&argv(flags)).unwrap_err();
            assert!(e.contains("needs a value"), "'{flags}': {e}");
        }
    }

    #[test]
    fn parse_args_rejects_unknown_flags_and_bad_values() {
        assert!(parse_args(&argv("--frobnicate 3")).is_err());
        assert!(parse_args(&argv("--policy nonsense")).is_err());
        assert!(parse_args(&argv("--jobs 0")).is_err());
    }

    #[test]
    fn parse_sweep_args_reads_the_grid() {
        let a = parse_sweep_args(&argv(
            "--policies bh,cp_sd,tap --mixes 1,5,10 --seeds 3 --capacities 1.0,0.7 \
             --jobs 4 --cycles 1e5 --seed 9 --sets 256 --json out.json",
        ))
        .unwrap();
        assert_eq!(a.policies.len(), 3);
        assert_eq!(a.policies[2].0, "tap");
        assert_eq!(a.mixes, vec![0, 4, 9]);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.capacities, vec![1.0, 0.7]);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.cycles, 1.0e5);
        assert_eq!(a.spec.workload.seed, 9);
        assert_eq!(a.spec.system.llc_sets, 256);
        assert_eq!(a.json.as_deref(), Some("out.json"));
    }

    #[test]
    fn parse_sweep_args_reads_the_new_axes() {
        let a = parse_sweep_args(&argv("--way-splits 4/12,3/13 --nvm-latency 1.0,1.5")).unwrap();
        assert_eq!(a.way_splits, vec![(4, 12), (3, 13)]);
        assert_eq!(a.nvm_latency_factors, vec![1.0, 1.5]);
        // Defaults mirror the base spec: a singleton per axis.
        let d = parse_sweep_args(&[]).unwrap();
        assert_eq!(d.way_splits, vec![(4, 12)]);
        assert_eq!(d.nvm_latency_factors, vec![1.0]);
    }

    #[test]
    fn parse_sweep_args_rejects_bad_grids() {
        assert!(parse_sweep_args(&argv("--mixes 0")).is_err());
        assert!(parse_sweep_args(&argv("--mixes 11")).is_err());
        assert!(parse_sweep_args(&argv("--policies nope")).is_err());
        assert!(parse_sweep_args(&argv("--seeds 0")).is_err());
        assert!(parse_sweep_args(&argv("--capacities 1.5")).is_err());
        assert!(parse_sweep_args(&argv("--capacities 0")).is_err());
        assert!(parse_sweep_args(&argv("--way-splits 9/9")).is_err());
        assert!(parse_sweep_args(&argv("--way-splits 4-12")).is_err());
        assert!(parse_sweep_args(&argv("--nvm-latency 0")).is_err());
        assert!(
            parse_sweep_args(&argv("--sets 500")).is_err(),
            "not a power of two"
        );
        assert!(parse_sweep_args(&argv("--json")).is_err());
    }

    #[test]
    fn zero_jobs_are_rejected_everywhere() {
        let e = parse_args(&argv("--jobs 0")).unwrap_err();
        assert!(e.contains(">= 1"), "unclear error: {e}");
        let e = parse_sweep_args(&argv("--jobs 0")).unwrap_err();
        assert!(e.contains(">= 1"), "unclear error: {e}");
        assert!(parse_args(&argv("--jobs -1")).is_err());
        assert!(parse_sweep_args(&argv("--jobs many")).is_err());
        assert!(parse_args(&argv("--jobs 1")).is_ok());
        assert!(parse_sweep_args(&argv("--jobs 1")).is_ok());
    }

    #[test]
    fn parse_record_args_reads_run_flags_and_its_own() {
        let a = parse_record_args(&argv(
            "--policy bh --mix 2 --cycles 1e5 --seed 3 --cores 2 --out t.trc --json s.json",
        ))
        .unwrap();
        assert_eq!(a.run.policy(), Policy::Bh);
        assert_eq!(a.run.mix_index(), 1);
        assert_eq!(a.run.cycles(), 1.0e5);
        assert_eq!(a.run.seed(), 3);
        assert_eq!(a.cores, 2);
        assert_eq!(a.out, "t.trc");
        assert_eq!(a.json.as_deref(), Some("s.json"));
    }

    #[test]
    fn parse_record_args_requires_out_and_sane_cores() {
        assert!(parse_record_args(&argv("--cores 2")).is_err());
        assert!(parse_record_args(&argv("--out t.trc --cores 0")).is_err());
        assert!(parse_record_args(&argv("--out t.trc --cores 17")).is_err());
        assert!(
            parse_record_args(&argv("--out t.trc --cores 12")).is_ok(),
            "the v2 header supports up to 16 cores"
        );
        assert!(parse_record_args(&argv("--out t.trc --trace x.trc")).is_err());
        assert!(parse_record_args(&argv("--out t.trc")).is_ok());
    }

    #[test]
    fn parse_replay_args_reads_overrides() {
        let a = parse_replay_args(&argv(
            "--trace t.trc --policy tap --cycles 5e4 --json r.json",
        ))
        .unwrap();
        assert_eq!(a.trace, "t.trc");
        assert_eq!(a.policy, Some(Policy::tap()));
        assert_eq!(a.cycles, Some(5.0e4));
        assert_eq!(a.json.as_deref(), Some("r.json"));
        let d = parse_replay_args(&argv("--trace t.trc")).unwrap();
        assert!(d.policy.is_none() && d.cycles.is_none() && d.json.is_none());
        assert!(d.spec.is_none());
        let s = parse_replay_args(&argv("--trace t.trc --spec scaled")).unwrap();
        assert_eq!(s.spec.map(|s| s.name), Some("scaled".to_string()));
    }

    #[test]
    fn parse_replay_args_rejects_bad_flags() {
        assert!(parse_replay_args(&argv("--policy bh")).is_err(), "no trace");
        assert!(parse_replay_args(&argv("--trace t.trc --policy nope")).is_err());
        assert!(parse_replay_args(&argv("--trace t.trc --spec nope")).is_err());
        assert!(parse_replay_args(&argv("--trace t.trc --frobnicate 1")).is_err());
    }

    #[test]
    fn parse_spec_args_resolves_presets_and_dumps() {
        let a = parse_spec_args(&argv("--preset paper --dump out.json")).unwrap();
        assert_eq!(a.spec.name, "paper");
        assert_eq!(a.dump.as_deref(), Some("out.json"));
        let d = parse_spec_args(&[]).unwrap();
        assert_eq!(d.spec.name, "scaled");
        assert!(d.dump.is_none());
        assert!(parse_spec_args(&argv("--preset warp-speed")).is_err());
        assert!(parse_spec_args(&argv("--frobnicate 1")).is_err());
    }

    #[test]
    fn parse_trace_info_args_wants_one_path() {
        assert_eq!(parse_trace_info_args(&argv("t.trc")).unwrap(), "t.trc");
        assert!(parse_trace_info_args(&argv("")).is_err());
        assert!(parse_trace_info_args(&argv("a b")).is_err());
        assert!(parse_trace_info_args(&argv("--trace")).is_err());
    }

    #[test]
    fn run_and_sweep_accept_a_trace_flag() {
        let a = parse_args(&argv("--trace t.trc")).unwrap();
        assert_eq!(a.trace.as_deref(), Some("t.trc"));
        let s = parse_sweep_args(&argv("--trace t.trc")).unwrap();
        assert_eq!(s.trace.as_deref(), Some("t.trc"));
    }

    #[test]
    fn run_json_flag_is_a_boolean() {
        assert!(!parse_args(&argv("--policy bh")).unwrap().json);
        let a = parse_args(&argv("--policy bh --json")).unwrap();
        assert!(a.json);
        assert_eq!(a.policy(), Policy::Bh);
    }

    #[test]
    fn parse_bench_kernel_args_reads_every_flag() {
        let a = parse_bench_kernel_args(&argv(
            "--label before --accesses 50000 --seed 9 --json --out bk.json",
        ))
        .unwrap();
        assert_eq!(a.label, "before");
        assert_eq!(a.accesses, 50_000);
        assert_eq!(a.seed, 9);
        assert!(a.json);
        assert_eq!(a.out, "bk.json");
    }

    #[test]
    fn parse_bench_kernel_args_defaults_and_rejects() {
        let d = parse_bench_kernel_args(&[]).unwrap();
        assert_eq!(d.label, "after");
        assert!(d.accesses >= 1000 && !d.json);
        assert_eq!(d.out, "BENCH_kernel.json");
        assert!(parse_bench_kernel_args(&argv("--label during")).is_err());
        assert!(parse_bench_kernel_args(&argv("--accesses 10")).is_err());
        assert!(parse_bench_kernel_args(&argv("--frobnicate 1")).is_err());
    }

    #[test]
    fn parse_sweep_args_defaults_are_sane() {
        let a = parse_sweep_args(&[]).unwrap();
        assert!(!a.policies.is_empty());
        assert!(!a.mixes.is_empty());
        assert!(a.seeds >= 1 && a.jobs >= 1);
        assert_eq!(a.spec.name, "scaled");
        assert!(a.json.is_none());
    }
}
