//! # hybrid-llc
//!
//! A from-scratch Rust reproduction of *Compression-Aware and
//! Performance-Efficient Insertion Policies for Long-Lasting Hybrid LLCs*
//! (HPCA 2023): a shared last-level cache that combines wear-free SRAM ways
//! with dense but endurance-limited NVM ways, steering incoming blocks by
//! their **compressed size** and **read/write-reuse** behaviour, tuning the
//! compression threshold at runtime with **Set Dueling**, and tolerating
//! byte-level hard faults through **BDI compression + block rearrangement**
//! over partially worn-out frames.
//!
//! The workspace is organized as one crate per subsystem; this facade
//! re-exports them under stable module names:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`compress`] | `hllc-compress` | modified BDI compressor (Table I) |
//! | [`ecc`] | `hllc-ecc` | Hamming SECDED, incl. the (527,516) frame code |
//! | [`nvm`] | `hllc-nvm` | endurance model, fault maps, wear leveling, rearrangement circuitry |
//! | [`sim`] | `hllc-sim` | private L1/L2 hierarchy, coherence, timing |
//! | [`llc`] | `hllc-core` | the hybrid LLC and every insertion policy |
//! | [`trace`] | `hllc-trace` | synthetic SPEC-like workloads and mixes |
//! | [`traceio`] | `hllc-traceio` | binary trace capture and replay |
//! | [`config`] | `hllc-config` | experiment specifications and presets |
//! | [`forecast`] | `hllc-forecast` | the aging forecast procedure |
//! | [`runner`] | `hllc-runner` | deterministic parallel experiment runner |
//! | [`bench`] | `hllc-bench` | figure/table harnesses and the kernel throughput bench |
//!
//! # Quickstart
//!
//! ```
//! use hybrid_llc::config::ExperimentSpec;
//! use hybrid_llc::llc::HybridLlc;
//! use hybrid_llc::sim::{Hierarchy, LlcPort};
//! use hybrid_llc::trace::{drive_accesses, mixes};
//!
//! // The scaled-down preset running the paper's CP_SD policy on mix 1,
//! // shrunk to 256 sets for an even faster demo.
//! let mut spec = ExperimentSpec::preset("scaled").unwrap();
//! spec.system.llc_sets = 256;
//! spec.validate().unwrap();
//! let mix = &mixes()[spec.mix_index()];
//! let llc = HybridLlc::new(&spec.llc_config());
//! let mut hierarchy = Hierarchy::new(&spec.system_config(), llc, mix.data_model(1));
//! let mut streams = mix.instantiate(spec.footprint_scale(), 1);
//! drive_accesses(&mut hierarchy, &mut streams, 50_000);
//! println!(
//!     "IPC {:.3}, LLC hit rate {:.3}, NVM bytes written {}",
//!     hierarchy.system_ipc(),
//!     hierarchy.llc().stats().hit_rate(),
//!     hierarchy.llc().stats().nvm_bytes_written,
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses that regenerate every table and figure of the paper.

pub use hllc_bench as bench;
pub use hllc_compress as compress;
pub use hllc_config as config;
pub use hllc_core as llc;
pub use hllc_ecc as ecc;
pub use hllc_forecast as forecast;
pub use hllc_nvm as nvm;
pub use hllc_runner as runner;
pub use hllc_sim as sim;
pub use hllc_trace as trace;
pub use hllc_traceio as traceio;

pub mod cli;
pub mod session;

// The types nearly every user touches, re-exported at the crate root.
pub use hllc_config::ExperimentSpec;
pub use hllc_core::{HybridConfig, HybridLlc, Policy};
pub use hllc_forecast::{Forecast, ForecastConfig, ForecastSeries};
pub use hllc_sim::{Hierarchy, LlcPort, SystemConfig};
pub use hllc_trace::mixes;
