//! One simulation session shared by `run`, `record`, `replay`, and
//! `compare`.
//!
//! All four commands execute the same recipe — the spec's system, its
//! warm-up fraction, statistics reset, then the measured window — and
//! differ only in where references and block sizes come from: a synthetic
//! mix, a tapped mix being recorded, or a trace file being replayed.
//! Keeping the recipe in one function is what makes record/replay round
//! trips byte-comparable: the round-trip tests diff [`stats_json`] output
//! of a live run against a replay of its recording.
//!
//! Recordings embed the resolved [`ExperimentSpec`] in the trace header
//! (format v2), so [`replay_session`] reconstructs the exact recorded
//! system; v1 traces fall back to the `scaled` preset at the recorded set
//! count, which is what every v1 recording was made with.

use serde_json::{json, Value};

use crate::cli::Args;
use crate::llc::{HybridLlc, Policy};
use crate::sim::{DataModel, Hierarchy, HierarchyStats, LlcPort, LlcStats};
use crate::trace::{drive_cycles, mixes, RefSource};
use hllc_config::ExperimentSpec;

use crate::traceio::{Recorder, ReplayStream, TraceContent, TraceData, TraceHeader};

/// The measurements of one session: the live `run` printout and the
/// record/replay comparison payload.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionStats {
    /// Arithmetic-mean IPC across the system's cores.
    pub ipc: f64,
    /// References executed in the measured window.
    pub accesses: u64,
    /// LLC statistics over the measured window.
    pub llc: LlcStats,
    /// Full hierarchy counters over the measured window — included so the
    /// round-trip tests compare every counter, not just the LLC's.
    pub hierarchy: HierarchyStats,
    /// Final Set Dueling CP_th (`None` for non-dueling policies).
    pub cp_th: Option<u8>,
    /// Set Dueling epochs `(completed, retained)` — retained is bounded by
    /// the fixed-size history ring (`None` for non-dueling policies).
    /// Reported in the human-readable summary only; [`stats_json`] is kept
    /// byte-stable for the record/replay comparison.
    pub dueling_epochs: Option<(u64, usize)>,
}

/// Runs the spec's recipe over arbitrary reference sources:
/// `spec.run.warmup_fraction * cycles` of warm-up, statistics reset, then
/// a `cycles`-long measured window.
pub fn run_session<S: RefSource, D: DataModel>(
    spec: &ExperimentSpec,
    policy: Policy,
    cycles: f64,
    streams: &mut [S],
    data: D,
) -> SessionStats {
    let llc = HybridLlc::new(&spec.llc_config_for(policy));
    let mut h = Hierarchy::new(&spec.system_config(), llc, data);
    let warmup = spec.run.warmup_fraction * cycles;
    drive_cycles(&mut h, streams, warmup);
    h.reset_stats();
    let accesses = drive_cycles(&mut h, streams, warmup + cycles);
    SessionStats {
        ipc: h.system_ipc(),
        accesses,
        llc: *h.llc().stats(),
        hierarchy: h.stats().clone(),
        cp_th: h.llc().dueling().map(|d| d.current_cp_th()),
        dueling_epochs: h
            .llc()
            .dueling()
            .map(|d| (d.epochs_total(), d.epochs_retained())),
    }
}

/// Runs `args` live from the synthetic mix on the first `cores` of the
/// spec's system.
pub fn live_session(args: &Args, cores: usize) -> SessionStats {
    let spec = &args.spec;
    let mix = &mixes()[spec.mix_index()];
    let mut streams = mix.instantiate(spec.footprint_scale(), spec.workload.seed);
    streams.truncate(cores.clamp(1, spec.system.cores));
    run_session(
        spec,
        args.policy(),
        spec.run.cycles,
        &mut streams,
        mix.data_model(spec.workload.seed),
    )
}

/// Runs `args` live while capturing every reference and block size into
/// `writer`'s sink. The tap never perturbs the run, so the returned stats
/// equal [`live_session`]'s for the same arguments.
pub fn record_session<W: std::io::Write>(
    args: &Args,
    cores: usize,
    writer: crate::traceio::TraceWriter<W>,
) -> Result<(SessionStats, W), String> {
    let spec = &args.spec;
    let cores = cores.clamp(1, spec.system.cores);
    let mix = &mixes()[spec.mix_index()];
    let recorder = Recorder::new(writer);
    let mut streams: Vec<_> = mix
        .instantiate(spec.footprint_scale(), spec.workload.seed)
        .into_iter()
        .take(cores)
        .map(|s| recorder.stream(s))
        .collect();
    let data = recorder.data(mix.data_model(spec.workload.seed));
    let stats = run_session(spec, args.policy(), spec.run.cycles, &mut streams, data);
    drop(streams);
    let mut sink = recorder.finish().map_err(|e| e.to_string())?;
    sink.flush()
        .map_err(|e| format!("flushing trace sink: {e}"))?;
    Ok((stats, sink))
}

/// The header a recording of `args` carries: the legacy summary fields
/// plus the full resolved spec as an embedded JSON blob (format v2).
pub fn recording_header(args: &Args, cores: usize) -> TraceHeader {
    let spec = &args.spec;
    let spec_text = serde_json::to_string(&spec.to_json()).expect("spec serialization cannot fail");
    TraceHeader {
        cores: cores.clamp(1, spec.system.cores) as u8,
        mix: spec.workload.mix as u8,
        seed: spec.workload.seed,
        sets: spec.system.llc_sets as u32,
        cycles: spec.run.cycles,
        policy: args.policy().name().to_string(),
        workload: mixes()[spec.mix_index()].name.to_string(),
        spec_json: Some(spec_text),
    }
}

/// The experiment a recording was made under: the embedded spec when the
/// header carries one (v2), else the `scaled` preset at the recorded set
/// count (every v1 recording's system).
pub fn trace_spec(content: &TraceContent) -> Result<ExperimentSpec, String> {
    match &content.header.spec_json {
        Some(text) => ExperimentSpec::from_str(text)
            .map_err(|e| format!("embedded spec in trace header: {e}")),
        None => {
            let mut spec = ExperimentSpec::preset("scaled").expect("builtin preset");
            spec.system.llc_sets = content.header.sets as usize;
            spec.workload.seed = content.header.seed;
            if (1..=10).contains(&usize::from(content.header.mix)) {
                spec.workload.mix = usize::from(content.header.mix);
            }
            spec.validate()
                .map_err(|e| format!("trace header implies an invalid system: {e}"))?;
            Ok(spec)
        }
    }
}

/// Replays a loaded trace under `policy` for `cycles` (the recording's own
/// budget when `None`) on the recorded system — see [`trace_spec`]. Under
/// the recorded policy and cycle budget the result is bit-identical to the
/// recorded live run.
pub fn replay_session(
    content: &TraceContent,
    policy: Policy,
    cycles: Option<f64>,
) -> Result<SessionStats, String> {
    let spec = trace_spec(content)?;
    replay_session_with(content, &spec, policy, cycles)
}

/// Replays a loaded trace on an explicitly requested system. The spec's
/// geometry must match the recording's — replaying 512-set references
/// onto a different set count or way split would silently measure a
/// system the trace was never recorded for.
pub fn replay_session_with(
    content: &TraceContent,
    spec: &ExperimentSpec,
    policy: Policy,
    cycles: Option<f64>,
) -> Result<SessionStats, String> {
    let recorded = trace_spec(content)?;
    let mut mismatches = Vec::new();
    for (field, want, got) in [
        ("llc_sets", recorded.system.llc_sets, spec.system.llc_sets),
        (
            "sram_ways",
            recorded.system.sram_ways,
            spec.system.sram_ways,
        ),
        ("nvm_ways", recorded.system.nvm_ways, spec.system.nvm_ways),
        ("cores", recorded.system.cores, spec.system.cores),
    ] {
        if want != got {
            mismatches.push(format!("{field}: spec {got} vs recording {want}"));
        }
    }
    if !mismatches.is_empty() {
        return Err(format!(
            "geometry mismatch between --spec and the recording: {}",
            mismatches.join(", ")
        ));
    }
    let cores = usize::from(content.header.cores);
    if cores > spec.system.cores {
        return Err(format!(
            "trace has {cores} cores but the system only has {}",
            spec.system.cores
        ));
    }
    let mut streams = ReplayStream::per_core(content);
    let data = TraceData::from_content(content);
    let cycles = cycles.unwrap_or(content.header.cycles);
    Ok(run_session(spec, policy, cycles, &mut streams, data))
}

/// Renders session stats as JSON with sorted keys — two sessions are
/// bit-identical iff their serialized [`stats_json`] values are equal,
/// which is how the CI round-trip check diffs a replay against its live
/// run.
pub fn stats_json(policy: &str, workload: &str, s: &SessionStats) -> Value {
    json!({
        "policy": policy,
        "workload": workload,
        "ipc": s.ipc,
        "accesses": s.accesses,
        "set_dueling_cp_th": s.cp_th,
        "llc": json!({
            "gets": s.llc.gets,
            "getx": s.llc.getx,
            "hits": s.llc.hits,
            "misses": s.llc.misses,
            "hit_rate": s.llc.hit_rate(),
            "sram_hits": s.llc.sram_hits,
            "nvm_hits": s.llc.nvm_hits,
            "sram_inserts": s.llc.sram_inserts,
            "nvm_inserts": s.llc.nvm_inserts,
            "migrations": s.llc.migrations,
            "nvm_bytes_written": s.llc.nvm_bytes_written,
            "writebacks": s.llc.writebacks,
            "bypasses": s.llc.bypasses,
            "write_stall_cycles": s.llc.write_stall_cycles,
        }),
        "hierarchy": json!({
            "instructions": s.hierarchy.instructions,
            "services": &s.hierarchy.services[..],
            "loads": s.hierarchy.loads,
            "stores": s.hierarchy.stores,
            "upgrades": s.hierarchy.upgrades,
            "remote_invalidations": s.hierarchy.remote_invalidations,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traceio::{TraceReader, TraceWriter};

    fn args() -> Args {
        Args::scaled(Policy::cp_sd(), 0, 40_000.0, 7)
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let a = args();
        let live = live_session(&a, 4);
        let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 4)).unwrap();
        let (recorded, _) = record_session(&a, 4, writer).unwrap();
        assert_eq!(live, recorded, "the recorder tap changed the simulation");
    }

    #[test]
    fn replay_reproduces_the_live_run() {
        let a = args();
        let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 2)).unwrap();
        let (live, bytes) = record_session(&a, 2, writer).unwrap();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        assert_eq!(content.header.cores, 2);
        let replayed = replay_session(&content, a.policy(), None).unwrap();
        assert_eq!(live, replayed, "replay diverged from the recorded run");
        let lhs = stats_json("cp_sd", "mix1", &live);
        let rhs = stats_json("cp_sd", "mix1", &replayed);
        assert_eq!(
            serde_json::to_string_pretty(&lhs).unwrap(),
            serde_json::to_string_pretty(&rhs).unwrap()
        );
    }

    #[test]
    fn recordings_embed_the_spec() {
        let a = args();
        let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 2)).unwrap();
        let (_, bytes) = record_session(&a, 2, writer).unwrap();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        let spec = trace_spec(&content).unwrap();
        assert_eq!(spec, a.spec, "embedded spec did not round trip");
    }

    #[test]
    fn replay_under_another_policy_still_runs() {
        let a = args();
        let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 4)).unwrap();
        let (_, bytes) = record_session(&a, 4, writer).unwrap();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        let other = replay_session(&content, Policy::Bh, None).unwrap();
        assert!(other.ipc > 0.0);
        assert!(other.llc.requests() > 0);
    }

    #[test]
    fn replay_with_mismatched_spec_names_the_geometry() {
        let a = args();
        let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 2)).unwrap();
        let (_, bytes) = record_session(&a, 2, writer).unwrap();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        let mut other = a.spec.clone();
        other.system.llc_sets = 1024;
        other.system.sram_ways = 3;
        other.system.nvm_ways = 13;
        let e = replay_session_with(&content, &other, Policy::Bh, None).unwrap_err();
        assert!(e.contains("geometry mismatch"), "{e}");
        assert!(e.contains("llc_sets: spec 1024 vs recording 512"), "{e}");
        assert!(e.contains("sram_ways"), "{e}");
        // A matching spec replays fine.
        assert!(replay_session_with(&content, &a.spec, Policy::Bh, None).is_ok());
    }
}
