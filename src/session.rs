//! One simulation session shared by `run`, `record`, `replay`, and
//! `compare`.
//!
//! All four commands execute the same recipe — scaled-down system, 20%
//! warm-up, statistics reset, then the measured window — and differ only in
//! where references and block sizes come from: a synthetic mix, a tapped
//! mix being recorded, or a trace file being replayed. Keeping the recipe
//! in one function is what makes record/replay round trips byte-comparable:
//! the round-trip tests diff [`stats_json`] output of a live run against a
//! replay of its recording.

use serde_json::{json, Value};

use crate::cli::Args;
use crate::llc::{HybridConfig, HybridLlc, Policy};
use crate::sim::{DataModel, Hierarchy, HierarchyStats, LlcPort, LlcStats, SystemConfig};
use crate::trace::{drive_cycles, mixes, RefSource};
use crate::traceio::{Recorder, ReplayStream, TraceContent, TraceData, TraceHeader};

/// The measurements of one session: the live `run` printout and the
/// record/replay comparison payload.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionStats {
    /// Arithmetic-mean IPC across the system's cores.
    pub ipc: f64,
    /// References executed in the measured window.
    pub accesses: u64,
    /// LLC statistics over the measured window.
    pub llc: LlcStats,
    /// Full hierarchy counters over the measured window — included so the
    /// round-trip tests compare every counter, not just the LLC's.
    pub hierarchy: HierarchyStats,
    /// Final Set Dueling CP_th (`None` for non-dueling policies).
    pub cp_th: Option<u8>,
    /// Set Dueling epochs `(completed, retained)` — retained is bounded by
    /// the fixed-size history ring (`None` for non-dueling policies).
    /// Reported in the human-readable summary only; [`stats_json`] is kept
    /// byte-stable for the record/replay comparison.
    pub dueling_epochs: Option<(u64, usize)>,
}

/// The paper's LLC configuration over `geometry`, shared by every
/// single-phase command.
pub fn llc_config(geometry: crate::sim::LlcGeometry, policy: Policy) -> HybridConfig {
    HybridConfig::from_geometry(geometry, policy)
        .with_endurance(1e8, 0.2)
        .with_epoch_cycles(100_000)
        .with_dueling_smoothing(0.6)
}

/// Runs the shared recipe over arbitrary reference sources: 20% of
/// `cycles` warm-up, statistics reset, then a `1.2 * cycles` measured
/// window.
pub fn run_session<S: RefSource, D: DataModel>(
    system: &SystemConfig,
    policy: Policy,
    cycles: f64,
    streams: &mut [S],
    data: D,
) -> SessionStats {
    let llc = HybridLlc::new(&llc_config(system.llc, policy));
    let mut h = Hierarchy::new(system, llc, data);
    drive_cycles(&mut h, streams, 0.2 * cycles);
    h.reset_stats();
    let accesses = drive_cycles(&mut h, streams, 1.2 * cycles);
    SessionStats {
        ipc: h.system_ipc(),
        accesses,
        llc: *h.llc().stats(),
        hierarchy: h.stats().clone(),
        cp_th: h.llc().dueling().map(|d| d.current_cp_th()),
        dueling_epochs: h
            .llc()
            .dueling()
            .map(|d| (d.epochs_total(), d.epochs_retained())),
    }
}

/// Runs `args` live from the synthetic mix on the first `cores` of the
/// scaled-down system.
pub fn live_session(args: &Args, cores: usize) -> SessionStats {
    let system = SystemConfig::scaled_down();
    let mix = &mixes()[args.mix];
    let mut streams = mix.instantiate(system.llc.sets as f64 / 4096.0, args.seed);
    streams.truncate(cores.clamp(1, system.cores));
    run_session(
        &system,
        args.policy,
        args.cycles,
        &mut streams,
        mix.data_model(args.seed),
    )
}

/// Runs `args` live while capturing every reference and block size into
/// `writer`'s sink. The tap never perturbs the run, so the returned stats
/// equal [`live_session`]'s for the same arguments.
pub fn record_session<W: std::io::Write>(
    args: &Args,
    cores: usize,
    writer: crate::traceio::TraceWriter<W>,
) -> Result<(SessionStats, W), String> {
    let system = SystemConfig::scaled_down();
    let cores = cores.clamp(1, system.cores);
    let mix = &mixes()[args.mix];
    let recorder = Recorder::new(writer);
    let mut streams: Vec<_> = mix
        .instantiate(system.llc.sets as f64 / 4096.0, args.seed)
        .into_iter()
        .take(cores)
        .map(|s| recorder.stream(s))
        .collect();
    let data = recorder.data(mix.data_model(args.seed));
    let stats = run_session(&system, args.policy, args.cycles, &mut streams, data);
    drop(streams);
    let mut sink = recorder.finish().map_err(|e| e.to_string())?;
    sink.flush()
        .map_err(|e| format!("flushing trace sink: {e}"))?;
    Ok((stats, sink))
}

/// The header a recording of `args` carries.
pub fn recording_header(args: &Args, cores: usize) -> TraceHeader {
    let system = SystemConfig::scaled_down();
    TraceHeader {
        cores: cores.clamp(1, system.cores) as u8,
        mix: (args.mix + 1) as u8,
        seed: args.seed,
        sets: system.llc.sets as u32,
        cycles: args.cycles,
        policy: args.policy.name().to_string(),
        workload: mixes()[args.mix].name.to_string(),
    }
}

/// Replays a loaded trace under `policy` for `cycles` (the recording's own
/// budget when `None`). Under the recorded policy and cycle budget the
/// result is bit-identical to the recorded live run.
pub fn replay_session(
    content: &TraceContent,
    policy: Policy,
    cycles: Option<f64>,
) -> Result<SessionStats, String> {
    let mut system = SystemConfig::scaled_down();
    let cores = usize::from(content.header.cores);
    if cores > system.cores {
        return Err(format!(
            "trace has {cores} cores but the system only has {}",
            system.cores
        ));
    }
    system.llc.sets = content.header.sets as usize;
    let mut streams = ReplayStream::per_core(content);
    let data = TraceData::from_content(content);
    let cycles = cycles.unwrap_or(content.header.cycles);
    Ok(run_session(&system, policy, cycles, &mut streams, data))
}

/// Renders session stats as JSON with sorted keys — two sessions are
/// bit-identical iff their serialized [`stats_json`] values are equal,
/// which is how the CI round-trip check diffs a replay against its live
/// run.
pub fn stats_json(policy: &str, workload: &str, s: &SessionStats) -> Value {
    json!({
        "policy": policy,
        "workload": workload,
        "ipc": s.ipc,
        "accesses": s.accesses,
        "set_dueling_cp_th": s.cp_th,
        "llc": json!({
            "gets": s.llc.gets,
            "getx": s.llc.getx,
            "hits": s.llc.hits,
            "misses": s.llc.misses,
            "hit_rate": s.llc.hit_rate(),
            "sram_hits": s.llc.sram_hits,
            "nvm_hits": s.llc.nvm_hits,
            "sram_inserts": s.llc.sram_inserts,
            "nvm_inserts": s.llc.nvm_inserts,
            "migrations": s.llc.migrations,
            "nvm_bytes_written": s.llc.nvm_bytes_written,
            "writebacks": s.llc.writebacks,
            "bypasses": s.llc.bypasses,
            "write_stall_cycles": s.llc.write_stall_cycles,
        }),
        "hierarchy": json!({
            "instructions": s.hierarchy.instructions,
            "services": &s.hierarchy.services[..],
            "loads": s.hierarchy.loads,
            "stores": s.hierarchy.stores,
            "upgrades": s.hierarchy.upgrades,
            "remote_invalidations": s.hierarchy.remote_invalidations,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traceio::{TraceReader, TraceWriter};

    fn args() -> Args {
        Args {
            policy: Policy::cp_sd(),
            mix: 0,
            cycles: 40_000.0,
            seed: 7,
            jobs: 1,
            trace: None,
            json: false,
        }
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let a = args();
        let live = live_session(&a, 4);
        let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 4)).unwrap();
        let (recorded, _) = record_session(&a, 4, writer).unwrap();
        assert_eq!(live, recorded, "the recorder tap changed the simulation");
    }

    #[test]
    fn replay_reproduces_the_live_run() {
        let a = args();
        let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 2)).unwrap();
        let (live, bytes) = record_session(&a, 2, writer).unwrap();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        assert_eq!(content.header.cores, 2);
        let replayed = replay_session(&content, a.policy, None).unwrap();
        assert_eq!(live, replayed, "replay diverged from the recorded run");
        let lhs = stats_json("cp_sd", "mix1", &live);
        let rhs = stats_json("cp_sd", "mix1", &replayed);
        assert_eq!(
            serde_json::to_string_pretty(&lhs).unwrap(),
            serde_json::to_string_pretty(&rhs).unwrap()
        );
    }

    #[test]
    fn replay_under_another_policy_still_runs() {
        let a = args();
        let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 4)).unwrap();
        let (_, bytes) = record_session(&a, 4, writer).unwrap();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        let other = replay_session(&content, Policy::Bh, None).unwrap();
        assert!(other.ipc > 0.0);
        assert!(other.llc.requests() > 0);
    }
}
