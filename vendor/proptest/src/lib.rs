//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of proptest's API the workspace's tests use:
//!
//! * the [`Strategy`] trait with `prop_map`;
//! * range, tuple, [`Just`], [`any`], `prop::collection::{vec, btree_set}`,
//!   and `prop::option::of` strategies;
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   plus `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   and `prop_assume!`.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's module path), there is **no
//! shrinking**, and failures report the case number instead of a minimized
//! input. `PROPTEST_CASES` is honoured for the default case count.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration: how many random cases each property sees.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable via the `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving strategy sampling.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for a named test; the same name always yields the
    /// same input stream, so failures reproduce without a persistence file.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values of one type.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.sample(rng)))
    }
}

/// A type-erased strategy (also the branch representation of `prop_oneof!`).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed branches; built by `prop_oneof!`.
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            branches: self.branches.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union over `branches`.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.branches.len());
        self.branches[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_gen!(u8, u32, u64, usize, i64, bool, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A size specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Strategy combinator modules, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use std::collections::BTreeSet;

        /// A strategy for `Vec`s with lengths in `size`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of values from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A strategy for `BTreeSet`s with target sizes in `size`.
        #[derive(Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates sets of values from `element`. If the element domain is
        /// too small the set may come out below the target size.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut out = BTreeSet::new();
                // Bounded retries so tiny domains terminate below target.
                for _ in 0..target.saturating_mul(8).max(8) {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.element.sample(rng));
                }
                out
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// A strategy for `Option<T>`; built by [`of`].
        #[derive(Clone)]
        pub struct OptionStrategy<S>(S);

        /// Generates `Some` from `inner` about three quarters of the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                if rng.gen_bool(0.75) {
                    Some(self.0.sample(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Why a property-test case did not pass: a failed assertion, or a filtered
/// assumption (which merely skips the case).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count as a failure.
    Reject(String),
    /// A `prop_assert*!` failed; the enclosing test panics with the reason.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// What a property-test case body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Boxes a strategy branch for `prop_oneof!` (implementation detail).
pub fn __branch<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    s.boxed()
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::__branch($strategy)),+])
    };
}

/// Asserts a property-test condition, failing the case via
/// [`TestCaseError`] (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: `{:?} == {:?}`", format!($($fmt)*), __l, __r
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?} != {:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}: `{:?} != {:?}`", format!($($fmt)*), __l, __r
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Expansion worker for [`proptest!`] (implementation detail).
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                    let __result: $crate::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("property {} failed at case {}: {}", stringify!($name), __case, __msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.5).sample(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::TestRng::for_test("oneof");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn vec_respects_size_spec() {
        let s = prop::collection::vec(0u8..10, 2..5);
        let mut rng = crate::TestRng::for_test("vec");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = prop::collection::vec(any::<bool>(), 7usize);
        assert_eq!(exact.sample(&mut rng).len(), 7);
    }

    #[test]
    fn btree_set_reaches_target_in_large_domains() {
        let s = prop::collection::btree_set(0usize..1000, 4..=4);
        let mut rng = crate::TestRng::for_test("btree");
        assert_eq!(s.sample(&mut rng).len(), 4);
    }

    #[test]
    fn option_of_produces_both_variants() {
        let s = prop::option::of(0u8..5);
        let mut rng = crate::TestRng::for_test("opt");
        let draws: Vec<_> = (0..200).map(|_| s.sample(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, assume, and assertions together.
        #[test]
        fn macro_round_trip(a in 0u64..50, b in any::<bool>()) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert_ne!(a, 13, "assume filtered {}", a);
            if b {
                prop_assert_eq!(a, a);
            }
        }
    }
}
