//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the `Criterion` / `Bencher` / `criterion_group!` /
//! `criterion_main!` surface the microbenchmarks use. It times each
//! benchmark with `std::time::Instant` over a fixed measurement window and
//! prints a mean ns/iter — good enough for relative comparisons, with none
//! of criterion's statistics.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Strategy for batched timing; only a sizing hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: large batches.
    SmallInput,
    /// Large per-iteration inputs: one input per measurement.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times a single benchmark routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly for the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..16 {
            std_black_box(routine());
        }
        let window = measurement_window();
        let start = Instant::now();
        while start.elapsed() < window {
            std_black_box(routine());
            self.iters += 1;
        }
        self.total = start.elapsed();
    }

    /// Runs `routine` over fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let window = measurement_window();
        let mut measured = Duration::ZERO;
        while measured < window {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            measured += start.elapsed();
            self.iters += 1;
        }
        self.total = measured;
    }
}

fn measurement_window() -> Duration {
    let ms = std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Times `f` and prints a mean ns/iter line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{id:<40} (no iterations)");
        } else {
            let ns = b.total.as_nanos() as f64 / b.iters as f64;
            println!("{id:<40} {ns:>14.1} ns/iter ({} iters)", b.iters);
        }
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_counts_iterations() {
        std::env::set_var("CRITERION_MEASUREMENT_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
