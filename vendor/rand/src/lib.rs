//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand`'s 0.8 API it actually uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`Rng`] extension methods `gen`, `gen_range`,
//! `gen_bool`, and `fill`. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for simulation workloads and, crucially,
//! fully deterministic for a given seed on every platform.
//!
//! This is *not* a cryptographic RNG and does not reproduce upstream `rand`'s
//! exact output streams; the workspace's tests only rely on seed-determinism
//! and distribution shape, never on specific draw values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `word % span`, dodging the 128-bit division intrinsic when `span` fits
/// in a `u64` — which it does for every range narrower than the full
/// inclusive 64-bit domain. Bit-identical to the wide modulo.
#[inline]
fn reduce(word: u64, span: u128) -> u128 {
    if let Ok(span64) = u64::try_from(span) {
        u128::from(word % span64)
    } else {
        u128::from(word) % span
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::draw(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard the half-open contract against floating-point round-up.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::draw(rng)
    }
}

/// Destinations [`Rng::fill`] can write into.
pub trait Fill {
    /// Fills `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level drawing methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::draw(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// The SplitMix64 step, also used by the workspace for per-job seed streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0u8..=4);
            assert!(x <= 4);
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "gen_bool(0.3) gave {frac}");
    }

    #[test]
    fn fill_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_rng() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(takes_dyn(&mut rng) < 100);
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
