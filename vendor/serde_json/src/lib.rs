//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of `serde_json` the workspace uses: the [`Value`]
//! tree, the [`json!`] macro (flat `{"key": expr, ..}` / `[expr, ..]` forms),
//! and [`to_string`] / [`to_string_pretty`].
//!
//! Serialization is **deterministic by construction**: objects store their
//! members in a `BTreeMap`, so keys always serialize in sorted order and two
//! structurally equal values produce byte-identical text. The experiment
//! runner's N-thread ≡ 1-thread report guarantee rests on this property.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// An unsigned integer.
    U64(u64),
    /// A negative (or any signed) integer.
    I64(i64),
    /// A finite double. Non-finite values serialize as `null`.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; `BTreeMap` keeps key order sorted and serialization
    /// deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                write_seq(out, pretty, indent, '[', ']', items.iter(), |v, o, i| {
                    v.write(o, pretty, i);
                })
            }
            Value::Object(members) => {
                write_seq(
                    out,
                    pretty,
                    indent,
                    '{',
                    '}',
                    members.iter(),
                    |(k, v), o, i| {
                        write_escaped(k, o);
                        o.push(':');
                        if pretty {
                            o.push(' ');
                        }
                        v.write(o, pretty, i);
                    },
                );
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    pretty: bool,
    indent: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, &mut String, usize),
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(indent + 1));
        }
        write_item(item, out, indent + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if pretty {
        out.push('\n');
        out.push_str(&"  ".repeat(indent));
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization error (this minimal implementation never fails).
#[derive(Clone, Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, false, 0);
    Ok(out)
}

/// Serializes with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, true, 0);
    Ok(out)
}

/// Conversion into a [`Value`]; the `json!` macro calls this on every
/// member expression, always through a reference so values are not moved.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

/// Converts any [`ToJson`] reference to a [`Value`].
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U64(u64::from(*self)))
            }
        }
    )*};
}

impl_to_json_unsigned!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::Number(Number::U64(*self as u64))
    }
}

macro_rules! impl_to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::I64(i64::from(*self)))
            }
        }
    )*};
}

impl_to_json_signed!(i8, i16, i32, i64);

impl ToJson for isize {
    fn to_json(&self) -> Value {
        Value::Number(Number::I64(*self as i64))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Builds a [`Value`] from flat JSON-ish syntax: `json!({"k": expr, ..})`,
/// `json!([expr, ..])`, `json!(null)`, or `json!(expr)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut members = ::std::collections::BTreeMap::new();
        $( members.insert(($key).to_string(), $crate::to_value(&$value)); )*
        $crate::Value::Object(members)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$value)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Parse error with a byte offset into the input.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// What was expected or found.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`] (strict JSON, no comments or
/// trailing garbage). Integers without fraction/exponent parse as
/// `Number::U64`/`I64`, everything else as `F64` — matching what
/// [`to_string`] emits, so parse∘serialize round-trips structurally.
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // output (which only escapes controls).
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| ParseError {
                message: format!("bad number '{text}'"),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_keys_serialize_sorted() {
        let v = json!({ "zulu": 1, "alpha": 2, "mike": 3 });
        assert_eq!(to_string(&v).unwrap(), r#"{"alpha":2,"mike":3,"zulu":1}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "a": 1, "b": vec![json!(2), json!(3)] });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}");
    }

    #[test]
    fn conversions_cover_common_types() {
        let label = String::from("x");
        let opt_none: Option<f64> = None;
        let v = json!({
            "str": "lit",
            "string": label,
            "float": 1.5,
            "neg": -4i64,
            "count": 7usize,
            "flag": true,
            "missing": opt_none,
            "some": Some(2u32),
        });
        assert_eq!(v.get("str").and_then(Value::as_str), Some("lit"));
        assert_eq!(v.get("string").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("float").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-4.0));
        assert_eq!(v.get("count").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("missing"), Some(&Value::Null));
        assert_eq!(v.get("some").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn values_do_not_move_out_of_references() {
        struct Curve {
            label: String,
        }
        let c = &Curve { label: "bh".into() };
        // Field access through a reference must borrow, like serde_json's json!.
        let v = json!({ "label": c.label });
        assert_eq!(v.get("label").and_then(Value::as_str), Some("bh"));
        assert_eq!(c.label, "bh");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        let v = json!("a\"b\\c\nd\u{1}");
        assert_eq!(to_string(&v).unwrap(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&json!(f64::INFINITY)).unwrap(), "null");
    }

    #[test]
    fn structural_equality_means_byte_equality() {
        let a = json!({ "x": 0.1 + 0.2, "y": vec![json!(1u64)] });
        let b = json!({ "y": vec![json!(1u64)], "x": 0.1 + 0.2 });
        assert_eq!(a, b);
        assert_eq!(to_string_pretty(&a).unwrap(), to_string_pretty(&b).unwrap());
    }

    #[test]
    fn parse_round_trips_own_output() {
        let v = json!({
            "label": "kernel",
            "count": 42u64,
            "neg": -7i64,
            "rate": 1.5,
            "flag": true,
            "none": json!(null),
            "seq": vec![json!(1u64), json!("two"), json!(3.25)],
            "nested": json!({ "esc": "a\"b\\c\nd\u{1}" }),
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v, "round trip of {text}");
        }
    }

    #[test]
    fn parse_accepts_plain_json() {
        let v = from_str(" { \"a\" : [ 1 , 2.5e1 , -3 ] , \"b\" : { } } ").unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0], Value::Number(Number::U64(1)));
        assert_eq!(a[1].as_f64(), Some(25.0));
        assert_eq!(a[2], Value::Number(Number::I64(-3)));
        assert_eq!(v.get("b"), Some(&Value::Object(Default::default())));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"open",
            "{\"a\":1} x",
            "nul",
        ] {
            assert!(from_str(bad).is_err(), "'{bad}' parsed");
        }
    }

    #[test]
    fn parse_preserves_integer_kinds() {
        assert_eq!(from_str("9007199254740993").unwrap().as_f64(), {
            // u64 path: exact, no f64 rounding of 2^53 + 1.
            Some(9007199254740993u64 as f64)
        });
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::Number(Number::U64(u64::MAX))
        );
    }
}
