//! Criterion microbenchmarks of the hardware-modelled components: BDI
//! compression/decompression, SECDED encode/decode/correct, the block
//! rearrangement circuitry, and raw hybrid-LLC operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hllc_compress::{Block, Compressor};
use hllc_core::{HybridConfig, HybridLlc, Policy};
use hllc_ecc::{BitVec, FrameCodec};
use hllc_nvm::{rearrange, FaultMap};
use hllc_sim::{ConstSizeData, LlcPort, LlcReq, ReuseClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_blocks() -> Vec<Block> {
    let mut rng = StdRng::seed_from_u64(17);
    let mut blocks = vec![Block::zeroed(), Block::from_u64_lanes([42; 8])];
    // Clustered (B8Δ-compressible) and incompressible payloads.
    for _ in 0..14 {
        let base: u64 = rng.gen();
        let lanes: [u64; 8] = core::array::from_fn(|_| base.wrapping_add(rng.gen_range(0..1000)));
        blocks.push(Block::from_u64_lanes(lanes));
        let mut raw = [0u8; 64];
        rng.fill(&mut raw[..]);
        blocks.push(Block::new(raw));
    }
    blocks
}

fn bench_bdi(c: &mut Criterion) {
    let compressor = Compressor::new();
    let blocks = sample_blocks();
    c.bench_function("bdi/compress_64B", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % blocks.len();
            std::hint::black_box(compressor.compress(&blocks[i]))
        })
    });
    let compressed: Vec<_> = blocks.iter().map(|b| compressor.compress(b)).collect();
    c.bench_function("bdi/decompress_64B", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % compressed.len();
            std::hint::black_box(compressed[i].decompress())
        })
    });
    c.bench_function("bdi/size_only", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % blocks.len();
            std::hint::black_box(compressor.compressed_size(&blocks[i]))
        })
    });
}

fn bench_secded(c: &mut Criterion) {
    let codec = FrameCodec::new();
    let data = [0xA5u8; 64];
    c.bench_function("secded/encode_527_516", |b| {
        b.iter(|| std::hint::black_box(codec.encode(0x3, &data)))
    });
    let word = codec.encode(0x3, &data);
    c.bench_function("secded/decode_clean", |b| {
        b.iter(|| std::hint::black_box(codec.decode(&word)))
    });
    let mut corrupted: BitVec = word.clone();
    corrupted.flip(123);
    c.bench_function("secded/decode_correct_one", |b| {
        b.iter(|| std::hint::black_box(codec.decode(&corrupted)))
    });
}

fn bench_rearrange(c: &mut Criterion) {
    let fm = FaultMap::from_faulty([3, 17, 40, 61]);
    let ecb: Vec<u8> = (0..59).map(|i| i as u8).collect();
    c.bench_function("rearrange/scatter_59B", |b| {
        b.iter(|| std::hint::black_box(rearrange::scatter(&ecb, &fm, 11)))
    });
    let (recb, _) = rearrange::scatter(&ecb, &fm, 11);
    c.bench_function("rearrange/gather_59B", |b| {
        b.iter(|| std::hint::black_box(rearrange::gather(&recb, &fm, 11, ecb.len())))
    });
}

fn bench_llc(c: &mut Criterion) {
    let cfg = HybridConfig::new(1024, 4, 12, Policy::cp_sd());
    c.bench_function("llc/insert_request_cycle", |b| {
        b.iter_batched(
            || (HybridLlc::new(&cfg), ConstSizeData::new(22)),
            |(mut llc, mut data)| {
                for blk in 0..4096u64 {
                    llc.insert(blk, blk, false, ReuseClass::None, &mut data);
                    let _ = llc.request(blk, blk ^ 0x55, LlcReq::GetS);
                }
                llc
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_bdi, bench_secded, bench_rearrange, bench_llc);
criterion_main!(benches);
