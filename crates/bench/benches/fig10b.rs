//! Figure 10b — SRAM/NVM proportion sensitivity: 3 SRAM + 13 NVM ways.
//!
//! The paper reports that shrinking the SRAM part to 3 ways costs LHybrid
//! 2.2 % performance but gains it 14 % lifetime (fewer loop-block
//! detections), while the CP_SD family loses ~2.1–2.6 % performance for a
//! 3.4–7.4 % lifetime gain.

use hllc_bench::exp::{headline_policies, run_forecast_experiment, ExpOpts};
use hllc_bench::report::banner;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig10b",
        "3-way SRAM / 13-way NVM sensitivity",
        "Paper Fig. 10b: slight performance drop and lifetime gain for all \
         NVM-aware policies compared to the 4/12 split.",
    );
    let configs: Vec<_> = headline_policies()
        .into_iter()
        .map(|(label, p)| {
            let mut cfg = opts.forecast_config(p);
            cfg.system = cfg.system.with_way_split(3, 13);
            cfg.llc.sram_ways = 3;
            cfg.llc.nvm_ways = 13;
            (label, cfg)
        })
        .collect();
    run_forecast_experiment("fig10b", &configs, &opts, true);
}
