//! Figure 1 / Figure 10a — Performance vs. lifetime of the hybrid LLC.
//!
//! Reproduces the paper's headline experiment: normalized IPC over time (as
//! the NVM part wears out) for BH, BH_CP, LHybrid, TAP, CP_SD, CP_SD_Th4,
//! CP_SD_Th8, bracketed by the 16-way SRAM upper bound and the 4-way SRAM
//! lower bound, until the NVM part loses 50 % of its capacity.

use hllc_bench::exp::{headline_policies, run_forecast_experiment, ExpOpts};
use hllc_bench::report::banner;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig10a",
        "Performance vs lifetime (also covers Figure 1)",
        "Paper: BH dies at ~2.7 months; BH_CP 4.8x, CP_SD 16.8x, LHybrid 19.7x, \
         TAP 39x BH lifetime; CP_SD keeps ~96.7% of BH performance, LHybrid 88.8%, TAP ~85%.",
    );
    let configs: Vec<_> = headline_policies()
        .into_iter()
        .map(|(label, p)| (label, opts.forecast_config(p)))
        .collect();
    run_forecast_experiment("fig10a", &configs, &opts, true);
}
