//! Figure 2 — Block classification by compression ratio per application.
//!
//! For each of the 20 synthetic SPEC-like applications, synthesizes a block
//! population, runs it through the real BDI compressor, and reports the
//! HCR / LCR / incompressible split. The paper's average is 49 % HCR,
//! 29 % LCR, 22 % incompressible, with GemsFDTD/zeusmp almost fully
//! compressible and xz17/milc fully incompressible.

use hllc_bench::report::{banner, save_json, Table};
use hllc_compress::{BlockClass, CompressionStats};
use hllc_trace::spec_apps;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "fig2",
        "Per-application block compressibility",
        "Paper Fig. 2: on average 78% of blocks compressible (49% HCR + 29% LCR).",
    );
    let blocks_per_app = 20_000u64;
    let mut table = Table::new([
        "application",
        "HCR %",
        "LCR %",
        "incompressible %",
        "mean CR",
    ]);
    let mut rows_json = Vec::new();
    let mut totals = (0.0, 0.0, 0.0);

    for app in spec_apps() {
        let mut stats = CompressionStats::new();
        let mut rng = StdRng::seed_from_u64(7);
        for b in 0..blocks_per_app {
            let class = app.profile.sample_class(b);
            let block = hllc_trace::Profile::synthesize(class, &mut rng);
            stats.observe(&block);
        }
        let c = stats.class_counts();
        let (hcr, lcr, inc) = (
            100.0 * c.fraction(BlockClass::Hcr),
            100.0 * c.fraction(BlockClass::Lcr),
            100.0 * c.fraction(BlockClass::Incompressible),
        );
        totals.0 += hcr;
        totals.1 += lcr;
        totals.2 += inc;
        table.row([
            app.name.to_string(),
            format!("{hcr:5.1}"),
            format!("{lcr:5.1}"),
            format!("{inc:5.1}"),
            format!("{:4.2}", stats.mean_compression_ratio()),
        ]);
        rows_json.push(serde_json::json!({
            "app": app.name, "hcr": hcr, "lcr": lcr, "incompressible": inc,
            "mean_compression_ratio": stats.mean_compression_ratio(),
        }));
    }
    let n = spec_apps().len() as f64;
    table.row([
        "AVERAGE".to_string(),
        format!("{:5.1}", totals.0 / n),
        format!("{:5.1}", totals.1 / n),
        format!("{:5.1}", totals.2 / n),
        String::new(),
    ]);
    table.print();
    println!("\nPaper average: 49.0 HCR / 29.0 LCR / 22.0 incompressible (78% compressible).");
    save_json(
        "fig2",
        &serde_json::json!({ "experiment": "fig2", "apps": rows_json }),
    );
}
