//! Figure 9 — Trading hits for NVM writes with the rule-based mechanism:
//! CP_SD_Th for Th ∈ {0, 2, 4, 6, 8} % (Tw = 5 %) at 100/90/80 % NVM
//! capacity, both metrics normalized to BH at 100 % capacity.
//!
//! The paper: raising Th always lowers both hits and bytes written, but the
//! bytes drop far more — e.g. at 80 % capacity, Th 0 → 8 loses 1.0 % of
//! hits for a 40.7 % write reduction.

use hllc_bench::exp::{measure_avg, ExpOpts};
use hllc_bench::report::{banner, save_json, Table};
use hllc_core::Policy;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig9",
        "Hits vs NVM bytes for Th in {0,2,4,6,8}%, capacities {100,90,80}%",
        "Paper Fig. 9: hits barely move with Th while bytes written drop \
         steeply, more so at lower capacity.",
    );
    let (bh_hits, bh_bytes, _) = measure_avg(Policy::Bh, 1.0, &opts);

    let mut table = Table::new(["capacity", "Th %", "norm hits", "norm NVM bytes"]);
    let mut json_rows = Vec::new();
    for capacity in [1.0, 0.9, 0.8] {
        for th in [0.0, 2.0, 4.0, 6.0, 8.0] {
            let (hits, bytes, _) = measure_avg(Policy::cp_sd_th(th), capacity, &opts);
            table.row([
                format!("{:3.0}%", capacity * 100.0),
                format!("{th:1.0}"),
                format!("{:.3}", hits / bh_hits),
                format!("{:.3}", bytes / bh_bytes),
            ]);
            json_rows.push(serde_json::json!({
                "capacity": capacity, "th": th,
                "hits": hits / bh_hits, "bytes": bytes / bh_bytes,
            }));
        }
    }
    table.print();
    save_json(
        "fig9",
        &serde_json::json!({ "experiment": "fig9", "rows": json_rows }),
    );
}
