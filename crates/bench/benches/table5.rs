//! Table V — The ten multi-programmed SPEC CPU 2006/2017 mixes, with the
//! synthetic model parameters behind each application.

use hllc_bench::report::{banner, save_json, Table};
use hllc_trace::mixes;

fn main() {
    banner(
        "table5",
        "Multi-programmed workload mixes",
        "Paper Table V; synthetic application models per DESIGN.md substitution #1.",
    );
    let mut table = Table::new(["mix", "core 0", "core 1", "core 2", "core 3"]);
    let mut json_rows = Vec::new();
    for m in mixes() {
        table.row([
            m.name.to_string(),
            m.apps[0].name.to_string(),
            m.apps[1].name.to_string(),
            m.apps[2].name.to_string(),
            m.apps[3].name.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "mix": m.name,
            "apps": m.apps.iter().map(|a| a.name).collect::<Vec<_>>(),
        }));
    }
    table.print();

    println!("\nApplication model parameters:");
    let mut apps = Table::new(["application", "footprint MB", "store share", "mean gap"]);
    for a in hllc_trace::spec_apps() {
        apps.row([
            a.name.to_string(),
            format!(
                "{:.1}",
                a.footprint_blocks as f64 * 64.0 / (1024.0 * 1024.0)
            ),
            format!("{:.2}", a.write_fraction * a.writable_fraction),
            format!("{:.0}", a.mean_inst_gap),
        ]);
    }
    apps.print();
    save_json(
        "table5",
        &serde_json::json!({ "experiment": "table5", "rows": json_rows }),
    );
}
