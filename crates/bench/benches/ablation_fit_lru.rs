//! Ablation — Fit-LRU vs plain LRU replacement in the NVM part.
//!
//! Fit-LRU (§III-B1, [18]) chooses the LRU victim *among the frames the
//! incoming compressed block fits in*. A fault-oblivious plain LRU wastes
//! partially-disabled frames: when the LRU frame cannot hold the block, the
//! insertion falls back to SRAM. The difference only appears once frames
//! start losing bytes — so the sweep runs at degraded capacities.

use hllc_bench::exp::{degraded_array, ExpOpts};
use hllc_bench::report::{banner, save_json, Table};
use hllc_core::Policy;
use hllc_forecast::run_phase;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "ablation_fit_lru",
        "Fit-LRU vs plain LRU in the NVM part (CP_SD)",
        "DESIGN.md §6 ablation; the paper adopts Fit-LRU from [18].",
    );
    let mut table = Table::new([
        "capacity",
        "variant",
        "hit rate",
        "NVM inserts",
        "bypass+SRAM fallbacks",
    ]);
    let mut json_rows = Vec::new();
    for capacity in [1.0, 0.9, 0.8, 0.7, 0.6] {
        for fit in [true, false] {
            let mut hits = 0.0;
            let mut reqs = 0.0;
            let mut nvm_inserts = 0u64;
            let mut fallbacks = 0u64;
            for (i, mix) in opts.mix_list().iter().enumerate() {
                let mut setup = opts.phase_setup(Policy::cp_sd());
                if !fit {
                    setup.llc = setup.llc.without_fit_lru();
                }
                let array = degraded_array(&setup.llc, capacity, opts.seed + i as u64);
                let (m, _) = run_phase(&setup, mix, array, opts.seed + i as u64);
                hits += m.llc.hits as f64;
                reqs += m.llc.requests() as f64;
                nvm_inserts += m.llc.nvm_inserts;
                fallbacks += m.llc.bypasses + m.llc.sram_inserts;
            }
            let variant = if fit { "Fit-LRU" } else { "plain LRU" };
            table.row([
                format!("{:3.0}%", capacity * 100.0),
                variant.to_string(),
                format!("{:.3}", hits / reqs),
                format!("{nvm_inserts}"),
                format!("{fallbacks}"),
            ]);
            json_rows.push(serde_json::json!({
                "capacity": capacity, "fit_lru": fit,
                "hit_rate": hits / reqs, "nvm_inserts": nvm_inserts,
            }));
        }
    }
    table.print();
    println!("\nExpectation: at degraded capacity, Fit-LRU sustains more NVM");
    println!("insertions and a higher hit rate than fault-oblivious plain LRU.");
    save_json(
        "ablation_fit_lru",
        &serde_json::json!({ "experiment": "ablation_fit_lru", "rows": json_rows }),
    );
}
