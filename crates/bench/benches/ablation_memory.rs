//! Extension — memory-model sensitivity: flat-latency memory vs the banked
//! open-page DRAM channel.
//!
//! The paper charges gem5's DDR4 model; this reproduction defaults to a
//! flat 180-cycle latency (calibrated) and offers a banked open-page model.
//! The policy orderings must survive the swap — row-buffer locality mostly
//! rewards the streaming applications equally under every policy.

use hllc_bench::exp::ExpOpts;
use hllc_bench::report::{banner, save_json, Table};
use hllc_core::Policy;
use hllc_forecast::run_phase;
use hllc_sim::DramConfig;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "ablation_memory",
        "Flat memory latency vs banked open-page DRAM",
        "Extension experiment; DESIGN.md substitution #2 notes the paper \
         uses gem5's detailed DDR4 model.",
    );
    let mut table = Table::new(["memory model", "policy", "IPC", "hit rate"]);
    let mut json_rows = Vec::new();
    let mut orderings: Vec<(bool, f64, f64)> = Vec::new();
    for dram in [false, true] {
        let mut per_policy = Vec::new();
        for policy in [Policy::Bh, Policy::cp_sd(), Policy::LHybrid] {
            let mut ipc = 0.0;
            let mut hits = 0.0;
            let mut reqs = 0.0;
            for (i, mix) in opts.mix_list().iter().enumerate() {
                let mut setup = opts.phase_setup(policy);
                if dram {
                    setup.system = setup.system.with_dram(DramConfig::ddr4_single_channel());
                }
                let (m, _) = run_phase(&setup, mix, None, opts.seed + i as u64);
                ipc += m.ipc;
                hits += m.llc.hits as f64;
                reqs += m.llc.requests() as f64;
            }
            let ipc = ipc / opts.mixes as f64;
            per_policy.push(ipc);
            table.row([
                if dram {
                    "open-page DRAM"
                } else {
                    "flat 180cyc"
                }
                .to_string(),
                policy.name(),
                format!("{ipc:.4}"),
                format!("{:.3}", hits / reqs),
            ]);
            json_rows.push(serde_json::json!({
                "dram": dram, "policy": policy.name(), "ipc": ipc,
            }));
        }
        orderings.push((
            dram,
            per_policy[1] / per_policy[0],
            per_policy[2] / per_policy[0],
        ));
    }
    table.print();
    println!("\nnormalized (CP_SD/BH, LHybrid/BH):");
    for (dram, sd, lh) in orderings {
        println!(
            "  {}: {sd:.3}, {lh:.3}",
            if dram {
                "open-page DRAM"
            } else {
                "flat latency  "
            }
        );
    }
    save_json(
        "ablation_memory",
        &serde_json::json!({ "experiment": "ablation_memory", "rows": json_rows }),
    );
}
