//! Figure 11c — Equalizing storage cost: the byte-level fault map costs
//! 12.3 % of the NVM data array, so CP_SD is re-evaluated with 11 and 10
//! NVM ways (+1.8 % / −5.2 % total storage vs LHybrid's 12-way
//! frame-disabling design).
//!
//! The paper's claim: even with 10 NVM ways, CP_SD_Th8 beats LHybrid's
//! initial IPC by 6.4 % and keeps a higher IPC over the cache's whole life.

use hllc_bench::exp::{run_forecast_experiment, ExpOpts};
use hllc_bench::report::banner;
use hllc_core::Policy;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig11c",
        "Equal-storage comparison: CP_SD family with 12/11/10 NVM ways vs LHybrid",
        "Paper Fig. 11c: all CP_SD configurations keep significantly higher \
         normalized IPC than LHybrid at matched (or lower) storage cost.",
    );
    let mut configs = Vec::new();
    configs.push((
        "LHybrid (12w NVM)".to_string(),
        opts.forecast_config(Policy::LHybrid),
    ));
    for (name, policy) in [
        ("CP_SD", Policy::cp_sd()),
        ("CP_SD_Th4", Policy::cp_sd_th(4.0)),
        ("CP_SD_Th8", Policy::cp_sd_th(8.0)),
    ] {
        for nvm_ways in [12usize, 11, 10] {
            let mut cfg = opts.forecast_config(policy);
            cfg.system = cfg.system.with_way_split(4, nvm_ways);
            cfg.llc.nvm_ways = nvm_ways;
            configs.push((format!("{name} ({nvm_ways}w NVM)"), cfg));
        }
    }
    run_forecast_experiment("fig11c", &configs, &opts, false);
}
