//! Figure 10c — Endurance-variability sensitivity: cv = 0.25.
//!
//! A larger manufacturing coefficient of variation makes the weakest
//! bitcells fail much earlier. The paper shows frame-disabling policies
//! (BH: 2.7 → 1.6 months, LHybrid: 53 → 30 months) suffering drastically,
//! while byte-disabling policies barely move (CP_SD: 45 → 42 months).

use hllc_bench::exp::{headline_policies, run_forecast_experiment, ExpOpts};
use hllc_bench::report::banner;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig10c",
        "Endurance coefficient of variation raised to 0.25",
        "Paper Fig. 10c: frame-disabling lifetimes collapse, byte-disabling \
         lifetimes barely move; CP_SD family gains 1.4x-2x lifetime vs LHybrid.",
    );
    let configs: Vec<_> = headline_policies()
        .into_iter()
        .map(|(label, p)| {
            let mut cfg = opts.forecast_config(p);
            let mean = cfg.llc.endurance.mean();
            cfg.llc = cfg.llc.with_endurance(mean, 0.25);
            (label, cfg)
        })
        .collect();
    run_forecast_experiment("fig10c", &configs, &opts, true);
}
