//! Table IV — System specification in force for the experiments.

use hllc_bench::exp::{system_for, ExpOpts};
use hllc_bench::report::{banner, save_json, Table};

fn main() {
    let opts = ExpOpts::from_env();
    let cfg = system_for(&opts);
    banner(
        "table4",
        "System specification",
        "Paper Table IV (scaled-down proportions unless HLLC_FULL=1).",
    );
    let t = &cfg.timing;
    let mut table = Table::new(["parameter", "value"]);
    table.row([
        "cores",
        &format!("{} out-of-order @ {} GHz", cfg.cores, t.freq_ghz),
    ]);
    table.row([
        "L1D",
        &format!(
            "{} KB, {}-way, 64 B blocks",
            cfg.l1_sets * cfg.l1_ways * 64 / 1024,
            cfg.l1_ways
        ),
    ]);
    table.row([
        "L2 (private)",
        &format!(
            "{} KB, {}-way, load-use {} cyc",
            cfg.l2_sets * cfg.l2_ways * 64 / 1024,
            cfg.l2_ways,
            t.l2_hit
        ),
    ]);
    table.row([
        "LLC (shared)",
        &format!(
            "{} KB, {} sets x ({} SRAM + {} NVM) ways",
            cfg.llc.capacity_bytes() / 1024,
            cfg.llc.sets,
            cfg.llc.sram_ways,
            cfg.llc.nvm_ways
        ),
    ]);
    table.row(["LLC SRAM load-use", &format!("{} cycles", t.llc_sram_hit)]);
    table.row([
        "LLC NVM load-use",
        &format!(
            "{} cycles (+{} for decompression/rearrangement)",
            t.llc_nvm_hit(),
            t.nvm_decompress
        ),
    ]);
    table.row(["memory load-use", &format!("{} cycles", t.memory)]);
    table.row(["endurance", "mean 1e10 writes, cv 0.2 (1e8 in scaled runs)"]);
    table.print();
    save_json(
        "table4",
        &serde_json::json!({
            "experiment": "table4",
            "cores": cfg.cores,
            "llc_sets": cfg.llc.sets,
            "sram_ways": cfg.llc.sram_ways,
            "nvm_ways": cfg.llc.nvm_ways,
            "llc_kb": cfg.llc.capacity_bytes() / 1024,
        }),
    );
}
