//! Extension — LLC energy comparison across insertion policies.
//!
//! The prior work the paper compares against (TAP) optimizes for LLC
//! energy: STT-MRAM writes are energy-hungry and SRAM leaks. This harness
//! computes a post-hoc energy breakdown per policy from the measured LLC
//! activity (TAP's paper reports a 25 % energy reduction vs LRU).

use hllc_bench::exp::{measure_mix, ExpOpts};
use hllc_bench::report::{banner, save_json, Table};
use hllc_core::Policy;
use hllc_sim::EnergyModel;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "energy",
        "LLC energy per policy (extension; coefficients in sim::EnergyModel)",
        "Motivating context: TAP reports ~25% LLC energy reduction vs LRU.",
    );
    let model = EnergyModel::default_16nm();
    let freq = 3.5;

    let mut table = Table::new([
        "policy",
        "SRAM dyn [mJ]",
        "NVM dyn [mJ]",
        "leakage [mJ]",
        "total [mJ]",
        "vs BH",
    ]);
    let mut json_rows = Vec::new();
    let mut bh_total = None;
    for policy in [
        Policy::Bh,
        Policy::BhCp,
        Policy::cp_sd(),
        Policy::cp_sd_th(8.0),
        Policy::LHybrid,
        Policy::tap(),
    ] {
        let mut total = hllc_sim::EnergyBreakdown::default();
        let mut cycles = 0.0;
        for (i, mix) in opts.mix_list().iter().enumerate() {
            let m = measure_mix(policy, 1.0, mix, opts.seed + i as u64, &opts);
            let b = model.breakdown(&m.llc, m.measured_cycles, freq);
            total.sram_dynamic_mj += b.sram_dynamic_mj;
            total.nvm_dynamic_mj += b.nvm_dynamic_mj;
            total.leakage_mj += b.leakage_mj;
            cycles += m.measured_cycles;
        }
        let _ = cycles;
        let t = total.total_mj();
        let bh = *bh_total.get_or_insert(t);
        table.row([
            policy.name(),
            format!("{:.3}", total.sram_dynamic_mj),
            format!("{:.3}", total.nvm_dynamic_mj),
            format!("{:.3}", total.leakage_mj),
            format!("{t:.3}"),
            format!("{:.2}x", t / bh),
        ]);
        json_rows.push(serde_json::json!({
            "policy": policy.name(),
            "sram_dynamic_mj": total.sram_dynamic_mj,
            "nvm_dynamic_mj": total.nvm_dynamic_mj,
            "leakage_mj": total.leakage_mj,
            "total_mj": t,
        }));
    }
    table.print();
    save_json(
        "energy",
        &serde_json::json!({ "experiment": "energy", "rows": json_rows }),
    );
}
