//! Figure 8a — Distribution of the per-epoch optimal CP_th as the NVM part
//! loses capacity (100 % → 50 %).
//!
//! Runs CP_SD's sampler sets over pre-degraded NVM arrays and, for every
//! Set Dueling epoch, records which CP_th candidate collected the most
//! hits. The paper: at 100 % capacity ~30 % of epochs prefer CP_th < 58,
//! and smaller thresholds win more often as capacity shrinks (large frames
//! become scarce).

use hllc_bench::exp::{measure_mix, ExpOpts};
use hllc_bench::report::{banner, save_json, Table};
use hllc_core::{Policy, CP_TH_CANDIDATES};

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig8a",
        "Optimal CP_th distribution vs NVM capacity",
        "Paper Fig. 8a: the mass shifts from CP_th 58/64 toward smaller \
         values as effective capacity drops from 100% to 50%.",
    );
    let mut table = Table::new([
        "capacity", "CPth=30", "37", "44", "51", "58", "64", "epochs",
    ]);
    let mut json_rows = Vec::new();
    for capacity in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let mut wins = [0usize; CP_TH_CANDIDATES.len()];
        let mut epochs = 0usize;
        for (i, mix) in opts.mix_list().iter().enumerate() {
            let m = measure_mix(Policy::cp_sd(), capacity, mix, opts.seed + i as u64, &opts);
            for e in &m.epochs {
                if let Some(k) = e.max_hits_candidate() {
                    wins[k] += 1;
                    epochs += 1;
                }
            }
        }
        let pct = |k: usize| {
            if epochs == 0 {
                0.0
            } else {
                100.0 * wins[k] as f64 / epochs as f64
            }
        };
        table.row([
            format!("{:3.0}%", capacity * 100.0),
            format!("{:4.1}", pct(0)),
            format!("{:4.1}", pct(1)),
            format!("{:4.1}", pct(2)),
            format!("{:4.1}", pct(3)),
            format!("{:4.1}", pct(4)),
            format!("{:4.1}", pct(5)),
            format!("{epochs}"),
        ]);
        json_rows.push(serde_json::json!({
            "capacity": capacity,
            "wins_pct": (0..6).map(pct).collect::<Vec<_>>(),
            "epochs": epochs,
        }));
    }
    table.print();
    save_json(
        "fig8a",
        &serde_json::json!({ "experiment": "fig8a", "rows": json_rows }),
    );
}
