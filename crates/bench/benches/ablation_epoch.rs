//! Ablation — Set Dueling epoch length.
//!
//! The paper evaluated several epoch sizes and settled on 2 M cycles
//! (§IV-C). This sweep scans the epoch length (at the simulation scale in
//! force) and reports hits and NVM bytes, exposing the trade-off between
//! reactivity (short epochs) and sampler statistics (long epochs).

use hllc_bench::exp::ExpOpts;
use hllc_bench::report::{banner, save_json, Table};
use hllc_core::Policy;
use hllc_forecast::run_phase;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "ablation_epoch",
        "Set Dueling epoch-length sweep (CP_SD)",
        "Paper §IV-C: 2M cycles chosen at full scale; the scaled system \
         uses proportionally shorter epochs.",
    );
    let mut table = Table::new(["epoch [cycles]", "hit rate", "NVM bytes", "epochs seen"]);
    let mut json_rows = Vec::new();
    for epoch in [25_000u64, 50_000, 100_000, 200_000, 400_000, 800_000] {
        let mut hits = 0.0;
        let mut reqs = 0.0;
        let mut bytes = 0u64;
        let mut epochs = 0usize;
        for (i, mix) in opts.mix_list().iter().enumerate() {
            let mut setup = opts.phase_setup(Policy::cp_sd());
            setup.llc = setup.llc.with_epoch_cycles(epoch);
            let (m, _) = run_phase(&setup, mix, None, opts.seed + i as u64);
            hits += m.llc.hits as f64;
            reqs += m.llc.requests() as f64;
            bytes += m.llc.nvm_bytes_written;
            epochs += m.epochs.len();
        }
        table.row([
            format!("{epoch}"),
            format!("{:.3}", hits / reqs),
            format!("{bytes}"),
            format!("{epochs}"),
        ]);
        json_rows.push(serde_json::json!({
            "epoch_cycles": epoch, "hit_rate": hits / reqs, "nvm_bytes": bytes,
        }));
    }
    table.print();
    save_json(
        "ablation_epoch",
        &serde_json::json!({ "experiment": "ablation_epoch", "rows": json_rows }),
    );
}
