//! Figure 6 — LLC hit rate (normalized to BH) vs. the compression
//! threshold CP_th, for CA, CA_RWR, and the CP_SD Set Dueling line.
//!
//! The paper: CA varies between 0.89 and 0.99 with the best value at
//! CP_th = 58; CA_RWR improves the small-CP_th end; CP_SD matches the best
//! static configuration.

use hllc_bench::exp::{measure_avg, ExpOpts};
use hllc_bench::report::{banner, save_json, Table};
use hllc_core::{Policy, CP_TH_CANDIDATES};

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig6",
        "Normalized LLC hit rate vs CP_th (full NVM capacity)",
        "Paper Fig. 6: CA 0.89..0.99 peaking at CP_th=58; CA_RWR better at \
         low CP_th; CP_SD line matches the best CA_RWR.",
    );
    let (bh_hits, _, _) = measure_avg(Policy::Bh, 1.0, &opts);

    let mut table = Table::new(["CP_th", "CA", "CA_RWR"]);
    let mut json_rows = Vec::new();
    for cp_th in CP_TH_CANDIDATES {
        let (ca, _, _) = measure_avg(Policy::Ca { cp_th }, 1.0, &opts);
        let (rwr, _, _) = measure_avg(Policy::CaRwr { cp_th }, 1.0, &opts);
        table.row([
            format!("{cp_th}"),
            format!("{:.3}", ca / bh_hits),
            format!("{:.3}", rwr / bh_hits),
        ]);
        json_rows.push(serde_json::json!({
            "cp_th": cp_th, "ca": ca / bh_hits, "ca_rwr": rwr / bh_hits,
        }));
    }
    table.print();

    let (sd, _, _) = measure_avg(Policy::cp_sd(), 1.0, &opts);
    println!("\nCP_SD (Set Dueling) line: {:.3} of BH hits", sd / bh_hits);
    println!("Paper: CP_SD achieves a hit rate equivalent to the best-case CA_RWR.");
    save_json(
        "fig6",
        &serde_json::json!({
            "experiment": "fig6", "rows": json_rows, "cp_sd": sd / bh_hits,
            "mixes": opts.mixes,
        }),
    );
}
