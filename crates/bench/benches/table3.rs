//! Table III — Summary of the evaluated insertion policies.

use hllc_bench::report::{banner, save_json, Table};
use hllc_core::Policy;
use hllc_nvm::DisableGranularity;

fn main() {
    banner(
        "table3",
        "Insertion-policy taxonomy",
        "Paper Table III: disabling granularity / data compression / NVM awareness.",
    );
    let policies = [
        Policy::Bh,
        Policy::BhCp,
        Policy::LHybrid,
        Policy::tap(),
        Policy::Ca { cp_th: 58 },
        Policy::CaRwr { cp_th: 58 },
        Policy::cp_sd(),
        Policy::cp_sd_th(8.0),
    ];
    let mut table = Table::new(["name", "disabling", "data comp.", "NVM aware", "reuse tags"]);
    let mut json_rows = Vec::new();
    for p in policies {
        let g = match p.granularity() {
            DisableGranularity::Frame => "frame",
            DisableGranularity::Byte => "byte",
        };
        let yn = |b: bool| if b { "yes" } else { "no" };
        table.row([
            p.name(),
            g.to_string(),
            yn(p.uses_compression()).to_string(),
            yn(p.is_nvm_aware()).to_string(),
            yn(p.uses_reuse()).to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "name": p.name(), "granularity": g,
            "compression": p.uses_compression(), "nvm_aware": p.is_nvm_aware(),
        }));
    }
    table.print();
    save_json(
        "table3",
        &serde_json::json!({ "experiment": "table3", "rows": json_rows }),
    );
}
