//! Figure 11b — NVM read-latency sensitivity: data array ×1.5 (8 → 12
//! cycles, load-use 32 → 36).
//!
//! Policies that insert aggressively into NVM feel the extra latency most;
//! the paper reports ≤0.7 % performance drops and slight lifetime gains —
//! no drastic change.

use hllc_bench::exp::{headline_policies, run_forecast_experiment, ExpOpts};
use hllc_bench::report::banner;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig11b",
        "NVM data-array latency x1.5",
        "Paper Fig. 11b: CP_SD/Th4/Th8/LHybrid lose 0.7/0.3/0.4/0.4% \
         performance; lifetimes tick up slightly. No drastic change.",
    );
    let configs: Vec<_> = headline_policies()
        .into_iter()
        .map(|(label, p)| {
            let mut cfg = opts.forecast_config(p);
            cfg.system = cfg.system.with_nvm_latency_factor(1.5);
            (label, cfg)
        })
        .collect();
    run_forecast_experiment("fig11b", &configs, &opts, true);
}
