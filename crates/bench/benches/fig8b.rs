//! Figure 8b — Distribution of the per-epoch optimal CP_th per workload
//! mix, at 100 % NVM capacity.
//!
//! The paper: the optimal threshold is highly workload-dependent — up to
//! 96 % of mix 5's epochs prefer CP_th < 58 while other mixes sit at 58/64.

use hllc_bench::exp::{measure_mix, ExpOpts};
use hllc_bench::report::{banner, save_json, Table};
use hllc_core::{Policy, CP_TH_CANDIDATES};
use hllc_trace::mixes;

fn main() {
    let mut opts = ExpOpts::from_env();
    opts.mixes = 10; // this figure is inherently per-mix
    banner(
        "fig8b",
        "Optimal CP_th distribution per mix (100% capacity)",
        "Paper Fig. 8b: strong per-workload variation in the preferred CP_th.",
    );
    let mut table = Table::new(["mix", "CPth=30", "37", "44", "51", "58", "64", "epochs"]);
    let mut json_rows = Vec::new();
    for (i, mix) in mixes().iter().enumerate() {
        let m = measure_mix(Policy::cp_sd(), 1.0, mix, opts.seed + i as u64, &opts);
        let mut wins = [0usize; CP_TH_CANDIDATES.len()];
        let mut epochs = 0usize;
        for e in &m.epochs {
            if let Some(k) = e.max_hits_candidate() {
                wins[k] += 1;
                epochs += 1;
            }
        }
        let pct = |k: usize| {
            if epochs == 0 {
                0.0
            } else {
                100.0 * wins[k] as f64 / epochs as f64
            }
        };
        table.row([
            mix.name.to_string(),
            format!("{:4.1}", pct(0)),
            format!("{:4.1}", pct(1)),
            format!("{:4.1}", pct(2)),
            format!("{:4.1}", pct(3)),
            format!("{:4.1}", pct(4)),
            format!("{:4.1}", pct(5)),
            format!("{epochs}"),
        ]);
        json_rows.push(serde_json::json!({
            "mix": mix.name,
            "wins_pct": (0..6).map(pct).collect::<Vec<_>>(),
            "epochs": epochs,
        }));
    }
    table.print();
    save_json(
        "fig8b",
        &serde_json::json!({ "experiment": "fig8b", "rows": json_rows }),
    );
}
