//! Table I — The modified BDI compression-encoding table.
//!
//! Prints every compression encoding with its base/delta widths, compressed
//! size, HCR/LCR class, and the ECB size including the 4-bit CE and 11-bit
//! SECDED overhead. LCR encodings (the star rows of the paper's Table I)
//! are the ones the original BDI discards but this design keeps.

use hllc_bench::report::{banner, save_json, Table};
use hllc_compress::Encoding;

fn main() {
    banner(
        "table1",
        "Modified BDI compression encodings",
        "Paper Table I; LCR encodings (size > 37 B) marked with *.",
    );
    let mut table = Table::new([
        "CE", "encoding", "base", "delta", "CB size", "ECB size", "class",
    ]);
    let mut json_rows = Vec::new();
    for e in Encoding::ALL {
        let class = if e.is_lcr() {
            "LCR *"
        } else if e.is_hcr() {
            "HCR"
        } else {
            "-"
        };
        table.row([
            format!("{}", e.ce()),
            e.to_string(),
            e.base_width().map_or("-".into(), |b| b.to_string()),
            e.delta_width().map_or("-".into(), |d| d.to_string()),
            format!("{}", e.compressed_size()),
            format!("{}", e.compressed_size() + 2),
            class.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "ce": e.ce(), "name": e.to_string(),
            "cb_size": e.compressed_size(), "hcr": e.is_hcr(), "lcr": e.is_lcr(),
        }));
    }
    table.print();
    println!("\nECB = CB + 4-bit CE + 11-bit SECDED (2 bytes); frame = 66 physical bytes.");
    save_json(
        "table1",
        &serde_json::json!({ "experiment": "table1", "rows": json_rows }),
    );
}
