//! Kernel throughput bench: accesses/sec of the per-access LLC kernel
//! (way scan + BDI size probe + fault-map update) per policy, driven by
//! the fig10a-style workload. `hllc bench-kernel` runs the same
//! measurement and records it in `BENCH_kernel.json`; this target is the
//! criterion-style interactive view.

use criterion::{criterion_group, criterion_main, Criterion};
use hllc_bench::kernel::{kernel_policies, measure_kernel};

fn bench_kernel(c: &mut Criterion) {
    // Small per-iteration access count: criterion repeats the measurement,
    // and the interesting number is the reported per-policy throughput.
    const ACCESSES: u64 = 200_000;
    for (label, policy) in kernel_policies() {
        c.bench_function(&format!("kernel/{label}"), |b| {
            b.iter(|| std::hint::black_box(measure_kernel(policy, ACCESSES, 42)))
        });
    }
    // A one-shot absolute report in the same units as BENCH_kernel.json.
    println!("\nkernel throughput (one-shot, 1M accesses each):");
    for (label, policy) in kernel_policies() {
        let r = measure_kernel(policy, 1_000_000, 42);
        println!("  {label:<12} {:>12.0} accesses/sec", r.accesses_per_sec);
    }
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
