//! Ablation — compression mechanism: BDI (the paper's choice) vs FPC.
//!
//! §II-B argues the insertion policies are orthogonal to the compressor as
//! long as it offers fast decompression and wide coverage. Swapping the
//! size model from modified BDI to Frequent Pattern Compression should
//! preserve the policy's behaviour qualitatively.

use hllc_bench::exp::ExpOpts;
use hllc_bench::report::{banner, save_json, Table};
use hllc_compress::CompressorKind;
use hllc_core::Policy;
use hllc_forecast::run_phase;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "ablation_compressor",
        "BDI vs FPC under CP_SD (and BH baseline)",
        "Paper §II-B: policies are orthogonal to the compression mechanism.",
    );
    let mut table = Table::new(["policy", "compressor", "hit rate", "NVM bytes", "IPC"]);
    let mut json_rows = Vec::new();
    for policy in [Policy::Bh, Policy::cp_sd()] {
        for kind in [CompressorKind::Bdi, CompressorKind::Fpc] {
            let mut hits = 0.0;
            let mut reqs = 0.0;
            let mut bytes = 0u64;
            let mut ipc = 0.0;
            for (i, mix) in opts.mix_list().iter().enumerate() {
                let mut setup = opts.phase_setup(policy);
                setup.compressor = kind;
                let (m, _) = run_phase(&setup, mix, None, opts.seed + i as u64);
                hits += m.llc.hits as f64;
                reqs += m.llc.requests() as f64;
                bytes += m.llc.nvm_bytes_written;
                ipc += m.ipc;
            }
            table.row([
                policy.name(),
                kind.name().to_string(),
                format!("{:.3}", hits / reqs),
                format!("{bytes}"),
                format!("{:.4}", ipc / opts.mixes as f64),
            ]);
            json_rows.push(serde_json::json!({
                "policy": policy.name(), "compressor": kind.name(),
                "hit_rate": hits / reqs, "nvm_bytes": bytes,
            }));
        }
    }
    table.print();
    println!("\n(BH stores blocks uncompressed; its rows isolate pure noise.)");
    save_json(
        "ablation_compressor",
        &serde_json::json!({ "experiment": "ablation_compressor", "rows": json_rows }),
    );
}
