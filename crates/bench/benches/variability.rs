//! Extension — seed-variability study: the noise floor under every other
//! experiment. Runs the key policies across several RNG seeds (endurance
//! sampling, workload interleaving, data synthesis) and reports the 95 %
//! confidence intervals of the headline metrics.

use hllc_bench::exp::{measure_mix, ExpOpts};
use hllc_bench::report::{banner, save_json, Table};
use hllc_bench::stats::summarize;
use hllc_core::Policy;
use hllc_trace::mixes;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "variability",
        "Seed-to-seed variability of hit rate / NVM bytes / IPC",
        "Noise-floor check: paper deltas below ~2x this CI are not resolvable \
         at the scaled configuration.",
    );
    let seeds = [11u64, 22, 33, 44, 55];
    let mix = &mixes()[0];

    let mut table = Table::new(["policy", "hit rate", "NVM MB written", "IPC", "hit-rate CV"]);
    let mut json_rows = Vec::new();
    for policy in [Policy::Bh, Policy::cp_sd(), Policy::LHybrid] {
        let mut hit = Vec::new();
        let mut bytes = Vec::new();
        let mut ipc = Vec::new();
        for &seed in &seeds {
            let m = measure_mix(policy, 1.0, mix, seed, &opts);
            hit.push(m.hit_rate);
            bytes.push(m.llc.nvm_bytes_written as f64 / 1e6);
            ipc.push(m.ipc);
        }
        let (h, b, i) = (summarize(&hit), summarize(&bytes), summarize(&ipc));
        table.row([
            policy.name(),
            h.display(4),
            b.display(3),
            i.display(4),
            format!("{:.4}", h.cv()),
        ]);
        json_rows.push(serde_json::json!({
            "policy": policy.name(),
            "hit_rate_mean": h.mean, "hit_rate_ci95": h.ci95(),
            "nvm_mb_mean": b.mean, "nvm_mb_ci95": b.ci95(),
            "ipc_mean": i.mean, "ipc_ci95": i.ci95(),
        }));
    }
    table.print();
    println!(
        "\n{} seeds on {}; all other harnesses report single-seed runs.",
        seeds.len(),
        mix.name
    );
    save_json(
        "variability",
        &serde_json::json!({ "experiment": "variability", "rows": json_rows }),
    );
}
