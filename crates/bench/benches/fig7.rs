//! Figure 7 — Bytes written to the NVM part (normalized to BH) vs. CP_th,
//! for CA, CA_RWR, and the CP_SD line.
//!
//! The paper: CA writes 5–80 % of BH's bytes depending on CP_th (40 % less
//! than BH at CP_th = 58); CA_RWR cuts up to 73 % more; CP_SD reaches
//! 16.6 % of BH — 22.9 % and 42 % below CA_RWR at CP_th 58 and 64.

use hllc_bench::exp::{measure_avg, ExpOpts};
use hllc_bench::report::{banner, save_json, Table};
use hllc_core::{Policy, CP_TH_CANDIDATES};

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig7",
        "Normalized NVM bytes written vs CP_th (full NVM capacity)",
        "Paper Fig. 7: CA between 0.05 and 0.80 of BH; CA_RWR up to 73% \
         below CA; CP_SD at 0.166 of BH.",
    );
    let (_, bh_bytes, _) = measure_avg(Policy::Bh, 1.0, &opts);

    let mut table = Table::new(["CP_th", "CA", "CA_RWR"]);
    let mut json_rows = Vec::new();
    for cp_th in CP_TH_CANDIDATES {
        let (_, ca, _) = measure_avg(Policy::Ca { cp_th }, 1.0, &opts);
        let (_, rwr, _) = measure_avg(Policy::CaRwr { cp_th }, 1.0, &opts);
        table.row([
            format!("{cp_th}"),
            format!("{:.3}", ca / bh_bytes),
            format!("{:.3}", rwr / bh_bytes),
        ]);
        json_rows.push(serde_json::json!({
            "cp_th": cp_th, "ca": ca / bh_bytes, "ca_rwr": rwr / bh_bytes,
        }));
    }
    table.print();

    let (_, sd, _) = measure_avg(Policy::cp_sd(), 1.0, &opts);
    println!(
        "\nCP_SD (Set Dueling) line: {:.3} of BH bytes",
        sd / bh_bytes
    );
    println!("Paper: CP_SD reduces NVM bytes written by 83.4% vs BH.");
    save_json(
        "fig7",
        &serde_json::json!({
            "experiment": "fig7", "rows": json_rows, "cp_sd": sd / bh_bytes,
            "mixes": opts.mixes,
        }),
    );
}
