//! Figure 11a — L2 size sensitivity: 128 KB → 256 KB.
//!
//! A bigger private L2 filters LLC write traffic: the paper reports 8–19 %
//! lifetime gains for every policy except LHybrid, whose lifetime *drops*
//! 11 % because longer SRAM residence detects more loop-blocks.

use hllc_bench::exp::{headline_policies, run_forecast_experiment, ExpOpts};
use hllc_bench::report::banner;

fn main() {
    let opts = ExpOpts::from_env();
    banner(
        "fig11a",
        "Private L2 doubled",
        "Paper Fig. 11a: lifetime +8..19% for BH/BH_CP/CP_SD family, -11% \
         for LHybrid (more loop-blocks detected -> more NVM writes).",
    );
    let configs: Vec<_> = headline_policies()
        .into_iter()
        .map(|(label, p)| {
            let mut cfg = opts.forecast_config(p);
            cfg.system = cfg.system.with_l2_doubled();
            (label, cfg)
        })
        .collect();
    run_forecast_experiment("fig11a", &configs, &opts, true);
}
