//! Common experiment plumbing: options, policy sets, forecast averaging,
//! and single-phase measurement sweeps.

use hllc_config::ExperimentSpec;
use hllc_core::{HybridConfig, Policy};
use hllc_forecast::{
    run_phase, Forecast, ForecastConfig, ForecastSeries, PhaseMetrics, PhaseSetup,
};
use hllc_sim::SystemConfig;
use hllc_trace::{mixes, Mix};

/// Options read from the environment (see the crate docs).
#[derive(Clone, Debug)]
pub struct ExpOpts {
    /// Number of Table V mixes to average over.
    pub mixes: usize,
    /// Base seed.
    pub seed: u64,
    /// Run at the paper's full scale instead of the scaled-down system.
    pub full_scale: bool,
    /// Worker threads for per-mix fan-out. Results are independent of it:
    /// per-run seeds depend only on the mix index, and reductions happen
    /// in mix order (see `hllc-runner`).
    pub jobs: usize,
}

impl ExpOpts {
    /// Reads `HLLC_MIXES` / `HLLC_SEED` / `HLLC_FULL` / `HLLC_JOBS` from the
    /// environment.
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok();
        ExpOpts {
            mixes: get("HLLC_MIXES")
                .and_then(|v| v.parse().ok())
                .unwrap_or(3)
                .clamp(1, 10),
            seed: get("HLLC_SEED").and_then(|v| v.parse().ok()).unwrap_or(42),
            full_scale: get("HLLC_FULL").is_some_and(|v| v == "1"),
            jobs: get("HLLC_JOBS")
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(hllc_runner::default_threads),
        }
    }

    /// The mixes this experiment runs over.
    pub fn mix_list(&self) -> Vec<Mix> {
        mixes().into_iter().take(self.mixes).collect()
    }

    /// The experiment preset these options resolve to: `paper` under
    /// `HLLC_FULL=1`, `scaled` otherwise.
    pub fn spec(&self) -> ExperimentSpec {
        let name = if self.full_scale { "paper" } else { "scaled" };
        ExperimentSpec::preset(name).expect("builtin preset")
    }

    /// Base forecast configuration for a policy.
    pub fn forecast_config(&self, policy: Policy) -> ForecastConfig {
        ForecastConfig::from_spec(&self.spec()).with_policy(policy)
    }

    /// Single-phase setup at the configured scale, with the NVM part
    /// optionally pre-degraded (capacity in 0..=1).
    pub fn phase_setup(&self, policy: Policy) -> PhaseSetup {
        let cfg = self.forecast_config(policy);
        PhaseSetup {
            system: cfg.system.clone(),
            llc: cfg.llc.clone(),
            warmup_cycles: cfg.warmup_cycles,
            measure_cycles: cfg.measure_cycles,
            scale: PhaseSetup::scale_for_sets(cfg.llc.sets),
            compressor: cfg.compressor,
        }
    }

    /// Lifetime axis note for reports.
    pub fn time_note(&self) -> &'static str {
        if self.full_scale {
            "wall-clock months at mu=1e10"
        } else {
            "scaled hours at mu=1e8 (multiply by 100 for paper-equivalent time; ratios are exact)"
        }
    }
}

/// The SRAM-only upper/lower performance bounds (dashed lines of Fig. 1/10).
pub fn sram_bound_config(base: &ForecastConfig, ways: usize) -> ForecastConfig {
    let mut cfg = base.clone();
    cfg.llc = HybridConfig::new(cfg.llc.sets, ways, 0, Policy::Bh);
    cfg
}

/// Runs the forecast for a policy configuration over the option's mixes
/// (fanned across `opts.jobs` workers) and averages the runs onto a common
/// grid. Per-mix seeds and the averaging order depend only on the mix
/// index, so the result is identical for every job count.
pub fn forecast_avg(cfg: &ForecastConfig, opts: &ExpOpts, label: &str) -> ForecastSeries {
    let runs = hllc_runner::run_indexed(opts.mix_list(), opts.jobs, |i, mix| {
        Forecast::new(cfg.clone()).run(&mix, opts.seed + i as u64)
    });
    ForecastSeries::average(label, &runs, 48)
}

/// Builds the (optionally degraded) NVM array for a single-phase run:
/// `None` at full capacity (the phase samples a fresh array itself).
pub fn degraded_array(
    llc_cfg: &HybridConfig,
    capacity: f64,
    seed: u64,
) -> Option<hllc_nvm::NvmArray> {
    hllc_runner::degraded_array(llc_cfg, capacity, seed)
}

/// One single-phase measurement (no aging) of `mix`, with the NVM part
/// degraded to `capacity` first.
pub fn measure_mix(
    policy: Policy,
    capacity: f64,
    mix: &Mix,
    seed: u64,
    opts: &ExpOpts,
) -> PhaseMetrics {
    let setup = opts.phase_setup(policy);
    let array = degraded_array(&setup.llc, capacity, seed);
    let (m, _) = run_phase(&setup, mix, array, seed);
    m
}

/// Single-phase measurement averaged over the options' mixes, fanned across
/// `opts.jobs` workers. Returns the summed LLC hit count, summed NVM bytes
/// written, and mean IPC. The sums run in mix order, so the result is
/// identical for every job count.
pub fn measure_avg(policy: Policy, capacity: f64, opts: &ExpOpts) -> (f64, f64, f64) {
    let metrics = hllc_runner::run_indexed(opts.mix_list(), opts.jobs, |i, mix| {
        measure_mix(policy, capacity, &mix, opts.seed + i as u64, opts)
    });
    let mut hits = 0.0;
    let mut bytes = 0.0;
    let mut ipc = 0.0;
    for m in &metrics {
        hits += m.llc.hits as f64;
        bytes += m.llc.nvm_bytes_written as f64;
        ipc += m.ipc;
    }
    (hits, bytes, ipc / opts.mixes as f64)
}

/// The headline policy set of Figures 1 and 10a, plus the bounds.
pub fn headline_policies() -> Vec<(String, Policy)> {
    vec![
        ("BH".into(), Policy::Bh),
        ("BH_CP".into(), Policy::BhCp),
        ("LHybrid".into(), Policy::LHybrid),
        ("TAP".into(), Policy::tap()),
        ("CP_SD".into(), Policy::cp_sd()),
        ("CP_SD_Th4".into(), Policy::cp_sd_th(4.0)),
        ("CP_SD_Th8".into(), Policy::cp_sd_th(8.0)),
    ]
}

/// Runs a family of forecast configurations (one per curve of a Figure
/// 1/10/11-style plot), prints the summary table plus the full time series,
/// and dumps JSON. The upper performance bound (16-way SRAM) is always run
/// first and used to normalize IPC; the `4w SRAM` lower bound is included
/// when `with_lower_bound` is set.
pub fn run_forecast_experiment(
    id: &str,
    configs: &[(String, ForecastConfig)],
    opts: &ExpOpts,
    with_lower_bound: bool,
) {
    assert!(!configs.is_empty(), "need at least one configuration");
    let total_ways = configs[0].1.llc.sram_ways + configs[0].1.llc.nvm_ways;

    // The bounds plus every requested configuration, one curve each.
    let mut curve_cfgs: Vec<(String, ForecastConfig)> = vec![(
        format!("{total_ways}w SRAM (upper bound)"),
        sram_bound_config(&configs[0].1, total_ways),
    )];
    if with_lower_bound {
        let sram_ways = configs[0].1.llc.sram_ways.max(1);
        curve_cfgs.push((
            format!("{sram_ways}w SRAM (lower bound)"),
            sram_bound_config(&configs[0].1, sram_ways),
        ));
    }
    curve_cfgs.extend(configs.iter().cloned());

    // Flatten `curve × mix` into one job grid so the thread pool never
    // drains between curves. Seeds and the merge order depend only on the
    // (curve, mix) indices, so any job count reproduces the serial result.
    let mix_list = opts.mix_list();
    let grid: Vec<(usize, usize)> = (0..curve_cfgs.len())
        .flat_map(|c| (0..mix_list.len()).map(move |m| (c, m)))
        .collect();
    let runs = hllc_runner::run_indexed(grid, opts.jobs, |_, (c, m)| {
        Forecast::new(curve_cfgs[c].1.clone()).run(&mix_list[m], opts.seed + m as u64)
    });
    let curves: Vec<ForecastSeries> = curve_cfgs
        .iter()
        .enumerate()
        .map(|(c, (label, _))| {
            let slice = &runs[c * mix_list.len()..(c + 1) * mix_list.len()];
            ForecastSeries::average(label, slice, 48)
        })
        .collect();
    let base_ipc = curves[0].initial_ipc().unwrap_or(1.0);

    let bh_life = curves
        .iter()
        .find(|c| c.label.starts_with("BH") && !c.label.contains("CP"))
        .and_then(|c| c.lifetime_seconds(0.5));

    let mut table = crate::report::Table::new([
        "configuration",
        "IPC(t=0)",
        "norm IPC",
        "hit rate",
        "NVM B/cyc",
        "life50 [h]",
        "vs BH",
    ]);
    for c in &curves {
        let p0 = c.points.first().copied();
        let life_s = c.lifetime_seconds(0.5);
        let ratio = match (life_s, bh_life) {
            (Some(l), Some(b)) if b > 0.0 => format!("{:6.1}x", l / b),
            _ => "     -".into(),
        };
        table.row([
            c.label.clone(),
            format!("{:.4}", p0.map_or(0.0, |p| p.ipc)),
            format!("{:.3}", p0.map_or(0.0, |p| p.ipc) / base_ipc),
            format!("{:.3}", p0.map_or(0.0, |p| p.hit_rate)),
            format!("{:.3}", p0.map_or(0.0, |p| p.nvm_bytes_per_cycle)),
            fmt_life(life_s.map(|s| s / 3600.0)),
            ratio,
        ]);
    }
    table.print();
    println!("\nLifetime axis: {}", opts.time_note());

    // Normalized-IPC-over-time series (the lines of the figure).
    println!("\nNormalized IPC over time (columns: fraction of the longest run):");
    let horizon = curves.iter().map(|c| c.end_time()).fold(0.0, f64::max);
    let ticks = 12;
    print!("{:<28}", "configuration");
    for i in 0..=ticks {
        print!(" {:>5.0}%", 100.0 * i as f64 / ticks as f64);
    }
    println!();
    for c in &curves {
        print!("{:<28}", c.label);
        for i in 0..=ticks {
            let t = horizon * i as f64 / ticks as f64;
            let p = c.sample_at(t).unwrap();
            print!(" {:>6.3}", p.ipc / base_ipc);
        }
        println!();
    }

    let json = serde_json::json!({
        "experiment": id,
        "mixes": opts.mixes,
        "seed": opts.seed,
        "full_scale": opts.full_scale,
        "base_ipc": base_ipc,
        "curves": curves.iter().map(|c| serde_json::json!({
            "label": c.label,
            "lifetime_seconds_50pct": c.lifetime_seconds(0.5),
            "points": c.points.iter().map(|p| serde_json::json!({
                "t": p.time_seconds, "capacity": p.capacity, "ipc": p.ipc,
                "hit_rate": p.hit_rate, "nvm_bytes_per_cycle": p.nvm_bytes_per_cycle,
            })).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    });
    crate::report::save_json(id, &json);
}

/// Formats an optional lifetime in the report's time unit.
pub fn fmt_life(hours: Option<f64>) -> String {
    match hours {
        Some(h) => format!("{h:8.2}"),
        None => "   never".into(),
    }
}

/// System config accessor used by table harnesses.
pub fn system_for(opts: &ExpOpts) -> SystemConfig {
    opts.spec().system_config()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(mixes: usize) -> ExpOpts {
        ExpOpts {
            mixes,
            seed: 1,
            full_scale: false,
            jobs: 1,
        }
    }

    #[test]
    fn mix_list_respects_count() {
        assert_eq!(opts(1).mix_list().len(), 1);
        assert_eq!(opts(10).mix_list().len(), 10);
    }

    #[test]
    fn sram_bound_has_no_nvm() {
        let base = opts(1).forecast_config(Policy::cp_sd());
        let bound = sram_bound_config(&base, 16);
        assert_eq!(bound.llc.nvm_ways, 0);
        assert_eq!(bound.llc.sram_ways, 16);
        assert_eq!(bound.llc.sets, base.llc.sets);
    }

    #[test]
    fn fmt_life_handles_never() {
        assert_eq!(fmt_life(None).trim(), "never");
        assert_eq!(fmt_life(Some(1.5)).trim(), "1.50");
    }

    #[test]
    fn degraded_array_none_at_full_capacity() {
        let cfg = opts(1).forecast_config(Policy::cp_sd()).llc;
        assert!(degraded_array(&cfg, 1.0, 1).is_none());
        let arr = degraded_array(&cfg, 0.8, 1).expect("degraded array");
        assert!(arr.capacity_fraction() <= 0.8);
    }

    #[test]
    fn headline_set_covers_the_paper() {
        let names: Vec<String> = headline_policies().iter().map(|(n, _)| n.clone()).collect();
        for expected in [
            "BH",
            "BH_CP",
            "LHybrid",
            "TAP",
            "CP_SD",
            "CP_SD_Th4",
            "CP_SD_Th8",
        ] {
            assert!(names.iter().any(|n| n == expected), "{expected} missing");
        }
    }
}
