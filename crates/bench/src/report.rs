//! ASCII reporting and JSON dumps for the experiment harnesses.

use std::fs;
use std::path::PathBuf;

/// A simple fixed-width ASCII table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (c, cell) in cells.iter().enumerate() {
                s.push_str(&format!("{:<width$}  ", cell, width = widths[c]));
            }
            s.trim_end().to_string()
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, paper_note: &str) {
    println!("==============================================================");
    println!("{id} — {title}");
    println!("Paper reference: {paper_note}");
    println!("==============================================================");
}

/// Writes a JSON value next to the ASCII report, under `target/figures/`.
/// Failures are reported but not fatal (the ASCII report already printed).
pub fn save_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("target/figures");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[json saved to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]);
        t.row(["longer-name", "2.5"]);
        let r = t.render();
        assert!(r.contains("longer-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns align: "value" starts at the same offset in all rows.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }
}
