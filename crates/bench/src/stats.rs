//! Small-sample statistics for experiment reporting.

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected), 0 for n < 2.
    pub std: f64,
}

impl Summary {
    /// Half-width of an approximate 95 % confidence interval for the mean
    /// (normal approximation; fine for the noise-floor reporting it backs).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (std/mean), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }

    /// Renders as `mean ± ci95`.
    pub fn display(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.ci95(), p = precision)
    }
}

/// Summarizes a sample.
///
/// # Example
///
/// ```
/// use hllc_bench::stats::summarize;
///
/// let s = summarize(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.mean, 2.0);
/// assert!((s.std - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics on an empty sample.
pub fn summarize(xs: &[f64]) -> Summary {
    assert!(!xs.is_empty(), "cannot summarize an empty sample");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let std = if n < 2 {
        0.0
    } else {
        (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)).sqrt()
    };
    Summary { n, mean, std }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.138089935299395).abs() < 1e-9);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn display_formats() {
        let s = summarize(&[1.0, 1.0, 1.0]);
        assert_eq!(s.display(2), "1.00 ± 0.00");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        summarize(&[]);
    }
}
