//! Kernel throughput measurement: accesses/sec of the per-access LLC
//! kernel.
//!
//! Every figure replays hundreds of millions of references, so end-to-end
//! wall clock is dominated by the per-access kernel: the BDI size probe,
//! the hybrid-set way scan, and the fault-map update. This module drives
//! that kernel directly at the [`LlcPort`] — every reference of the
//! fig10a-style workload (mix 1) issues a request and, on a miss, an
//! insert — so the measurement isolates the LLC kernel from the private
//! L1/L2 levels that filter most references in a full-hierarchy run.
//!
//! The `hllc bench-kernel` subcommand and the `kernel` bench target both
//! call [`measure_kernel`]; the subcommand records the results in
//! `BENCH_kernel.json` so every PR leaves a throughput trajectory.

use std::time::Instant;

use hllc_config::ExperimentSpec;
use hllc_core::{HybridLlc, Policy};
use hllc_sim::{block_of, DataModel, LlcPort, LlcReq, Op, ReuseClass};
use hllc_trace::{mixes, RefSource};

/// Default number of references per policy measurement.
pub const DEFAULT_ACCESSES: u64 = 2_000_000;

/// Cycles charged per reference when driving the port directly (keeps the
/// dueling epochs and NVM bank timing ticking at a realistic rate).
const CYCLES_PER_ACCESS: u64 = 4;

/// One policy's kernel throughput measurement.
#[derive(Clone, Debug)]
pub struct KernelResult {
    /// Policy label (the fig10a curve name).
    pub policy: String,
    /// References driven through the LLC port.
    pub accesses: u64,
    /// Wall-clock seconds of the measured window.
    pub elapsed_secs: f64,
    /// The headline number: `accesses / elapsed_secs`.
    pub accesses_per_sec: f64,
    /// LLC hits over the measured window (a determinism fingerprint: the
    /// refactor must not change it for a given policy/seed/accesses).
    pub hits: u64,
}

/// The policies the kernel bench reports, with their fig10a labels.
pub fn kernel_policies() -> Vec<(String, Policy)> {
    crate::exp::headline_policies()
}

/// One pre-synthesized kernel reference: the block address plus whether it
/// is a store (GetX + dirty insert).
#[derive(Clone, Copy, Debug)]
struct KernelRef {
    block: u64,
    store: bool,
}

/// Drives `accesses` references of mix 1 (the fig10a-style workload)
/// through the LLC port under `policy` and measures wall-clock throughput.
///
/// The reference stream is synthesized *before* the timed window, so the
/// measurement covers exactly the per-access kernel the refactor targets —
/// the way scan, the size probe (through the data model), and the
/// fault-map update — not the synthetic workload generator. The LLC is
/// configured exactly like a `hllc run` session (scaled-down geometry,
/// endurance-sampled NVM array, 100k-cycle dueling epochs); the first 10%
/// of references are warm-up and excluded from timing.
pub fn measure_kernel(policy: Policy, accesses: u64, seed: u64) -> KernelResult {
    let spec = ExperimentSpec::preset("scaled").expect("builtin preset");
    let cfg = spec.llc_config_for(policy).with_seed(seed);
    let mut llc = HybridLlc::new(&cfg);

    let mix = &mixes()[0];
    let mut streams = mix.instantiate(spec.footprint_scale(), seed);
    let mut data = mix.data_model(seed);

    let warmup = (accesses / 10) as usize;
    let refs = synthesize_refs(&mut streams, warmup + accesses as usize);

    let mut now = 0u64;
    drive(&mut llc, &mut data, &refs[..warmup], &mut now);
    llc.reset_stats();

    let start = Instant::now();
    drive(&mut llc, &mut data, &refs[warmup..], &mut now);
    let elapsed = start.elapsed().as_secs_f64();

    KernelResult {
        policy: policy.name().to_string(),
        accesses,
        elapsed_secs: elapsed,
        accesses_per_sec: accesses as f64 / elapsed.max(1e-12),
        hits: llc.stats().hits,
    }
}

/// Pulls `n` references round-robin from the per-core streams.
fn synthesize_refs<S: RefSource>(streams: &mut [S], n: usize) -> Vec<KernelRef> {
    let cores = streams.len();
    let mut refs = Vec::with_capacity(n);
    for i in 0..n {
        let core = i % cores;
        let Some(a) = streams[core].next_access(core as u8) else {
            break;
        };
        refs.push(KernelRef {
            block: block_of(a.addr),
            store: a.op == Op::Store,
        });
    }
    refs
}

/// The measurement loop: one request per reference, one insert per miss.
fn drive<D: DataModel>(llc: &mut HybridLlc, data: &mut D, refs: &[KernelRef], now: &mut u64) {
    for r in refs {
        let (req, reuse) = if r.store {
            (LlcReq::GetX, ReuseClass::Write)
        } else {
            (LlcReq::GetS, ReuseClass::Read)
        };
        let resp = llc.request(*now, r.block, req);
        if !resp.hit {
            llc.insert(*now, r.block, r.store, reuse, data);
        }
        *now += CYCLES_PER_ACCESS;
    }
}

/// Builds the `BENCH_kernel.json` report: records `results` under `label`
/// (`"before"` or `"after"`), preserving the other label's section from
/// `existing`, and recomputes per-policy and mean speedups when both
/// sections are present.
pub fn kernel_report(
    existing: Option<&serde_json::Value>,
    label: &str,
    results: &[KernelResult],
    seed: u64,
) -> serde_json::Value {
    use serde_json::{json, Value};

    let section = |rs: &[KernelResult]| -> Value {
        let mut policies = std::collections::BTreeMap::new();
        for r in rs {
            policies.insert(
                r.policy.clone(),
                json!({
                    "accesses": r.accesses,
                    "elapsed_secs": r.elapsed_secs,
                    "accesses_per_sec": r.accesses_per_sec,
                    "hits": r.hits,
                }),
            );
        }
        let mean = mean_throughput_of(rs);
        json!({
            "policies": Value::Object(policies),
            "mean_accesses_per_sec": mean,
        })
    };

    let other_label = if label == "before" { "after" } else { "before" };
    let other = existing
        .and_then(|e| e.get(other_label))
        .cloned()
        .unwrap_or(Value::Null);

    let mut report = std::collections::BTreeMap::new();
    report.insert("schema".to_string(), json!("hllc-bench-kernel/v1"));
    report.insert("workload".to_string(), json!("mix 1 (fig10a headline)"));
    report.insert("seed".to_string(), json!(seed));
    report.insert(label.to_string(), section(results));
    if other != Value::Null {
        report.insert(other_label.to_string(), other);
    }

    let report_v = Value::Object(report.clone());
    if let (Some(before), Some(after)) = (
        mean_throughput(report_v.get("before")),
        mean_throughput(report_v.get("after")),
    ) {
        if before > 0.0 {
            let mut speedup = std::collections::BTreeMap::new();
            speedup.insert("mean".to_string(), json!(after / before));
            for (policy, b) in policy_throughputs(report_v.get("before")) {
                if let Some(a) = policy_throughputs(report_v.get("after"))
                    .into_iter()
                    .find(|(p, _)| *p == policy)
                    .map(|(_, v)| v)
                {
                    if b > 0.0 {
                        speedup.insert(policy, json!(a / b));
                    }
                }
            }
            report.insert("speedup".to_string(), Value::Object(speedup));
        }
    }
    Value::Object(report)
}

/// Mean accesses/sec over a result slice.
fn mean_throughput_of(rs: &[KernelResult]) -> f64 {
    if rs.is_empty() {
        return 0.0;
    }
    rs.iter().map(|r| r.accesses_per_sec).sum::<f64>() / rs.len() as f64
}

/// Reads `mean_accesses_per_sec` out of a report section.
pub fn mean_throughput(section: Option<&serde_json::Value>) -> Option<f64> {
    section?.get("mean_accesses_per_sec")?.as_f64()
}

/// Reads the `(policy, accesses_per_sec)` pairs out of a report section.
fn policy_throughputs(section: Option<&serde_json::Value>) -> Vec<(String, f64)> {
    let Some(serde_json::Value::Object(policies)) = section.and_then(|s| s.get("policies")) else {
        return Vec::new();
    };
    policies
        .iter()
        .filter_map(|(p, v)| Some((p.clone(), v.get("accesses_per_sec")?.as_f64()?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(policy: &str, aps: f64) -> KernelResult {
        KernelResult {
            policy: policy.into(),
            accesses: 1000,
            elapsed_secs: 1000.0 / aps,
            accesses_per_sec: aps,
            hits: 1,
        }
    }

    #[test]
    fn report_records_one_label() {
        let r = kernel_report(None, "before", &[result("BH", 100.0)], 42);
        assert_eq!(mean_throughput(r.get("before")), Some(100.0));
        assert!(r.get("after").is_none());
        assert!(r.get("speedup").is_none());
    }

    #[test]
    fn report_merges_before_and_after_with_speedup() {
        let before = kernel_report(None, "before", &[result("BH", 100.0)], 42);
        let text = serde_json::to_string_pretty(&before).unwrap();
        let parsed = serde_json::from_str(&text).unwrap();
        let merged = kernel_report(Some(&parsed), "after", &[result("BH", 250.0)], 42);
        assert_eq!(mean_throughput(merged.get("before")), Some(100.0));
        assert_eq!(mean_throughput(merged.get("after")), Some(250.0));
        let speedup = merged.get("speedup").expect("speedup section");
        assert_eq!(speedup.get("mean").and_then(|v| v.as_f64()), Some(2.5));
        assert_eq!(speedup.get("BH").and_then(|v| v.as_f64()), Some(2.5));
    }

    #[test]
    fn rewriting_a_label_overwrites_it() {
        let first = kernel_report(None, "after", &[result("BH", 100.0)], 42);
        let second = kernel_report(Some(&first), "after", &[result("BH", 300.0)], 42);
        assert_eq!(mean_throughput(second.get("after")), Some(300.0));
        assert!(second.get("before").is_none());
    }

    #[test]
    fn kernel_measurement_is_sane() {
        let r = measure_kernel(Policy::cp_sd(), 50_000, 7);
        assert_eq!(r.policy, "CP_SD");
        assert_eq!(r.accesses, 50_000);
        assert!(r.accesses_per_sec.is_finite() && r.accesses_per_sec > 0.0);
        assert!(r.hits > 0, "warm kernel must see LLC hits");
    }

    #[test]
    fn kernel_hits_are_deterministic() {
        let a = measure_kernel(Policy::Bh, 30_000, 3);
        let b = measure_kernel(Policy::Bh, 30_000, 3);
        assert_eq!(a.hits, b.hits, "kernel drive must be deterministic");
    }
}
