//! Experiment harness shared by the per-figure/per-table bench targets.
//!
//! Every table and figure of the paper's evaluation has a `[[bench]]`
//! target (with `harness = false`) that regenerates its rows or series:
//! run `cargo bench -p hllc-bench --bench fig10a` (or any other target)
//! and read the ASCII report; a machine-readable JSON copy is written under
//! `crates/bench/target/figures/` (the bench processes run with the
//! package directory as their working directory).
//!
//! Environment knobs (all optional):
//!
//! * `HLLC_MIXES` — how many of the ten Table V mixes to average over
//!   (default 3; the paper uses all 10).
//! * `HLLC_SEED` — base RNG seed (default 42).
//! * `HLLC_FULL=1` — run at the paper's full scale (4 MB LLC, μ = 10¹⁰)
//!   instead of the fast scaled-down configuration. Expect hours.

pub mod exp;
pub mod kernel;
pub mod report;
pub mod stats;
