//! The job-queue executor: scoped worker threads over an atomic cursor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Worker count to use when the caller does not care: the machine's
/// available parallelism, or 1 when that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `run(index, job)` for every job and returns the results **in job
/// order**, regardless of `threads`.
///
/// With `threads <= 1` the jobs run serially on the calling thread — the
/// reference execution. With more, scoped workers pull indices from a shared
/// atomic cursor (so long jobs do not convoy short ones) and send
/// `(index, result)` pairs back over a channel; the merge step then places
/// each result at its index. Because every job derives all of its randomness
/// from its index (see [`crate::job_seed`]) and shares no state with its
/// neighbours, the returned vector is identical for every thread count.
///
/// # Panics
///
/// Propagates the first panicking job (the scope joins all workers first).
pub fn run_indexed<T, R, F>(jobs: Vec<T>, threads: usize, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| run(i, job))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let (slots, cursor, run) = (&slots, &cursor, &run);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("job dispatched twice");
                if tx.send((i, run(i, job))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("worker exited without reporting"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        let out = run_indexed(jobs, 8, |i, job| {
            assert_eq!(i, job);
            // Stagger so completion order differs from submission order.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            job * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize, seed: u64| -> u64 {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ i as u64);
            (0..100).map(|_| rng.gen_range(0u64..1000)).sum()
        };
        let serial = run_indexed(vec![7u64; 32], 1, work);
        let parallel = run_indexed(vec![7u64; 32], 4, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_more_threads_than_jobs() {
        let out = run_indexed(vec![1, 2, 3], 16, |_, j| j + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn handles_empty_job_list() {
        let out: Vec<u32> = run_indexed(Vec::<u32>::new(), 4, |_, j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
