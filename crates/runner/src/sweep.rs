//! The `policy × capacity × way-split × latency × mix × seed` sweep behind
//! `hllc sweep`.

use std::sync::Arc;

use hllc_config::ExperimentSpec;
use hllc_core::{HybridConfig, Policy};
use hllc_forecast::{run_phase, run_phase_streams, PhaseSetup};
use hllc_nvm::NvmArray;
use hllc_trace::mixes;
use hllc_traceio::{ReplayStream, TraceContent, TraceData};
use serde_json::{json, Value};

use crate::pool::run_indexed;
use crate::seed::job_seed;

/// The experiment grid: one job per
/// `policy × capacity × way-split × latency × mix × replicate`.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Policies to sweep, as `(label, policy)` pairs.
    pub policies: Vec<(String, Policy)>,
    /// Table V mix indices, 0-based.
    pub mixes: Vec<usize>,
    /// Seed replicates per grid cell.
    pub seeds: usize,
    /// NVM capacity fractions to pre-degrade to (1.0 = pristine).
    pub capacities: Vec<f64>,
    /// SRAM/NVM way splits to sweep (Fig. 10b axis). A singleton equal to
    /// the base spec's split reproduces the pre-axis job enumeration.
    pub way_splits: Vec<(usize, usize)>,
    /// NVM latency factors to sweep (Fig. 11b axis). A singleton `1.0`
    /// reproduces the pre-axis job enumeration.
    pub nvm_latency_factors: Vec<f64>,
    /// Base seed; every job derives its own via [`job_seed`].
    pub base_seed: u64,
    /// Base experiment every job starts from; the grid axes above edit a
    /// per-job clone of it.
    pub spec: ExperimentSpec,
    /// Warm-up cycles before statistics reset.
    pub warmup_cycles: f64,
    /// Measured cycles after warm-up.
    pub measure_cycles: f64,
    /// Worker threads. Any value produces byte-identical reports.
    pub threads: usize,
    /// Recorded trace replacing the synthetic mixes: every job replays
    /// these reference streams (and recorded block sizes) instead of
    /// instantiating `mixes()[mix]`. `mixes` then only labels the grid.
    pub trace: Option<Arc<TraceContent>>,
}

impl SweepSpec {
    /// Total number of jobs in the grid.
    pub fn job_count(&self) -> usize {
        self.policies.len()
            * self.capacities.len()
            * self.way_splits.len()
            * self.nvm_latency_factors.len()
            * self.mixes.len()
            * self.seeds
    }
}

/// One enumerated cell of the grid, before it runs.
#[derive(Clone, Debug)]
struct SweepJob {
    label: String,
    policy: Policy,
    capacity: f64,
    sram_ways: usize,
    nvm_ways: usize,
    nvm_latency_factor: f64,
    mix: usize,
    rep: usize,
}

/// One cell of the grid, measured.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Position in the deterministic job enumeration.
    pub index: usize,
    /// Policy label from the spec.
    pub policy: String,
    /// Table V mix number, 1-based (as printed by `hllc mixes`).
    pub mix: usize,
    /// Replicate number within the cell, 0-based.
    pub rep: usize,
    /// NVM capacity fraction the array was degraded to.
    pub capacity: f64,
    /// SRAM ways of this job's LLC.
    pub sram_ways: usize,
    /// NVM ways of this job's LLC.
    pub nvm_ways: usize,
    /// NVM latency factor this job ran with.
    pub nvm_latency_factor: f64,
    /// The seed this job ran with (`job_seed(base_seed, index)`).
    pub seed: u64,
    /// Arithmetic-mean IPC across the cores.
    pub ipc: f64,
    /// LLC hit rate over the measured window.
    pub hit_rate: f64,
    /// NVM bytes written over the measured window.
    pub nvm_bytes_written: u64,
}

/// A completed sweep: the spec it ran and its results in job order.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The grid that was run.
    pub spec: SweepSpec,
    /// One result per job, indexed by job order.
    pub results: Vec<JobResult>,
}

/// Builds the (optionally degraded) NVM array for a single-phase run:
/// `None` at full capacity (the phase samples a fresh array itself). The
/// degradation RNG is keyed off `seed` so it follows the per-job stream.
pub fn degraded_array(llc_cfg: &HybridConfig, capacity: f64, seed: u64) -> Option<NvmArray> {
    use rand::SeedableRng;
    if capacity >= 1.0 {
        return None;
    }
    let mut llc = hllc_core::HybridLlc::new(llc_cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0DE6_AADE);
    if let Some(a) = llc.array_mut() {
        a.degrade_to(capacity, &mut rng);
    }
    llc.into_array()
}

/// The deterministic job enumeration: policies outermost, replicates
/// innermost, the new way-split and latency axes between capacities and
/// mixes. The order is part of the report format — job `index` both names
/// the row and derives its seed — and singleton axes keep it identical to
/// the pre-axis enumeration.
fn enumerate_jobs(spec: &SweepSpec) -> Vec<SweepJob> {
    let mut jobs = Vec::with_capacity(spec.job_count());
    for (label, policy) in &spec.policies {
        for &capacity in &spec.capacities {
            for &(sram_ways, nvm_ways) in &spec.way_splits {
                for &nvm_latency_factor in &spec.nvm_latency_factors {
                    for &mix in &spec.mixes {
                        for rep in 0..spec.seeds {
                            jobs.push(SweepJob {
                                label: label.clone(),
                                policy: *policy,
                                capacity,
                                sram_ways,
                                nvm_ways,
                                nvm_latency_factor,
                                mix,
                                rep,
                            });
                        }
                    }
                }
            }
        }
    }
    jobs
}

fn run_job(spec: &SweepSpec, index: usize, job: SweepJob) -> JobResult {
    let seed = job_seed(spec.base_seed, index);
    let mut exp = spec.spec.clone();
    exp.system.sram_ways = job.sram_ways;
    exp.system.nvm_ways = job.nvm_ways;
    exp.system.nvm_latency_factor = job.nvm_latency_factor;
    let setup = PhaseSetup {
        system: exp.system_config(),
        llc: exp.llc_config_for(job.policy),
        warmup_cycles: spec.warmup_cycles,
        measure_cycles: spec.measure_cycles,
        scale: exp.footprint_scale(),
        compressor: exp.compressor(),
    };
    let array = degraded_array(&setup.llc, job.capacity, seed);
    let (m, _) = match &spec.trace {
        Some(trace) => {
            let mut streams = ReplayStream::per_core(trace);
            let data = TraceData::from_content(trace);
            run_phase_streams(&setup, &mut streams, data, array)
        }
        None => run_phase(&setup, &mixes()[job.mix], array, seed),
    };
    JobResult {
        index,
        policy: job.label,
        mix: job.mix + 1,
        rep: job.rep,
        capacity: job.capacity,
        sram_ways: job.sram_ways,
        nvm_ways: job.nvm_ways,
        nvm_latency_factor: job.nvm_latency_factor,
        seed,
        ipc: m.ipc,
        hit_rate: m.hit_rate,
        nvm_bytes_written: m.llc.nvm_bytes_written,
    }
}

/// Runs the grid on `spec.threads` workers and returns the report. The
/// report is a pure function of the spec minus its `threads` field.
pub fn run_sweep(spec: &SweepSpec) -> SweepReport {
    if spec.trace.is_none() {
        for &mix in &spec.mixes {
            assert!(mix < mixes().len(), "mix index {mix} out of range");
        }
    }
    let jobs = enumerate_jobs(spec);
    let results = run_indexed(jobs, spec.threads, |index, job| run_job(spec, index, job));
    SweepReport {
        spec: spec.clone(),
        results,
    }
}

/// Renders the report as JSON. Keys are emitted in sorted order and the
/// thread count is deliberately omitted, so structural equality — and hence
/// serialized byte equality — holds across `--jobs` settings.
pub fn report_json(report: &SweepReport) -> Value {
    let spec = &report.spec;
    let mut summary: Vec<Value> = Vec::new();
    for (label, _) in &spec.policies {
        for &capacity in &spec.capacities {
            // Aggregate in job-index order so float sums are reproducible.
            let cell: Vec<&JobResult> = report
                .results
                .iter()
                .filter(|r| &r.policy == label && r.capacity == capacity)
                .collect();
            if cell.is_empty() {
                continue;
            }
            let n = cell.len() as f64;
            let ipc: f64 = cell.iter().map(|r| r.ipc).sum::<f64>() / n;
            let hit: f64 = cell.iter().map(|r| r.hit_rate).sum::<f64>() / n;
            let bytes: u64 = cell.iter().map(|r| r.nvm_bytes_written).sum();
            summary.push(json!({
                "policy": label,
                "capacity": capacity,
                "mean_ipc": ipc,
                "mean_hit_rate": hit,
                "total_nvm_bytes_written": bytes,
            }));
        }
    }
    json!({
        "experiment": "sweep",
        "base_seed": spec.base_seed,
        "sets": spec.spec.system.llc_sets,
        "warmup_cycles": spec.warmup_cycles,
        "measure_cycles": spec.measure_cycles,
        "policies": spec.policies.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
        "mixes": spec.mixes.iter().map(|m| m + 1).collect::<Vec<_>>(),
        "seeds_per_cell": spec.seeds,
        "capacities": &spec.capacities,
        "way_splits": spec
            .way_splits
            .iter()
            .map(|&(s, n)| json!(vec![s, n]))
            .collect::<Vec<_>>(),
        "nvm_latency_factors": &spec.nvm_latency_factors,
        "trace_workload": spec.trace.as_ref().map(|t| t.header.workload.clone()),
        "jobs": report.results.iter().map(|r| json!({
            "index": r.index,
            "policy": r.policy,
            "mix": r.mix,
            "rep": r.rep,
            "capacity": r.capacity,
            "sram_ways": r.sram_ways,
            "nvm_ways": r.nvm_ways,
            "nvm_latency_factor": r.nvm_latency_factor,
            "seed": r.seed,
            "ipc": r.ipc,
            "hit_rate": r.hit_rate,
            "nvm_bytes_written": r.nvm_bytes_written,
        })).collect::<Vec<_>>(),
        "summary": summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_exp() -> ExperimentSpec {
        let mut exp = ExperimentSpec::preset("scaled").expect("builtin preset");
        exp.system.llc_sets = 64;
        exp.validate().expect("64-set scaled variant");
        exp
    }

    fn tiny_spec(threads: usize) -> SweepSpec {
        let exp = tiny_exp();
        SweepSpec {
            policies: vec![("BH".into(), Policy::Bh), ("CP_SD".into(), Policy::cp_sd())],
            mixes: vec![0],
            seeds: 2,
            capacities: vec![1.0, 0.7],
            way_splits: vec![(exp.system.sram_ways, exp.system.nvm_ways)],
            nvm_latency_factors: vec![exp.system.nvm_latency_factor],
            base_seed: 42,
            spec: exp,
            warmup_cycles: 5_000.0,
            measure_cycles: 10_000.0,
            threads,
            trace: None,
        }
    }

    #[test]
    fn job_enumeration_is_the_full_grid() {
        let spec = tiny_spec(1);
        let jobs = enumerate_jobs(&spec);
        assert_eq!(jobs.len(), spec.job_count());
        assert_eq!(jobs.len(), 8);
        // Policies outermost, replicates innermost.
        assert_eq!(jobs[0].label, "BH");
        assert_eq!(jobs[1].rep, 1);
        assert_eq!(jobs[4].label, "CP_SD");
    }

    #[test]
    fn way_split_and_latency_axes_expand_the_grid() {
        let mut spec = tiny_spec(1);
        spec.capacities = vec![1.0];
        spec.seeds = 1;
        spec.way_splits = vec![(4, 12), (3, 13)];
        spec.nvm_latency_factors = vec![1.0, 1.5];
        assert_eq!(spec.job_count(), 2 * 2 * 2);
        let report = run_sweep(&spec);
        assert_eq!(report.results.len(), 8);
        // Way splits outermost of the two new axes, latency inside.
        assert_eq!(
            (report.results[0].sram_ways, report.results[0].nvm_ways),
            (4, 12)
        );
        assert_eq!(report.results[0].nvm_latency_factor, 1.0);
        assert_eq!(report.results[1].nvm_latency_factor, 1.5);
        assert_eq!(
            (report.results[2].sram_ways, report.results[2].nvm_ways),
            (3, 13)
        );
        for r in &report.results {
            assert!(r.ipc > 0.0, "job {} idle", r.index);
        }
        // The axes land in the report rows and preamble.
        let v = report_json(&report);
        assert_eq!(
            v.get("way_splits").unwrap(),
            &json!(vec![vec![4usize, 12], vec![3, 13]]),
        );
        assert_eq!(v.get("nvm_latency_factors").unwrap(), &json!([1.0, 1.5]));
        let rows = v.get("jobs").and_then(Value::as_array).unwrap();
        assert_eq!(rows[2].get("sram_ways").unwrap(), &json!(3usize));
        assert_eq!(rows[1].get("nvm_latency_factor").unwrap(), &json!(1.5));
    }

    #[test]
    fn sweep_produces_activity_and_ordered_results() {
        let report = run_sweep(&tiny_spec(1));
        assert_eq!(report.results.len(), 8);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.seed, job_seed(42, i));
            assert!(r.ipc > 0.0, "job {i} idle");
        }
    }

    #[test]
    fn report_json_has_summary_per_cell() {
        let report = run_sweep(&tiny_spec(2));
        let v = report_json(&report);
        assert_eq!(v.get("summary").and_then(Value::as_array).unwrap().len(), 4);
        assert_eq!(v.get("jobs").and_then(Value::as_array).unwrap().len(), 8);
    }

    #[test]
    fn trace_replay_sweep_is_deterministic_and_active() {
        use hllc_sim::Access;
        use hllc_traceio::TraceHeader;
        let accesses: Vec<Access> = (0..40_000u64)
            .map(|i| {
                let core = (i % 2) as u8;
                let addr = (((i / 2) % 512) << 6) | (u64::from(core) << 32);
                Access::load(core, addr).with_gap((i % 7) as u32)
            })
            .collect();
        let sizes: Vec<(u64, u8)> = accesses
            .iter()
            .map(|a| (a.addr >> 6, 24u8))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let content = Arc::new(TraceContent {
            header: TraceHeader {
                cores: 2,
                mix: 0,
                seed: 42,
                sets: 64,
                cycles: 10_000.0,
                policy: "bh".into(),
                workload: "synthetic fixture".into(),
                spec_json: None,
            },
            accesses,
            sizes,
        });
        let mut spec = tiny_spec(1);
        spec.trace = Some(content);
        let serial = run_sweep(&spec);
        for r in &serial.results {
            assert!(r.ipc > 0.0, "trace job {} idle", r.index);
        }
        spec.threads = 4;
        let parallel = run_sweep(&spec);
        let key = |rep: &SweepReport| -> Vec<(usize, u64, u64)> {
            rep.results
                .iter()
                .map(|r| (r.index, r.ipc.to_bits(), r.nvm_bytes_written))
                .collect()
        };
        assert_eq!(key(&serial), key(&parallel));
        let v = report_json(&serial);
        assert_eq!(
            v.get("trace_workload").and_then(Value::as_str),
            Some("synthetic fixture")
        );
    }

    #[test]
    fn degraded_array_none_at_full_capacity() {
        let exp = tiny_exp();
        let cfg = exp.llc_config_for(Policy::Bh);
        assert!(degraded_array(&cfg, 1.0, 1).is_none());
        let arr = degraded_array(&cfg, 0.8, 1).expect("degraded array");
        assert!(arr.capacity_fraction() <= 0.8);
    }
}
