//! The `policy × mix × seed × capacity` sweep behind `hllc sweep`.

use std::sync::Arc;

use hllc_compress::CompressorKind;
use hllc_core::{HybridConfig, Policy};
use hllc_forecast::{run_phase, run_phase_streams, PhaseSetup};
use hllc_nvm::NvmArray;
use hllc_sim::SystemConfig;
use hllc_trace::mixes;
use hllc_traceio::{ReplayStream, TraceContent, TraceData};
use serde_json::{json, Value};

use crate::pool::run_indexed;
use crate::seed::job_seed;

/// The experiment grid: one job per `policy × capacity × mix × replicate`.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Policies to sweep, as `(label, policy)` pairs.
    pub policies: Vec<(String, Policy)>,
    /// Table V mix indices, 0-based.
    pub mixes: Vec<usize>,
    /// Seed replicates per `(policy, capacity, mix)` cell.
    pub seeds: usize,
    /// NVM capacity fractions to pre-degrade to (1.0 = pristine).
    pub capacities: Vec<f64>,
    /// Base seed; every job derives its own via [`job_seed`].
    pub base_seed: u64,
    /// LLC sets (4096 = the paper's full-scale 4 MB LLC).
    pub sets: usize,
    /// Warm-up cycles before statistics reset.
    pub warmup_cycles: f64,
    /// Measured cycles after warm-up.
    pub measure_cycles: f64,
    /// Worker threads. Any value produces byte-identical reports.
    pub threads: usize,
    /// Recorded trace replacing the synthetic mixes: every job replays
    /// these reference streams (and recorded block sizes) instead of
    /// instantiating `mixes()[mix]`. `mixes` then only labels the grid.
    pub trace: Option<Arc<TraceContent>>,
}

impl SweepSpec {
    /// Total number of jobs in the grid.
    pub fn job_count(&self) -> usize {
        self.policies.len() * self.capacities.len() * self.mixes.len() * self.seeds
    }
}

/// One cell of the grid, measured.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Position in the deterministic job enumeration.
    pub index: usize,
    /// Policy label from the spec.
    pub policy: String,
    /// Table V mix number, 1-based (as printed by `hllc mixes`).
    pub mix: usize,
    /// Replicate number within the cell, 0-based.
    pub rep: usize,
    /// NVM capacity fraction the array was degraded to.
    pub capacity: f64,
    /// The seed this job ran with (`job_seed(base_seed, index)`).
    pub seed: u64,
    /// Arithmetic-mean IPC across the cores.
    pub ipc: f64,
    /// LLC hit rate over the measured window.
    pub hit_rate: f64,
    /// NVM bytes written over the measured window.
    pub nvm_bytes_written: u64,
}

/// A completed sweep: the spec it ran and its results in job order.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The grid that was run.
    pub spec: SweepSpec,
    /// One result per job, indexed by job order.
    pub results: Vec<JobResult>,
}

/// Builds the (optionally degraded) NVM array for a single-phase run:
/// `None` at full capacity (the phase samples a fresh array itself). The
/// degradation RNG is keyed off `seed` so it follows the per-job stream.
pub fn degraded_array(llc_cfg: &HybridConfig, capacity: f64, seed: u64) -> Option<NvmArray> {
    use rand::SeedableRng;
    if capacity >= 1.0 {
        return None;
    }
    let mut llc = hllc_core::HybridLlc::new(llc_cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0DE6_AADE);
    if let Some(a) = llc.array_mut() {
        a.degrade_to(capacity, &mut rng);
    }
    llc.into_array()
}

/// The deterministic job enumeration: policies outermost, replicates
/// innermost. The order is part of the report format — job `index` both
/// names the row and derives its seed.
fn enumerate_jobs(spec: &SweepSpec) -> Vec<(String, Policy, f64, usize, usize)> {
    let mut jobs = Vec::with_capacity(spec.job_count());
    for (label, policy) in &spec.policies {
        for &capacity in &spec.capacities {
            for &mix in &spec.mixes {
                for rep in 0..spec.seeds {
                    jobs.push((label.clone(), *policy, capacity, mix, rep));
                }
            }
        }
    }
    jobs
}

fn run_job(
    spec: &SweepSpec,
    index: usize,
    (label, policy, capacity, mix_index, rep): (String, Policy, f64, usize, usize),
) -> JobResult {
    let seed = job_seed(spec.base_seed, index);
    let mut system = SystemConfig::scaled_down();
    system.llc.sets = spec.sets;
    let llc = HybridConfig::from_geometry(system.llc, policy)
        .with_endurance(1e8, 0.2)
        .with_epoch_cycles(100_000)
        .with_dueling_smoothing(0.6);
    let setup = PhaseSetup {
        system,
        llc,
        warmup_cycles: spec.warmup_cycles,
        measure_cycles: spec.measure_cycles,
        scale: PhaseSetup::scale_for_sets(spec.sets),
        compressor: CompressorKind::Bdi,
    };
    let array = degraded_array(&setup.llc, capacity, seed);
    let (m, _) = match &spec.trace {
        Some(trace) => {
            let mut streams = ReplayStream::per_core(trace);
            let data = TraceData::from_content(trace);
            run_phase_streams(&setup, &mut streams, data, array)
        }
        None => run_phase(&setup, &mixes()[mix_index], array, seed),
    };
    JobResult {
        index,
        policy: label,
        mix: mix_index + 1,
        rep,
        capacity,
        seed,
        ipc: m.ipc,
        hit_rate: m.hit_rate,
        nvm_bytes_written: m.llc.nvm_bytes_written,
    }
}

/// Runs the grid on `spec.threads` workers and returns the report. The
/// report is a pure function of the spec minus its `threads` field.
pub fn run_sweep(spec: &SweepSpec) -> SweepReport {
    if spec.trace.is_none() {
        for &mix in &spec.mixes {
            assert!(mix < mixes().len(), "mix index {mix} out of range");
        }
    }
    let jobs = enumerate_jobs(spec);
    let results = run_indexed(jobs, spec.threads, |index, job| run_job(spec, index, job));
    SweepReport {
        spec: spec.clone(),
        results,
    }
}

/// Renders the report as JSON. Keys are emitted in sorted order and the
/// thread count is deliberately omitted, so structural equality — and hence
/// serialized byte equality — holds across `--jobs` settings.
pub fn report_json(report: &SweepReport) -> Value {
    let spec = &report.spec;
    let mut summary: Vec<Value> = Vec::new();
    for (label, _) in &spec.policies {
        for &capacity in &spec.capacities {
            // Aggregate in job-index order so float sums are reproducible.
            let cell: Vec<&JobResult> = report
                .results
                .iter()
                .filter(|r| &r.policy == label && r.capacity == capacity)
                .collect();
            if cell.is_empty() {
                continue;
            }
            let n = cell.len() as f64;
            let ipc: f64 = cell.iter().map(|r| r.ipc).sum::<f64>() / n;
            let hit: f64 = cell.iter().map(|r| r.hit_rate).sum::<f64>() / n;
            let bytes: u64 = cell.iter().map(|r| r.nvm_bytes_written).sum();
            summary.push(json!({
                "policy": label,
                "capacity": capacity,
                "mean_ipc": ipc,
                "mean_hit_rate": hit,
                "total_nvm_bytes_written": bytes,
            }));
        }
    }
    json!({
        "experiment": "sweep",
        "base_seed": spec.base_seed,
        "sets": spec.sets,
        "warmup_cycles": spec.warmup_cycles,
        "measure_cycles": spec.measure_cycles,
        "policies": spec.policies.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
        "mixes": spec.mixes.iter().map(|m| m + 1).collect::<Vec<_>>(),
        "seeds_per_cell": spec.seeds,
        "capacities": &spec.capacities,
        "trace_workload": spec.trace.as_ref().map(|t| t.header.workload.clone()),
        "jobs": report.results.iter().map(|r| json!({
            "index": r.index,
            "policy": r.policy,
            "mix": r.mix,
            "rep": r.rep,
            "capacity": r.capacity,
            "seed": r.seed,
            "ipc": r.ipc,
            "hit_rate": r.hit_rate,
            "nvm_bytes_written": r.nvm_bytes_written,
        })).collect::<Vec<_>>(),
        "summary": summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(threads: usize) -> SweepSpec {
        SweepSpec {
            policies: vec![("BH".into(), Policy::Bh), ("CP_SD".into(), Policy::cp_sd())],
            mixes: vec![0],
            seeds: 2,
            capacities: vec![1.0, 0.7],
            base_seed: 42,
            sets: 64,
            warmup_cycles: 5_000.0,
            measure_cycles: 10_000.0,
            threads,
            trace: None,
        }
    }

    #[test]
    fn job_enumeration_is_the_full_grid() {
        let spec = tiny_spec(1);
        let jobs = enumerate_jobs(&spec);
        assert_eq!(jobs.len(), spec.job_count());
        assert_eq!(jobs.len(), 8);
        // Policies outermost, replicates innermost.
        assert_eq!(jobs[0].0, "BH");
        assert_eq!(jobs[1].4, 1);
        assert_eq!(jobs[4].0, "CP_SD");
    }

    #[test]
    fn sweep_produces_activity_and_ordered_results() {
        let report = run_sweep(&tiny_spec(1));
        assert_eq!(report.results.len(), 8);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.seed, job_seed(42, i));
            assert!(r.ipc > 0.0, "job {i} idle");
        }
    }

    #[test]
    fn report_json_has_summary_per_cell() {
        let report = run_sweep(&tiny_spec(2));
        let v = report_json(&report);
        assert_eq!(v.get("summary").and_then(Value::as_array).unwrap().len(), 4);
        assert_eq!(v.get("jobs").and_then(Value::as_array).unwrap().len(), 8);
    }

    #[test]
    fn trace_replay_sweep_is_deterministic_and_active() {
        use hllc_sim::Access;
        use hllc_traceio::TraceHeader;
        let accesses: Vec<Access> = (0..40_000u64)
            .map(|i| {
                let core = (i % 2) as u8;
                let addr = (((i / 2) % 512) << 6) | (u64::from(core) << 32);
                Access::load(core, addr).with_gap((i % 7) as u32)
            })
            .collect();
        let sizes: Vec<(u64, u8)> = accesses
            .iter()
            .map(|a| (a.addr >> 6, 24u8))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let content = Arc::new(TraceContent {
            header: TraceHeader {
                cores: 2,
                mix: 0,
                seed: 42,
                sets: 64,
                cycles: 10_000.0,
                policy: "bh".into(),
                workload: "synthetic fixture".into(),
            },
            accesses,
            sizes,
        });
        let mut spec = tiny_spec(1);
        spec.trace = Some(content);
        let serial = run_sweep(&spec);
        for r in &serial.results {
            assert!(r.ipc > 0.0, "trace job {} idle", r.index);
        }
        spec.threads = 4;
        let parallel = run_sweep(&spec);
        let key = |rep: &SweepReport| -> Vec<(usize, u64, u64)> {
            rep.results
                .iter()
                .map(|r| (r.index, r.ipc.to_bits(), r.nvm_bytes_written))
                .collect()
        };
        assert_eq!(key(&serial), key(&parallel));
        let v = report_json(&serial);
        assert_eq!(
            v.get("trace_workload").and_then(Value::as_str),
            Some("synthetic fixture")
        );
    }

    #[test]
    fn degraded_array_none_at_full_capacity() {
        let spec = tiny_spec(1);
        let mut system = SystemConfig::scaled_down();
        system.llc.sets = spec.sets;
        let cfg = HybridConfig::from_geometry(system.llc, Policy::Bh).with_endurance(1e8, 0.2);
        assert!(degraded_array(&cfg, 1.0, 1).is_none());
        let arr = degraded_array(&cfg, 0.8, 1).expect("degraded array");
        assert!(arr.capacity_fraction() <= 0.8);
    }
}
