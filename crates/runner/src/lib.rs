//! Deterministic parallel experiment runner.
//!
//! Every experiment in this workspace is a grid — `policy × mix × seed ×
//! config-variant` — of mutually independent simulations. This crate fans
//! such grids across worker threads while guaranteeing that the *results are
//! a pure function of the job list and the base seed*, never of the thread
//! count or of scheduling order:
//!
//! * each job draws its RNG seed from a SplitMix64 stream keyed by
//!   `(base_seed, job_index)` only ([`job_seed`]);
//! * jobs share nothing while running — each builds its own hierarchy,
//!   LLC, and metrics;
//! * results are merged back **in job-index order** ([`run_indexed`]), so
//!   floating-point reductions see operands in one fixed sequence.
//!
//! Consequently `--jobs 1` and `--jobs N` produce byte-identical reports,
//! which `tests/sweep_determinism.rs` (in the root package) enforces.
//!
//! The crate has two layers: [`run_indexed`] / [`job_seed`] are the generic
//! executor any harness can refactor onto, and [`run_sweep`] is the
//! ready-made `policy × mix × seed × capacity` sweep behind `hllc sweep`.

mod pool;
mod seed;
mod sweep;

pub use pool::{default_threads, run_indexed};
pub use seed::job_seed;
pub use sweep::{degraded_array, report_json, run_sweep, JobResult, SweepReport, SweepSpec};
