//! Per-job seed derivation.

/// Derives the RNG seed of job `job_index` from `base_seed`.
///
/// The seed is the `job_index + 1`-th output of the SplitMix64 stream
/// started at `base_seed` — computed in O(1) because SplitMix64's state
/// advances by a fixed odd constant, so the stream can be indexed directly.
/// Two properties matter for the runner:
///
/// * the seed depends only on `(base_seed, job_index)`, never on which
///   worker thread runs the job or in what order, and
/// * neighbouring job indices get statistically independent seeds (the
///   whole point of SplitMix64's output mix).
pub fn job_seed(base_seed: u64, job_index: usize) -> u64 {
    let mut state = base_seed.wrapping_add((job_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rand::splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_splitmix_stream() {
        let base = 42u64;
        let mut state = base;
        for i in 0..64 {
            assert_eq!(job_seed(base, i), rand::splitmix64(&mut state), "job {i}");
        }
    }

    #[test]
    fn distinct_across_jobs_and_bases() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for i in 0..256 {
                assert!(
                    seen.insert(job_seed(base, i)),
                    "collision at base={base} i={i}"
                );
            }
        }
    }
}
