//! LEB128 varints and zigzag signed mapping for compact record encoding.
//!
//! Trace records store addresses as per-core deltas: consecutive references
//! of one application are usually close in the address space, so a zigzag
//! delta fits in one or two bytes where the raw 64-bit address needs eight.

/// Appends `v` to `buf` as an unsigned LEB128 varint (1–10 bytes).
pub(crate) fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a varint from `bytes` at `*pos`, advancing it. `None` on overrun
/// or on a varint longer than 10 bytes (malformed).
pub(crate) fn read_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    for shift in 0..10 {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << (7 * shift);
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Maps a signed delta onto the unsigned varint space (0, -1, 1, -2, …).
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_u64() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0x7F);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_u64(&buf[..buf.len() - 1], &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small.
        assert!(zigzag(-3) < 8);
    }
}
