//! Streaming trace writer.

use std::io::Write;

use hllc_sim::{Access, Op};

use crate::crc32::crc32;
use crate::format::{encode_data_entries, frame_chunk, ChunkKind, TraceError, TraceHeader, MAGIC};
use crate::varint;

/// Access records buffered before a chunk is framed and flushed.
const CHUNK_RECORDS: usize = 4096;

/// Streams a trace to any [`Write`] sink: the header goes out immediately,
/// access records and data-model entries accumulate into CRC-framed chunks
/// that flush every [`CHUNK_RECORDS`] records, and [`TraceWriter::finish`]
/// seals the file with the end marker.
///
/// The push methods are infallible so they can sit inside the simulator's
/// hot loop (and inside trait impls that cannot return errors): the first
/// I/O failure poisons the writer, later pushes become no-ops, and
/// [`TraceWriter::finish`] reports the stored error.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: Option<W>,
    error: Option<TraceError>,
    /// Last address per core, for delta encoding.
    prev_addr: Vec<u64>,
    access_buf: Vec<u8>,
    access_in_buf: u64,
    data_buf: Vec<(u64, u8)>,
    accesses: u64,
    data_entries: u64,
    chunks: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the magic and header to `sink` and returns the open writer.
    pub fn new(mut sink: W, header: &TraceHeader) -> Result<Self, TraceError> {
        sink.write_all(&MAGIC)?;
        let payload = header.encode();
        sink.write_all(&(payload.len() as u32).to_le_bytes())?;
        sink.write_all(&payload)?;
        sink.write_all(&crc32(&payload).to_le_bytes())?;
        Ok(TraceWriter {
            sink: Some(sink),
            error: None,
            prev_addr: vec![0; usize::from(header.cores)],
            access_buf: Vec::new(),
            access_in_buf: 0,
            data_buf: Vec::new(),
            accesses: 0,
            data_entries: 0,
            chunks: 0,
        })
    }

    /// Appends one access record. Core numbers at or beyond the header's
    /// core count poison the writer (the file would not replay).
    pub fn push_access(&mut self, a: &Access) {
        if self.error.is_some() || self.sink.is_none() {
            return;
        }
        let core = usize::from(a.core);
        if core >= self.prev_addr.len() {
            self.error = Some(TraceError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "access core {core} >= header cores {}",
                    self.prev_addr.len()
                ),
            )));
            return;
        }
        let mut byte0 = a.core & 0x7F;
        if a.op == Op::Store {
            byte0 |= 0x80;
        }
        self.access_buf.push(byte0);
        let delta = (a.addr as i64).wrapping_sub(self.prev_addr[core] as i64);
        varint::write_u64(&mut self.access_buf, varint::zigzag(delta));
        varint::write_u64(&mut self.access_buf, u64::from(a.inst_gap));
        self.prev_addr[core] = a.addr;
        self.access_in_buf += 1;
        self.accesses += 1;
        if self.access_in_buf as usize >= CHUNK_RECORDS {
            self.flush_pending();
        }
    }

    /// Appends one data-model entry: the compressed size the simulated LLC
    /// observed for `block`. Entries flush alongside the access chunks.
    pub fn push_size(&mut self, block: u64, size: u8) {
        if self.error.is_some() || self.sink.is_none() {
            return;
        }
        self.data_buf.push((block, size));
        self.data_entries += 1;
        if self.data_buf.len() >= CHUNK_RECORDS {
            self.flush_data();
        }
    }

    /// Access records pushed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Data entries pushed so far.
    pub fn data_entries(&self) -> u64 {
        self.data_entries
    }

    /// The first error encountered, if the writer is poisoned.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    fn write_chunk(&mut self, kind: ChunkKind, payload: &[u8]) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        if let Err(e) = sink.write_all(&frame_chunk(kind, payload)) {
            self.error.get_or_insert(TraceError::Io(e));
            return;
        }
        self.chunks += 1;
    }

    fn flush_data(&mut self) {
        if self.data_buf.is_empty() || self.error.is_some() {
            return;
        }
        let payload = encode_data_entries(&self.data_buf);
        self.data_buf.clear();
        self.write_chunk(ChunkKind::Data, &payload);
    }

    fn flush_pending(&mut self) {
        // Data entries first: a streaming reader then knows every size
        // recorded up to this point before it replays past it.
        self.flush_data();
        if self.access_in_buf == 0 || self.error.is_some() {
            return;
        }
        let mut payload = Vec::with_capacity(self.access_buf.len() + 4);
        varint::write_u64(&mut payload, self.access_in_buf);
        payload.extend_from_slice(&self.access_buf);
        self.access_buf.clear();
        self.access_in_buf = 0;
        self.write_chunk(ChunkKind::Access, &payload);
    }

    /// Flushes pending chunks, writes the end marker, and returns the sink.
    /// Fails with the first error the writer swallowed, if any.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.flush_pending();
        self.flush_data();
        self.write_chunk(ChunkKind::End, &[]);
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut sink = self.sink.take().expect("sink present until finish");
        sink.flush()?;
        Ok(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> TraceHeader {
        TraceHeader {
            cores: 2,
            mix: 1,
            seed: 7,
            sets: 512,
            cycles: 1000.0,
            policy: "bh".into(),
            workload: "mix 1".into(),
            spec_json: None,
        }
    }

    #[test]
    fn writes_magic_then_header() {
        let w = TraceWriter::new(Vec::new(), &header()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..8], &MAGIC);
        // Ends with the end-marker chunk: tag 'E', zero length, CRC.
        let tail = &bytes[bytes.len() - 9..];
        assert_eq!(tail[0], b'E');
        assert_eq!(u32::from_le_bytes(tail[1..5].try_into().unwrap()), 0);
    }

    #[test]
    fn out_of_range_core_poisons() {
        let mut w = TraceWriter::new(Vec::new(), &header()).unwrap();
        w.push_access(&Access::load(5, 0x40));
        assert!(w.error().is_some());
        assert!(w.finish().is_err());
    }

    #[test]
    fn sink_error_is_reported_at_finish() {
        struct Failing(usize);
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Enough successful writes for the header, then failure.
        let mut w = TraceWriter::new(Failing(4), &header()).unwrap();
        for i in 0..10_000u64 {
            w.push_access(&Access::load(0, i << 6));
        }
        assert!(matches!(w.finish(), Err(TraceError::Io(_))));
    }
}
