//! The `hllc` trace container format (version 2).
//!
//! ```text
//! file   := magic header chunk* end-chunk
//! magic  := "HLLCTRC\0"                         (8 bytes)
//! header := len:u32le payload crc32(payload):u32le
//! chunk  := kind:u8 len:u32le payload crc32(kind ++ payload):u32le
//! ```
//!
//! The header payload is fixed fields followed by two length-prefixed
//! strings, and — since version 2 — an optional u32-length-prefixed JSON
//! blob carrying the resolved experiment spec of the recording system, so
//! a replay reconstructs the exact configuration instead of assuming a
//! default (see [`TraceHeader::encode`]). Version 1 files (no blob,
//! cores capped at 8) still decode. Chunks come in three kinds:
//! access records (`'A'`), data-model entries (`'D'`), and the explicit
//! end-of-trace marker (`'E'`, empty payload) that distinguishes a clean
//! close from a truncated file. Decoding stops with a structured
//! [`TraceError`] naming the failing chunk — never a panic — so a corrupted
//! trace reports *where* it broke.

use crate::crc32::crc32;
use crate::varint;

/// File magic: identifies a hybrid-LLC trace.
pub const MAGIC: [u8; 8] = *b"HLLCTRC\0";

/// Current format version. Readers accept 1 and 2, reject anything newer.
pub const VERSION: u16 = 2;

/// Hard cap on a chunk payload (16 MiB): a corrupt length field must not
/// drive an allocation of the claimed size.
pub const MAX_CHUNK_BYTES: u32 = 16 << 20;

/// Chunk kinds of format version 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkKind {
    /// Delta/varint-encoded access records.
    Access,
    /// Data-model entries: `(block, compressed size)` pairs, recorded the
    /// first time the simulated LLC sized each block.
    Data,
    /// End-of-trace marker (empty payload).
    End,
}

impl ChunkKind {
    /// On-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            ChunkKind::Access => b'A',
            ChunkKind::Data => b'D',
            ChunkKind::End => b'E',
        }
    }

    /// Parses a tag byte.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            b'A' => Some(ChunkKind::Access),
            b'D' => Some(ChunkKind::Data),
            b'E' => Some(ChunkKind::End),
            _ => None,
        }
    }
}

/// Self-describing trace metadata, stored once at the front of the file.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceHeader {
    /// Cores whose reference streams the trace interleaves (1–16 since
    /// version 2; version 1 capped at 8 to match its directory width).
    pub cores: u8,
    /// Table V mix number, 1-based; 0 for foreign/unknown workloads.
    pub mix: u8,
    /// Base seed of the recorded run (reproducibility metadata).
    pub seed: u64,
    /// LLC sets of the recording system (footprint scale = sets/4096).
    pub sets: u32,
    /// Measured cycles the recording ran for (warm-up was 20% on top);
    /// replay uses this as its default cycle budget.
    pub cycles: f64,
    /// Label of the policy the recording ran under (metadata only — any
    /// policy can replay the trace).
    pub policy: String,
    /// Workload label, e.g. `"mix 3"` (metadata only).
    pub workload: String,
    /// Resolved experiment spec of the recording system, as JSON (version
    /// 2; `None` in version-1 files). Opaque to this crate — producing and
    /// interpreting it is `hllc-config`'s job, keeping the trace layer
    /// free of configuration knowledge.
    pub spec_json: Option<String>,
}

impl TraceHeader {
    /// Serializes the header payload (excluding magic, length, and CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(64);
        p.extend_from_slice(&VERSION.to_le_bytes());
        p.push(self.cores);
        p.push(self.mix);
        p.extend_from_slice(&self.seed.to_le_bytes());
        p.extend_from_slice(&self.sets.to_le_bytes());
        p.extend_from_slice(&self.cycles.to_bits().to_le_bytes());
        for s in [&self.policy, &self.workload] {
            let bytes = s.as_bytes();
            let len = bytes.len().min(u8::MAX as usize);
            p.push(len as u8);
            p.extend_from_slice(&bytes[..len]);
        }
        // v2: u32-length-prefixed spec blob; 0 marks "absent".
        match &self.spec_json {
            Some(spec) => {
                p.extend_from_slice(&(spec.len() as u32).to_le_bytes());
                p.extend_from_slice(spec.as_bytes());
            }
            None => p.extend_from_slice(&0u32.to_le_bytes()),
        }
        p
    }

    /// Decodes a header payload. The CRC has already been verified.
    pub fn decode(p: &[u8]) -> Result<Self, TraceError> {
        let bad = |what: &str| TraceError::HeaderCorrupt(what.to_string());
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], TraceError> {
            let end = pos.checked_add(n).filter(|&e| e <= p.len());
            let end = end.ok_or_else(|| bad("header payload too short"))?;
            let s = &p[pos..end];
            pos = end;
            Ok(s)
        };
        let version = u16::from_le_bytes(take(2)?.try_into().unwrap());
        if version == 0 || version > VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let max_cores = if version == 1 { 8 } else { 16 };
        let cores = take(1)?[0];
        if cores == 0 || cores > max_cores {
            return Err(bad(&format!("core count must be 1..={max_cores}")));
        }
        let mix = take(1)?[0];
        let seed = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let sets = u32::from_le_bytes(take(4)?.try_into().unwrap());
        if sets == 0 {
            return Err(bad("sets must be positive"));
        }
        let cycles = f64::from_bits(u64::from_le_bytes(take(8)?.try_into().unwrap()));
        if !cycles.is_finite() || cycles < 0.0 {
            return Err(bad("cycles must be finite and non-negative"));
        }
        let mut strings = Vec::with_capacity(2);
        for what in ["policy label", "workload label"] {
            let len = take(1)?[0] as usize;
            let bytes = take(len)?;
            let s = std::str::from_utf8(bytes).map_err(|_| bad(what))?;
            strings.push(s.to_string());
        }
        let workload = strings.pop().unwrap();
        let policy = strings.pop().unwrap();
        let spec_json = if version >= 2 {
            let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            if len as u32 > MAX_CHUNK_BYTES {
                return Err(bad("spec blob length exceeds the chunk cap"));
            }
            if len == 0 {
                None
            } else {
                let bytes = take(len)?;
                let s = std::str::from_utf8(bytes).map_err(|_| bad("spec blob"))?;
                Some(s.to_string())
            }
        } else {
            None
        };
        Ok(TraceHeader {
            cores,
            mix,
            seed,
            sets,
            cycles,
            policy,
            workload,
            spec_json,
        })
    }
}

/// Frames `payload` as a chunk of `kind`: tag, length, payload, CRC.
pub(crate) fn frame_chunk(kind: ChunkKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 9);
    out.push(kind.tag());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let mut crc_input = Vec::with_capacity(payload.len() + 1);
    crc_input.push(kind.tag());
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out
}

/// Verifies a chunk's CRC given its tag and payload.
pub(crate) fn chunk_crc(kind_tag: u8, payload: &[u8]) -> u32 {
    let mut crc_input = Vec::with_capacity(payload.len() + 1);
    crc_input.push(kind_tag);
    crc_input.extend_from_slice(payload);
    crc32(&crc_input)
}

/// Everything that can go wrong reading or writing a trace. Decoding
/// failures carry the 0-based index of the chunk where the file broke.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The header names a format version this reader does not speak.
    UnsupportedVersion(u16),
    /// The header failed its CRC or decoded to nonsense.
    HeaderCorrupt(String),
    /// The file ended inside chunk `chunk` (or before the end marker when
    /// `chunk` equals the number of complete chunks read).
    Truncated {
        /// 0-based index of the incomplete chunk.
        chunk: u64,
    },
    /// Chunk `chunk` failed its CRC: stored vs recomputed.
    CrcMismatch {
        /// 0-based index of the failing chunk.
        chunk: u64,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed from the chunk bytes.
        computed: u32,
    },
    /// Chunk `chunk` passed its CRC but its contents are malformed (unknown
    /// kind, overlong length, bad varint, out-of-range core, …).
    BadChunk {
        /// 0-based index of the failing chunk.
        chunk: u64,
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a hybrid-LLC trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this reader speaks {VERSION})"
                )
            }
            TraceError::HeaderCorrupt(why) => write!(f, "corrupt trace header: {why}"),
            TraceError::Truncated { chunk } => {
                write!(f, "trace truncated inside chunk {chunk}")
            }
            TraceError::CrcMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "chunk {chunk} corrupt: stored CRC {stored:#010x}, computed {computed:#010x}"
            ),
            TraceError::BadChunk { chunk, reason } => {
                write!(f, "chunk {chunk} malformed: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Encodes a batch of data-model entries (shared by writer tests and the
/// writer itself): count, then zigzag block deltas + size bytes.
pub(crate) fn encode_data_entries(entries: &[(u64, u8)]) -> Vec<u8> {
    let mut p = Vec::with_capacity(entries.len() * 3 + 4);
    varint::write_u64(&mut p, entries.len() as u64);
    let mut prev = 0u64;
    for &(block, size) in entries {
        let delta = (block as i64).wrapping_sub(prev as i64);
        varint::write_u64(&mut p, varint::zigzag(delta));
        p.push(size);
        prev = block;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> TraceHeader {
        TraceHeader {
            cores: 4,
            mix: 3,
            seed: 42,
            sets: 512,
            cycles: 2.0e5,
            policy: "cp_sd".into(),
            workload: "mix 3".into(),
            spec_json: None,
        }
    }

    /// Re-encodes a header in the version-1 layout: v1 fixed fields and
    /// strings, no spec blob.
    fn encode_v1(h: &TraceHeader) -> Vec<u8> {
        let mut p = h.encode();
        p[0..2].copy_from_slice(&1u16.to_le_bytes());
        p.truncate(p.len() - 4); // drop the empty spec blob length
        p
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        assert_eq!(TraceHeader::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn header_round_trips_with_spec_blob() {
        let mut h = header();
        h.spec_json = Some(r#"{"name":"scaled"}"#.into());
        assert_eq!(TraceHeader::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn version1_payload_still_decodes() {
        let h = header();
        let decoded = TraceHeader::decode(&encode_v1(&h)).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(decoded.spec_json, None);
    }

    #[test]
    fn core_cap_depends_on_version() {
        let mut h = header();
        h.cores = 12;
        // v2 accepts up to 16 cores...
        assert_eq!(TraceHeader::decode(&h.encode()).unwrap().cores, 12);
        // ...but the same count is corrupt in a v1 layout (8-bit mask era).
        assert!(matches!(
            TraceHeader::decode(&encode_v1(&h)),
            Err(TraceError::HeaderCorrupt(_))
        ));
        h.cores = 17;
        assert!(matches!(
            TraceHeader::decode(&h.encode()),
            Err(TraceError::HeaderCorrupt(_))
        ));
    }

    #[test]
    fn header_rejects_bad_fields() {
        let mut zero_cores = header();
        zero_cores.cores = 0;
        assert!(matches!(
            TraceHeader::decode(&zero_cores.encode()),
            Err(TraceError::HeaderCorrupt(_))
        ));

        let mut p = header().encode();
        p.truncate(5);
        assert!(matches!(
            TraceHeader::decode(&p),
            Err(TraceError::HeaderCorrupt(_))
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut p = header().encode();
        p[0..2].copy_from_slice(&(VERSION + 1).to_le_bytes());
        assert!(matches!(
            TraceHeader::decode(&p),
            Err(TraceError::UnsupportedVersion(v)) if v == VERSION + 1
        ));
    }

    #[test]
    fn chunk_framing_is_verifiable() {
        let framed = frame_chunk(ChunkKind::Access, b"payload");
        assert_eq!(framed[0], b'A');
        let len = u32::from_le_bytes(framed[1..5].try_into().unwrap()) as usize;
        assert_eq!(len, 7);
        let payload = &framed[5..5 + len];
        let stored = u32::from_le_bytes(framed[5 + len..].try_into().unwrap());
        assert_eq!(stored, chunk_crc(b'A', payload));
    }

    #[test]
    fn errors_display_the_failing_chunk() {
        let e = TraceError::CrcMismatch {
            chunk: 7,
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("chunk 7"));
        let t = TraceError::Truncated { chunk: 3 };
        assert!(t.to_string().contains("chunk 3"));
    }
}
