//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Every chunk of a trace file carries the checksum of its kind byte plus
//! payload, so truncation and bit-rot are detected at the chunk where they
//! happen instead of corrupting a replay silently.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"hybrid llc trace chunk".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
