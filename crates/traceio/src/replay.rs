//! Replay: feed a recorded trace back through the hierarchy.
//!
//! [`ReplayStream`] implements the same `next_access` contract as the
//! synthetic `AppStream`, so the existing interleaving drivers
//! (`drive_cycles` / `drive_accesses`) run a hierarchy from a file exactly
//! as they run it from a generator. Under the policy and configuration the
//! trace was recorded with, the laggard-core selection reproduces the
//! recorded global order bit-for-bit; under a *different* policy the same
//! per-core reference streams are re-interleaved by the simulated clocks —
//! which is precisely what makes one trace a fair input to every policy.

use std::collections::HashMap;

use hllc_sim::{Access, DataModel};
use hllc_trace::RefSource;

use crate::reader::TraceContent;

/// One core's recorded reference stream, consumed front to back.
#[derive(Clone, Debug)]
pub struct ReplayStream {
    accesses: Vec<Access>,
    cursor: usize,
}

impl ReplayStream {
    /// Splits a trace into one replay stream per core (index = core).
    pub fn per_core(content: &TraceContent) -> Vec<ReplayStream> {
        content
            .per_core()
            .into_iter()
            .map(|accesses| ReplayStream {
                accesses,
                cursor: 0,
            })
            .collect()
    }

    /// References not yet replayed.
    pub fn remaining(&self) -> usize {
        self.accesses.len() - self.cursor
    }
}

impl RefSource for ReplayStream {
    /// Pops the next recorded reference. The record keeps its recorded core
    /// stamp; `core` is only sanity-checked in debug builds (the driver
    /// indexes streams by core, so they always agree).
    fn next_access(&mut self, core: u8) -> Option<Access> {
        let a = *self.accesses.get(self.cursor)?;
        self.cursor += 1;
        debug_assert_eq!(a.core, core, "replay stream driven as the wrong core");
        Some(a)
    }
}

/// A [`DataModel`] serving the compressed sizes the recorded run observed.
///
/// Every block the recorded LLC sized is present, so a same-configuration
/// replay never misses; a replay that sizes *new* blocks (different LLC
/// geometry evicting different victims) falls back to incompressible
/// (64 B) and counts the miss.
#[derive(Clone, Debug)]
pub struct TraceData {
    sizes: HashMap<u64, u8>,
    fallbacks: u64,
}

impl TraceData {
    /// Builds the size table from a trace. Later duplicates win (there are
    /// none in well-formed traces: the recorder logs each block once).
    pub fn from_content(content: &TraceContent) -> Self {
        TraceData {
            sizes: content.sizes.iter().copied().collect(),
            fallbacks: 0,
        }
    }

    /// Blocks in the table.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when the trace carried no data entries.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Queries that missed the table and fell back to 64 B.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

impl DataModel for TraceData {
    fn compressed_size(&mut self, block: u64) -> u8 {
        match self.sizes.get(&block) {
            Some(&s) => s,
            None => {
                self.fallbacks += 1;
                64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceHeader;
    use hllc_sim::Op;

    fn content() -> TraceContent {
        let accesses = vec![
            Access::load(0, 0x40),
            Access::store(1, 0x80).with_gap(3),
            Access::load(0, 0xC0),
            Access::load(1, 0x100),
        ];
        TraceContent {
            header: TraceHeader {
                cores: 2,
                mix: 1,
                seed: 9,
                sets: 512,
                cycles: 100.0,
                policy: "bh".into(),
                workload: "mix 1".into(),
                spec_json: None,
            },
            accesses,
            sizes: vec![(1, 8), (2, 64)],
        }
    }

    #[test]
    fn streams_preserve_per_core_order() {
        let mut streams = ReplayStream::per_core(&content());
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].remaining(), 2);
        let a = streams[1].next_access(1).unwrap();
        assert_eq!((a.op, a.addr, a.inst_gap), (Op::Store, 0x80, 3));
        assert_eq!(streams[1].next_access(1).unwrap().addr, 0x100);
        assert_eq!(
            streams[1].next_access(1),
            None,
            "exhausted stream yields None"
        );
    }

    #[test]
    fn trace_data_serves_recorded_sizes_and_counts_fallbacks() {
        let mut d = TraceData::from_content(&content());
        assert_eq!(d.len(), 2);
        assert_eq!(d.compressed_size(1), 8);
        assert_eq!(d.compressed_size(2), 64);
        assert_eq!(d.fallbacks(), 0);
        assert_eq!(d.compressed_size(999), 64);
        assert_eq!(d.fallbacks(), 1);
    }
}
