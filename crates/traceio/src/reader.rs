//! Streaming trace reader.

use std::io::Read;

use hllc_sim::{Access, Op};

use crate::crc32::crc32;
use crate::format::{chunk_crc, ChunkKind, TraceError, TraceHeader, MAGIC, MAX_CHUNK_BYTES};
use crate::varint;

/// One decoded chunk.
#[derive(Clone, Debug, PartialEq)]
pub enum Chunk {
    /// A batch of access records, in recorded order.
    Accesses(Vec<Access>),
    /// A batch of `(block, compressed size)` data-model entries.
    Sizes(Vec<(u64, u8)>),
}

/// Decodes a trace from any [`Read`] source, chunk by chunk, verifying
/// every CRC. All failures are structured [`TraceError`]s naming the chunk
/// where the file broke; a reader never panics on hostile input.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    header: TraceHeader,
    /// Last decoded address per core (delta decoding state; access deltas
    /// chain across chunks, data-entry deltas restart per chunk).
    prev_addr: Vec<u64>,
    /// Index of the next chunk to read.
    chunk: u64,
    /// Set once the end marker has been consumed.
    finished: bool,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the magic and header.
    pub fn new(mut source: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        read_exact_or(&mut source, &mut magic, TraceError::BadMagic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut len_bytes = [0u8; 4];
        let short = || TraceError::HeaderCorrupt("file ends inside the header".into());
        read_exact_or(&mut source, &mut len_bytes, short())?;
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_CHUNK_BYTES {
            return Err(TraceError::HeaderCorrupt(format!(
                "header length {len} exceeds the {MAX_CHUNK_BYTES}-byte cap"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        read_exact_or(&mut source, &mut payload, short())?;
        let mut crc_bytes = [0u8; 4];
        read_exact_or(&mut source, &mut crc_bytes, short())?;
        let stored = u32::from_le_bytes(crc_bytes);
        let computed = crc32(&payload);
        if stored != computed {
            return Err(TraceError::HeaderCorrupt(format!(
                "CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        let header = TraceHeader::decode(&payload)?;
        let cores = usize::from(header.cores);
        Ok(TraceReader {
            source,
            header,
            prev_addr: vec![0; cores],
            chunk: 0,
            finished: false,
        })
    }

    /// The trace metadata.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Complete chunks decoded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunk
    }

    /// Decodes the next chunk. `Ok(None)` after the end marker; a bare EOF
    /// without one reports truncation.
    pub fn next_chunk(&mut self) -> Result<Option<Chunk>, TraceError> {
        if self.finished {
            return Ok(None);
        }
        let truncated = TraceError::Truncated { chunk: self.chunk };
        let mut tag = [0u8; 1];
        read_exact_or(&mut self.source, &mut tag, truncated)?;
        let truncated = || TraceError::Truncated { chunk: self.chunk };
        let mut len_bytes = [0u8; 4];
        read_exact_or(&mut self.source, &mut len_bytes, truncated())?;
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_CHUNK_BYTES {
            return Err(TraceError::BadChunk {
                chunk: self.chunk,
                reason: format!("length {len} exceeds the {MAX_CHUNK_BYTES}-byte cap"),
            });
        }
        let mut payload = vec![0u8; len as usize];
        read_exact_or(&mut self.source, &mut payload, truncated())?;
        let mut crc_bytes = [0u8; 4];
        read_exact_or(&mut self.source, &mut crc_bytes, truncated())?;
        let stored = u32::from_le_bytes(crc_bytes);
        let computed = chunk_crc(tag[0], &payload);
        if stored != computed {
            return Err(TraceError::CrcMismatch {
                chunk: self.chunk,
                stored,
                computed,
            });
        }
        let kind = ChunkKind::from_tag(tag[0]).ok_or_else(|| TraceError::BadChunk {
            chunk: self.chunk,
            reason: format!("unknown chunk kind {:#04x}", tag[0]),
        })?;
        let decoded = match kind {
            ChunkKind::End => {
                if !payload.is_empty() {
                    return Err(TraceError::BadChunk {
                        chunk: self.chunk,
                        reason: "end marker with a payload".into(),
                    });
                }
                self.finished = true;
                self.chunk += 1;
                return Ok(None);
            }
            ChunkKind::Access => Chunk::Accesses(self.decode_accesses(&payload)?),
            ChunkKind::Data => Chunk::Sizes(self.decode_sizes(&payload)?),
        };
        self.chunk += 1;
        Ok(Some(decoded))
    }

    /// Drains the remaining chunks into flat access and size vectors,
    /// verifying the whole file through the end marker.
    pub fn read_to_end(mut self) -> Result<TraceContent, TraceError> {
        let mut accesses = Vec::new();
        let mut sizes = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            match chunk {
                Chunk::Accesses(mut batch) => accesses.append(&mut batch),
                Chunk::Sizes(mut batch) => sizes.append(&mut batch),
            }
        }
        Ok(TraceContent {
            header: self.header,
            accesses,
            sizes,
        })
    }

    fn bad(&self, reason: &str) -> TraceError {
        TraceError::BadChunk {
            chunk: self.chunk,
            reason: reason.to_string(),
        }
    }

    fn decode_accesses(&mut self, payload: &[u8]) -> Result<Vec<Access>, TraceError> {
        let mut pos = 0usize;
        let count =
            varint::read_u64(payload, &mut pos).ok_or_else(|| self.bad("missing record count"))?;
        if count > u64::from(MAX_CHUNK_BYTES) {
            return Err(self.bad("record count exceeds the chunk byte cap"));
        }
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count {
            let &byte0 = payload
                .get(pos)
                .ok_or_else(|| self.bad(&format!("record {i} truncated")))?;
            pos += 1;
            let core = byte0 & 0x7F;
            if usize::from(core) >= self.prev_addr.len() {
                return Err(self.bad(&format!(
                    "record {i} names core {core}, header has {}",
                    self.prev_addr.len()
                )));
            }
            let op = if byte0 & 0x80 != 0 {
                Op::Store
            } else {
                Op::Load
            };
            let delta = varint::read_u64(payload, &mut pos)
                .ok_or_else(|| self.bad(&format!("record {i}: bad address delta")))?;
            let addr = (self.prev_addr[usize::from(core)] as i64)
                .wrapping_add(varint::unzigzag(delta)) as u64;
            self.prev_addr[usize::from(core)] = addr;
            let gap = varint::read_u64(payload, &mut pos)
                .ok_or_else(|| self.bad(&format!("record {i}: bad instruction gap")))?;
            let gap = u32::try_from(gap)
                .map_err(|_| self.bad(&format!("record {i}: instruction gap overflows u32")))?;
            out.push(Access {
                core,
                op,
                addr,
                inst_gap: gap,
            });
        }
        if pos != payload.len() {
            return Err(self.bad("trailing bytes after the last record"));
        }
        Ok(out)
    }

    fn decode_sizes(&mut self, payload: &[u8]) -> Result<Vec<(u64, u8)>, TraceError> {
        let mut pos = 0usize;
        let count =
            varint::read_u64(payload, &mut pos).ok_or_else(|| self.bad("missing entry count"))?;
        if count > u64::from(MAX_CHUNK_BYTES) {
            return Err(self.bad("entry count exceeds the chunk byte cap"));
        }
        let mut out = Vec::with_capacity(count as usize);
        // Data-entry deltas restart from 0 in every chunk (the writer's
        // encoder is chunk-local), unlike the per-core access deltas.
        let mut prev_block = 0u64;
        for i in 0..count {
            let delta = varint::read_u64(payload, &mut pos)
                .ok_or_else(|| self.bad(&format!("entry {i}: bad block delta")))?;
            let block = (prev_block as i64).wrapping_add(varint::unzigzag(delta)) as u64;
            prev_block = block;
            let &size = payload
                .get(pos)
                .ok_or_else(|| self.bad(&format!("entry {i} truncated")))?;
            pos += 1;
            if size == 0 || size > 64 {
                return Err(self.bad(&format!("entry {i}: size {size} outside 1..=64")));
            }
            out.push((block, size));
        }
        if pos != payload.len() {
            return Err(self.bad("trailing bytes after the last entry"));
        }
        Ok(out)
    }
}

/// A fully materialized trace: header plus every record, CRC-verified.
///
/// Replay materializes the whole file (16 bytes per access) because data
/// entries are written *after* the access that first sized their block —
/// a purely sequential consumer would see them one step too late.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceContent {
    /// The trace metadata.
    pub header: TraceHeader,
    /// Every access record, in recorded (global interleaved) order.
    pub accesses: Vec<Access>,
    /// Every `(block, compressed size)` entry, in first-sized order.
    pub sizes: Vec<(u64, u8)>,
}

impl TraceContent {
    /// Splits the global access order into per-core streams, preserving
    /// each core's program order.
    pub fn per_core(&self) -> Vec<Vec<Access>> {
        let mut streams = vec![Vec::new(); usize::from(self.header.cores)];
        for a in &self.accesses {
            streams[usize::from(a.core)].push(*a);
        }
        streams
    }
}

/// `read_exact` that maps an unexpected EOF to `on_eof` instead of a bare
/// I/O error, so truncation is reported as such.
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], on_eof: TraceError) -> Result<(), TraceError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(on_eof),
        Err(e) => Err(TraceError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;

    fn header() -> TraceHeader {
        TraceHeader {
            cores: 2,
            mix: 1,
            seed: 7,
            sets: 512,
            cycles: 1000.0,
            policy: "bh".into(),
            workload: "mix 1".into(),
            spec_json: None,
        }
    }

    fn sample_trace() -> (Vec<Access>, Vec<(u64, u8)>, Vec<u8>) {
        let accesses: Vec<Access> = (0..10_000u64)
            .map(|i| {
                let core = (i % 2) as u8;
                let a =
                    Access::load(core, (i * 64) ^ (u64::from(core) << 40)).with_gap(i as u32 % 37);
                if i % 3 == 0 {
                    Access { op: Op::Store, ..a }
                } else {
                    a
                }
            })
            .collect();
        let sizes: Vec<(u64, u8)> = (0..5000u64).map(|b| (b * 3, (b % 64 + 1) as u8)).collect();
        let mut w = TraceWriter::new(Vec::new(), &header()).unwrap();
        for (i, a) in accesses.iter().enumerate() {
            w.push_access(a);
            if i < sizes.len() {
                w.push_size(sizes[i].0, sizes[i].1);
            }
        }
        let bytes = w.finish().unwrap();
        (accesses, sizes, bytes)
    }

    #[test]
    fn round_trips_records_exactly() {
        let (accesses, sizes, bytes) = sample_trace();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        assert_eq!(content.accesses, accesses);
        assert_eq!(content.sizes, sizes);
        assert_eq!(content.header, header());
    }

    #[test]
    fn per_core_preserves_program_order() {
        let (_, _, bytes) = sample_trace();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        let streams = content.per_core();
        assert_eq!(streams.len(), 2);
        assert_eq!(
            streams.iter().map(Vec::len).sum::<usize>(),
            content.accesses.len()
        );
        for (c, s) in streams.iter().enumerate() {
            assert!(s.iter().all(|a| usize::from(a.core) == c));
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TraceReader::new(&b"NOTATRCE........"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
    }

    #[test]
    fn flipped_bit_reports_the_chunk() {
        let (_, _, mut bytes) = sample_trace();
        // Flip a byte well inside the first chunk's payload.
        let header_len = 8 + 4 + header().encode().len() + 4;
        bytes[header_len + 20] ^= 0x10;
        let err = TraceReader::new(&bytes[..])
            .unwrap()
            .read_to_end()
            .unwrap_err();
        assert!(
            matches!(err, TraceError::CrcMismatch { chunk: 0, .. }),
            "got {err}"
        );
    }

    #[test]
    fn truncation_reports_the_chunk() {
        let (_, _, bytes) = sample_trace();
        let err = TraceReader::new(&bytes[..bytes.len() - 4])
            .unwrap()
            .read_to_end()
            .unwrap_err();
        assert!(matches!(err, TraceError::Truncated { .. }), "got {err}");
    }

    #[test]
    fn missing_end_marker_is_truncation() {
        let (_, _, bytes) = sample_trace();
        // Drop the entire 9-byte end chunk: EOF where a chunk should start.
        let err = TraceReader::new(&bytes[..bytes.len() - 9])
            .unwrap()
            .read_to_end()
            .unwrap_err();
        assert!(matches!(err, TraceError::Truncated { .. }), "got {err}");
    }

    #[test]
    fn corrupt_header_crc_is_detected() {
        let (_, _, mut bytes) = sample_trace();
        bytes[10] ^= 0x01; // inside the header payload
        assert!(matches!(
            TraceReader::new(&bytes[..]),
            Err(TraceError::HeaderCorrupt(_))
        ));
    }

    #[test]
    fn empty_trace_round_trips() {
        let w = TraceWriter::new(Vec::new(), &header()).unwrap();
        let bytes = w.finish().unwrap();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        assert!(content.accesses.is_empty());
        assert!(content.sizes.is_empty());
    }
}
