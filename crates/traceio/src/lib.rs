//! Binary trace capture and replay for the hybrid-LLC simulator.
//!
//! The paper's evaluation regenerates its synthetic SPEC streams for every
//! policy run; this crate decouples workload generation from simulation the
//! way ChampSim-style trace-driven studies do. A trace file is:
//!
//! * **self-describing** — magic, version, core count, workload metadata,
//!   and the recording system's LLC geometry live in a CRC-protected
//!   header;
//! * **compact** — access records are delta/varint encoded per core
//!   (address deltas, instruction gaps), data-model entries carry each
//!   block's compressed size exactly once;
//! * **corruption-safe** — every chunk is CRC32-framed, the file ends with
//!   an explicit end marker, and decoding reports the exact failing chunk
//!   as a structured [`TraceError`] instead of panicking.
//!
//! # Capture and replay
//!
//! [`Recorder`] taps a live run without perturbing it: wrap the reference
//! streams with [`RecordingStream`] and the data model with
//! [`RecordingData`], run the simulation as usual, then
//! [`Recorder::finish`]. [`ReplayStream`] + [`TraceData`] feed the file
//! back through the same drivers; under the recorded policy and
//! configuration the replay is bit-identical, while any *other* policy
//! sees the same per-core reference streams re-interleaved by its own
//! clocks — one recording, a level playing field for every policy.
//!
//! ```
//! use hllc_traceio::{Recorder, ReplayStream, TraceHeader, TraceReader, TraceWriter};
//! use hllc_trace::RefSource;
//!
//! let header = TraceHeader {
//!     cores: 1, mix: 0, seed: 1, sets: 512, cycles: 0.0,
//!     policy: "doc".into(), workload: "doc".into(), spec_json: None,
//! };
//! let rec = Recorder::new(TraceWriter::new(Vec::new(), &header).unwrap());
//! let mut stream = rec.stream(DocSource);
//! let live: Vec<_> = (0..4).map(|_| stream.next_access(0).unwrap()).collect();
//! drop(stream);
//!
//! let bytes = rec.finish().unwrap();
//! let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
//! let mut replay = ReplayStream::per_core(&content);
//! let replayed: Vec<_> = (0..4).map(|_| replay[0].next_access(0).unwrap()).collect();
//! assert_eq!(live, replayed);
//!
//! struct DocSource;
//! impl RefSource for DocSource {
//!     fn next_access(&mut self, core: u8) -> Option<hllc_sim::Access> {
//!         Some(hllc_sim::Access::load(core, 0x40))
//!     }
//! }
//! ```

mod crc32;
mod format;
mod reader;
mod record;
mod replay;
mod varint;
mod writer;

pub use crc32::crc32;
pub use format::{ChunkKind, TraceError, TraceHeader, MAGIC, MAX_CHUNK_BYTES, VERSION};
pub use reader::{Chunk, TraceContent, TraceReader};
pub use record::{Recorder, RecordingData, RecordingStream};
pub use replay::{ReplayStream, TraceData};
pub use writer::TraceWriter;

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Opens a trace file for streaming reads.
pub fn open_trace(path: impl AsRef<Path>) -> Result<TraceReader<BufReader<File>>, TraceError> {
    TraceReader::new(BufReader::new(File::open(path)?))
}

/// Reads and fully verifies a trace file.
pub fn load_trace(path: impl AsRef<Path>) -> Result<TraceContent, TraceError> {
    open_trace(path)?.read_to_end()
}

/// Creates a trace file and writes its header.
pub fn create_trace(
    path: impl AsRef<Path>,
    header: &TraceHeader,
) -> Result<TraceWriter<BufWriter<File>>, TraceError> {
    TraceWriter::new(BufWriter::new(File::create(path)?), header)
}
