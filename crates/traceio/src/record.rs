//! Non-perturbing capture of a live simulation.
//!
//! [`Recorder`] hands out two taps that share one [`TraceWriter`]:
//!
//! * [`RecordingStream`] wraps any reference source (an `AppStream`, or
//!   even a `ReplayStream` when re-recording) and logs every access it
//!   produces, passing it through untouched;
//! * [`RecordingData`] wraps the data model and logs each block's
//!   compressed size the first time the LLC asks for it.
//!
//! Neither tap draws randomness or changes a return value, so a recorded
//! run is bit-identical to the same run without the recorder — the
//! round-trip tests in the root package enforce this.

use std::cell::RefCell;
use std::collections::HashSet;
use std::io::Write;
use std::rc::Rc;

use hllc_sim::{Access, DataModel};
use hllc_trace::RefSource;

use crate::format::TraceError;
use crate::writer::TraceWriter;

/// Shared handle to the trace being written. Single-threaded by design
/// (`Rc<RefCell<…>>`): recording happens inside one simulation loop.
#[derive(Debug)]
pub struct Recorder<W: Write> {
    writer: Rc<RefCell<Option<TraceWriter<W>>>>,
}

impl<W: Write> Recorder<W> {
    /// Wraps an open [`TraceWriter`].
    pub fn new(writer: TraceWriter<W>) -> Self {
        Recorder {
            writer: Rc::new(RefCell::new(Some(writer))),
        }
    }

    /// Taps a reference source: every access it yields is appended to the
    /// trace.
    pub fn stream<S: RefSource>(&self, inner: S) -> RecordingStream<S, W> {
        RecordingStream {
            inner,
            writer: Rc::clone(&self.writer),
        }
    }

    /// Taps a data model: each block's compressed size is appended to the
    /// trace on first query.
    pub fn data<D: DataModel>(&self, inner: D) -> RecordingData<D, W> {
        RecordingData {
            inner,
            seen: HashSet::new(),
            writer: Rc::clone(&self.writer),
        }
    }

    /// Seals the trace and returns the sink. Call after the simulation is
    /// done; taps that outlive the recorder silently stop logging.
    pub fn finish(self) -> Result<W, TraceError> {
        let writer = self
            .writer
            .borrow_mut()
            .take()
            .expect("recorder finished twice");
        writer.finish()
    }
}

/// A [`RefSource`] that logs every access flowing through it.
#[derive(Debug)]
pub struct RecordingStream<S, W: Write> {
    inner: S,
    writer: Rc<RefCell<Option<TraceWriter<W>>>>,
}

impl<S: RefSource, W: Write> RefSource for RecordingStream<S, W> {
    fn next_access(&mut self, core: u8) -> Option<Access> {
        let a = self.inner.next_access(core)?;
        if let Some(w) = self.writer.borrow_mut().as_mut() {
            w.push_access(&a);
        }
        Some(a)
    }
}

/// A [`DataModel`] that logs each block's size on first query.
#[derive(Debug)]
pub struct RecordingData<D, W: Write> {
    inner: D,
    seen: HashSet<u64>,
    writer: Rc<RefCell<Option<TraceWriter<W>>>>,
}

impl<D: DataModel, W: Write> DataModel for RecordingData<D, W> {
    fn compressed_size(&mut self, block: u64) -> u8 {
        let size = self.inner.compressed_size(block);
        if self.seen.insert(block) {
            if let Some(w) = self.writer.borrow_mut().as_mut() {
                w.push_size(block, size);
            }
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceHeader;
    use crate::reader::TraceReader;
    use hllc_sim::ConstSizeData;

    fn header(cores: u8) -> TraceHeader {
        TraceHeader {
            cores,
            mix: 0,
            seed: 1,
            sets: 512,
            cycles: 0.0,
            policy: "test".into(),
            workload: "unit".into(),
            spec_json: None,
        }
    }

    /// A deterministic fake reference source.
    struct Counter(u64);
    impl RefSource for Counter {
        fn next_access(&mut self, core: u8) -> Option<Access> {
            self.0 += 1;
            Some(Access::load(core, self.0 << 6))
        }
    }

    #[test]
    fn stream_tap_is_transparent_and_logs() {
        let writer = TraceWriter::new(Vec::new(), &header(1)).unwrap();
        let rec = Recorder::new(writer);
        let mut tapped = rec.stream(Counter(0));
        let mut plain = Counter(0);
        let produced: Vec<Access> = (0..100).map(|_| tapped.next_access(0).unwrap()).collect();
        let expected: Vec<Access> = (0..100).map(|_| plain.next_access(0).unwrap()).collect();
        assert_eq!(produced, expected, "tap perturbed the stream");
        drop(tapped);
        let bytes = rec.finish().unwrap();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        assert_eq!(content.accesses, expected);
    }

    #[test]
    fn data_tap_logs_first_query_only() {
        let writer = TraceWriter::new(Vec::new(), &header(1)).unwrap();
        let rec = Recorder::new(writer);
        let mut data = rec.data(ConstSizeData::new(17));
        for _ in 0..3 {
            assert_eq!(data.compressed_size(5), 17);
        }
        assert_eq!(data.compressed_size(9), 17);
        drop(data);
        let bytes = rec.finish().unwrap();
        let content = TraceReader::new(&bytes[..]).unwrap().read_to_end().unwrap();
        assert_eq!(content.sizes, vec![(5, 17), (9, 17)]);
    }
}
