//! Property-based tests for the NVM substrate.

use hllc_nvm::{rearrange, FaultMap, Frame, FRAME_BYTES};
use proptest::prelude::*;

fn arb_fault_map(max_faults: usize) -> impl Strategy<Value = FaultMap> {
    prop::collection::btree_set(0usize..FRAME_BYTES, 0..=max_faults).prop_map(FaultMap::from_faulty)
}

proptest! {
    /// Scatter/gather round-trips for any fault map, offset, and ECB that fits.
    #[test]
    fn scatter_gather_round_trip(
        fm in arb_fault_map(30),
        offset in 0usize..200,
        len_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let capacity = fm.live_bytes();
        let len = ((capacity as f64) * len_frac) as usize;
        prop_assume!(len > 0);
        let mut x = seed | 1;
        let ecb: Vec<u8> = (0..len).map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 48) as u8
        }).collect();
        let (recb, mask) = rearrange::scatter(&ecb, &fm, offset);
        prop_assert_eq!(mask.count_ones() as usize, len);
        prop_assert_eq!(mask & fm.raw(), 0, "mask touched a faulty byte");
        prop_assert_eq!(rearrange::gather(&recb, &fm, offset, len), ecb);
    }

    /// The write mask is exactly the first `len` live bytes in circular
    /// order from the offset.
    #[test]
    fn mask_matches_index_vector(fm in arb_fault_map(20), offset in 0usize..FRAME_BYTES) {
        let len = fm.live_bytes().min(10);
        prop_assume!(len > 0);
        let iv = rearrange::index_vector(&fm, offset, len);
        let (_, mask) = rearrange::scatter(&vec![0u8; len], &fm, offset);
        for (i, slot) in iv.iter().enumerate() {
            prop_assert_eq!(slot.is_some(), mask >> i & 1 == 1);
        }
    }

    /// Wear never resurrects a byte and capacity is monotonically
    /// non-increasing.
    #[test]
    fn wear_is_monotone(writes in prop::collection::vec(0.0f64..50.0, 1..20)) {
        let mut f = Frame::with_uniform_endurance(100);
        let mut prev_live = f.live_bytes();
        for w in writes {
            let _ = f.apply_uniform_wear(w * FRAME_BYTES as f64);
            let live = f.live_bytes();
            prop_assert!(live <= prev_live);
            prev_live = live;
        }
    }

    /// Exact per-write accounting agrees with the endurance limit: a byte
    /// dies on exactly its k-th write when endurance is k.
    #[test]
    fn exact_wear_death_time(k in 1u64..50) {
        let mut f = Frame::with_uniform_endurance(k);
        for i in 1..=k {
            let ev = f.record_write(0b100);
            if i < k {
                prop_assert!(ev.is_empty(), "byte died early at write {i}");
            } else {
                prop_assert_eq!(ev.len(), 1, "byte failed to die at write {}", k);
                prop_assert_eq!(ev[0].byte, 2);
            }
        }
    }
}
