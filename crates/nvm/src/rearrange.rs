//! Block-rearrangement circuitry: index generator + crossbar (Figure 5).
//!
//! On a write, the extended compressed block (ECB) is scattered over the
//! non-faulty bytes of the target frame starting at the intra-frame
//! wear-leveling offset, producing the rearranged ECB (RECB) and a write
//! mask for selective writing. On a read, the same index vector is computed
//! again and used to gather the ECB back out of the RECB.
//!
//! The hardware computes the index vector with a parallel tree adder over
//! the fault map; this model walks the packed live-byte words of the fault
//! map directly (`trailing_zeros` per step, see
//! [`FaultMap::live_indices_from`]), so scatter and gather never
//! materialize the 66-entry index vector and the write mask is assembled
//! word by word.

use crate::fault_map::{FaultMap, FAULT_WORDS, FRAME_BYTES};

fn assert_fits(fault_map: &FaultMap, ecb_len: usize) {
    assert!(
        ecb_len <= fault_map.live_bytes(),
        "ECB of {ecb_len} bytes cannot fit in a frame with {} live bytes",
        fault_map.live_bytes()
    );
}

/// Computes the index vector `I[frame_byte] = Some(ecb_byte)` for an ECB of
/// `ecb_len` bytes: live frame bytes, scanned circularly from the rotation
/// `offset`, receive ECB bytes 0, 1, 2, … in order. Faulty bytes and unused
/// live bytes map to `None` (the "don't care" ✗ of Figure 5c).
///
/// # Panics
///
/// Panics if `ecb_len` exceeds the frame's live-byte count.
pub fn index_vector(
    fault_map: &FaultMap,
    offset: usize,
    ecb_len: usize,
) -> [Option<u8>; FRAME_BYTES] {
    assert_fits(fault_map, ecb_len);
    let mut iv = [None; FRAME_BYTES];
    for (ecb_byte, pos) in fault_map
        .live_indices_from(offset)
        .take(ecb_len)
        .enumerate()
    {
        // live_indices_from yields positions < FRAME_BYTES.
        iv[pos] = Some(ecb_byte as u8);
    }
    iv
}

/// Scatters an ECB into a frame image: returns the RECB (66 bytes, with
/// don't-care positions left zero) and the selective-write mask (bit `i` set
/// means frame byte `i` is written).
///
/// # Panics
///
/// Panics if the ECB does not fit in the frame's live bytes.
pub fn scatter(ecb: &[u8], fault_map: &FaultMap, offset: usize) -> ([u8; FRAME_BYTES], u128) {
    assert_fits(fault_map, ecb.len());
    let mut recb = [0u8; FRAME_BYTES];
    let mut mask = [0u64; FAULT_WORDS];
    for (&byte, pos) in ecb.iter().zip(fault_map.live_indices_from(offset)) {
        recb[pos] = byte;
        // pos < FRAME_BYTES (live index), so pos >> 6 < FAULT_WORDS.
        mask[pos >> 6] |= 1 << (pos & 63);
    }
    (recb, u128::from(mask[0]) | u128::from(mask[1]) << 64)
}

/// Gathers an ECB of `ecb_len` bytes back out of a RECB into `ecb`, using
/// the same fault map and rotation offset the block was written with. The
/// allocation-free core of [`gather`].
///
/// # Panics
///
/// Panics if `ecb.len()` exceeds the frame's live-byte count.
pub fn gather_into(recb: &[u8; FRAME_BYTES], fault_map: &FaultMap, offset: usize, ecb: &mut [u8]) {
    assert_fits(fault_map, ecb.len());
    for (byte, pos) in ecb.iter_mut().zip(fault_map.live_indices_from(offset)) {
        *byte = recb[pos];
    }
}

/// Gathers an ECB of `ecb_len` bytes back out of a RECB, using the same
/// fault map and rotation offset the block was written with.
///
/// # Panics
///
/// Panics if `ecb_len` exceeds the frame's live-byte count.
pub fn gather(
    recb: &[u8; FRAME_BYTES],
    fault_map: &FaultMap,
    offset: usize,
    ecb_len: usize,
) -> Vec<u8> {
    let mut ecb = vec![0u8; ecb_len];
    gather_into(recb, fault_map, offset, &mut ecb);
    ecb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_5c_example() {
        // Figure 5c scaled: 5-byte ECB into a frame with faulty bytes 2 and 5,
        // offset 0. Expected placements: bytes 0,1,3,4,6 receive ECB 0..5.
        let fm = FaultMap::from_faulty([2, 5]);
        let iv = index_vector(&fm, 0, 5);
        assert_eq!(iv[0], Some(0));
        assert_eq!(iv[1], Some(1));
        assert_eq!(iv[2], None); // faulty
        assert_eq!(iv[3], Some(2));
        assert_eq!(iv[4], Some(3));
        assert_eq!(iv[5], None); // faulty
        assert_eq!(iv[6], Some(4)); // the I[6]=2 example generalized
        assert_eq!(iv[7], None); // unused
    }

    #[test]
    fn scatter_gather_round_trip() {
        let fm = FaultMap::from_faulty([0, 13, 64]);
        let ecb: Vec<u8> = (0..59).map(|i| i as u8 ^ 0x5A).collect();
        for offset in [0, 1, 17, 65, 130] {
            let (recb, mask) = scatter(&ecb, &fm, offset);
            assert_eq!(mask.count_ones() as usize, ecb.len());
            // Mask never touches faulty bytes.
            assert_eq!(mask & fm.raw(), 0);
            assert_eq!(gather(&recb, &fm, offset, ecb.len()), ecb);
        }
    }

    #[test]
    fn scatter_mask_matches_index_vector() {
        let fm = FaultMap::from_faulty([3, 40, 65]);
        let ecb: Vec<u8> = (0..50).collect();
        for offset in [0, 9, 63, 64, 65] {
            let (recb, mask) = scatter(&ecb, &fm, offset);
            let iv = index_vector(&fm, offset, ecb.len());
            for (pos, slot) in iv.iter().enumerate() {
                assert_eq!(mask >> pos & 1 == 1, slot.is_some());
                if let Some(ecb_byte) = slot {
                    assert_eq!(recb[pos], ecb[*ecb_byte as usize]);
                }
            }
        }
    }

    #[test]
    fn rotation_shifts_write_region() {
        let fm = FaultMap::new();
        let ecb = [1u8, 2, 3];
        let (_, m0) = scatter(&ecb, &fm, 0);
        let (_, m1) = scatter(&ecb, &fm, 1);
        assert_eq!(m0, 0b111);
        assert_eq!(m1, 0b1110);
    }

    #[test]
    fn wraps_around_frame_end() {
        let fm = FaultMap::new();
        let ecb = [9u8, 8, 7, 6];
        let (recb, mask) = scatter(&ecb, &fm, 64);
        assert_eq!(recb[64], 9);
        assert_eq!(recb[65], 8);
        assert_eq!(recb[0], 7);
        assert_eq!(recb[1], 6);
        assert_eq!(mask, (1 << 64) | (1 << 65) | 0b11);
        assert_eq!(gather(&recb, &fm, 64, 4), ecb);
    }

    #[test]
    fn exact_fit_uses_every_live_byte() {
        let fm = FaultMap::from_faulty([1, 3, 5]);
        let ecb: Vec<u8> = (0..63).collect();
        let (_, mask) = scatter(&ecb, &fm, 7);
        assert_eq!(mask.count_ones(), 63);
        assert_eq!(mask & fm.raw(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn rejects_oversized_ecb() {
        let fm = FaultMap::from_faulty([0, 1, 2, 3]);
        let ecb = [0u8; 63];
        scatter(&ecb, &fm, 0);
    }
}
