//! Inter-set wear leveling: a Start-Gap-style set remapper.
//!
//! §II-A: wear must be levelled across *sets*, *frames within sets*, and
//! *bytes within frames*. The byte level is handled by the rotation counter
//! ([`WearLevelCounter`](crate::WearLevelCounter)); this module provides
//! the set level with the classic Start-Gap scheme (Qureshi et al.): one
//! spare "gap" set plus a slowly moving start pointer turn the static
//! set-index mapping into a rotation over `sets + 1` physical locations, so
//! a pathologically hot set spreads its writes over every physical set over
//! time.
//!
//! The paper's proposal is explicitly independent of the wear-leveling
//! mechanism used; this remapper is provided as a library component and is
//! exercised by its own tests and benches rather than wired into the
//! default hybrid-LLC configuration (set-level imbalance is already
//! captured by the per-frame write accounting the forecast uses).

/// Start-Gap set remapper over `sets` logical sets (`sets + 1` physical).
///
/// # Example
///
/// ```
/// use hllc_nvm::StartGap;
///
/// let mut sg = StartGap::new(8, 100);
/// let before = sg.physical_of(3);
/// for _ in 0..100 * (8 + 1) {
///     sg.note_write();
/// }
/// // After a full gap rotation every logical set moved by one.
/// assert_ne!(sg.physical_of(3), before);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StartGap {
    sets: usize,
    /// Physical index of the gap (unused) location, 0..=sets.
    gap: usize,
    /// Start offset: how many full gap rotations have completed.
    start: usize,
    /// Writes observed since the last gap movement.
    writes: u64,
    /// Gap moves after this many writes.
    period: u64,
}

impl StartGap {
    /// Creates a remapper for `sets` logical sets, moving the gap every
    /// `period` writes.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `period` is zero.
    pub fn new(sets: usize, period: u64) -> Self {
        assert!(sets > 0, "need at least one set");
        assert!(period > 0, "gap movement period must be positive");
        StartGap {
            sets,
            gap: sets,
            start: 0,
            writes: 0,
            period,
        }
    }

    /// Number of logical sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Current physical location of logical set `logical`.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= sets`.
    pub fn physical_of(&self, logical: usize) -> usize {
        assert!(logical < self.sets, "logical set out of range");
        // Qureshi et al.: PA = (LA + START) mod N, skipping the gap slot.
        let rotated = (logical + self.start) % self.sets;
        if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        }
    }

    /// Records one write; every `period` writes the gap migrates one slot
    /// (copying one set's contents in hardware). Returns `true` when the
    /// gap moved.
    pub fn note_write(&mut self) -> bool {
        self.writes += 1;
        if self.writes < self.period {
            return false;
        }
        self.writes = 0;
        if self.gap == 0 {
            self.gap = self.sets;
            self.start = (self.start + 1) % self.sets;
        } else {
            self.gap -= 1;
        }
        true
    }

    /// Total physical locations (sets + the gap).
    pub fn physical_slots(&self) -> usize {
        self.sets + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mapping_is_a_bijection_at_all_times() {
        let mut sg = StartGap::new(16, 3);
        for step in 0..200 {
            let physical: HashSet<usize> = (0..16).map(|l| sg.physical_of(l)).collect();
            assert_eq!(physical.len(), 16, "collision at step {step}");
            assert!(physical.iter().all(|&p| p <= 16));
            // The gap is never mapped.
            sg.note_write();
        }
    }

    #[test]
    fn gap_moves_every_period() {
        let mut sg = StartGap::new(4, 10);
        let mut moves = 0;
        for _ in 0..100 {
            if sg.note_write() {
                moves += 1;
            }
        }
        assert_eq!(moves, 10);
    }

    #[test]
    fn full_rotation_shifts_every_set() {
        let sets = 8;
        let mut sg = StartGap::new(sets, 1);
        let before: Vec<usize> = (0..sets).map(|l| sg.physical_of(l)).collect();
        // One full gap cycle: sets + 1 moves.
        for _ in 0..sets + 1 {
            sg.note_write();
        }
        let after: Vec<usize> = (0..sets).map(|l| sg.physical_of(l)).collect();
        for l in 0..sets {
            assert_ne!(before[l], after[l], "set {l} did not move");
        }
    }

    #[test]
    fn hot_set_writes_spread_over_all_physical_slots() {
        // Hammer one logical set; over many rotations its physical location
        // must visit every slot.
        let sets = 8;
        let mut sg = StartGap::new(sets, 2);
        let mut visited = HashSet::new();
        for _ in 0..(sets as u64 + 1) * (sets as u64 + 1) * 2 {
            visited.insert(sg.physical_of(0));
            sg.note_write();
        }
        assert_eq!(
            visited.len(),
            sets + 1,
            "hot set must rotate over every slot"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_logical() {
        StartGap::new(4, 1).physical_of(4);
    }
}
