//! Bitcell endurance distribution (§II-A).

use rand::Rng;

/// Write-endurance model: each byte's endurance limit is drawn from a normal
/// distribution with mean `μ` and coefficient of variation `cv = σ/μ`
/// (the paper uses `μ = 10^10`, `cv ∈ {0.2, 0.25}`).
///
/// Samples are clamped to at least 1 write so that a pathological draw can
/// never produce an unwritable byte.
///
/// # Example
///
/// ```
/// use hllc_nvm::EnduranceModel;
/// use rand::SeedableRng;
///
/// let model = EnduranceModel::new(1e10, 0.2);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let e = model.sample(&mut rng);
/// assert!(e > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnduranceModel {
    mean: f64,
    cv: f64,
}

impl EnduranceModel {
    /// Creates a model with the given mean endurance (writes) and
    /// coefficient of variation.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv < 0`.
    pub fn new(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "mean endurance must be positive");
        assert!(cv >= 0.0, "coefficient of variation must be non-negative");
        EnduranceModel { mean, cv }
    }

    /// The paper's default: `μ = 10^10`, `cv = 0.2` (Table IV).
    pub fn paper_default() -> Self {
        EnduranceModel::new(1e10, 0.2)
    }

    /// Mean endurance in writes.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Coefficient of variation `σ/μ`.
    pub fn cv(&self) -> f64 {
        self.cv
    }

    /// Draws one endurance limit via the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let sigma = self.cv * self.mean;
        // Box–Muller: two uniforms -> one standard normal.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let e = self.mean + sigma * z;
        e.max(1.0) as u64
    }
}

impl Default for EnduranceModel {
    fn default() -> Self {
        EnduranceModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_statistics_match_parameters() {
        let model = EnduranceModel::new(1e6, 0.2);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 1e6).abs() / 1e6 < 0.01, "mean {mean}");
        assert!((cv - 0.2).abs() < 0.01, "cv {cv}");
    }

    #[test]
    fn zero_cv_is_deterministic() {
        let model = EnduranceModel::new(1000.0, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(model.sample(&mut rng), 1000);
        }
    }

    #[test]
    fn samples_never_zero() {
        // Huge cv would produce negative normals; clamping keeps them >= 1.
        let model = EnduranceModel::new(10.0, 5.0);
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..1000).all(|_| model.sample(&mut rng) >= 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_mean() {
        EnduranceModel::new(0.0, 0.2);
    }
}
