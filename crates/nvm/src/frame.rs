//! A single NVM frame: fault map + per-byte wear state.

use rand::Rng;

use crate::endurance::EnduranceModel;
use crate::fault_map::{FaultMap, FRAME_BYTES};

/// A wear event: a byte crossed its endurance limit and became faulty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WearEvent {
    /// Index of the newly faulty byte within the frame.
    pub byte: usize,
}

/// One NVM frame: 66 physical bytes, each with an endurance limit drawn
/// from the [`EnduranceModel`] and a cumulative write-wear counter.
///
/// Wear is tracked in fractional writes so the forecast can apply
/// `rate × Δt` increments; the functional path adds 1.0 per actual write.
///
/// # Example
///
/// ```
/// use hllc_nvm::Frame;
///
/// let mut f = Frame::with_uniform_endurance(3);
/// // Write bytes 0 and 1 three times; both die on the third write.
/// let mut events = Vec::new();
/// for _ in 0..3 {
///     events.extend(f.record_write(0b11));
/// }
/// assert_eq!(events.len(), 2);
/// assert_eq!(f.live_bytes(), 64);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    fault_map: FaultMap,
    endurance: Box<[f64; FRAME_BYTES]>,
    wear: Box<[f64; FRAME_BYTES]>,
}

impl Frame {
    /// Creates a frame whose byte endurances are sampled from `model`.
    pub fn sampled<R: Rng + ?Sized>(model: &EnduranceModel, rng: &mut R) -> Self {
        let mut endurance = Box::new([0.0; FRAME_BYTES]);
        for e in endurance.iter_mut() {
            *e = model.sample(rng) as f64;
        }
        Frame {
            fault_map: FaultMap::new(),
            endurance,
            wear: Box::new([0.0; FRAME_BYTES]),
        }
    }

    /// Creates a frame where every byte endures exactly `writes` writes —
    /// handy for deterministic tests.
    pub fn with_uniform_endurance(writes: u64) -> Self {
        Frame {
            fault_map: FaultMap::new(),
            endurance: Box::new([writes as f64; FRAME_BYTES]),
            wear: Box::new([0.0; FRAME_BYTES]),
        }
    }

    /// The frame's current fault map.
    #[inline]
    pub fn fault_map(&self) -> &FaultMap {
        &self.fault_map
    }

    /// Number of live bytes (effective capacity in bytes).
    #[inline]
    pub fn live_bytes(&self) -> usize {
        self.fault_map.live_bytes()
    }

    /// True if an ECB of `ecb_len` bytes fits in this frame.
    #[inline]
    pub fn fits(&self, ecb_len: usize) -> bool {
        ecb_len <= self.live_bytes()
    }

    /// True if every byte has failed.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.fault_map.is_dead()
    }

    /// Remaining writes byte `i` can absorb (0 if already faulty).
    ///
    /// # Panics
    ///
    /// Panics if `i >= FRAME_BYTES`.
    pub fn remaining_writes(&self, i: usize) -> f64 {
        assert!(i < FRAME_BYTES);
        if self.fault_map.is_faulty(i) {
            0.0
        } else {
            // i < FRAME_BYTES (asserted above), the length of both lanes.
            (self.endurance[i] - self.wear[i]).max(0.0)
        }
    }

    /// Records one selective write with the given byte mask (bit `i` set =
    /// byte `i` written), as produced by the rearrangement circuitry.
    /// Returns the bytes that failed as a result.
    pub fn record_write(&mut self, mask: u128) -> Vec<WearEvent> {
        // Faulty bytes absorb no wear: drop them from the mask a whole
        // word at a time, then walk the surviving bits.
        let live = self.fault_map.live_words();
        let mask_words = [mask as u64, (mask >> 64) as u64];
        let mut events = Vec::new();
        for (w, &word) in mask_words.iter().enumerate() {
            // w < 2 == live.len() (both arrays cover FRAME_BYTES bits).
            let mut bits = word & live[w];
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.wear[i] += 1.0;
                if self.wear[i] >= self.endurance[i] {
                    self.fault_map.mark_faulty(i);
                    events.push(WearEvent { byte: i });
                }
            }
        }
        events
    }

    /// Spreads `total_byte_writes` of wear uniformly across the live bytes —
    /// the aggregate effect of the rotating wear-leveling counter over a
    /// long interval. Returns the bytes that failed.
    pub fn apply_uniform_wear(&mut self, total_byte_writes: f64) -> Vec<WearEvent> {
        let live = self.live_bytes();
        if live == 0 || total_byte_writes <= 0.0 {
            return Vec::new();
        }
        let per_byte = total_byte_writes / live as f64;
        let mut events = Vec::new();
        for (w, &word) in self.fault_map.live_words().iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.wear[i] += per_byte;
                if self.wear[i] >= self.endurance[i] {
                    self.fault_map.mark_faulty(i);
                    events.push(WearEvent { byte: i });
                }
            }
        }
        events
    }

    /// Directly disables byte `i` (used for frame-disabling and fault
    /// injection in tests).
    ///
    /// # Panics
    ///
    /// Panics if `i >= FRAME_BYTES`.
    pub fn disable_byte(&mut self, i: usize) {
        self.fault_map.mark_faulty(i);
    }

    /// Total wear accumulated across all bytes (diagnostics).
    pub fn total_wear(&self) -> f64 {
        self.wear.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_frames_start_healthy() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = Frame::sampled(&EnduranceModel::new(1e6, 0.2), &mut rng);
        assert_eq!(f.live_bytes(), FRAME_BYTES);
        assert!(f.remaining_writes(0) > 0.0);
    }

    #[test]
    fn record_write_wears_only_masked_bytes() {
        let mut f = Frame::with_uniform_endurance(10);
        for _ in 0..9 {
            assert!(f.record_write(0b1).is_empty());
        }
        assert_eq!(f.remaining_writes(0), 1.0);
        assert_eq!(f.remaining_writes(1), 10.0);
        let ev = f.record_write(0b1);
        assert_eq!(ev, vec![WearEvent { byte: 0 }]);
        assert!(f.fault_map().is_faulty(0));
    }

    #[test]
    fn faulty_bytes_absorb_no_more_wear() {
        let mut f = Frame::with_uniform_endurance(1);
        assert_eq!(f.record_write(0b1).len(), 1);
        // Further writes to a dead byte produce no events and no wear change.
        assert!(f.record_write(0b1).is_empty());
        assert_eq!(f.remaining_writes(0), 0.0);
    }

    #[test]
    fn uniform_wear_kills_weakest_bytes_first() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut f = Frame::sampled(&EnduranceModel::new(1000.0, 0.3), &mut rng);
        // Find the weakest byte.
        let weakest = (0..FRAME_BYTES)
            .min_by(|&a, &b| f.remaining_writes(a).total_cmp(&f.remaining_writes(b)))
            .unwrap();
        let threshold = f.remaining_writes(weakest);
        let events = f.apply_uniform_wear(threshold * FRAME_BYTES as f64);
        assert!(events.iter().any(|e| e.byte == weakest));
    }

    #[test]
    fn uniform_wear_on_dead_frame_is_noop() {
        let mut f = Frame::with_uniform_endurance(1);
        for i in 0..FRAME_BYTES {
            f.disable_byte(i);
        }
        assert!(f.is_dead());
        assert!(f.apply_uniform_wear(1e9).is_empty());
    }

    #[test]
    fn fits_tracks_live_bytes() {
        let mut f = Frame::with_uniform_endurance(100);
        assert!(f.fits(66));
        f.disable_byte(5);
        assert!(!f.fits(66));
        assert!(f.fits(65));
    }
}
