//! The NVM portion of the LLC data array.

use std::cell::Cell;

use rand::Rng;

use crate::endurance::EnduranceModel;
use crate::fault_map::FRAME_BYTES;
use crate::frame::{Frame, WearEvent};

/// Sentinel in the capacity lane: the cached value must be recomputed from
/// the frame's fault map on the next query.
const CAP_DIRTY: u8 = u8::MAX;

/// Hard-fault disabling granularity (Table III).
///
/// * `Frame`: the first hard fault disables the whole frame (BH, LHybrid,
///   TAP).
/// * `Byte`: individual bytes are disabled and the frame keeps serving
///   compressed blocks that fit its remaining capacity (BH_CP, CP_SD).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DisableGranularity {
    /// Whole-frame disabling: cheap metadata, coarse capacity loss.
    Frame,
    /// Byte-level disabling: needs the 66-bit fault map per frame.
    Byte,
}

/// Identifies a frame by its (set, way) coordinates within the NVM part.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FrameId {
    /// Cache set index.
    pub set: usize,
    /// NVM way index within the set (0-based over the NVM ways only).
    pub way: usize,
}

/// The NVM data array: `sets × ways` frames with per-byte wear state,
/// write accounting for the aging forecast, and a disabling policy.
///
/// # Example
///
/// ```
/// use hllc_nvm::{DisableGranularity, EnduranceModel, NvmArray};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let arr = NvmArray::new(16, 12, &EnduranceModel::paper_default(),
///                         DisableGranularity::Byte, &mut rng);
/// assert_eq!(arr.capacity_fraction(), 1.0);
/// assert_eq!(arr.effective_capacity(0, 0), 66);
/// ```
#[derive(Clone, Debug)]
pub struct NvmArray {
    sets: usize,
    ways: usize,
    granularity: DisableGranularity,
    frames: Vec<Frame>,
    disabled: Vec<bool>,
    /// Cached effective capacity per frame (one byte each) so that
    /// way-selection sweeps read a contiguous lane instead of touching every
    /// frame's fault map. Entries invalidated by wear or by the `frame_mut`
    /// escape hatch hold [`CAP_DIRTY`] and are recomputed lazily.
    capacity: Vec<Cell<u8>>,
    /// Bytes written per frame since the last `take_pending_writes`.
    pending_byte_writes: Vec<u64>,
    total_writes: u64,
    total_bytes_written: u64,
}

impl NvmArray {
    /// Builds an array of `sets × ways` frames with endurances sampled from
    /// `model`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new<R: Rng + ?Sized>(
        sets: usize,
        ways: usize,
        model: &EnduranceModel,
        granularity: DisableGranularity,
        rng: &mut R,
    ) -> Self {
        assert!(sets > 0 && ways > 0, "array must have at least one frame");
        let n = sets * ways;
        let frames = (0..n).map(|_| Frame::sampled(model, rng)).collect();
        NvmArray {
            sets,
            ways,
            granularity,
            frames,
            disabled: vec![false; n],
            capacity: vec![Cell::new(FRAME_BYTES as u8); n],
            pending_byte_writes: vec![0; n],
            total_writes: 0,
            total_bytes_written: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// NVM ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The disabling granularity this array operates under.
    pub fn granularity(&self) -> DisableGranularity {
        self.granularity
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        assert!(
            set < self.sets && way < self.ways,
            "frame ({set},{way}) out of range"
        );
        set * self.ways + way
    }

    /// Immutable access to a frame.
    #[inline]
    pub fn frame(&self, set: usize, way: usize) -> &Frame {
        // idx() < sets * ways == frames.len().
        &self.frames[self.idx(set, way)]
    }

    /// Mutable access to a frame (fault injection, tests). Invalidates the
    /// frame's cached capacity, since the caller may mutate its fault map.
    pub fn frame_mut(&mut self, set: usize, way: usize) -> &mut Frame {
        let i = self.idx(set, way);
        // i = idx() < sets * ways, the length of every lane.
        self.capacity[i].set(CAP_DIRTY);
        &mut self.frames[i]
    }

    fn compute_capacity(&self, i: usize) -> u8 {
        if self.disabled[i] {
            0
        } else {
            match self.granularity {
                DisableGranularity::Byte => self.frames[i].live_bytes() as u8,
                DisableGranularity::Frame => FRAME_BYTES as u8,
            }
        }
    }

    /// Effective capacity of a frame in bytes, under the array's disabling
    /// granularity: a frame-disabled frame has zero capacity; otherwise the
    /// live-byte count.
    #[inline]
    pub fn effective_capacity(&self, set: usize, way: usize) -> usize {
        let i = self.idx(set, way);
        let cached = self.capacity[i].get();
        if cached != CAP_DIRTY {
            return cached as usize;
        }
        let fresh = self.compute_capacity(i);
        self.capacity[i].set(fresh);
        fresh as usize
    }

    /// True if the frame can hold an ECB of `ecb_len` bytes.
    #[inline]
    pub fn fits(&self, set: usize, way: usize, ecb_len: usize) -> bool {
        ecb_len <= self.effective_capacity(set, way)
    }

    /// The contiguous effective-capacity lane of `set`, one byte per way —
    /// victim sweeps read this instead of querying each frame. Dirty entries
    /// are refreshed before the slice is returned, so every cell holds the
    /// frame's current capacity.
    #[inline]
    pub fn capacity_lane(&self, set: usize) -> &[Cell<u8>] {
        assert!(set < self.sets, "set {set} out of range");
        let base = set * self.ways;
        // base + ways <= sets * ways == capacity.len() (set checked above).
        let lane = &self.capacity[base..base + self.ways];
        for (way, cap) in lane.iter().enumerate() {
            if cap.get() == CAP_DIRTY {
                cap.set(self.compute_capacity(base + way));
            }
        }
        lane
    }

    /// Accounts for one block write of `ecb_len` bytes into a frame.
    ///
    /// This is the fast accounting path used during simulation phases: wear
    /// is accumulated per frame and applied later by the forecast's
    /// prediction phase (`apply_uniform_wear`). Returns the bytes written
    /// (for bandwidth statistics).
    #[inline]
    pub fn note_write(&mut self, set: usize, way: usize, ecb_len: usize) -> u64 {
        let i = self.idx(set, way);
        debug_assert!(!self.disabled[i], "writing a disabled frame");
        self.pending_byte_writes[i] += ecb_len as u64;
        self.total_writes += 1;
        self.total_bytes_written += ecb_len as u64;
        ecb_len as u64
    }

    /// Drains the per-frame byte-write counters accumulated since the last
    /// call (simulation → prediction hand-off).
    pub fn take_pending_writes(&mut self) -> Vec<u64> {
        let mut out = vec![0; self.frames.len()];
        std::mem::swap(&mut out, &mut self.pending_byte_writes);
        out
    }

    /// Applies `byte_writes` of uniformly-spread wear to a frame, honouring
    /// the disabling granularity. Returns newly failed bytes (empty for an
    /// already-disabled frame).
    pub fn apply_uniform_wear(
        &mut self,
        set: usize,
        way: usize,
        byte_writes: f64,
    ) -> Vec<WearEvent> {
        let i = self.idx(set, way);
        if self.disabled[i] {
            return Vec::new();
        }
        let events = self.frames[i].apply_uniform_wear(byte_writes);
        if !events.is_empty() && self.granularity == DisableGranularity::Frame {
            self.disabled[i] = true;
        }
        if self.frames[i].is_dead() {
            self.disabled[i] = true;
        }
        if !events.is_empty() || self.disabled[i] {
            self.capacity[i].set(CAP_DIRTY);
        }
        events
    }

    /// Administratively disables a whole frame (fault injection, tests,
    /// and the frame-disabling policies' reaction to tag-array faults).
    pub fn disable_frame(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.disabled[i] = true;
        self.capacity[i].set(0);
    }

    /// True if the frame has been disabled (dead frame, or frame-granularity
    /// disabling after its first fault).
    pub fn is_disabled(&self, set: usize, way: usize) -> bool {
        self.disabled[self.idx(set, way)]
    }

    /// Fraction of the original capacity still usable:
    /// live bytes / total bytes under byte disabling, live frames / total
    /// frames under frame disabling.
    pub fn capacity_fraction(&self) -> f64 {
        match self.granularity {
            DisableGranularity::Byte => {
                let live: usize = self
                    .frames
                    .iter()
                    .zip(&self.disabled)
                    .map(|(f, &d)| if d { 0 } else { f.live_bytes() })
                    .sum();
                live as f64 / (self.frames.len() * FRAME_BYTES) as f64
            }
            DisableGranularity::Frame => {
                let live = self.disabled.iter().filter(|&&d| !d).count();
                live as f64 / self.frames.len() as f64
            }
        }
    }

    /// Artificially degrades the array until `capacity_fraction` is at most
    /// `target` by disabling the weakest bytes uniformly at random — used by
    /// the sensitivity harnesses (Figures 8a and 9) that study caches at
    /// 100/90/80/…% NVM capacity.
    pub fn degrade_to<R: Rng + ?Sized>(&mut self, target: f64, rng: &mut R) {
        assert!((0.0..=1.0).contains(&target), "target must be a fraction");
        match self.granularity {
            DisableGranularity::Byte => {
                let total = self.frames.len() * FRAME_BYTES;
                let mut live: usize = self
                    .frames
                    .iter()
                    .zip(&self.disabled)
                    .map(|(f, &d)| if d { 0 } else { f.live_bytes() })
                    .sum();
                let target_live = (target * total as f64).floor() as usize;
                while live > target_live {
                    let i = rng.gen_range(0..self.frames.len());
                    if self.disabled[i] || self.frames[i].is_dead() {
                        continue;
                    }
                    let live_in_frame: Vec<usize> =
                        self.frames[i].fault_map().live_indices().collect();
                    // gen_range is bounded by live_in_frame.len().
                    let b = live_in_frame[rng.gen_range(0..live_in_frame.len())];
                    self.frames[i].disable_byte(b);
                    self.capacity[i].set(CAP_DIRTY);
                    live -= 1;
                    if self.frames[i].is_dead() {
                        self.disabled[i] = true;
                    }
                }
            }
            DisableGranularity::Frame => {
                let total = self.frames.len();
                let mut live = self.disabled.iter().filter(|&&d| !d).count();
                let target_live = (target * total as f64).floor() as usize;
                while live > target_live {
                    let i = rng.gen_range(0..total);
                    if !self.disabled[i] {
                        self.disabled[i] = true;
                        self.capacity[i].set(0);
                        live -= 1;
                    }
                }
            }
        }
    }

    /// Total block writes accounted so far.
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// Total bytes written so far.
    pub fn total_bytes_written(&self) -> u64 {
        self.total_bytes_written
    }

    /// Resets the lifetime byte/write counters (capacity state is kept).
    pub fn reset_write_stats(&mut self) {
        self.total_writes = 0;
        self.total_bytes_written = 0;
        self.pending_byte_writes.iter_mut().for_each(|w| *w = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_array(granularity: DisableGranularity) -> NvmArray {
        let mut rng = StdRng::seed_from_u64(5);
        NvmArray::new(
            4,
            2,
            &EnduranceModel::new(100.0, 0.0),
            granularity,
            &mut rng,
        )
    }

    #[test]
    fn fresh_array_full_capacity() {
        let a = small_array(DisableGranularity::Byte);
        assert_eq!(a.capacity_fraction(), 1.0);
        assert!(a.fits(3, 1, 66));
        assert!(!a.fits(3, 1, 67));
    }

    #[test]
    fn capacity_cache_tracks_every_mutation_path() {
        let mut a = small_array(DisableGranularity::Byte);
        assert_eq!(a.effective_capacity(0, 0), FRAME_BYTES);
        // Mutation through the escape hatch must invalidate the cache.
        a.frame_mut(0, 0).disable_byte(3);
        assert_eq!(a.effective_capacity(0, 0), FRAME_BYTES - 1);
        // Wear-driven faults (endurance 100 in `small_array`).
        let events = a.apply_uniform_wear(0, 1, 100.0 * FRAME_BYTES as f64);
        assert!(!events.is_empty());
        assert_eq!(a.effective_capacity(0, 1), 0);
        assert!(a.is_disabled(0, 1));
        // Administrative frame disabling.
        a.disable_frame(0, 0);
        assert_eq!(a.effective_capacity(0, 0), 0);
    }

    #[test]
    fn note_write_accumulates_and_drains() {
        let mut a = small_array(DisableGranularity::Byte);
        a.note_write(0, 0, 30);
        a.note_write(0, 0, 36);
        a.note_write(1, 1, 10);
        assert_eq!(a.total_writes(), 3);
        assert_eq!(a.total_bytes_written(), 76);
        let pending = a.take_pending_writes();
        assert_eq!(pending[0], 66);
        assert_eq!(pending[3], 10);
        assert!(a.take_pending_writes().iter().all(|&w| w == 0));
    }

    #[test]
    fn byte_disabling_degrades_gradually() {
        let mut a = small_array(DisableGranularity::Byte);
        // Uniform endurance 100: spreading 66*100 byte-writes kills all bytes.
        let ev = a.apply_uniform_wear(0, 0, 66.0 * 100.0);
        assert_eq!(ev.len(), FRAME_BYTES);
        assert_eq!(a.effective_capacity(0, 0), 0);
        // 1 of 8 frames dead.
        assert!((a.capacity_fraction() - 7.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn frame_disabling_kills_whole_frame_on_first_fault() {
        let mut a = small_array(DisableGranularity::Frame);
        // Enough wear to kill exactly the whole frame's budget on one byte
        // share: per-byte share = 100 → every byte dies, but even one event
        // would disable the frame.
        let _ = a.apply_uniform_wear(2, 0, 66.0 * 100.0);
        assert_eq!(a.effective_capacity(2, 0), 0);
        assert!((a.capacity_fraction() - 7.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn degrade_to_reaches_target() {
        let mut rng = StdRng::seed_from_u64(8);
        for g in [DisableGranularity::Byte, DisableGranularity::Frame] {
            let mut a = NvmArray::new(16, 4, &EnduranceModel::new(1e6, 0.2), g, &mut rng);
            a.degrade_to(0.8, &mut rng);
            assert!(a.capacity_fraction() <= 0.8);
            assert!(
                a.capacity_fraction() > 0.5,
                "overshot: {}",
                a.capacity_fraction()
            );
        }
    }

    #[test]
    fn disabled_frame_absorbs_no_wear() {
        let mut a = small_array(DisableGranularity::Frame);
        let _ = a.apply_uniform_wear(0, 0, 66.0 * 100.0);
        assert!(a.apply_uniform_wear(0, 0, 1e12).is_empty());
    }
}
