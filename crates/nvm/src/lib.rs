//! NVM endurance and fault-tolerance substrate for the hybrid LLC.
//!
//! Models the byte-level fault-tolerant NVM data array of *Compression-Aware
//! and Performance-Efficient Insertion Policies for Long-Lasting Hybrid LLCs*
//! (HPCA 2023), §II-A and §III-B:
//!
//! * per-bitcell (modelled per-byte) write endurance drawn from a normal
//!   distribution `N(μ, cv·μ)` ([`EnduranceModel`]);
//! * a per-frame fault map with one bit per byte ([`FaultMap`]);
//! * the block-rearrangement circuitry — index generator + crossbar — that
//!   scatters an extended compressed block (ECB) over the non-faulty bytes
//!   of a frame and gathers it back ([`rearrange`]);
//! * an intra-frame wear-leveling rotation counter ([`WearLevelCounter`]);
//! * the full NVM portion of the LLC data array with per-byte wear
//!   accounting and frame- or byte-granularity disabling ([`NvmArray`]).
//!
//! # Example
//!
//! ```
//! use hllc_nvm::{FaultMap, rearrange};
//!
//! let mut fm = FaultMap::new();
//! fm.mark_faulty(2);
//! fm.mark_faulty(5);
//! let ecb = [0xAA, 0xBB, 0xCC, 0xDD, 0xEE];
//! let (recb, mask) = rearrange::scatter(&ecb, &fm, 0);
//! let back = rearrange::gather(&recb, &fm, 0, ecb.len());
//! assert_eq!(back, ecb);
//! assert_eq!(mask.count_ones() as usize, ecb.len());
//! ```

mod array;
mod endurance;
mod fault_map;
mod frame;
pub mod rearrange;
mod setlevel;
mod wear;

pub use array::{DisableGranularity, FrameId, NvmArray};
pub use endurance::EnduranceModel;
pub use fault_map::{FaultMap, LiveIndices, FAULT_WORDS, FRAME_BYTES};
pub use frame::{Frame, WearEvent};
pub use setlevel::StartGap;
pub use wear::WearLevelCounter;
