//! Intra-frame wear-leveling (§III-B1).
//!
//! A single global counter, shared by all sets, selects the byte offset at
//! which writes start within a frame. It advances after long periods (hours
//! to days of wall-clock time) so the write region drifts across the frame
//! and wear is spread over all non-faulty bytes.

use crate::fault_map::FRAME_BYTES;

/// The global intra-frame wear-leveling rotation counter.
///
/// # Example
///
/// ```
/// use hllc_nvm::WearLevelCounter;
///
/// // Advance once per simulated hour at 3.5 GHz (1.26e13 cycles).
/// let mut wl = WearLevelCounter::new(3_600.0 * 3.5e9);
/// wl.tick(2.0 * 3_600.0 * 3.5e9); // two simulated hours
/// assert_eq!(wl.offset(), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WearLevelCounter {
    period_cycles: f64,
    accumulated: f64,
    offset: usize,
}

impl WearLevelCounter {
    /// Creates a counter that advances its offset every `period_cycles`
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period_cycles <= 0`.
    pub fn new(period_cycles: f64) -> Self {
        assert!(period_cycles > 0.0, "period must be positive");
        WearLevelCounter {
            period_cycles,
            accumulated: 0.0,
            offset: 0,
        }
    }

    /// Current starting byte offset for frame writes.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Accounts for `cycles` elapsed cycles, advancing the offset as many
    /// whole periods as fit.
    pub fn tick(&mut self, cycles: f64) {
        self.accumulated += cycles;
        let steps = (self.accumulated / self.period_cycles) as u64;
        if steps > 0 {
            self.accumulated -= steps as f64 * self.period_cycles;
            self.offset = (self.offset + steps as usize) % FRAME_BYTES;
        }
    }

    /// Forces the offset (used by tests and by the forecast when restoring
    /// state between phases).
    pub fn set_offset(&mut self, offset: usize) {
        self.offset = offset % FRAME_BYTES;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_every_period() {
        let mut wl = WearLevelCounter::new(100.0);
        wl.tick(99.0);
        assert_eq!(wl.offset(), 0);
        wl.tick(1.0);
        assert_eq!(wl.offset(), 1);
        wl.tick(250.0);
        assert_eq!(wl.offset(), 3);
        // Residual 50 cycles carried over.
        wl.tick(50.0);
        assert_eq!(wl.offset(), 4);
    }

    #[test]
    fn wraps_modulo_frame_bytes() {
        let mut wl = WearLevelCounter::new(1.0);
        wl.tick(FRAME_BYTES as f64 + 3.0);
        assert_eq!(wl.offset(), 3);
    }

    #[test]
    fn covers_all_offsets_over_time() {
        let mut wl = WearLevelCounter::new(10.0);
        let mut seen = [false; FRAME_BYTES];
        for _ in 0..FRAME_BYTES {
            seen[wl.offset()] = true;
            wl.tick(10.0);
        }
        assert!(seen.iter().all(|&s| s), "rotation must visit every offset");
    }
}
