//! Per-frame byte fault maps (Figure 4).

use std::fmt;

/// Physical bytes per NVM frame: the 527-bit (527,516) code word occupies
/// 66 bytes, and the fault map holds one bit per byte — matching the paper's
/// 66-bit fault-map entries.
pub const FRAME_BYTES: usize = 66;

/// A 66-bit fault map for one NVM frame: bit `i` set means byte `i` has a
/// hard fault and is disabled.
///
/// # Example
///
/// ```
/// use hllc_nvm::{FaultMap, FRAME_BYTES};
///
/// let mut fm = FaultMap::new();
/// assert_eq!(fm.live_bytes(), FRAME_BYTES);
/// fm.mark_faulty(10);
/// assert!(fm.is_faulty(10));
/// assert_eq!(fm.live_bytes(), FRAME_BYTES - 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultMap {
    bits: u128,
}

impl FaultMap {
    /// A fully functional frame (no faulty bytes).
    pub fn new() -> Self {
        FaultMap { bits: 0 }
    }

    /// Builds a fault map from an iterator of faulty byte indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= FRAME_BYTES`.
    pub fn from_faulty<I: IntoIterator<Item = usize>>(faulty: I) -> Self {
        let mut fm = FaultMap::new();
        for i in faulty {
            fm.mark_faulty(i);
        }
        fm
    }

    /// True if byte `i` is faulty.
    ///
    /// # Panics
    ///
    /// Panics if `i >= FRAME_BYTES`.
    pub fn is_faulty(&self, i: usize) -> bool {
        assert!(i < FRAME_BYTES, "byte index {i} out of range");
        self.bits >> i & 1 == 1
    }

    /// Marks byte `i` faulty (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `i >= FRAME_BYTES`.
    pub fn mark_faulty(&mut self, i: usize) {
        assert!(i < FRAME_BYTES, "byte index {i} out of range");
        self.bits |= 1 << i;
    }

    /// Number of non-faulty bytes — the frame's effective capacity for an
    /// extended compressed block.
    pub fn live_bytes(&self) -> usize {
        FRAME_BYTES - self.bits.count_ones() as usize
    }

    /// Number of faulty bytes.
    pub fn faulty_bytes(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True if every byte is dead.
    pub fn is_dead(&self) -> bool {
        self.live_bytes() == 0
    }

    /// Iterator over live (non-faulty) byte indices in ascending order.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..FRAME_BYTES).filter(move |&i| !self.is_faulty(i))
    }

    /// Raw 66-bit map (bit set = faulty).
    pub fn raw(&self) -> u128 {
        self.bits
    }
}

impl Default for FaultMap {
    fn default() -> Self {
        FaultMap::new()
    }
}

impl fmt::Debug for FaultMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FaultMap(live={}/{}", self.live_bytes(), FRAME_BYTES)?;
        if self.faulty_bytes() > 0 {
            write!(f, ", faulty=[")?;
            let mut first = true;
            for i in 0..FRAME_BYTES {
                if self.is_faulty(i) {
                    if !first {
                        write!(f, ",")?;
                    }
                    write!(f, "{i}")?;
                    first = false;
                }
            }
            write!(f, "]")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_is_fully_live() {
        let fm = FaultMap::new();
        assert_eq!(fm.live_bytes(), 66);
        assert_eq!(fm.faulty_bytes(), 0);
        assert!(!fm.is_dead());
        assert_eq!(fm.live_indices().count(), 66);
    }

    #[test]
    fn marking_is_idempotent() {
        let mut fm = FaultMap::new();
        fm.mark_faulty(65);
        fm.mark_faulty(65);
        assert_eq!(fm.faulty_bytes(), 1);
        assert!(fm.is_faulty(65));
    }

    #[test]
    fn from_faulty_collects() {
        let fm = FaultMap::from_faulty([0, 1, 65]);
        assert_eq!(fm.live_bytes(), 63);
        assert_eq!(fm.live_indices().next(), Some(2));
    }

    #[test]
    fn fully_dead() {
        let fm = FaultMap::from_faulty(0..FRAME_BYTES);
        assert!(fm.is_dead());
        assert_eq!(fm.live_indices().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        FaultMap::new().mark_faulty(66);
    }
}
