//! Per-frame byte fault maps (Figure 4).

use std::fmt;

/// Physical bytes per NVM frame: the 527-bit (527,516) code word occupies
/// 66 bytes, and the fault map holds one bit per byte — matching the paper's
/// 66-bit fault-map entries.
pub const FRAME_BYTES: usize = 66;

/// Number of `u64` words backing a fault map (`ceil(FRAME_BYTES / 64)`).
pub const FAULT_WORDS: usize = FRAME_BYTES.div_ceil(64);

/// Mask of the in-range bits of each backing word.
const WORD_MASKS: [u64; FAULT_WORDS] = [u64::MAX, (1u64 << (FRAME_BYTES - 64)) - 1];

/// A 66-bit fault map for one NVM frame: bit `i` set means byte `i` has a
/// hard fault and is disabled.
///
/// The map is packed into [`FAULT_WORDS`] `u64` words so fault counting is
/// a popcount per word and live-byte iteration consumes whole words via
/// `trailing_zeros`, instead of testing all 66 positions one by one.
///
/// # Example
///
/// ```
/// use hllc_nvm::{FaultMap, FRAME_BYTES};
///
/// let mut fm = FaultMap::new();
/// assert_eq!(fm.live_bytes(), FRAME_BYTES);
/// fm.mark_faulty(10);
/// assert!(fm.is_faulty(10));
/// assert_eq!(fm.live_bytes(), FRAME_BYTES - 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultMap {
    words: [u64; FAULT_WORDS],
}

impl FaultMap {
    /// A fully functional frame (no faulty bytes).
    pub fn new() -> Self {
        FaultMap {
            words: [0; FAULT_WORDS],
        }
    }

    /// Builds a fault map from an iterator of faulty byte indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= FRAME_BYTES`.
    pub fn from_faulty<I: IntoIterator<Item = usize>>(faulty: I) -> Self {
        let mut fm = FaultMap::new();
        for i in faulty {
            fm.mark_faulty(i);
        }
        fm
    }

    /// True if byte `i` is faulty.
    ///
    /// # Panics
    ///
    /// Panics if `i >= FRAME_BYTES`.
    #[inline]
    pub fn is_faulty(&self, i: usize) -> bool {
        assert!(i < FRAME_BYTES, "byte index {i} out of range");
        // i >> 6 < FAULT_WORDS since i < FRAME_BYTES.
        self.words[i >> 6] >> (i & 63) & 1 == 1
    }

    /// Marks byte `i` faulty (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `i >= FRAME_BYTES`.
    #[inline]
    pub fn mark_faulty(&mut self, i: usize) {
        assert!(i < FRAME_BYTES, "byte index {i} out of range");
        self.words[i >> 6] |= 1 << (i & 63);
    }

    /// Number of non-faulty bytes — the frame's effective capacity for an
    /// extended compressed block. One popcount per backing word.
    #[inline]
    pub fn live_bytes(&self) -> usize {
        FRAME_BYTES - self.faulty_bytes()
    }

    /// Number of faulty bytes (popcount over the packed words).
    #[inline]
    pub fn faulty_bytes(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
    }

    /// True if every byte is dead.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.live_bytes() == 0
    }

    /// The packed fault words (bit set = faulty); bits at and above
    /// [`FRAME_BYTES`] are always zero.
    #[inline]
    pub fn words(&self) -> [u64; FAULT_WORDS] {
        self.words
    }

    /// The packed *live* words (bit set = usable byte), complementing
    /// [`words`](Self::words) within the frame range.
    #[inline]
    pub fn live_words(&self) -> [u64; FAULT_WORDS] {
        let mut live = [0u64; FAULT_WORDS];
        for (w, l) in live.iter_mut().enumerate() {
            // w enumerates live, which has the same length as words.
            *l = !self.words[w] & WORD_MASKS[w];
        }
        live
    }

    /// Iterator over live (non-faulty) byte indices in ascending order.
    pub fn live_indices(&self) -> LiveIndices {
        self.live_indices_from(0)
    }

    /// Iterator over live byte indices starting at `offset` (taken modulo
    /// [`FRAME_BYTES`]) and wrapping around — the circular scan order of
    /// the rearrangement circuitry. Word-granular: each step pops the next
    /// set bit of the live mask via `trailing_zeros`.
    pub fn live_indices_from(&self, offset: usize) -> LiveIndices {
        let offset = offset % FRAME_BYTES;
        let live = self.live_words();
        // Split the live mask into [offset..FRAME_BYTES) and [0..offset):
        // ascending iteration of the first then the second reproduces the
        // circular scan.
        let mut head = [0u64; FAULT_WORDS];
        let mut tail = [0u64; FAULT_WORDS];
        for w in 0..FAULT_WORDS {
            let lo = w * 64;
            let from_offset = if offset <= lo {
                u64::MAX
            } else if offset - lo >= 64 {
                0
            } else {
                u64::MAX << (offset - lo)
            };
            head[w] = live[w] & from_offset;
            tail[w] = live[w] & !from_offset;
        }
        LiveIndices {
            segments: [head, tail],
            segment: 0,
        }
    }

    /// Raw 66-bit map (bit set = faulty).
    #[inline]
    pub fn raw(&self) -> u128 {
        u128::from(self.words[0]) | u128::from(self.words[1]) << 64
    }
}

/// Word-granular iterator over live byte positions (see
/// [`FaultMap::live_indices_from`]).
#[derive(Clone, Debug)]
pub struct LiveIndices {
    segments: [[u64; FAULT_WORDS]; 2],
    segment: usize,
}

impl Iterator for LiveIndices {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.segment < 2 {
            // segment < 2 == segments.len() inside the loop.
            let words = &mut self.segments[self.segment];
            for (w, word) in words.iter_mut().enumerate() {
                if *word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    *word &= *word - 1;
                    return Some(w * 64 + bit);
                }
            }
            self.segment += 1;
        }
        None
    }
}

impl Default for FaultMap {
    fn default() -> Self {
        FaultMap::new()
    }
}

impl fmt::Debug for FaultMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FaultMap(live={}/{}", self.live_bytes(), FRAME_BYTES)?;
        if self.faulty_bytes() > 0 {
            write!(f, ", faulty=[")?;
            let mut first = true;
            for i in 0..FRAME_BYTES {
                if self.is_faulty(i) {
                    if !first {
                        write!(f, ",")?;
                    }
                    write!(f, "{i}")?;
                    first = false;
                }
            }
            write!(f, "]")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_is_fully_live() {
        let fm = FaultMap::new();
        assert_eq!(fm.live_bytes(), 66);
        assert_eq!(fm.faulty_bytes(), 0);
        assert!(!fm.is_dead());
        assert_eq!(fm.live_indices().count(), 66);
    }

    #[test]
    fn marking_is_idempotent() {
        let mut fm = FaultMap::new();
        fm.mark_faulty(65);
        fm.mark_faulty(65);
        assert_eq!(fm.faulty_bytes(), 1);
        assert!(fm.is_faulty(65));
    }

    #[test]
    fn from_faulty_collects() {
        let fm = FaultMap::from_faulty([0, 1, 65]);
        assert_eq!(fm.live_bytes(), 63);
        assert_eq!(fm.live_indices().next(), Some(2));
    }

    #[test]
    fn fully_dead() {
        let fm = FaultMap::from_faulty(0..FRAME_BYTES);
        assert!(fm.is_dead());
        assert_eq!(fm.live_indices().count(), 0);
    }

    #[test]
    fn words_and_raw_agree() {
        let fm = FaultMap::from_faulty([0, 63, 64, 65]);
        let words = fm.words();
        assert_eq!(words[0], 1 | 1 << 63);
        assert_eq!(words[1], 0b11);
        assert_eq!(fm.raw(), u128::from(words[0]) | u128::from(words[1]) << 64);
        let live = fm.live_words();
        assert_eq!(live[0], !words[0]);
        assert_eq!(live[1], 0);
        assert_eq!(
            (live[0].count_ones() + live[1].count_ones()) as usize,
            fm.live_bytes()
        );
    }

    #[test]
    fn live_indices_from_wraps_circularly() {
        let fm = FaultMap::from_faulty([2, 5, 64]);
        // Offset 3: scan 3,4,(5 faulty),6..63,(64 faulty),65 then 0,1,(2),..
        let order: Vec<usize> = fm.live_indices_from(3).collect();
        assert_eq!(order.len(), fm.live_bytes());
        assert_eq!(&order[..4], &[3, 4, 6, 7]);
        assert_eq!(order[order.len() - 3..], [65, 0, 1]);
        // Offsets beyond the frame wrap modulo FRAME_BYTES.
        let wrapped: Vec<usize> = fm.live_indices_from(3 + FRAME_BYTES).collect();
        assert_eq!(order, wrapped);
        // Offset in the second word starts there.
        assert_eq!(fm.live_indices_from(65).next(), Some(65));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        FaultMap::new().mark_faulty(66);
    }
}
