//! Property-based tests for the SECDED codec.

use hllc_ecc::{BitVec, Decoded, SecdedCode};
use proptest::prelude::*;

fn arb_payload(bits: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), bits).prop_map(move |v| {
        let mut bv = BitVec::zeros(bits);
        for (i, b) in v.iter().enumerate() {
            bv.set(i, *b);
        }
        bv
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clean code words decode to the original payload (small width).
    #[test]
    fn clean_round_trip_32(data in arb_payload(32)) {
        let c = SecdedCode::new(32);
        prop_assert_eq!(c.decode(&c.encode(&data)), Decoded::Clean { data: data.clone() });
    }

    /// Any single flipped bit is corrected back to the original payload.
    #[test]
    fn single_error_corrected(data in arb_payload(32), bit in 0usize..39) {
        let c = SecdedCode::new(32);
        assert_eq!(c.codeword_bits(), 39);
        let mut word = c.encode(&data);
        word.flip(bit);
        match c.decode(&word) {
            Decoded::Corrected { position, data: d } => {
                prop_assert_eq!(position, bit);
                prop_assert_eq!(d, data);
            }
            other => return Err(TestCaseError::fail(format!("got {other:?}"))),
        }
    }

    /// Any two distinct flipped bits are flagged as a double error.
    #[test]
    fn double_error_detected(data in arb_payload(32), a in 0usize..39, b in 0usize..39) {
        prop_assume!(a != b);
        let c = SecdedCode::new(32);
        let mut word = c.encode(&data);
        word.flip(a);
        word.flip(b);
        prop_assert_eq!(c.decode(&word), Decoded::DoubleError);
    }

    /// ECB packing round-trips for every compressed size and any payload,
    /// and survives a single flipped stored bit.
    #[test]
    fn ecb_pack_round_trip(
        cb_size in 1u8..=64,
        seed in any::<u64>(),
        ce in 0u8..16,
        flip in prop::option::of(0usize..520),
    ) {
        use hllc_ecc::FrameCodec;
        let codec = FrameCodec::new();
        let mut data = [0u8; 64];
        let mut x = seed | 1;
        for b in data.iter_mut().take(cb_size as usize) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 48) as u8;
        }
        let word = codec.encode(ce, &data);
        let mut packed = codec.pack_ecb(&word, cb_size);
        prop_assert_eq!(packed.len(), cb_size as usize + 2);

        if let Some(f) = flip {
            let stored_bits = 15 + 8 * cb_size as usize;
            let bit = f % stored_bits;
            packed[bit / 8] ^= 1 << (bit % 8);
        }
        let rebuilt = codec.unpack_ecb(&packed, cb_size);
        match codec.decode(&rebuilt) {
            Decoded::Clean { data: payload } | Decoded::Corrected { data: payload, .. } => {
                let (ce_back, data_back) = FrameCodec::split_payload(&payload);
                prop_assert_eq!(ce_back, ce);
                prop_assert_eq!(&data_back[..], &data[..]);
            }
            Decoded::DoubleError => {
                return Err(TestCaseError::fail("single flip must be correctable"));
            }
        }
    }

    /// The full-size (527,516) frame code round-trips and corrects.
    #[test]
    fn frame_code_corrects(seed in any::<u64>(), bit in 0usize..527) {
        let c = SecdedCode::new(516);
        let mut data = BitVec::zeros(516);
        let mut x = seed | 1;
        for i in 0..516 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if x >> 63 == 1 { data.set(i, true); }
        }
        let mut word = c.encode(&data);
        word.flip(bit);
        match c.decode(&word) {
            Decoded::Corrected { position, data: d } => {
                prop_assert_eq!(position, bit);
                prop_assert_eq!(d, data);
            }
            other => return Err(TestCaseError::fail(format!("got {other:?}"))),
        }
    }
}
