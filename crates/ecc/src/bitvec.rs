//! A compact fixed-length bit vector used by the SECDED codec.

use std::fmt;

/// A fixed-length vector of bits, stored LSB-first in 64-bit words.
///
/// # Example
///
/// ```
/// use hllc_ecc::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// assert!(v.get(3));
/// assert_eq!(v.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit vector from `len` bits of `bytes` (LSB-first within
    /// each byte, bytes in order).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(
            bytes.len() * 8 >= len,
            "byte slice too short for {len} bits"
        );
        let mut v = BitVec::zeros(len);
        for i in 0..len {
            if bytes[i / 8] >> (i % 8) & 1 == 1 {
                v.set(i, true);
            }
        }
        v
    }

    /// Serializes to bytes (LSB-first), zero-padded to whole bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Inverts bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterator over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(80) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 80 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert_eq!(v.count_ones(), 3);
        v.flip(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn byte_round_trip() {
        let bytes = [0xDE, 0xAD, 0xBE, 0xEF];
        let v = BitVec::from_bytes(&bytes, 32);
        assert_eq!(v.to_bytes(), bytes);
    }

    #[test]
    fn partial_byte() {
        let v = BitVec::from_bytes(&[0xFF], 5);
        assert_eq!(v.count_ones(), 5);
        assert_eq!(v.to_bytes(), vec![0b0001_1111]);
    }

    #[test]
    fn iter_ones_order() {
        let mut v = BitVec::zeros(70);
        v.set(3, true);
        v.set(69, true);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3, 69]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }
}
