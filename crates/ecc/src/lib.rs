//! Hamming SECDED error-correcting codes.
//!
//! The hybrid LLC of *Compression-Aware and Performance-Efficient Insertion
//! Policies for Long-Lasting Hybrid LLCs* (HPCA 2023) assumes Hamming SECDED
//! protection in all arrays (§III-B). The NVM data array uses the
//! **(527, 516)** code: 516 payload bits (512 data + 4 CE bits) protected by
//! 11 check bits, able to correct any single hard fault and detect double
//! faults — the detection signal is what drives byte disabling.
//!
//! This crate provides a generic single-error-correcting,
//! double-error-detecting codec for arbitrary payload widths, plus the
//! (527,516) specialization.
//!
//! # Example
//!
//! ```
//! use hllc_ecc::{BitVec, Decoded, SecdedCode};
//!
//! let code = SecdedCode::new(16);
//! let data = BitVec::from_bytes(&[0xAB, 0xCD], 16);
//! let mut word = code.encode(&data);
//! word.flip(5); // single bit error
//! match code.decode(&word) {
//!     Decoded::Corrected { data: d, .. } => assert_eq!(d, data),
//!     other => panic!("expected correction, got {other:?}"),
//! }
//! ```

mod bitvec;
mod hamming;
mod secded;

pub use bitvec::BitVec;
pub use hamming::{Decoded, SecdedCode};
pub use secded::{FrameCodec, FRAME_CODE_BITS, FRAME_DATA_BITS, FRAME_PAYLOAD_BITS};
