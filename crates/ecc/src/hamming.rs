//! Generic Hamming SECDED encoder/decoder.
//!
//! Classic extended-Hamming construction: check bits sit at power-of-two
//! positions 1, 2, 4, … of the Hamming codeword, data bits fill the rest,
//! and one extra overall-parity bit extends single-error correction with
//! double-error detection.

use crate::bitvec::BitVec;

/// Outcome of decoding a (possibly corrupted) SECDED codeword.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decoded {
    /// No error detected; the payload follows.
    Clean {
        /// Recovered payload bits.
        data: BitVec,
    },
    /// A single-bit error was corrected.
    Corrected {
        /// Position of the flipped bit within the stored codeword
        /// (0 = overall parity bit, 1.. = Hamming positions).
        position: usize,
        /// Recovered payload bits.
        data: BitVec,
    },
    /// An uncorrectable double-bit error was detected.
    DoubleError,
}

/// A Hamming SECDED code for a fixed payload width.
///
/// For `k` payload bits the code uses `r` Hamming check bits with
/// `2^r >= k + r + 1`, plus one overall parity bit: codeword length
/// `k + r + 1`.
///
/// # Example
///
/// ```
/// use hllc_ecc::SecdedCode;
///
/// // The paper's NVM data-array code: (527, 516).
/// let code = SecdedCode::new(516);
/// assert_eq!(code.codeword_bits(), 527);
/// assert_eq!(code.check_bits(), 11);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecdedCode {
    data_bits: usize,
    hamming_checks: usize,
}

impl SecdedCode {
    /// Creates a SECDED code for `data_bits` payload bits.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is zero.
    pub fn new(data_bits: usize) -> Self {
        assert!(data_bits > 0, "payload must have at least one bit");
        let mut r = 0usize;
        while (1usize << r) < data_bits + r + 1 {
            r += 1;
        }
        SecdedCode {
            data_bits,
            hamming_checks: r,
        }
    }

    /// Payload width in bits.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Total check bits (Hamming checks + overall parity).
    pub fn check_bits(&self) -> usize {
        self.hamming_checks + 1
    }

    /// Codeword length in bits.
    pub fn codeword_bits(&self) -> usize {
        self.data_bits + self.check_bits()
    }

    /// Encodes `data` into a codeword.
    ///
    /// Codeword layout: bit 0 is the overall parity; bits 1.. are the
    /// Hamming codeword in position order (check bits at powers of two).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_bits()`.
    pub fn encode(&self, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.data_bits, "payload width mismatch");
        let n = self.codeword_bits();
        let mut word = BitVec::zeros(n);

        // Place data bits at non-power-of-two Hamming positions.
        let mut di = 0;
        for pos in 1..n {
            if !pos.is_power_of_two() {
                word.set(pos, data.get(di));
                di += 1;
            }
        }
        debug_assert_eq!(di, self.data_bits);

        // Compute Hamming check bits.
        for c in 0..self.hamming_checks {
            let mask = 1usize << c;
            let mut parity = false;
            for pos in 1..n {
                if pos & mask != 0 && !pos.is_power_of_two() && word.get(pos) {
                    parity = !parity;
                }
            }
            word.set(mask, parity);
        }

        // Overall parity covers everything (bit 0 chosen to make total even).
        let ones = word.count_ones();
        word.set(0, ones % 2 == 1);
        word
    }

    /// Decodes a codeword, correcting single-bit errors and detecting
    /// double-bit errors.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != self.codeword_bits()`.
    pub fn decode(&self, word: &BitVec) -> Decoded {
        assert_eq!(word.len(), self.codeword_bits(), "codeword width mismatch");
        let n = self.codeword_bits();

        // Syndrome: XOR of the positions of all set bits in Hamming space.
        let mut syndrome = 0usize;
        for pos in 1..n {
            if word.get(pos) {
                syndrome ^= pos;
            }
        }
        let overall_even = word.count_ones().is_multiple_of(2);

        if syndrome == 0 && overall_even {
            return Decoded::Clean {
                data: self.extract(word),
            };
        }
        if !overall_even {
            // Odd weight error (assume single): correct it.
            let mut fixed = word.clone();
            let position = if syndrome == 0 {
                0 // the overall parity bit itself
            } else if syndrome < n {
                syndrome
            } else {
                // Syndrome points outside the word: treat as uncorrectable.
                return Decoded::DoubleError;
            };
            fixed.flip(position);
            return Decoded::Corrected {
                position,
                data: self.extract(&fixed),
            };
        }
        // Even weight error with non-zero syndrome: double error.
        Decoded::DoubleError
    }

    /// Pulls the payload bits back out of a (corrected) codeword.
    fn extract(&self, word: &BitVec) -> BitVec {
        let mut data = BitVec::zeros(self.data_bits);
        let mut di = 0;
        for pos in 1..self.codeword_bits() {
            if !pos.is_power_of_two() {
                data.set(di, word.get(pos));
                di += 1;
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(bits: usize, seed: u64) -> BitVec {
        let mut v = BitVec::zeros(bits);
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for i in 0..bits {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x >> 63 == 1 {
                v.set(i, true);
            }
        }
        v
    }

    #[test]
    fn parameters_527_516() {
        let c = SecdedCode::new(516);
        assert_eq!(c.check_bits(), 11);
        assert_eq!(c.codeword_bits(), 527);
    }

    #[test]
    fn classic_parameters() {
        // (8,4) extended Hamming and (72,64) SECDED used in DRAM.
        assert_eq!(SecdedCode::new(4).codeword_bits(), 8);
        assert_eq!(SecdedCode::new(64).codeword_bits(), 72);
    }

    #[test]
    fn clean_round_trip() {
        for bits in [1, 4, 11, 64, 516] {
            let c = SecdedCode::new(bits);
            for seed in 0..4 {
                let data = pattern(bits, seed);
                assert_eq!(
                    c.decode(&c.encode(&data)),
                    Decoded::Clean { data: data.clone() },
                    "bits={bits} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn corrects_every_single_bit_error_small() {
        let c = SecdedCode::new(16);
        let data = pattern(16, 7);
        let word = c.encode(&data);
        for i in 0..word.len() {
            let mut corrupted = word.clone();
            corrupted.flip(i);
            match c.decode(&corrupted) {
                Decoded::Corrected { position, data: d } => {
                    assert_eq!(position, i);
                    assert_eq!(d, data);
                }
                other => panic!("bit {i}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrects_sampled_single_bit_errors_527() {
        let c = SecdedCode::new(516);
        let data = pattern(516, 3);
        let word = c.encode(&data);
        for i in (0..527).step_by(13) {
            let mut corrupted = word.clone();
            corrupted.flip(i);
            match c.decode(&corrupted) {
                Decoded::Corrected { position, data: d } => {
                    assert_eq!(position, i);
                    assert_eq!(d, data);
                }
                other => panic!("bit {i}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn detects_double_errors() {
        let c = SecdedCode::new(32);
        let data = pattern(32, 11);
        let word = c.encode(&data);
        let n = word.len();
        for i in 0..n {
            for j in (i + 1..n).step_by(5) {
                let mut corrupted = word.clone();
                corrupted.flip(i);
                corrupted.flip(j);
                assert_eq!(
                    c.decode(&corrupted),
                    Decoded::DoubleError,
                    "double error at ({i},{j}) not detected"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "payload width mismatch")]
    fn encode_rejects_wrong_width() {
        SecdedCode::new(8).encode(&BitVec::zeros(9));
    }
}
