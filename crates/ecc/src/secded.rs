//! The (527, 516) frame codec used by the hybrid LLC NVM data array.
//!
//! §III-B1: the extended compressed block (ECB) is formed from the 4-bit CE
//! and a zero-padded 512-bit data vector; the 11-bit SECDED code is computed
//! over those 516 bits and stored with them — 527 bits per frame code word.

use crate::bitvec::BitVec;
use crate::hamming::{Decoded, SecdedCode};

/// Payload bits protected per NVM frame: 512 data bits + 4 CE bits.
pub const FRAME_PAYLOAD_BITS: usize = 516;
/// Data bits within the payload (one 64-byte block, zero-padded if
/// compressed).
pub const FRAME_DATA_BITS: usize = 512;
/// Total code-word bits per frame: payload + 11 SECDED bits.
pub const FRAME_CODE_BITS: usize = 527;

/// Encoder/decoder for NVM frame code words.
///
/// # Example
///
/// ```
/// use hllc_ecc::{Decoded, FrameCodec};
///
/// let codec = FrameCodec::new();
/// let data = [7u8; 64];
/// let word = codec.encode(0x3, &data);
/// match codec.decode(&word) {
///     Decoded::Clean { data: payload } => {
///         let (ce, bytes) = FrameCodec::split_payload(&payload);
///         assert_eq!(ce, 0x3);
///         assert_eq!(bytes, data);
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameCodec {
    code: SecdedCode,
}

impl FrameCodec {
    /// Creates the (527, 516) frame codec.
    pub fn new() -> Self {
        let code = SecdedCode::new(FRAME_PAYLOAD_BITS);
        debug_assert_eq!(code.codeword_bits(), FRAME_CODE_BITS);
        FrameCodec { code }
    }

    /// Encodes a 4-bit CE and 64 data bytes (a compressed block is
    /// zero-padded by the caller) into a 527-bit code word.
    ///
    /// # Panics
    ///
    /// Panics if `ce >= 16`.
    pub fn encode(&self, ce: u8, data: &[u8; 64]) -> BitVec {
        assert!(ce < 16, "CE is a 4-bit field");
        let mut payload = BitVec::zeros(FRAME_PAYLOAD_BITS);
        for b in 0..4 {
            payload.set(b, ce >> b & 1 == 1);
        }
        for i in 0..FRAME_DATA_BITS {
            if data[i / 8] >> (i % 8) & 1 == 1 {
                payload.set(4 + i, true);
            }
        }
        self.code.encode(&payload)
    }

    /// Decodes a frame code word; see [`SecdedCode::decode`].
    pub fn decode(&self, word: &BitVec) -> Decoded {
        self.code.decode(word)
    }

    /// Packs a 527-bit code word into the compact extended compressed block
    /// (ECB) actually stored in a frame: the 11 check bits, the 4 CE bits,
    /// and the `cb_size`-byte compressed payload — the zero padding that
    /// was SECDED-encoded is *implicit* and not stored. The result is
    /// exactly `cb_size + 2` bytes (§III-B1).
    ///
    /// # Panics
    ///
    /// Panics if the word length is wrong or `cb_size > 64`.
    pub fn pack_ecb(&self, word: &BitVec, cb_size: u8) -> Vec<u8> {
        assert_eq!(word.len(), FRAME_CODE_BITS, "frame code word expected");
        assert!(cb_size <= 64, "compressed blocks are at most 64 bytes");
        let stored = Self::stored_positions(cb_size);
        let mut out = vec![0u8; cb_size as usize + 2];
        for (i, pos) in stored.enumerate() {
            if word.get(pos) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Reconstructs the full 527-bit code word from a packed ECB, filling
    /// the implicit zero padding back in. Inverse of [`FrameCodec::pack_ecb`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `cb_size + 2` or `cb_size > 64`.
    pub fn unpack_ecb(&self, bytes: &[u8], cb_size: u8) -> BitVec {
        assert!(cb_size <= 64, "compressed blocks are at most 64 bytes");
        assert!(
            bytes.len() >= cb_size as usize + 2,
            "packed ECB must hold {} bytes",
            cb_size as usize + 2
        );
        let mut word = BitVec::zeros(FRAME_CODE_BITS);
        for (i, pos) in Self::stored_positions(cb_size).enumerate() {
            if bytes[i / 8] >> (i % 8) & 1 == 1 {
                word.set(pos, true);
            }
        }
        word
    }

    /// Code-word bit positions that are physically stored for a `cb_size`-
    /// byte compressed block: the overall parity (0), the Hamming check
    /// bits (powers of two), and the first `4 + 8·cb_size` data positions
    /// (CE + compressed payload).
    fn stored_positions(cb_size: u8) -> impl Iterator<Item = usize> {
        let payload_bits = 4 + 8 * cb_size as usize;
        let mut data_seen = 0usize;
        (0..FRAME_CODE_BITS).filter(move |&pos| {
            if pos == 0 || pos.is_power_of_two() {
                true
            } else {
                data_seen += 1;
                data_seen <= payload_bits
            }
        })
    }

    /// Splits a decoded 516-bit payload back into (CE, 64 data bytes).
    pub fn split_payload(payload: &BitVec) -> (u8, [u8; 64]) {
        assert_eq!(payload.len(), FRAME_PAYLOAD_BITS);
        let mut ce = 0u8;
        for b in 0..4 {
            if payload.get(b) {
                ce |= 1 << b;
            }
        }
        let mut data = [0u8; 64];
        for i in 0..FRAME_DATA_BITS {
            if payload.get(4 + i) {
                data[i / 8] |= 1 << (i % 8);
            }
        }
        (ce, data)
    }
}

impl Default for FrameCodec {
    fn default() -> Self {
        FrameCodec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let codec = FrameCodec::new();
        let mut data = [0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let word = codec.encode(0xA, &data);
        assert_eq!(word.len(), FRAME_CODE_BITS);
        match codec.decode(&word) {
            Decoded::Clean { data: payload } => {
                let (ce, bytes) = FrameCodec::split_payload(&payload);
                assert_eq!(ce, 0xA);
                assert_eq!(bytes, data);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frame_corrects_single_fault() {
        let codec = FrameCodec::new();
        let data = [0x5Au8; 64];
        let mut word = codec.encode(0x1, &data);
        word.flip(400);
        match codec.decode(&word) {
            Decoded::Corrected {
                position,
                data: payload,
            } => {
                assert_eq!(position, 400);
                let (ce, bytes) = FrameCodec::split_payload(&payload);
                assert_eq!((ce, bytes), (0x1, data));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frame_detects_double_fault() {
        let codec = FrameCodec::new();
        let mut word = codec.encode(0, &[0u8; 64]);
        word.flip(10);
        word.flip(300);
        assert_eq!(codec.decode(&word), Decoded::DoubleError);
    }

    #[test]
    #[should_panic(expected = "4-bit")]
    fn rejects_wide_ce() {
        FrameCodec::new().encode(16, &[0u8; 64]);
    }

    #[test]
    fn ecb_pack_unpack_round_trip() {
        let codec = FrameCodec::new();
        for cb_size in [1u8, 8, 22, 37, 57, 64] {
            // Compressed payload of cb_size bytes, zero padding above.
            let mut data = [0u8; 64];
            for (i, b) in data.iter_mut().take(cb_size as usize).enumerate() {
                *b = (i as u8).wrapping_mul(73).wrapping_add(5);
            }
            let word = codec.encode(0x9, &data);
            let packed = codec.pack_ecb(&word, cb_size);
            assert_eq!(packed.len(), cb_size as usize + 2, "ECB = CB + 2 bytes");
            let unpacked = codec.unpack_ecb(&packed, cb_size);
            assert_eq!(unpacked, word, "cb_size={cb_size}");
        }
    }

    #[test]
    fn packed_ecb_survives_single_bit_error() {
        let codec = FrameCodec::new();
        let cb_size = 22u8;
        let mut data = [0u8; 64];
        data[..22].copy_from_slice(&[0x5A; 22]);
        let word = codec.encode(0x3, &data);
        let mut packed = codec.pack_ecb(&word, cb_size);
        packed[7] ^= 0x10; // flip one stored bit
        let rebuilt = codec.unpack_ecb(&packed, cb_size);
        match codec.decode(&rebuilt) {
            Decoded::Corrected { data: payload, .. } => {
                let (ce, bytes) = FrameCodec::split_payload(&payload);
                assert_eq!(ce, 0x3);
                assert_eq!(&bytes[..22], &[0x5A; 22]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
