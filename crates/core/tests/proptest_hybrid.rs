//! Property-based tests of the hybrid LLC's structural invariants, plus a
//! reference-model equivalence check: BH on a fresh cache must behave as a
//! textbook 16-way LRU.

use std::collections::HashMap;

use hllc_core::{HybridConfig, HybridLlc, Policy};
use hllc_sim::{DataModel, LlcPort, LlcReq, ReuseClass};
use proptest::prelude::*;

const SETS: usize = 8;

/// Data model mapping block → size from the hash of the block address.
struct HashSizeData;

impl DataModel for HashSizeData {
    fn compressed_size(&mut self, block: u64) -> u8 {
        // Sticky pseudo-random size in 1..=64.
        let h = block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58;
        [
            1u8, 8, 15, 19, 22, 29, 33, 34, 36, 43, 49, 50, 57, 64, 64, 64,
        ][h as usize % 16]
    }
}

#[derive(Clone, Copy, Debug)]
enum OpKind {
    InsertClean,
    InsertDirty,
    InsertRead,
    InsertWriteDirty,
    GetS,
    GetX,
}

fn arb_ops() -> impl Strategy<Value = Vec<(OpKind, u64)>> {
    let op = prop_oneof![
        Just(OpKind::InsertClean),
        Just(OpKind::InsertDirty),
        Just(OpKind::InsertRead),
        Just(OpKind::InsertWriteDirty),
        Just(OpKind::GetS),
        Just(OpKind::GetX),
    ];
    prop::collection::vec((op, 0u64..64), 1..400)
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Bh),
        Just(Policy::BhCp),
        Just(Policy::Ca { cp_th: 37 }),
        Just(Policy::CaRwr { cp_th: 58 }),
        Just(Policy::cp_sd()),
        Just(Policy::cp_sd_th(8.0)),
        Just(Policy::LHybrid),
        Just(Policy::tap()),
    ]
}

fn apply(llc: &mut HybridLlc, now: u64, op: OpKind, block: u64, data: &mut HashSizeData) {
    match op {
        OpKind::InsertClean => llc.insert(now, block, false, ReuseClass::None, data),
        OpKind::InsertDirty => llc.insert(now, block, true, ReuseClass::None, data),
        OpKind::InsertRead => llc.insert(now, block, false, ReuseClass::Read, data),
        OpKind::InsertWriteDirty => llc.insert(now, block, true, ReuseClass::Write, data),
        OpKind::GetS => {
            let _ = llc.request(now, block, LlcReq::GetS);
        }
        OpKind::GetX => {
            let _ = llc.request(now, block, LlcReq::GetX);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants hold for every policy under arbitrary
    /// operation sequences.
    #[test]
    fn invariants_hold(policy in arb_policy(), ops in arb_ops()) {
        let cfg = HybridConfig::new(SETS, 4, 12, policy);
        let mut llc = HybridLlc::new(&cfg);
        let mut data = HashSizeData;
        for (now, (op, block)) in ops.iter().enumerate() {
            apply(&mut llc, now as u64, *op, *block, &mut data);

            // A resident block is found exactly once.
            if llc.contains(*block) {
                prop_assert!(llc.locate(*block).is_some());
                let line = llc.peek(*block).unwrap();
                prop_assert_eq!(line.block, *block);
                prop_assert!(line.cb_size >= 1 && line.cb_size <= 64);
            }
        }
        let s = llc.stats();
        prop_assert_eq!(s.hits + s.misses, s.gets + s.getx);
        prop_assert_eq!(s.hits, s.sram_hits + s.nvm_hits);
        prop_assert!(s.migrations <= s.nvm_inserts);
    }

    /// A `GetX` hit always invalidates; a subsequent `GetS` misses.
    #[test]
    fn getx_invalidate(policy in arb_policy(), block in 0u64..64) {
        let cfg = HybridConfig::new(SETS, 4, 12, policy);
        let mut llc = HybridLlc::new(&cfg);
        let mut data = HashSizeData;
        llc.insert(0, block, false, ReuseClass::None, &mut data);
        prop_assume!(llc.contains(block)); // could have bypassed in odd configs
        let r = llc.request(1, block, LlcReq::GetX);
        prop_assert!(r.hit);
        prop_assert!(!llc.contains(block));
        prop_assert!(!llc.request(2, block, LlcReq::GetS).hit);
    }

    /// On a fresh (fault-free) cache, BH is exactly a 16-way LRU: the same
    /// hit/miss sequence as a reference model.
    #[test]
    fn bh_matches_reference_lru(ops in arb_ops()) {
        let cfg = HybridConfig::new(SETS, 4, 12, Policy::Bh);
        let mut llc = HybridLlc::new(&cfg);
        let mut data = HashSizeData;

        // Reference: per-set LRU lists of capacity 16.
        let mut model: HashMap<usize, Vec<u64>> = HashMap::new();
        let touch = |model: &mut HashMap<usize, Vec<u64>>, block: u64| -> bool {
            let set = (block as usize) % SETS;
            let list = model.entry(set).or_default();
            if let Some(pos) = list.iter().position(|&b| b == block) {
                list.remove(pos);
                list.push(block);
                true
            } else {
                false
            }
        };

        for (now, (op, block)) in ops.iter().enumerate() {
            let now = now as u64;
            match op {
                OpKind::InsertClean | OpKind::InsertDirty
                | OpKind::InsertRead | OpKind::InsertWriteDirty => {
                    let dirty = matches!(op, OpKind::InsertDirty | OpKind::InsertWriteDirty);
                    llc.insert(now, *block, dirty, ReuseClass::None, &mut data);
                    // Model: refresh if present, else insert with LRU evict.
                    if !touch(&mut model, *block) {
                        let set = (*block as usize) % SETS;
                        let list = model.entry(set).or_default();
                        if list.len() == 16 {
                            list.remove(0);
                        }
                        list.push(*block);
                    }
                }
                OpKind::GetS => {
                    let r = llc.request(now, *block, LlcReq::GetS);
                    let model_hit = touch(&mut model, *block);
                    prop_assert_eq!(r.hit, model_hit, "GetS divergence on block {}", block);
                }
                OpKind::GetX => {
                    let r = llc.request(now, *block, LlcReq::GetX);
                    let set = (*block as usize) % SETS;
                    let list = model.entry(set).or_default();
                    let model_hit = list.iter().position(|&b| b == *block).map(|p| {
                        list.remove(p);
                    });
                    prop_assert_eq!(r.hit, model_hit.is_some(), "GetX divergence on block {}", block);
                }
            }
        }
        // Final contents agree.
        for (set, list) in &model {
            for &b in list {
                prop_assert!(llc.contains(b), "model has {b} in set {set}, LLC does not");
            }
        }
    }

    /// NVM-resident compressed blocks always fit their frame's capacity.
    #[test]
    fn nvm_residents_fit_their_frames(ops in arb_ops(), faulty_bytes in 0usize..40) {
        let cfg = HybridConfig::new(SETS, 4, 12, Policy::cp_sd());
        let mut llc = HybridLlc::new(&cfg);
        // Injure some frames first.
        for set in 0..SETS {
            for way in 0..12 {
                let n = (set * 7 + way * 13 + faulty_bytes) % faulty_bytes.max(1);
                for b in 0..n {
                    llc.array_mut().unwrap().frame_mut(set, way).disable_byte(b);
                }
            }
        }
        let mut data = HashSizeData;
        for (now, (op, block)) in ops.iter().enumerate() {
            apply(&mut llc, now as u64, *op, *block, &mut data);
        }
        for block in 0u64..64 {
            if let Some((hllc_core::Part::Nvm, way)) = llc.locate_way(block) {
                let line = llc.peek(block).unwrap();
                let set = (block as usize) % SETS;
                let capacity = llc.array().unwrap().effective_capacity(set, way);
                prop_assert!(
                    line.ecb_size() <= capacity,
                    "block {block}: ECB {} bytes in a {capacity}-byte frame",
                    line.ecb_size()
                );
            }
        }
    }
}
