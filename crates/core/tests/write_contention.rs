//! NVM write-port contention (Table IV's 20-cycle data-array write
//! latency): reads arriving at a bank while a write is in flight wait out
//! the remainder.

use hllc_core::{HybridConfig, HybridLlc, Policy};
use hllc_sim::{ConstSizeData, LlcPort, LlcReq, ReuseClass};

fn llc(write_cycles: u32) -> HybridLlc {
    let mut cfg = HybridConfig::new(32, 4, 12, Policy::Ca { cp_th: 64 });
    cfg.nvm_write_cycles = write_cycles;
    HybridLlc::new(&cfg)
}

#[test]
fn read_right_after_write_waits() {
    let mut c = llc(20);
    let mut d = ConstSizeData::new(20);
    // A write at t=100 occupies the bank until t=120.
    c.insert(100, 0, false, ReuseClass::None, &mut d);
    let r = c.request(105, 0, LlcReq::GetS);
    assert!(r.hit && r.nvm);
    assert_eq!(
        r.extra_cycles, 15,
        "read at 105 must wait for the write ending at 120"
    );
    assert_eq!(c.stats().write_stall_cycles, 15);
}

#[test]
fn read_after_write_completes_pays_nothing() {
    let mut c = llc(20);
    let mut d = ConstSizeData::new(20);
    c.insert(100, 0, false, ReuseClass::None, &mut d);
    let r = c.request(200, 0, LlcReq::GetS);
    assert_eq!(r.extra_cycles, 0);
    assert_eq!(c.stats().write_stall_cycles, 0);
}

#[test]
fn different_banks_do_not_interfere() {
    let mut c = llc(20);
    let mut d = ConstSizeData::new(20);
    // Set 0 -> bank 0; set 1 -> bank 1 (4 banks, set-interleaved).
    c.insert(50, 1, false, ReuseClass::None, &mut d); // bank 1 write, done at 70
    c.insert(100, 0, false, ReuseClass::None, &mut d); // bank 0 write, done at 120
    let r = c.request(105, 1, LlcReq::GetS); // bank 1 has been idle since 70
    assert_eq!(r.extra_cycles, 0, "bank 1 must not see bank 0's write");
}

#[test]
fn wait_is_capped_at_one_write_duration() {
    let mut c = llc(20);
    let mut d = ConstSizeData::new(20);
    // Back-to-back writes queue the bank far into the future.
    for i in 0..10 {
        c.insert(100, i * 32, false, ReuseClass::None, &mut d);
    }
    let r = c.request(101, 0, LlcReq::GetS);
    assert!(
        r.extra_cycles <= 20,
        "wait {} exceeds one write duration",
        r.extra_cycles
    );
}

#[test]
fn zero_write_cycles_disables_contention() {
    let mut c = llc(0);
    let mut d = ConstSizeData::new(20);
    c.insert(100, 0, false, ReuseClass::None, &mut d);
    c.insert(101, 32, false, ReuseClass::None, &mut d);
    let r = c.request(102, 0, LlcReq::GetS);
    assert_eq!(r.extra_cycles, 0);
}

#[test]
fn sram_hits_never_wait() {
    let mut cfg = HybridConfig::new(32, 4, 12, Policy::Ca { cp_th: 30 });
    cfg.nvm_write_cycles = 20;
    let mut c = HybridLlc::new(&cfg);
    let mut small = ConstSizeData::new(20);
    let mut big = ConstSizeData::new(64);
    c.insert(100, 0, false, ReuseClass::None, &mut small); // NVM write
    c.insert(101, 32, false, ReuseClass::None, &mut big); // SRAM insert
    let r = c.request(105, 32, LlcReq::GetS);
    assert!(r.hit && !r.nvm);
    assert_eq!(r.extra_cycles, 0);
}
