//! Set Dueling adaptation: the follower CP_th must track the workload's
//! compressibility — the mechanism behind Figures 6 and 8.

use hllc_core::{HybridConfig, HybridLlc, Policy};
use hllc_sim::{ConstSizeData, LlcPort, LlcReq, ReuseClass};

const SETS: usize = 64;
const EPOCH: u64 = 4_000;

fn llc() -> HybridLlc {
    HybridLlc::new(&HybridConfig::new(SETS, 4, 12, Policy::cp_sd()).with_epoch_cycles(EPOCH))
}

/// Drives a working set of `blocks_per_set` same-size blocks round-robin
/// through every set for `rounds` passes, returning the final follower
/// CP_th. Blocks are always reloaded on a miss (insert-after-miss), like a
/// loop that keeps revisiting its arrays.
fn run_uniform(
    llc: &mut HybridLlc,
    size: u8,
    blocks_per_set: u64,
    rounds: u64,
    t0: u64,
    tag: u64,
) -> u64 {
    let mut data = ConstSizeData::new(size);
    let mut now = t0;
    for _ in 0..rounds {
        for i in 0..blocks_per_set {
            for set in 0..SETS as u64 {
                // Distinct block per (set, i), mapping to `set`.
                let block = set + (i + tag * 64) * SETS as u64 * 16;
                now += 1;
                if !llc.request(now, block, LlcReq::GetS).hit {
                    llc.insert(now, block, false, ReuseClass::None, &mut data);
                }
            }
        }
    }
    now
}

#[test]
fn follower_threshold_tracks_block_size() {
    // Working set of 12 blocks/set sized 50 B: only candidates with
    // CP_th >= 51 can keep them all in the 12 NVM ways; smaller thresholds
    // confine them to 4 SRAM ways and thrash. The winner must be >= 51.
    let mut c = llc();
    run_uniform(&mut c, 50, 12, 60, 0, 0);
    let cp_th = c.dueling().unwrap().current_cp_th();
    assert!(
        cp_th >= 51,
        "expected winner >= 51 for 50-byte blocks, got {cp_th}"
    );
}

#[test]
fn follower_threshold_tracks_small_blocks_too() {
    // 20-byte blocks fit the NVM part under every candidate; all candidates
    // perform equally, so any winner is fine — but after a *phase change*
    // to 60-byte blocks, only CP_th = 64 keeps them in NVM.
    let mut c = llc();
    let now = run_uniform(&mut c, 20, 12, 30, 0, 0);
    let _ = c.dueling().unwrap().current_cp_th();
    // The phase change brings a *new* 60-byte working set.
    run_uniform(&mut c, 60, 12, 60, now, 1);
    let cp_th = c.dueling().unwrap().current_cp_th();
    assert_eq!(
        cp_th, 64,
        "phase change to 60-byte blocks must drive CP_th to 64"
    );
}

#[test]
fn epoch_history_reflects_the_workload() {
    let mut c = llc();
    run_uniform(&mut c, 50, 12, 60, 0, 0);
    let history = c.dueling().unwrap().history();
    assert!(
        history.len() > 5,
        "expected several epochs, got {}",
        history.len()
    );
    // Across the converged tail, large-CP_th candidates collect more hits
    // than the small ones.
    let tail = &history[history.len() / 2..];
    let small: u64 = tail.iter().map(|e| e.hits[0] + e.hits[1]).sum();
    let large: u64 = tail.iter().map(|e| e.hits[4] + e.hits[5]).sum();
    assert!(
        large > small,
        "large CP_th candidates must win: {large} !> {small}"
    );
}
