//! Behavioural tests for every insertion policy of Table III.

use std::collections::HashMap;

use hllc_core::{HybridConfig, HybridLlc, Part, Policy, CP_TH_CANDIDATES};
use hllc_sim::{ConstSizeData, DataModel, LlcPort, LlcReq, ReuseClass};

/// Data model with per-block compressed sizes.
#[derive(Default)]
struct MapData(HashMap<u64, u8>);

impl MapData {
    fn with(mut self, block: u64, size: u8) -> Self {
        self.0.insert(block, size);
        self
    }
}

impl DataModel for MapData {
    fn compressed_size(&mut self, block: u64) -> u8 {
        *self.0.get(&block).unwrap_or(&64)
    }
}

/// A small cache: 32 sets so every policy fits in a quick test, uniform
/// endurance so wear is deterministic.
fn llc(policy: Policy) -> HybridLlc {
    HybridLlc::new(&HybridConfig::new(32, 4, 12, policy))
}

/// Blocks 0, 32, 64, … all land in set 0 of a 32-set cache.
fn set0_block(i: u64) -> u64 {
    i * 32
}

// ---------------------------------------------------------------- BH

#[test]
fn bh_fills_all_sixteen_ways_globally() {
    let mut c = llc(Policy::Bh);
    let mut d = ConstSizeData::new(64);
    for i in 0..16 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut d);
    }
    for i in 0..16 {
        assert!(c.contains(set0_block(i)), "block {i} evicted too early");
    }
    // 17th block evicts exactly one (the LRU = block 0).
    c.insert(0, set0_block(16), false, ReuseClass::None, &mut d);
    assert!(!c.contains(set0_block(0)));
    assert!(c.contains(set0_block(16)));
}

#[test]
fn bh_eviction_follows_global_lru_touch_order() {
    let mut c = llc(Policy::Bh);
    let mut d = ConstSizeData::new(64);
    for i in 0..16 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut d);
    }
    // Touch block 0 so block 1 becomes LRU.
    assert!(c.request(1, set0_block(0), LlcReq::GetS).hit);
    c.insert(2, set0_block(16), false, ReuseClass::None, &mut d);
    assert!(c.contains(set0_block(0)));
    assert!(!c.contains(set0_block(1)));
}

#[test]
fn bh_ignores_disabled_frames() {
    let mut c = llc(Policy::Bh);
    let mut d = ConstSizeData::new(64);
    // Disable every NVM frame in set 0: only the 4 SRAM ways remain.
    for way in 0..12 {
        c.array_mut().unwrap().disable_frame(0, way);
    }
    for i in 0..5 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut d);
    }
    // Only 4 ways available -> block 0 evicted.
    assert!(!c.contains(set0_block(0)));
    assert_eq!((1..5).filter(|&i| c.contains(set0_block(i))).count(), 4);
    assert_eq!(c.stats().nvm_inserts, 0);
}

#[test]
fn bh_writes_whole_frames() {
    let mut c = llc(Policy::Bh);
    let mut d = ConstSizeData::new(64);
    for i in 0..16 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut d);
    }
    // 12 NVM inserts at 66 bytes each (uncompressed frame writes).
    assert_eq!(c.stats().nvm_inserts, 12);
    assert_eq!(c.stats().nvm_bytes_written, 12 * 66);
}

// ---------------------------------------------------------------- BH_CP

#[test]
fn bh_cp_uses_partially_faulty_frames_for_compressed_blocks() {
    let mut c = llc(Policy::BhCp);
    // Make every NVM frame in set 0 lose one byte: capacity 65.
    for way in 0..12 {
        c.array_mut().unwrap().frame_mut(0, way).disable_byte(0);
    }
    // Fill the 4 SRAM ways with incompressible blocks first.
    let mut d = MapData::default()
        .with(set0_block(0), 64)
        .with(set0_block(1), 64)
        .with(set0_block(2), 64)
        .with(set0_block(3), 64)
        .with(set0_block(4), 64)
        .with(set0_block(5), 57);
    for i in 0..4 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut d);
    }
    assert_eq!(
        c.stats().nvm_inserts,
        0,
        "65-byte frames cannot hold 66-byte ECBs"
    );
    // An uncompressible 5th block must replace an SRAM block (global fit-LRU).
    c.insert(0, set0_block(4), false, ReuseClass::None, &mut d);
    assert_eq!(c.stats().nvm_inserts, 0);
    assert!(!c.contains(set0_block(0)));
    // A B8Δ7 block (57 B -> 59 B ECB) fits the faulty frames.
    c.insert(0, set0_block(5), false, ReuseClass::None, &mut d);
    assert_eq!(c.stats().nvm_inserts, 1);
    assert_eq!(c.locate(set0_block(5)), Some(Part::Nvm));
    assert_eq!(c.stats().nvm_bytes_written, 59);
}

#[test]
fn bh_cp_compressed_bytes_accounting() {
    let mut c = llc(Policy::BhCp);
    let mut d = ConstSizeData::new(20);
    // Fill SRAM first (global LRU prefers empty ways in SRAM order), then NVM.
    for i in 0..16 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut d);
    }
    assert_eq!(c.stats().nvm_inserts, 12);
    assert_eq!(c.stats().nvm_bytes_written, 12 * 22); // ECB = 20 + 2
}

// ---------------------------------------------------------------- CA

#[test]
fn ca_steers_by_compressed_size() {
    let mut c = llc(Policy::Ca { cp_th: 37 });
    let mut d = MapData::default().with(100 * 32, 22).with(101 * 32, 57);
    c.insert(0, 100 * 32, false, ReuseClass::None, &mut d);
    c.insert(0, 101 * 32, false, ReuseClass::None, &mut d);
    assert_eq!(
        c.locate(100 * 32),
        Some(Part::Nvm),
        "small block belongs in NVM"
    );
    assert_eq!(
        c.locate(101 * 32),
        Some(Part::Sram),
        "big block belongs in SRAM"
    );
}

#[test]
fn ca_cp_th_64_sends_everything_compressible_to_nvm() {
    let mut c = llc(Policy::Ca { cp_th: 64 });
    let mut d = ConstSizeData::new(64);
    c.insert(0, 7, false, ReuseClass::None, &mut d);
    assert_eq!(c.locate(7), Some(Part::Nvm));
}

#[test]
fn ca_ignores_reuse_tags() {
    let mut c = llc(Policy::Ca { cp_th: 37 });
    let mut d = ConstSizeData::new(64);
    // Even a read-reuse block goes to SRAM if incompressible.
    c.insert(0, 5, false, ReuseClass::Read, &mut d);
    assert_eq!(c.locate(5), Some(Part::Sram));
}

#[test]
fn ca_falls_back_to_sram_when_nothing_fits() {
    let mut c = llc(Policy::Ca { cp_th: 64 });
    // Degrade all of set 0's frames to 10 live bytes.
    for way in 0..12 {
        let f = c.array_mut().unwrap().frame_mut(0, way);
        for b in 0..56 {
            f.disable_byte(b);
        }
    }
    let mut d = ConstSizeData::new(30); // ECB 32 > 10
    c.insert(0, set0_block(1), false, ReuseClass::None, &mut d);
    assert_eq!(c.locate(set0_block(1)), Some(Part::Sram));
    // A tiny block (ECB 10) still lands in NVM.
    let mut d8 = ConstSizeData::new(8);
    c.insert(0, set0_block(2), false, ReuseClass::None, &mut d8);
    assert_eq!(c.locate(set0_block(2)), Some(Part::Nvm));
}

// ---------------------------------------------------------------- CA_RWR

#[test]
fn ca_rwr_table2_steering() {
    let mut c = llc(Policy::CaRwr { cp_th: 37 });
    let mut small = ConstSizeData::new(20);
    let mut big = ConstSizeData::new(64);
    // Read reuse -> NVM regardless of size.
    c.insert(0, set0_block(1), false, ReuseClass::Read, &mut big);
    assert_eq!(c.locate(set0_block(1)), Some(Part::Nvm));
    // Write reuse -> SRAM regardless of size.
    c.insert(0, set0_block(2), true, ReuseClass::Write, &mut small);
    assert_eq!(c.locate(set0_block(2)), Some(Part::Sram));
    // No reuse -> by size.
    c.insert(0, set0_block(3), false, ReuseClass::None, &mut small);
    c.insert(0, set0_block(4), false, ReuseClass::None, &mut big);
    assert_eq!(c.locate(set0_block(3)), Some(Part::Nvm));
    assert_eq!(c.locate(set0_block(4)), Some(Part::Sram));
}

#[test]
fn ca_rwr_hit_classification() {
    let mut c = llc(Policy::CaRwr { cp_th: 37 });
    let mut d = ConstSizeData::new(20);
    // Clean block: GetS hit classifies Read.
    c.insert(0, 11, false, ReuseClass::None, &mut d);
    let r = c.request(1, 11, LlcReq::GetS);
    assert_eq!(r.reuse, ReuseClass::Read);
    // Dirty block: GetS hit classifies Write.
    c.insert(2, 43, true, ReuseClass::None, &mut d);
    let r = c.request(3, 43, LlcReq::GetS);
    assert_eq!(r.reuse, ReuseClass::Write);
    // GetX hit classifies Write and invalidates.
    let r = c.request(4, 11, LlcReq::GetX);
    assert_eq!(r.reuse, ReuseClass::Write);
    assert!(!c.contains(11));
}

#[test]
fn ca_rwr_migrates_read_reuse_sram_victims_to_nvm() {
    let mut c = llc(Policy::CaRwr { cp_th: 37 });
    let mut big = ConstSizeData::new(50); // big: goes to SRAM, LCR: fits NVM
                                          // Fill SRAM ways of set 0 with no-reuse big blocks.
    for i in 0..4 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut big);
    }
    // Touch block 0 with a GetS: it becomes read-reused, stays in SRAM.
    c.request(1, set0_block(0), LlcReq::GetS);
    assert_eq!(c.locate(set0_block(0)), Some(Part::Sram));
    // Make block 0 the SRAM LRU again by touching the others.
    for i in 1..4 {
        c.request(2, set0_block(i), LlcReq::GetS);
    }
    // Next SRAM insertion evicts block 0 -> must migrate to NVM.
    c.insert(3, set0_block(9), false, ReuseClass::None, &mut big);
    assert_eq!(c.locate(set0_block(0)), Some(Part::Nvm));
    assert_eq!(c.stats().migrations, 1);
}

#[test]
fn ca_rwr_drops_migration_when_nvm_cannot_fit() {
    let mut c = llc(Policy::CaRwr { cp_th: 37 });
    for way in 0..12 {
        let f = c.array_mut().unwrap().frame_mut(0, way);
        for b in 0..60 {
            f.disable_byte(b); // 6 live bytes: nothing real fits
        }
    }
    let mut big = ConstSizeData::new(64);
    for i in 0..4 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut big);
    }
    c.request(1, set0_block(0), LlcReq::GetS); // read reuse
    for i in 1..4 {
        c.request(2, set0_block(i), LlcReq::GetS);
    }
    c.insert(3, set0_block(9), false, ReuseClass::None, &mut big);
    // Migration target did not fit: block 0 is gone, not displacing SRAM.
    assert!(!c.contains(set0_block(0)));
    assert_eq!(c.stats().migrations, 0);
}

// ---------------------------------------------------------------- CP_SD

#[test]
fn cp_sd_sampler_sets_pin_their_candidate() {
    let mut c = llc(Policy::cp_sd());
    // 32 sets: set k < 6 samples candidate k. Candidate 0 has CP_th 30.
    // A 36-byte block goes to SRAM in set 0 (36 > 30) but to NVM in set 4
    // (CP_th 58).
    let mut d = ConstSizeData::new(36);
    c.insert(0, 0, false, ReuseClass::None, &mut d); // set 0
    c.insert(0, 4, false, ReuseClass::None, &mut d); // set 4
    assert_eq!(c.locate(0), Some(Part::Sram));
    assert_eq!(c.locate(4), Some(Part::Nvm));
}

#[test]
fn cp_sd_followers_adopt_the_epoch_winner() {
    let epoch = 1_000u64;
    let cfg = HybridConfig::new(64, 4, 12, Policy::cp_sd()).with_epoch_cycles(epoch);
    let mut c = HybridLlc::new(&cfg);
    let mut d = ConstSizeData::new(36);
    // Give candidate 0 (sets ≡ 0 mod 32 → set 0 and 32) lots of hits.
    c.insert(0, 0, false, ReuseClass::None, &mut d);
    for _ in 0..50 {
        c.request(1, 0, LlcReq::GetS);
    }
    // Cross the epoch boundary.
    c.request(epoch + 1, 999, LlcReq::GetS);
    assert_eq!(c.dueling().unwrap().current_cp_th(), CP_TH_CANDIDATES[0]);
    // Follower set 40: a 36-byte block now exceeds CP_th=30 -> SRAM.
    c.insert(epoch + 2, 40, false, ReuseClass::None, &mut d);
    assert_eq!(c.locate(40), Some(Part::Sram));
}

#[test]
fn cp_sd_records_sampler_writes() {
    let mut c = llc(Policy::cp_sd());
    let mut d = ConstSizeData::new(20);
    c.insert(0, 3, false, ReuseClass::None, &mut d); // sampler set 3, NVM
    c.insert(0, 40, false, ReuseClass::None, &mut d); // follower set 8
                                                      // Writes recorded only for the sampler (internal counters are private;
                                                      // verified via the epoch record).
    c.request(2_000_001, 777, LlcReq::GetS); // roll the epoch
    let rec = c.dueling().unwrap().history()[0];
    assert_eq!(rec.writes[3], 22);
    assert_eq!(rec.writes.iter().sum::<u64>(), 22);
}

// ---------------------------------------------------------------- LHybrid

#[test]
fn lhybrid_nlb_to_sram_lb_to_nvm() {
    let mut c = llc(Policy::LHybrid);
    let mut d = ConstSizeData::new(64);
    c.insert(0, set0_block(1), false, ReuseClass::None, &mut d);
    assert_eq!(c.locate(set0_block(1)), Some(Part::Sram));
    c.insert(0, set0_block(2), false, ReuseClass::Read, &mut d);
    assert_eq!(c.locate(set0_block(2)), Some(Part::Nvm));
    // Dirty blocks never enter NVM, even tagged Read.
    c.insert(0, set0_block(3), true, ReuseClass::Read, &mut d);
    assert_eq!(c.locate(set0_block(3)), Some(Part::Sram));
}

#[test]
fn lhybrid_tags_loop_blocks_on_clean_read_hits() {
    let mut c = llc(Policy::LHybrid);
    let mut d = ConstSizeData::new(64);
    c.insert(0, 21, false, ReuseClass::None, &mut d);
    assert_eq!(c.request(1, 21, LlcReq::GetS).reuse, ReuseClass::Read);
    // Dirty hit is not a loop block.
    c.insert(0, 53, true, ReuseClass::None, &mut d);
    assert_eq!(c.request(1, 53, LlcReq::GetS).reuse, ReuseClass::None);
    // GetX hits are never loop blocks.
    c.insert(0, 85, false, ReuseClass::None, &mut d);
    assert_eq!(c.request(1, 85, LlcReq::GetX).reuse, ReuseClass::None);
}

#[test]
fn lhybrid_sram_replacement_migrates_most_recent_lb() {
    let mut c = llc(Policy::LHybrid);
    let mut d = ConstSizeData::new(64);
    for i in 0..4 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut d);
    }
    // Blocks 1 and 2 become loop blocks; 2 is more recent.
    c.request(1, set0_block(1), LlcReq::GetS);
    c.request(2, set0_block(2), LlcReq::GetS);
    // SRAM full; inserting an NLB must migrate LB 2 to NVM.
    c.insert(3, set0_block(9), false, ReuseClass::None, &mut d);
    assert_eq!(c.locate(set0_block(2)), Some(Part::Nvm));
    assert_eq!(c.locate(set0_block(1)), Some(Part::Sram));
    assert_eq!(c.locate(set0_block(9)), Some(Part::Sram));
    assert_eq!(c.stats().migrations, 1);
}

#[test]
fn lhybrid_without_lbs_evicts_sram_lru() {
    let mut c = llc(Policy::LHybrid);
    let mut d = ConstSizeData::new(64);
    for i in 0..4 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut d);
    }
    c.insert(1, set0_block(9), false, ReuseClass::None, &mut d);
    assert!(!c.contains(set0_block(0)));
    assert_eq!(c.stats().migrations, 0);
}

// ---------------------------------------------------------------- TAP

#[test]
fn tap_requires_repeated_hits_before_nvm() {
    // Default TAP threshold is 3 cumulative clean hits (tracked by the
    // hashed thrashing predictor, persisting across residencies).
    let mut c = llc(Policy::tap());
    let mut d = ConstSizeData::new(64);
    c.insert(0, 13, false, ReuseClass::None, &mut d);
    assert_eq!(c.request(1, 13, LlcReq::GetS).reuse, ReuseClass::None);
    assert_eq!(c.request(2, 13, LlcReq::GetS).reuse, ReuseClass::None);
    assert_eq!(c.request(3, 13, LlcReq::GetS).reuse, ReuseClass::Read);
    // The predictor persists across an eviction/re-insertion round trip.
    c.request(4, 13, LlcReq::GetX); // invalidate
    c.insert(5, 13, false, ReuseClass::None, &mut d);
    assert_eq!(c.request(6, 13, LlcReq::GetS).reuse, ReuseClass::Read);
}

#[test]
fn tap_dirty_hits_never_qualify() {
    let mut c = llc(Policy::tap());
    let mut d = ConstSizeData::new(64);
    c.insert(0, 21, true, ReuseClass::None, &mut d);
    for t in 1..6 {
        assert_eq!(c.request(t, 21, LlcReq::GetS).reuse, ReuseClass::None);
    }
}

#[test]
fn tap_inserts_only_clean_thrashing_blocks_in_nvm() {
    let mut c = llc(Policy::tap());
    let mut d = ConstSizeData::new(64);
    c.insert(0, set0_block(1), false, ReuseClass::Read, &mut d);
    assert_eq!(c.locate(set0_block(1)), Some(Part::Nvm));
    c.insert(0, set0_block(2), true, ReuseClass::Read, &mut d);
    assert_eq!(c.locate(set0_block(2)), Some(Part::Sram));
    c.insert(0, set0_block(3), false, ReuseClass::None, &mut d);
    assert_eq!(c.locate(set0_block(3)), Some(Part::Sram));
}

// ---------------------------------------------------------------- generic

#[test]
fn getx_hit_invalidates_and_does_not_write_back() {
    let mut c = llc(Policy::cp_sd());
    let mut d = ConstSizeData::new(20);
    c.insert(0, 99, true, ReuseClass::None, &mut d);
    let r = c.request(1, 99, LlcReq::GetX);
    assert!(r.hit);
    assert!(!c.contains(99));
    // Ownership transferred: no memory writeback.
    assert_eq!(c.stats().writebacks, 0);
}

#[test]
fn clean_reinsert_of_resident_block_writes_nothing() {
    let mut c = llc(Policy::cp_sd());
    let mut d = ConstSizeData::new(20);
    c.insert(0, 77, false, ReuseClass::None, &mut d);
    let written = c.stats().nvm_bytes_written;
    c.insert(1, 77, false, ReuseClass::None, &mut d);
    assert_eq!(
        c.stats().nvm_bytes_written,
        written,
        "silent LRU refresh expected"
    );
    assert_eq!(c.stats().nvm_inserts, 1);
}

#[test]
fn dirty_reinsert_overwrites_stale_copy() {
    let mut c = llc(Policy::cp_sd());
    let mut d = ConstSizeData::new(20);
    c.insert(0, 77, false, ReuseClass::None, &mut d);
    c.insert(1, 77, true, ReuseClass::Write, &mut d);
    assert!(c.contains(77));
    assert!(c.peek(77).unwrap().dirty);
    // Write-reuse dirty data landed in SRAM; only one copy exists.
    assert_eq!(c.locate(77), Some(Part::Sram));
}

#[test]
fn nvm_hit_reports_compression_latency_flag() {
    let mut c = llc(Policy::cp_sd());
    let mut d = ConstSizeData::new(20);
    c.insert(0, 4, false, ReuseClass::None, &mut d); // set 4: CP_th 58 -> NVM
    let r = c.request(1, 4, LlcReq::GetS);
    assert!(r.nvm && r.compressed);

    let mut bh = llc(Policy::Bh);
    let mut d64 = ConstSizeData::new(64);
    for i in 0..16 {
        bh.insert(0, set0_block(i), false, ReuseClass::None, &mut d64);
    }
    // Find one NVM-resident block; its hits must not claim compression.
    let nvm_block = (0..16)
        .map(set0_block)
        .find(|&b| bh.locate(b) == Some(Part::Nvm))
        .unwrap();
    let r = bh.request(1, nvm_block, LlcReq::GetS);
    assert!(r.nvm && !r.compressed);
}

#[test]
fn dirty_evictions_write_back_to_memory() {
    let mut c = llc(Policy::LHybrid);
    let mut d = ConstSizeData::new(64);
    for i in 0..5 {
        c.insert(0, set0_block(i), true, ReuseClass::None, &mut d);
    }
    // 5 dirty NLBs through 4 SRAM ways: one dirty eviction.
    assert_eq!(c.stats().writebacks, 1);
}

#[test]
fn sram_only_bound_works_without_nvm() {
    let cfg = HybridConfig::new(32, 16, 0, Policy::Bh);
    let mut c = HybridLlc::new(&cfg);
    let mut d = ConstSizeData::new(64);
    for i in 0..17 {
        c.insert(0, set0_block(i), false, ReuseClass::None, &mut d);
    }
    assert!(!c.contains(set0_block(0)));
    assert_eq!(c.stats().sram_inserts, 17);
    assert_eq!(c.stats().nvm_inserts, 0);
    assert_eq!(c.capacity_fraction(), 1.0);
}

#[test]
fn fully_dead_set_bypasses() {
    let cfg = HybridConfig::new(32, 0, 12, Policy::Ca { cp_th: 64 });
    let mut c = HybridLlc::new(&cfg);
    for way in 0..12 {
        c.array_mut().unwrap().disable_frame(0, way);
    }
    let mut d = ConstSizeData::new(20);
    c.insert(0, set0_block(1), true, ReuseClass::None, &mut d);
    assert!(!c.contains(set0_block(1)));
    assert_eq!(c.stats().bypasses, 1);
    assert_eq!(c.stats().writebacks, 1);
}

#[test]
fn stats_reset_preserves_contents_and_wear() {
    let mut c = llc(Policy::cp_sd());
    let mut d = ConstSizeData::new(20);
    c.insert(0, 4, false, ReuseClass::None, &mut d);
    c.reset_stats();
    assert_eq!(c.stats().nvm_bytes_written, 0);
    assert!(c.contains(4));
}

#[test]
fn capacity_fraction_reflects_degradation() {
    let mut c = llc(Policy::cp_sd());
    assert_eq!(c.capacity_fraction(), 1.0);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    c.array_mut().unwrap().degrade_to(0.8, &mut rng);
    assert!(c.capacity_fraction() <= 0.8);
}
