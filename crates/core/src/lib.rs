//! Hybrid NVM–SRAM last-level cache with compression-aware insertion
//! policies.
//!
//! This crate is the primary contribution of *Compression-Aware and
//! Performance-Efficient Insertion Policies for Long-Lasting Hybrid LLCs*
//! (HPCA 2023): a shared LLC whose sets combine a few fast, wear-free SRAM
//! ways with many dense NVM ways that wear out as they are written.
//!
//! Implemented insertion policies (Table III):
//!
//! | Policy | Disabling | Compression | NVM-aware |
//! |--------|-----------|-------------|-----------|
//! | [`Policy::Bh`] (baseline hybrid) | frame | no | no |
//! | [`Policy::BhCp`] | byte | yes | no |
//! | [`Policy::Ca`] (naive compression-aware) | byte | yes | yes |
//! | [`Policy::CaRwr`] (compression + read/write reuse) | byte | yes | yes |
//! | [`Policy::CpSd`] (CA_RWR + Set Dueling, incl. the rule-based `Th`/`Tw` variant) | byte | yes | yes |
//! | [`Policy::LHybrid`] (loop-block state of the art) | frame | no | yes |
//! | [`Policy::Tap`] (thrashing-aware state of the art) | frame | no | yes |
//!
//! # Example
//!
//! ```
//! use hllc_core::{HybridConfig, HybridLlc, Policy};
//! use hllc_sim::{ConstSizeData, LlcPort, LlcReq, ReuseClass};
//!
//! let cfg = HybridConfig::new(64, 4, 12, Policy::cp_sd());
//! let mut llc = HybridLlc::new(&cfg);
//! let mut data = ConstSizeData::new(22);
//! llc.insert(0, 0x42, false, ReuseClass::None, &mut data);
//! let resp = llc.request(1, 0x42, LlcReq::GetS);
//! assert!(resp.hit);
//! ```

mod config;
mod dueling;
mod hybrid;
mod line;
mod policy;
mod soa;

pub use config::HybridConfig;
pub use dueling::{
    EpochRecord, SetDueling, CP_TH_CANDIDATES, DEFAULT_EPOCH_CYCLES, HISTORY_EPOCHS,
};
pub use hybrid::{HybridLlc, Part};
pub use line::LineState;
pub use policy::Policy;
