//! The hybrid NVM–SRAM LLC engine.
//!
//! One structure implements every policy of Table III; the policy value
//! selects the insertion target, the replacement flavour (LRU, Fit-LRU,
//! global vs local), the migration behaviour, and the reuse tagging rules.
//!
//! Way metadata is stored struct-of-arrays (see [`crate::soa`]): tag
//! probes and LRU sweeps are linear scans over contiguous per-field lanes
//! rather than strides over `Option<LineState>` entries, which is what
//! makes the per-access kernel cache-friendly.

use hllc_nvm::NvmArray;
use hllc_sim::{set_index, DataModel, LlcPort, LlcReq, LlcResponse, LlcStats, ReuseClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::HybridConfig;
use crate::dueling::SetDueling;
use crate::line::LineState;
use crate::policy::Policy;
use crate::soa::WayArray;

/// Which half of a hybrid set a block lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Part {
    /// Fast, wear-free SRAM ways (blocks stored uncompressed).
    Sram,
    /// Dense NVM ways (blocks stored compressed under byte-disabling
    /// policies).
    Nvm,
}

/// The hybrid last-level cache.
///
/// See the crate-level docs for the policy taxonomy and an example.
#[derive(Clone, Debug)]
pub struct HybridLlc {
    sets: usize,
    sram_ways: usize,
    nvm_ways: usize,
    policy: Policy,
    sram: WayArray,
    nvm: WayArray,
    array: Option<NvmArray>,
    dueling: Option<SetDueling>,
    /// TAP's thrashing predictor: a hashed table of saturating per-block
    /// hit counters that persists across LLC residencies (the original TAP
    /// tracks thrashing behaviour with a predictor, not per-residency
    /// counts).
    tap_table: Vec<u8>,
    fit_lru: bool,
    /// Per-bank cycle timestamps until which the NVM data array is busy
    /// writing; reads arriving earlier wait out the difference (Table IV's
    /// 20-cycle write latency).
    bank_busy_until: Vec<u64>,
    nvm_write_cycles: u32,
    /// Monotone view of the cycle clock (per-core clocks jitter slightly;
    /// contention must not charge skew as wait time).
    clock: u64,
    stamp: u64,
    stats: LlcStats,
}

/// Size of TAP's hashed predictor table.
const TAP_TABLE_ENTRIES: usize = 1 << 16;

impl HybridLlc {
    /// Builds an LLC from a configuration, sampling fresh NVM endurances.
    pub fn new(cfg: &HybridConfig) -> Self {
        let array = (cfg.nvm_ways > 0).then(|| {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            NvmArray::new(
                cfg.sets,
                cfg.nvm_ways,
                &cfg.endurance,
                cfg.policy.granularity(),
                &mut rng,
            )
        });
        Self::with_array(cfg, array)
    }

    /// Builds an LLC around an existing (possibly aged) NVM array — the
    /// forecast procedure threads wear state through successive simulation
    /// phases this way.
    ///
    /// # Panics
    ///
    /// Panics if the array's geometry does not match the configuration.
    pub fn with_array(cfg: &HybridConfig, array: Option<NvmArray>) -> Self {
        if let Some(a) = &array {
            assert_eq!(a.sets(), cfg.sets, "array/config set mismatch");
            assert_eq!(a.ways(), cfg.nvm_ways, "array/config way mismatch");
            assert_eq!(
                a.granularity(),
                cfg.policy.granularity(),
                "array granularity does not match the policy"
            );
        } else {
            assert_eq!(cfg.nvm_ways, 0, "NVM ways require an array");
        }
        let dueling = if let Policy::CpSd { th, tw } = cfg.policy {
            let mut d = SetDueling::new(th, tw, cfg.epoch_cycles);
            d.set_smoothing(cfg.dueling_smoothing);
            Some(d)
        } else {
            None
        };
        let tap_table = match cfg.policy {
            Policy::Tap { .. } => vec![0u8; TAP_TABLE_ENTRIES],
            Policy::Bh
            | Policy::BhCp
            | Policy::Ca { .. }
            | Policy::CaRwr { .. }
            | Policy::CpSd { .. }
            | Policy::LHybrid => Vec::new(),
        };
        HybridLlc {
            sets: cfg.sets,
            sram_ways: cfg.sram_ways,
            nvm_ways: cfg.nvm_ways,
            policy: cfg.policy,
            sram: WayArray::new(cfg.sets, cfg.sram_ways),
            nvm: WayArray::new(cfg.sets, cfg.nvm_ways),
            array,
            dueling,
            tap_table,
            fit_lru: cfg.fit_lru,
            bank_busy_until: vec![0; cfg.banks.max(1)],
            nvm_write_cycles: cfg.nvm_write_cycles,
            clock: 0,
            stamp: 0,
            stats: LlcStats::default(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// The NVM wear state, if the cache has NVM ways.
    pub fn array(&self) -> Option<&NvmArray> {
        self.array.as_ref()
    }

    /// Mutable NVM wear state (forecast prediction phases, fault injection).
    pub fn array_mut(&mut self) -> Option<&mut NvmArray> {
        self.array.as_mut()
    }

    /// Extracts the NVM wear state, consuming the cache.
    pub fn into_array(self) -> Option<NvmArray> {
        self.array
    }

    /// Remaining NVM capacity fraction (1.0 for an SRAM-only cache).
    pub fn capacity_fraction(&self) -> f64 {
        self.array.as_ref().map_or(1.0, |a| a.capacity_fraction())
    }

    /// The Set Dueling controller (CP_SD policies only).
    pub fn dueling(&self) -> Option<&SetDueling> {
        self.dueling.as_ref()
    }

    /// Mutable Set Dueling controller.
    pub fn dueling_mut(&mut self) -> Option<&mut SetDueling> {
        self.dueling.as_mut()
    }

    /// Invalidates every line (used between forecast phases; wear state is
    /// kept). Dirty contents are dropped — callers model the writeback
    /// traffic themselves if they need it.
    pub fn clear_contents(&mut self) {
        self.sram.clear();
        self.nvm.clear();
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn part(&self, part: Part) -> &WayArray {
        match part {
            Part::Sram => &self.sram,
            Part::Nvm => &self.nvm,
        }
    }

    fn part_mut(&mut self, part: Part) -> &mut WayArray {
        match part {
            Part::Sram => &mut self.sram,
            Part::Nvm => &mut self.nvm,
        }
    }

    /// Looks up a resident block.
    fn find(&self, set: usize, block: u64) -> Option<(Part, usize)> {
        if let Some(way) = self.sram.find(set, block) {
            return Some((Part::Sram, way));
        }
        if let Some(way) = self.nvm.find(set, block) {
            return Some((Part::Nvm, way));
        }
        None
    }

    /// True if `block` is currently resident (test/diagnostic helper).
    pub fn contains(&self, block: u64) -> bool {
        self.find(set_index(block, self.sets), block).is_some()
    }

    /// Where `block` currently lives, if resident.
    pub fn locate(&self, block: u64) -> Option<Part> {
        self.find(set_index(block, self.sets), block)
            .map(|(p, _)| p)
    }

    /// The exact (part, way) a resident block occupies (diagnostics).
    pub fn locate_way(&self, block: u64) -> Option<(Part, usize)> {
        self.find(set_index(block, self.sets), block)
    }

    /// The resident line for `block`, if any (diagnostics; gathered by
    /// value from the metadata lanes).
    pub fn peek(&self, block: u64) -> Option<LineState> {
        let set = set_index(block, self.sets);
        self.find(set, block)
            .and_then(|(p, w)| self.part(p).get(set, w))
    }

    fn maybe_epoch(&mut self, now: u64) {
        if let Some(d) = &mut self.dueling {
            d.maybe_epoch(now);
        }
    }

    /// The compression threshold in force for `set`.
    fn cp_th_for(&self, set: usize) -> u8 {
        match self.policy {
            Policy::Ca { cp_th } | Policy::CaRwr { cp_th } => cp_th,
            // `dueling` is always Some under CP_SD (see `with_array`); the
            // fallback is the uncompressed threshold.
            Policy::CpSd { .. } => self.dueling.as_ref().map_or(64, |d| d.cp_th_for_set(set)),
            Policy::Bh | Policy::BhCp | Policy::LHybrid | Policy::Tap { .. } => 64,
        }
    }

    /// TAP predictor slot for a block.
    fn tap_slot(block: u64) -> usize {
        (block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % TAP_TABLE_ENTRIES
    }

    /// Updates TAP's thrashing predictor on a hit to a line with dirtiness
    /// `dirty` and returns the block's cumulative (hashed) hit count.
    fn tap_observe(&mut self, block: u64, dirty: bool, req: LlcReq) -> u32 {
        let slot = Self::tap_slot(block);
        if req == LlcReq::GetS && !dirty {
            // slot < TAP_TABLE_ENTRIES == tap_table.len() under TAP.
            self.tap_table[slot] = self.tap_table[slot].saturating_add(1);
        }
        u32::from(self.tap_table[slot])
    }

    /// Reuse tag handed back on a hit, per the policy's classification
    /// rules (§IV-B; LHybrid/TAP per §II-C). `dirty` is the hit line's
    /// dirtiness; `tap_count` is the block's cumulative predictor count
    /// (TAP only).
    fn classify_hit(&self, dirty: bool, req: LlcReq, tap_count: u32) -> ReuseClass {
        match self.policy {
            Policy::CaRwr { .. } | Policy::CpSd { .. } => match req {
                LlcReq::GetX => ReuseClass::Write,
                LlcReq::GetS => {
                    if dirty {
                        ReuseClass::Write
                    } else {
                        ReuseClass::Read
                    }
                }
            },
            Policy::LHybrid => match req {
                LlcReq::GetS if !dirty => ReuseClass::Read,
                _ => ReuseClass::None,
            },
            Policy::Tap { hit_threshold } => match req {
                LlcReq::GetS if !dirty && tap_count >= hit_threshold => ReuseClass::Read,
                _ => ReuseClass::None,
            },
            Policy::Bh | Policy::BhCp | Policy::Ca { .. } => ReuseClass::None,
        }
    }

    /// Insertion target for the NVM-aware policies (Table II).
    fn decide_part(&self, set: usize, line: &LineState) -> Part {
        match self.policy {
            Policy::Ca { .. } => {
                if line.cb_size <= self.cp_th_for(set) {
                    Part::Nvm
                } else {
                    Part::Sram
                }
            }
            Policy::CaRwr { .. } | Policy::CpSd { .. } => match line.reuse {
                ReuseClass::Read => Part::Nvm,
                ReuseClass::Write => Part::Sram,
                ReuseClass::None => {
                    if line.cb_size <= self.cp_th_for(set) {
                        Part::Nvm
                    } else {
                        Part::Sram
                    }
                }
            },
            Policy::LHybrid => {
                if line.reuse == ReuseClass::Read && !line.dirty {
                    Part::Nvm
                } else {
                    Part::Sram
                }
            }
            Policy::Tap { .. } => {
                if line.reuse == ReuseClass::Read && !line.dirty {
                    Part::Nvm
                } else {
                    Part::Sram
                }
            }
            Policy::Bh | Policy::BhCp => {
                debug_assert!(
                    false,
                    "BH variants use global replacement, not part steering"
                );
                Part::Sram
            }
        }
    }

    /// Fit-LRU victim selection in the NVM part: among the frames whose
    /// effective capacity can hold `ecb` bytes, prefer an empty one,
    /// otherwise the least-recently-used (§III-B1, [18]).
    ///
    /// With `fit_lru` disabled (ablation), the plain LRU frame is chosen
    /// first and returned only if the block happens to fit it — modelling a
    /// fault-oblivious replacement that wastes partially-disabled frames.
    ///
    /// Both sweeps are branch-light linear scans over the occupancy word
    /// and the LRU stamp lane.
    fn pick_nvm_way(&self, set: usize, ecb: usize) -> Option<usize> {
        let array = self.array.as_ref()?;
        // One bounds check per lane, then the sweep reads contiguous bytes.
        let caps = array.capacity_lane(set);
        let valid = self.nvm.valid_mask(set);
        let stamps = self.nvm.lru_lane(set);
        if !self.fit_lru {
            let mut lru_way = None;
            let mut lru_stamp = u64::MAX;
            for (way, cap) in caps.iter().enumerate() {
                let cap = cap.get() as usize;
                if cap == 0 {
                    continue; // dead frames are skipped even without Fit-LRU
                }
                if valid & (1u64 << way) == 0 {
                    if ecb <= cap {
                        return Some(way);
                    }
                    continue;
                }
                // way enumerates caps; the stamp lane has the same length.
                let stamp = stamps[way];
                if stamp < lru_stamp {
                    lru_stamp = stamp;
                    lru_way = Some(way);
                }
            }
            // w was yielded by the enumerate over caps above.
            return lru_way.filter(|&w| ecb <= caps[w].get() as usize);
        }
        let mut lru_way = None;
        let mut lru_stamp = u64::MAX;
        for (way, cap) in caps.iter().enumerate() {
            if ecb > cap.get() as usize {
                continue;
            }
            if valid & (1u64 << way) == 0 {
                return Some(way);
            }
            let stamp = stamps[way];
            if stamp < lru_stamp {
                lru_stamp = stamp;
                lru_way = Some(way);
            }
        }
        lru_way
    }

    /// Plain-LRU victim selection in the SRAM part: one sweep over the
    /// occupancy word and the stamp lane.
    fn pick_sram_way(&self, set: usize) -> Option<usize> {
        let valid = self.sram.valid_mask(set);
        let free = !valid & (((1u128 << self.sram_ways) - 1) as u64);
        if free != 0 {
            return Some(free.trailing_zeros() as usize);
        }
        let mut lru_way = None;
        let mut lru_stamp = u64::MAX;
        for (way, &stamp) in self.sram.lru_lane(set).iter().enumerate() {
            if stamp < lru_stamp {
                lru_stamp = stamp;
                lru_way = Some(way);
            }
        }
        lru_way
    }

    /// Removes a line and returns it.
    fn take(&mut self, part: Part, set: usize, way: usize) -> Option<LineState> {
        self.part_mut(part).take(set, way)
    }

    /// Drops an evicted line, recording the writeback if it was dirty.
    fn retire(&mut self, line: LineState) {
        if line.dirty {
            self.stats.writebacks += 1;
        }
    }

    fn bank_of(&self, set: usize) -> usize {
        set % self.bank_busy_until.len()
    }

    /// Writes `line` into an NVM frame, with all accounting.
    fn commit_nvm(&mut self, now: u64, set: usize, way: usize, line: LineState, migration: bool) {
        let ecb = if self.policy.uses_compression() {
            line.ecb_size()
        } else {
            hllc_nvm::FRAME_BYTES // uncompressed policies rewrite the frame
        };
        let Some(array) = self.array.as_mut() else {
            debug_assert!(false, "NVM insert requires an array");
            return;
        };
        let bytes = array.note_write(set, way, ecb);
        self.stats.nvm_inserts += 1;
        self.stats.nvm_bytes_written += bytes;
        if migration {
            self.stats.migrations += 1;
        }
        if let Some(d) = &mut self.dueling {
            d.record_write(set, bytes);
        }
        if self.nvm_write_cycles > 0 {
            self.clock = self.clock.max(now);
            let clock = self.clock;
            let bank = self.bank_of(set);
            // bank_of() reduces modulo bank_busy_until.len().
            let busy = &mut self.bank_busy_until[bank];
            *busy = (*busy).max(clock) + u64::from(self.nvm_write_cycles);
        }
        self.nvm.put(set, way, line);
    }

    /// Writes `line` into an SRAM way, with accounting.
    fn commit_sram(&mut self, set: usize, way: usize, line: LineState) {
        self.stats.sram_inserts += 1;
        self.sram.put(set, way, line);
    }

    /// Inserts into the NVM part via Fit-LRU. Falls back to SRAM when no
    /// frame fits (`migration` victims are dropped instead — a migration
    /// must not displace younger SRAM blocks).
    fn place_nvm(&mut self, now: u64, set: usize, line: LineState, migration: bool) {
        let ecb = if self.policy.uses_compression() {
            line.ecb_size()
        } else {
            hllc_nvm::FRAME_BYTES
        };
        match self.pick_nvm_way(set, ecb) {
            Some(way) => {
                if let Some(old) = self.take(Part::Nvm, set, way) {
                    self.retire(old);
                }
                self.commit_nvm(now, set, way, line, migration);
            }
            None if migration => self.retire(line),
            None => self.place_sram(now, set, line),
        }
    }

    /// Inserts into the SRAM part, applying the policy's replacement and
    /// migration rules.
    fn place_sram(&mut self, now: u64, set: usize, line: LineState) {
        if self.sram_ways == 0 {
            // Asymmetric configurations without SRAM: try NVM, else bypass.
            let ecb = line.ecb_size();
            if self.pick_nvm_way(set, ecb).is_some() {
                self.place_nvm(now, set, line, false);
            } else {
                self.stats.bypasses += 1;
                self.retire(line);
            }
            return;
        }

        // LHybrid: migrate the most-recent loop-block out of SRAM first.
        if self.policy == Policy::LHybrid {
            if let Some(lb_way) = self.most_recent_lb_way(set) {
                // Only migrate when SRAM is actually full.
                let has_empty = (0..self.sram_ways).any(|w| !self.sram.is_valid(set, w));
                if !has_empty {
                    // most_recent_lb_way only returns valid ways.
                    if let Some(lb) = self.take(Part::Sram, set, lb_way) {
                        self.place_nvm(now, set, lb, true);
                    } else {
                        debug_assert!(false, "loop-block way must hold a line");
                    }
                    self.commit_sram(set, lb_way, line);
                    return;
                }
            }
        }

        // sram_ways > 0 here (guarded above), so a way always exists.
        let Some(way) = self.pick_sram_way(set) else {
            debug_assert!(false, "SRAM part has ways");
            return;
        };
        if let Some(victim) = self.take(Part::Sram, set, way) {
            let migrate = matches!(self.policy, Policy::CaRwr { .. } | Policy::CpSd { .. })
                && victim.reuse == ReuseClass::Read;
            if migrate {
                self.place_nvm(now, set, victim, true);
            } else {
                self.retire(victim);
            }
        }
        self.commit_sram(set, way, line);
    }

    /// SRAM way holding the most-recently-used loop-block, if any.
    fn most_recent_lb_way(&self, set: usize) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for way in 0..self.sram_ways {
            if !self.sram.is_valid(set, way) {
                continue;
            }
            if self.sram.reuse(set, way) == ReuseClass::Read {
                let stamp = self.sram.lru(set, way);
                if best.is_none_or(|(_, s)| stamp > s) {
                    best = Some((way, stamp));
                }
            }
        }
        best.map(|(w, _)| w)
    }

    /// Global (Fit-)LRU placement for the NVM-unaware BH/BH_CP policies:
    /// the victim is the LRU block among all frames — SRAM or NVM — able to
    /// hold the incoming block.
    fn place_global(&mut self, now: u64, set: usize, line: LineState) {
        let ecb = if self.policy.uses_compression() {
            line.ecb_size()
        } else {
            hllc_nvm::FRAME_BYTES
        };

        let mut chosen: Option<(Part, usize)> = None;
        let mut chosen_stamp = u64::MAX;
        let mut empty: Option<(Part, usize)> = None;
        for way in 0..self.sram_ways {
            if !self.sram.is_valid(set, way) {
                empty = Some((Part::Sram, way));
                break;
            }
            let stamp = self.sram.lru(set, way);
            if stamp < chosen_stamp {
                chosen_stamp = stamp;
                chosen = Some((Part::Sram, way));
            }
        }
        if empty.is_none() {
            let array = self.array.as_ref();
            for way in 0..self.nvm_ways {
                if !array.is_some_and(|a| a.fits(set, way, ecb)) {
                    continue;
                }
                if !self.nvm.is_valid(set, way) {
                    empty = Some((Part::Nvm, way));
                    break;
                }
                let stamp = self.nvm.lru(set, way);
                if stamp < chosen_stamp {
                    chosen_stamp = stamp;
                    chosen = Some((Part::Nvm, way));
                }
            }
        }

        match empty.or(chosen) {
            Some((Part::Sram, way)) => {
                if let Some(old) = self.take(Part::Sram, set, way) {
                    self.retire(old);
                }
                self.commit_sram(set, way, line);
            }
            Some((Part::Nvm, way)) => {
                if let Some(old) = self.take(Part::Nvm, set, way) {
                    self.retire(old);
                }
                self.commit_nvm(now, set, way, line, false);
            }
            None => {
                self.stats.bypasses += 1;
                self.retire(line);
            }
        }
    }
}

impl LlcPort for HybridLlc {
    fn request(&mut self, now: u64, block: u64, req: LlcReq) -> LlcResponse {
        self.maybe_epoch(now);
        match req {
            LlcReq::GetS => self.stats.gets += 1,
            LlcReq::GetX => self.stats.getx += 1,
        }
        let set = set_index(block, self.sets);
        let Some((part, way)) = self.find(set, block) else {
            self.stats.misses += 1;
            return LlcResponse::miss();
        };

        self.stats.hits += 1;
        match part {
            Part::Sram => self.stats.sram_hits += 1,
            Part::Nvm => self.stats.nvm_hits += 1,
        }
        if let Some(d) = &mut self.dueling {
            d.record_hit(set);
        }

        let stamp = self.next_stamp();
        self.part_mut(part).bump_hits(set, way);
        let dirty = self.part(part).dirty(set, way);
        let tap_count = match self.policy {
            Policy::Tap { .. } => self.tap_observe(block, dirty, req),
            Policy::Bh
            | Policy::BhCp
            | Policy::Ca { .. }
            | Policy::CaRwr { .. }
            | Policy::CpSd { .. }
            | Policy::LHybrid => 0,
        };
        let reuse = self.classify_hit(dirty, req, tap_count);
        let compressed = part == Part::Nvm
            && self.policy.uses_compression()
            && self.part(part).cb_size(set, way) < 64;
        let extra_cycles = if part == Part::Nvm && self.nvm_write_cycles > 0 {
            self.clock = self.clock.max(now);
            // Wait for the in-flight write; capped at one write duration so
            // per-core clock skew cannot masquerade as queueing.
            let wait = (self.bank_busy_until[self.bank_of(set)].saturating_sub(self.clock) as u32)
                .min(self.nvm_write_cycles);
            self.stats.write_stall_cycles += u64::from(wait);
            wait
        } else {
            0
        };

        match req {
            LlcReq::GetX => {
                // Invalidate-on-hit: ownership moves to the private levels.
                self.take(part, set, way);
            }
            LlcReq::GetS => {
                let p = self.part_mut(part);
                p.touch(set, way, stamp);
                p.set_reuse(set, way, reuse);
            }
        }

        LlcResponse {
            hit: true,
            nvm: part == Part::Nvm,
            compressed,
            reuse,
            extra_cycles,
        }
    }

    fn insert(
        &mut self,
        now: u64,
        block: u64,
        dirty: bool,
        reuse: ReuseClass,
        data: &mut dyn DataModel,
    ) {
        self.maybe_epoch(now);
        let set = set_index(block, self.sets);

        if let Some((part, way)) = self.find(set, block) {
            if !dirty {
                // Clean copy already resident: refresh LRU only ("written if
                // it was not there", §III-A).
                let stamp = self.next_stamp();
                self.part_mut(part).touch(set, way, stamp);
                return;
            }
            // Stale resident copy vs dirty incoming data: replace it.
            let _ = self.take(part, set, way);
        }

        let cb_size = if self.policy.uses_compression() {
            data.compressed_size(block)
        } else {
            64
        };
        let stamp = self.next_stamp();
        let line = LineState::new(block, dirty, reuse, cb_size, stamp);

        match self.policy {
            Policy::Bh | Policy::BhCp => self.place_global(now, set, line),
            Policy::Ca { .. }
            | Policy::CaRwr { .. }
            | Policy::CpSd { .. }
            | Policy::LHybrid
            | Policy::Tap { .. } => match self.decide_part(set, &line) {
                Part::Nvm => self.place_nvm(now, set, line, false),
                Part::Sram => self.place_sram(now, set, line),
            },
        }
    }

    fn stats(&self) -> &LlcStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
        if let Some(a) = &mut self.array {
            a.reset_write_stats();
        }
    }
}
