//! Hybrid LLC configuration.

use hllc_nvm::EnduranceModel;
use hllc_sim::LlcGeometry;

use crate::dueling::DEFAULT_EPOCH_CYCLES;
use crate::policy::Policy;

/// Configuration of a [`HybridLlc`](crate::HybridLlc).
///
/// # Example
///
/// ```
/// use hllc_core::{HybridConfig, Policy};
///
/// let cfg = HybridConfig::new(4096, 4, 12, Policy::cp_sd())
///     .with_endurance(1e10, 0.2)
///     .with_seed(7);
/// assert_eq!(cfg.sets, 4096);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct HybridConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// SRAM ways per set.
    pub sram_ways: usize,
    /// NVM ways per set (0 for the SRAM-only bounds).
    pub nvm_ways: usize,
    /// Insertion policy.
    pub policy: Policy,
    /// NVM bitcell endurance model.
    pub endurance: EnduranceModel,
    /// Set Dueling epoch length in cycles.
    pub epoch_cycles: u64,
    /// Inter-epoch smoothing of the Set Dueling counters (0 = the paper's
    /// raw per-epoch counters; scaled-down simulations use ~0.6 to recover
    /// full-size sampler statistics).
    pub dueling_smoothing: f64,
    /// RNG seed for the endurance sampling.
    pub seed: u64,
    /// NVM data-array write latency in cycles (Table IV: 20). A read that
    /// arrives at a bank while a write is in flight waits out the
    /// remainder; 0 disables contention modelling.
    pub nvm_write_cycles: u32,
    /// Number of LLC banks (Table IV: 4); banks interleave by set index.
    pub banks: usize,
    /// Use Fit-LRU in the NVM part (the paper's design): the victim is the
    /// LRU block among the frames the incoming ECB fits in. Disabling this
    /// (ablation) picks the plain LRU frame and falls back to SRAM when the
    /// block does not fit it.
    pub fit_lru: bool,
}

impl HybridConfig {
    /// Creates a configuration with the paper's endurance defaults
    /// (`μ = 10^10`, `cv = 0.2`) and 2 M-cycle epochs.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or the cache has no ways.
    pub fn new(sets: usize, sram_ways: usize, nvm_ways: usize, policy: Policy) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(sram_ways + nvm_ways > 0, "cache must have at least one way");
        HybridConfig {
            sets,
            sram_ways,
            nvm_ways,
            policy,
            endurance: EnduranceModel::paper_default(),
            epoch_cycles: DEFAULT_EPOCH_CYCLES,
            dueling_smoothing: 0.0,
            seed: 0xC0FFEE,
            nvm_write_cycles: 20,
            banks: 4,
            fit_lru: true,
        }
    }

    /// Builds from an [`LlcGeometry`].
    pub fn from_geometry(geom: LlcGeometry, policy: Policy) -> Self {
        HybridConfig::new(geom.sets, geom.sram_ways, geom.nvm_ways, policy)
    }

    /// Overrides the endurance distribution.
    pub fn with_endurance(mut self, mean: f64, cv: f64) -> Self {
        self.endurance = EnduranceModel::new(mean, cv);
        self
    }

    /// Overrides the endurance-sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the Set Dueling epoch length.
    pub fn with_epoch_cycles(mut self, cycles: u64) -> Self {
        self.epoch_cycles = cycles;
        self
    }

    /// Overrides the Set Dueling counter smoothing.
    pub fn with_dueling_smoothing(mut self, smoothing: f64) -> Self {
        self.dueling_smoothing = smoothing;
        self
    }

    /// Disables Fit-LRU in the NVM part (ablation study).
    pub fn without_fit_lru(mut self) -> Self {
        self.fit_lru = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let cfg = HybridConfig::new(64, 3, 13, Policy::LHybrid)
            .with_endurance(1e8, 0.25)
            .with_epoch_cycles(500)
            .with_seed(1);
        assert_eq!(cfg.nvm_ways, 13);
        assert_eq!(cfg.endurance.cv(), 0.25);
        assert_eq!(cfg.epoch_cycles, 500);
    }

    #[test]
    fn from_geometry() {
        let geom = LlcGeometry {
            sets: 128,
            sram_ways: 4,
            nvm_ways: 12,
        };
        let cfg = HybridConfig::from_geometry(geom, Policy::Bh);
        assert_eq!((cfg.sets, cfg.sram_ways, cfg.nvm_ways), (128, 4, 12));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        HybridConfig::new(100, 4, 12, Policy::Bh);
    }
}
