//! Per-way line state of the hybrid LLC.

use hllc_sim::ReuseClass;

/// Metadata of one block resident in the LLC.
///
/// Lives in the (SRAM) tag array: block identity, coherence dirtiness,
/// reuse tag, the block's compressed size (computed by the BDI compressor
/// at insertion time), a hit counter (TAP), and the LRU stamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineState {
    /// Block address.
    pub block: u64,
    /// True if this is the only up-to-date copy (writeback needed on evict).
    pub dirty: bool,
    /// Reuse classification (read-reuse / write-reuse / none).
    pub reuse: ReuseClass,
    /// Compressed block (CB) size in bytes at insertion time (64 when the
    /// policy stores blocks uncompressed).
    pub cb_size: u8,
    /// LLC hits this block has received since insertion (TAP's thrashing
    /// detector).
    pub hits: u32,
    /// LRU stamp: larger = more recently used.
    pub lru: u64,
}

impl LineState {
    /// Creates a freshly inserted line.
    pub fn new(block: u64, dirty: bool, reuse: ReuseClass, cb_size: u8, lru: u64) -> Self {
        LineState {
            block,
            dirty,
            reuse,
            cb_size,
            hits: 0,
            lru,
        }
    }

    /// Extended-compressed-block size: CB + CE + SECDED, i.e. `cb_size + 2`
    /// bytes (§III-B1).
    pub fn ecb_size(&self) -> usize {
        self.cb_size as usize + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecb_adds_metadata_bytes() {
        let l = LineState::new(1, false, ReuseClass::None, 36, 0);
        assert_eq!(l.ecb_size(), 38);
        let u = LineState::new(1, false, ReuseClass::None, 64, 0);
        assert_eq!(u.ecb_size(), 66);
    }
}
