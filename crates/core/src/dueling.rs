//! Set Dueling for the compression threshold `CP_th` (§IV-C, §IV-D).
//!
//! A handful of *sampler* groups each pin one candidate `CP_th` value on
//! `N/32` of the cache sets; the remaining *follower* sets adopt, each
//! epoch, the candidate that performed best in the previous epoch. The
//! rule-based variant (§IV-D) will deviate from the max-hits winner towards
//! a smaller `CP_th` when that cuts NVM bytes written by at least `Tw` %
//! while losing at most `Th` % of the hits.

/// The candidate `CP_th` values duelled at runtime (§IV-C: "from 30 to 64").
pub const CP_TH_CANDIDATES: [u8; 6] = [30, 37, 44, 51, 58, 64];

/// Default Set Dueling epoch: 2 M cycles (§IV-C).
pub const DEFAULT_EPOCH_CYCLES: u64 = 2_000_000;

/// Most-recent epochs retained in the sampler history ring. Older records
/// are overwritten, so a long run's dueling state stays bounded instead of
/// growing by one [`EpochRecord`] per epoch for the whole simulation.
pub const HISTORY_EPOCHS: usize = 256;

/// Per-epoch sampler outcome, kept for the Figure 8 analyses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochRecord {
    /// Hits per candidate during the epoch.
    pub hits: [u64; CP_TH_CANDIDATES.len()],
    /// NVM bytes written per candidate during the epoch.
    pub writes: [u64; CP_TH_CANDIDATES.len()],
    /// Candidate index chosen for the followers of the next epoch.
    pub winner: usize,
}

impl EpochRecord {
    /// Candidate index with the most hits this epoch (ties: smaller
    /// `CP_th`), or `None` if the epoch saw no sampler hits.
    pub fn max_hits_candidate(&self) -> Option<usize> {
        if self.hits.iter().all(|&h| h == 0) {
            return None;
        }
        let mut best = 0;
        for k in 1..self.hits.len() {
            // k and best stay below hits.len().
            if self.hits[k] > self.hits[best] {
                best = k;
            }
        }
        Some(best)
    }
}

/// The Set Dueling controller.
///
/// # Example
///
/// ```
/// use hllc_core::{SetDueling, CP_TH_CANDIDATES};
///
/// let mut sd = SetDueling::new(0.0, 5.0, 1000);
/// // Set 3 samples candidate 3 (CP_th = 51); set 40 is a follower.
/// assert_eq!(sd.candidate_of_set(3), Some(3));
/// assert_eq!(sd.candidate_of_set(40), None);
/// sd.record_hit(3);
/// sd.maybe_epoch(1000);
/// assert_eq!(sd.cp_th_for_set(40), CP_TH_CANDIDATES[3]);
/// ```
#[derive(Clone, Debug)]
pub struct SetDueling {
    th: f64,
    tw: f64,
    epoch_cycles: u64,
    epoch_end: u64,
    hits: [u64; CP_TH_CANDIDATES.len()],
    writes: [u64; CP_TH_CANDIDATES.len()],
    /// Exponentially smoothed counters used for winner selection. With
    /// `smoothing = 0` these equal the raw per-epoch counters (the paper's
    /// mechanism); scaled-down simulations set a non-zero smoothing factor
    /// to recover the statistical weight a full-size cache's sampler sets
    /// would accumulate per epoch.
    hits_acc: [f64; CP_TH_CANDIDATES.len()],
    writes_acc: [f64; CP_TH_CANDIDATES.len()],
    smoothing: f64,
    winner: usize,
    /// Ring of the last [`HISTORY_EPOCHS`] epoch records; once full,
    /// `history_head` is the oldest entry and new records overwrite it.
    history: Vec<EpochRecord>,
    history_head: usize,
    epochs_total: u64,
}

impl SetDueling {
    /// Creates a controller with the rule thresholds `th`/`tw` (percent)
    /// and the given epoch length in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_cycles` is zero or the thresholds are negative.
    pub fn new(th: f64, tw: f64, epoch_cycles: u64) -> Self {
        assert!(epoch_cycles > 0, "epoch must be at least one cycle");
        assert!(th >= 0.0 && tw >= 0.0, "thresholds are percentages >= 0");
        SetDueling {
            th,
            tw,
            epoch_cycles,
            epoch_end: epoch_cycles,
            hits: [0; CP_TH_CANDIDATES.len()],
            writes: [0; CP_TH_CANDIDATES.len()],
            hits_acc: [0.0; CP_TH_CANDIDATES.len()],
            writes_acc: [0.0; CP_TH_CANDIDATES.len()],
            smoothing: 0.0,
            // Start from CP_th = 58, the statically best value (§IV-A).
            winner: 4,
            history: Vec::new(),
            history_head: 0,
            epochs_total: 0,
        }
    }

    /// Sets the inter-epoch smoothing factor (0 = the paper's raw
    /// per-epoch counters, values towards 1 integrate over more epochs).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= smoothing < 1`.
    pub fn set_smoothing(&mut self, smoothing: f64) {
        assert!(
            (0.0..1.0).contains(&smoothing),
            "smoothing must be in [0, 1)"
        );
        self.smoothing = smoothing;
    }

    /// The sampler candidate this set pins, or `None` for follower sets.
    /// Candidate `k` owns the sets with `set % 32 == k` — `N/32` sets per
    /// candidate as in the paper.
    pub fn candidate_of_set(&self, set: usize) -> Option<usize> {
        let m = set % 32;
        (m < CP_TH_CANDIDATES.len()).then_some(m)
    }

    /// The `CP_th` a given set must use right now.
    pub fn cp_th_for_set(&self, set: usize) -> u8 {
        match self.candidate_of_set(set) {
            Some(k) => CP_TH_CANDIDATES[k],
            // winner is always a candidate index (see select_winner).
            None => CP_TH_CANDIDATES[self.winner],
        }
    }

    /// Current follower `CP_th`.
    pub fn current_cp_th(&self) -> u8 {
        CP_TH_CANDIDATES[self.winner]
    }

    /// Records an LLC hit in a sampler set.
    pub fn record_hit(&mut self, set: usize) {
        if let Some(k) = self.candidate_of_set(set) {
            self.hits[k] += 1;
        }
    }

    /// Records NVM bytes written in a sampler set.
    pub fn record_write(&mut self, set: usize, bytes: u64) {
        if let Some(k) = self.candidate_of_set(set) {
            self.writes[k] += bytes;
        }
    }

    /// Rolls the epoch over if `now` has passed the epoch boundary,
    /// re-evaluating the winner. Returns true if an epoch ended.
    pub fn maybe_epoch(&mut self, now: u64) -> bool {
        if now < self.epoch_end {
            return false;
        }
        for k in 0..CP_TH_CANDIDATES.len() {
            self.hits_acc[k] = self.hits_acc[k] * self.smoothing + self.hits[k] as f64;
            self.writes_acc[k] = self.writes_acc[k] * self.smoothing + self.writes[k] as f64;
        }
        self.winner = self.select_winner();
        let record = EpochRecord {
            hits: self.hits,
            writes: self.writes,
            winner: self.winner,
        };
        if self.history.len() < HISTORY_EPOCHS {
            self.history.push(record);
        } else {
            // history_head wraps modulo HISTORY_EPOCHS == history.len().
            self.history[self.history_head] = record;
            self.history_head = (self.history_head + 1) % HISTORY_EPOCHS;
        }
        self.epochs_total += 1;
        self.hits = [0; CP_TH_CANDIDATES.len()];
        self.writes = [0; CP_TH_CANDIDATES.len()];
        // Skip ahead over any fully idle epochs.
        while self.epoch_end <= now {
            self.epoch_end += self.epoch_cycles;
        }
        true
    }

    /// Applies the §IV-D rule (Equation 1) to the (smoothed) sampler
    /// counters: start from the max-hits candidate `i`; with `Th > 0`,
    /// choose the smallest-`CP_th` candidate `j` with
    /// `H(j) > H(i)·(1 − Th/100)` and `W(j) < W(i)·(1 − Tw/100)`.
    fn select_winner(&self) -> usize {
        if self.hits_acc.iter().all(|&h| h == 0.0) {
            return self.winner; // idle epoch: keep the previous choice
        }
        let mut i = 0;
        for k in 1..CP_TH_CANDIDATES.len() {
            // k, i < CP_TH_CANDIDATES.len() == hits_acc.len().
            if self.hits_acc[k] > self.hits_acc[i] {
                i = k;
            }
        }
        if self.th == 0.0 {
            return i;
        }
        let h_floor = self.hits_acc[i] * (1.0 - self.th / 100.0);
        let w_ceiling = self.writes_acc[i] * (1.0 - self.tw / 100.0);
        for j in 0..CP_TH_CANDIDATES.len() {
            // j < CP_TH_CANDIDATES.len() == hits_acc.len() == writes_acc.len().
            if self.hits_acc[j] > h_floor && self.writes_acc[j] < w_ceiling {
                return j;
            }
        }
        i
    }

    /// The retained per-epoch sampler history in chronological order —
    /// the last [`HISTORY_EPOCHS`] epochs at most (see
    /// [`epochs_total`](Self::epochs_total) for the lifetime count).
    pub fn history(&self) -> Vec<EpochRecord> {
        let mut out = Vec::with_capacity(self.history.len());
        // history_head <= history.len() (it indexes or appends).
        out.extend_from_slice(&self.history[self.history_head..]);
        // Same bound as the slice above.
        out.extend_from_slice(&self.history[..self.history_head]);
        out
    }

    /// Number of epoch records currently retained in the ring
    /// (`min(epochs_total, HISTORY_EPOCHS)`).
    pub fn epochs_retained(&self) -> usize {
        self.history.len()
    }

    /// Total epochs completed over the run, including those whose records
    /// have been overwritten in the ring.
    pub fn epochs_total(&self) -> u64 {
        self.epochs_total
    }

    /// Drops the recorded history (the lifetime epoch count is kept).
    pub fn clear_history(&mut self) {
        self.history.clear();
        self.history_head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_assignment_is_one_in_thirtytwo() {
        let sd = SetDueling::new(0.0, 5.0, 100);
        let n = 4096;
        let samplers = (0..n).filter(|&s| sd.candidate_of_set(s).is_some()).count();
        assert_eq!(samplers, n / 32 * CP_TH_CANDIDATES.len());
        assert_eq!(sd.candidate_of_set(32 + 2), Some(2));
        assert_eq!(sd.candidate_of_set(31), None);
    }

    #[test]
    fn max_hits_winner() {
        let mut sd = SetDueling::new(0.0, 5.0, 100);
        // Candidate 1 (sets ≡ 1 mod 32) gets the most hits.
        for _ in 0..10 {
            sd.record_hit(1);
        }
        sd.record_hit(2);
        assert!(sd.maybe_epoch(100));
        assert_eq!(sd.current_cp_th(), CP_TH_CANDIDATES[1]);
        // Followers adopt it; samplers keep their own.
        assert_eq!(sd.cp_th_for_set(40), CP_TH_CANDIDATES[1]); // 40 ≡ 8 (mod 32): follower
        assert_eq!(sd.cp_th_for_set(64 + 5), CP_TH_CANDIDATES[5]);
    }

    #[test]
    fn rule_trades_hits_for_writes() {
        // Candidate 4 (58) wins hits; candidate 0 (30) loses 5 % of hits
        // but writes 50 % less. With Th=8, Tw=5 the rule must pick 0.
        let mut sd = SetDueling::new(8.0, 5.0, 100);
        for _ in 0..100 {
            sd.record_hit(4);
        }
        for _ in 0..96 {
            sd.record_hit(0);
        }
        sd.record_write(4, 1000);
        sd.record_write(0, 500);
        sd.maybe_epoch(100);
        assert_eq!(sd.current_cp_th(), 30);
    }

    #[test]
    fn rule_refuses_insufficient_write_savings() {
        // Same hits trade-off but writes only drop 2 % (< Tw = 5 %).
        let mut sd = SetDueling::new(8.0, 5.0, 100);
        for _ in 0..100 {
            sd.record_hit(4);
        }
        for _ in 0..96 {
            sd.record_hit(0);
        }
        sd.record_write(4, 1000);
        sd.record_write(0, 980);
        sd.maybe_epoch(100);
        assert_eq!(sd.current_cp_th(), 58);
    }

    #[test]
    fn rule_prefers_smallest_qualifying_cpth() {
        let mut sd = SetDueling::new(8.0, 5.0, 100);
        for k in [0usize, 2, 4] {
            for _ in 0..95 {
                sd.record_hit(k);
            }
        }
        for _ in 0..5 {
            sd.record_hit(4); // candidate 4: 100 hits, the max
        }
        sd.record_write(4, 1000);
        sd.record_write(2, 700);
        sd.record_write(0, 800); // both qualify; 0 is smaller
        sd.maybe_epoch(100);
        assert_eq!(sd.current_cp_th(), 30);
    }

    #[test]
    fn idle_epoch_keeps_winner() {
        let mut sd = SetDueling::new(0.0, 5.0, 100);
        for _ in 0..3 {
            sd.record_hit(2);
        }
        sd.maybe_epoch(100);
        assert_eq!(sd.current_cp_th(), CP_TH_CANDIDATES[2]);
        sd.maybe_epoch(200); // no hits at all
        assert_eq!(sd.current_cp_th(), CP_TH_CANDIDATES[2]);
        assert_eq!(sd.history().len(), 2);
    }

    #[test]
    fn epoch_boundaries_catch_up() {
        let mut sd = SetDueling::new(0.0, 5.0, 100);
        assert!(!sd.maybe_epoch(99));
        assert!(sd.maybe_epoch(350)); // skips two idle boundaries
        assert!(!sd.maybe_epoch(399));
        assert!(sd.maybe_epoch(400));
    }

    #[test]
    fn history_ring_retains_only_the_most_recent_window() {
        let mut sd = SetDueling::new(0.0, 5.0, 100);
        let total = HISTORY_EPOCHS as u64 + 10;
        for e in 0..total {
            // Vary the hit count so each epoch's record is distinguishable.
            for _ in 0..=(e % 7) {
                sd.record_hit(1);
            }
            assert!(sd.maybe_epoch((e + 1) * 100));
        }
        assert_eq!(sd.epochs_total(), total);
        assert_eq!(sd.epochs_retained(), HISTORY_EPOCHS);
        let history = sd.history();
        assert_eq!(history.len(), HISTORY_EPOCHS);
        // Chronological: the oldest retained record is epoch 10, the newest
        // is the final epoch.
        assert_eq!(history[0].hits[1], 10 % 7 + 1);
        assert_eq!(history[HISTORY_EPOCHS - 1].hits[1], (total - 1) % 7 + 1);
        sd.clear_history();
        assert_eq!(sd.epochs_retained(), 0);
        assert_eq!(sd.epochs_total(), total);
    }

    #[test]
    fn followers_unaffected_by_follower_traffic() {
        let mut sd = SetDueling::new(0.0, 5.0, 100);
        sd.record_hit(40); // follower set: not counted
        sd.record_write(40, 100);
        sd.maybe_epoch(100);
        let rec = sd.history()[0];
        assert!(rec.hits.iter().all(|&h| h == 0));
        assert!(rec.writes.iter().all(|&w| w == 0));
    }
}
