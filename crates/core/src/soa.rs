//! Struct-of-arrays backing store for one part (SRAM or NVM) of the
//! hybrid LLC.
//!
//! The per-access hot path is dominated by way scans: a tag lookup on every
//! request and an LRU sweep on every insert. With an array-of-structs
//! `Vec<Option<LineState>>` each scan strides over ~40-byte entries and
//! touches every field; here the fields live in parallel flat arrays
//! indexed by `set * ways + way`, so a tag probe reads one 8-byte occupancy
//! word plus a contiguous run of 8-byte tags, and an LRU sweep reads only
//! the stamp lane. Occupancy is a per-set bitmask, which also makes
//! empty-way discovery a single `trailing_zeros`.
//!
//! [`LineState`] remains the API currency: lines are assembled from and
//! scattered back into the lanes at the edges, so policy code keeps reading
//! like the paper while the storage stays scan-friendly.

use hllc_sim::ReuseClass;

use crate::line::LineState;

/// Parallel per-way metadata lanes for `sets * ways` frames.
#[derive(Clone, Debug)]
pub(crate) struct WayArray {
    ways: usize,
    /// Per-set occupancy bitmask (bit `w` set ⇔ way `w` holds a line).
    valid: Vec<u64>,
    /// Block addresses.
    tags: Vec<u64>,
    /// LRU stamps (larger = more recently used), updated incrementally on
    /// hits — never recomputed set-wide.
    lru: Vec<u64>,
    /// Compressed block sizes at insertion time.
    cb_size: Vec<u8>,
    /// Packed dirty bit (bit 0) and reuse class (bits 1–2).
    meta: Vec<u8>,
    /// Per-line hit counters.
    hits: Vec<u32>,
}

const DIRTY_BIT: u8 = 1;
const REUSE_SHIFT: u8 = 1;

fn encode_reuse(reuse: ReuseClass) -> u8 {
    match reuse {
        ReuseClass::None => 0,
        ReuseClass::Read => 1,
        ReuseClass::Write => 2,
    }
}

fn decode_reuse(bits: u8) -> ReuseClass {
    match bits {
        1 => ReuseClass::Read,
        2 => ReuseClass::Write,
        _ => ReuseClass::None,
    }
}

impl WayArray {
    /// An empty array of `sets * ways` frames.
    ///
    /// # Panics
    ///
    /// Panics if `ways > 64` (the occupancy word is a `u64`).
    pub(crate) fn new(sets: usize, ways: usize) -> Self {
        assert!(ways <= 64, "WayArray supports at most 64 ways, got {ways}");
        WayArray {
            ways,
            valid: vec![0; sets],
            tags: vec![0; sets * ways],
            lru: vec![0; sets * ways],
            cb_size: vec![0; sets * ways],
            meta: vec![0; sets * ways],
            hits: vec![0; sets * ways],
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        debug_assert!(way < self.ways);
        set * self.ways + way
    }

    /// True if `way` of `set` holds a line.
    #[inline]
    pub(crate) fn is_valid(&self, set: usize, way: usize) -> bool {
        // set < sets == valid.len(); callers pass in-range sets.
        self.valid[set] & (1u64 << way) != 0
    }

    /// The way holding `block` in `set`, if resident: one occupancy-word
    /// load plus a linear sweep over the set's contiguous tag lane.
    #[inline]
    pub(crate) fn find(&self, set: usize, block: u64) -> Option<usize> {
        let mask = self.valid[set];
        if mask == 0 {
            return None;
        }
        let base = set * self.ways;
        // base + ways <= sets * ways == tags.len().
        let tags = &self.tags[base..base + self.ways];
        for (way, &tag) in tags.iter().enumerate() {
            if tag == block && mask & (1u64 << way) != 0 {
                return Some(way);
            }
        }
        None
    }

    /// The LRU stamp of `way` (only meaningful when valid).
    #[inline]
    pub(crate) fn lru(&self, set: usize, way: usize) -> u64 {
        // idx() < sets * ways == lru.len().
        self.lru[self.idx(set, way)]
    }

    /// The occupancy word of `set` (bit `w` set ⇔ way `w` holds a line).
    #[inline]
    pub(crate) fn valid_mask(&self, set: usize) -> u64 {
        self.valid[set]
    }

    /// The contiguous LRU-stamp lane of `set` — lets victim sweeps iterate
    /// a slice instead of paying an index computation per way.
    #[inline]
    pub(crate) fn lru_lane(&self, set: usize) -> &[u64] {
        let base = set * self.ways;
        &self.lru[base..base + self.ways]
    }

    /// Incrementally refreshes the LRU stamp of a resident line.
    #[inline]
    pub(crate) fn touch(&mut self, set: usize, way: usize, stamp: u64) {
        let i = self.idx(set, way);
        // i = idx() < sets * ways == lru.len().
        self.lru[i] = stamp;
    }

    /// Sets the reuse class of a resident line.
    #[inline]
    pub(crate) fn set_reuse(&mut self, set: usize, way: usize, reuse: ReuseClass) {
        let i = self.idx(set, way);
        self.meta[i] = (self.meta[i] & DIRTY_BIT) | (encode_reuse(reuse) << REUSE_SHIFT);
    }

    /// Increments the hit counter of a resident line.
    #[inline]
    pub(crate) fn bump_hits(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.hits[i] += 1;
    }

    /// True if the resident line at `way` is dirty.
    #[inline]
    pub(crate) fn dirty(&self, set: usize, way: usize) -> bool {
        self.meta[self.idx(set, way)] & DIRTY_BIT != 0
    }

    /// The reuse class of the resident line at `way`.
    #[inline]
    pub(crate) fn reuse(&self, set: usize, way: usize) -> ReuseClass {
        decode_reuse(self.meta[self.idx(set, way)] >> REUSE_SHIFT)
    }

    /// The compressed size of the resident line at `way`.
    #[inline]
    pub(crate) fn cb_size(&self, set: usize, way: usize) -> u8 {
        self.cb_size[self.idx(set, way)]
    }

    /// Gathers the lanes of `way` back into a [`LineState`], or `None` if
    /// the way is empty.
    pub(crate) fn get(&self, set: usize, way: usize) -> Option<LineState> {
        if !self.is_valid(set, way) {
            return None;
        }
        let i = self.idx(set, way);
        Some(LineState {
            block: self.tags[i],
            dirty: self.meta[i] & DIRTY_BIT != 0,
            reuse: decode_reuse(self.meta[i] >> REUSE_SHIFT),
            cb_size: self.cb_size[i],
            hits: self.hits[i],
            lru: self.lru[i],
        })
    }

    /// Scatters `line` into the lanes of `way`, marking it occupied.
    pub(crate) fn put(&mut self, set: usize, way: usize, line: LineState) {
        let i = self.idx(set, way);
        self.tags[i] = line.block;
        self.lru[i] = line.lru;
        self.cb_size[i] = line.cb_size;
        self.meta[i] = u8::from(line.dirty) | (encode_reuse(line.reuse) << REUSE_SHIFT);
        self.hits[i] = line.hits;
        self.valid[set] |= 1u64 << way;
    }

    /// Removes and returns the line at `way`, if any.
    pub(crate) fn take(&mut self, set: usize, way: usize) -> Option<LineState> {
        let line = self.get(set, way)?;
        self.valid[set] &= !(1u64 << way);
        Some(line)
    }

    /// Invalidates every line (the lanes keep their bytes; only the
    /// occupancy words are cleared).
    pub(crate) fn clear(&mut self) {
        self.valid.iter_mut().for_each(|m| *m = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(block: u64, lru: u64) -> LineState {
        LineState::new(block, true, ReuseClass::Write, 22, lru)
    }

    #[test]
    fn put_get_take_round_trip() {
        let mut a = WayArray::new(4, 3);
        assert_eq!(a.get(2, 1), None);
        let l = line(0xABC, 7);
        a.put(2, 1, l);
        assert!(a.is_valid(2, 1));
        assert_eq!(a.get(2, 1), Some(l));
        assert_eq!(a.find(2, 0xABC), Some(1));
        assert_eq!(a.take(2, 1), Some(l));
        assert!(!a.is_valid(2, 1));
        assert_eq!(a.find(2, 0xABC), None, "stale tags must not match");
    }

    #[test]
    fn field_round_trips_cover_every_reuse_class_and_dirtiness() {
        let mut a = WayArray::new(1, 8);
        for (way, (dirty, reuse)) in [
            (false, ReuseClass::None),
            (true, ReuseClass::None),
            (false, ReuseClass::Read),
            (true, ReuseClass::Read),
            (false, ReuseClass::Write),
            (true, ReuseClass::Write),
        ]
        .into_iter()
        .enumerate()
        {
            let l = LineState::new(way as u64 + 100, dirty, reuse, way as u8, way as u64);
            a.put(0, way, l);
            assert_eq!(a.get(0, way), Some(l));
            assert_eq!(a.dirty(0, way), dirty);
            assert_eq!(a.reuse(0, way), reuse);
            assert_eq!(a.cb_size(0, way), way as u8);
        }
    }

    #[test]
    fn incremental_updates_show_through_get() {
        let mut a = WayArray::new(2, 2);
        a.put(1, 0, line(5, 1));
        a.touch(1, 0, 99);
        a.set_reuse(1, 0, ReuseClass::Read);
        a.bump_hits(1, 0);
        a.bump_hits(1, 0);
        let l = a.get(1, 0).unwrap();
        assert_eq!(l.lru, 99);
        assert_eq!(l.reuse, ReuseClass::Read);
        assert_eq!(l.hits, 2);
        assert!(l.dirty, "touch/set_reuse must not clobber the dirty bit");
    }

    #[test]
    fn clear_empties_every_set() {
        let mut a = WayArray::new(3, 2);
        a.put(0, 0, line(1, 1));
        a.put(2, 1, line(2, 2));
        a.clear();
        for set in 0..3 {
            for way in 0..2 {
                assert!(!a.is_valid(set, way));
            }
        }
    }

    #[test]
    fn sixty_four_ways_are_supported() {
        let mut a = WayArray::new(1, 64);
        a.put(0, 63, line(9, 3));
        assert!(a.is_valid(0, 63));
        assert_eq!(a.find(0, 9), Some(63));
    }

    #[test]
    #[should_panic(expected = "at most 64 ways")]
    fn too_many_ways_panic() {
        let _ = WayArray::new(1, 65);
    }
}
