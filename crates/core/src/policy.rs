//! The insertion-policy taxonomy (Table III).

use hllc_nvm::DisableGranularity;

/// An LLC insertion policy.
///
/// Construction helpers provide the paper's default parameters; see the
/// crate docs for the Table III taxonomy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// Baseline hybrid: one global LRU list over all 16 ways, NVM-unaware,
    /// blocks stored uncompressed, frame-granularity disabling.
    Bh,
    /// Baseline hybrid + compression: global *Fit-LRU* over all ways,
    /// byte-granularity disabling, still NVM-unaware.
    BhCp,
    /// Naive compression-aware insertion: small blocks (compressed size
    /// `<= cp_th`) go to NVM, big blocks to SRAM; local LRU in each part.
    Ca {
        /// Compression threshold in bytes.
        cp_th: u8,
    },
    /// Compression + read/write-reuse aware insertion (Table II): read-reuse
    /// blocks to NVM, write-reuse blocks to SRAM, no-reuse blocks by size;
    /// read-reuse SRAM victims migrate to NVM.
    CaRwr {
        /// Compression threshold in bytes.
        cp_th: u8,
    },
    /// CA_RWR with the compression threshold tuned at runtime by Set
    /// Dueling (§IV-C), optionally trading hits for NVM writes with the
    /// rule-based mechanism of §IV-D.
    CpSd {
        /// Maximum percentage of hits the rule may sacrifice (`Th`);
        /// 0 selects the pure max-hits winner.
        th: f64,
        /// Minimum percentage of NVM bytes-written reduction required to
        /// accept a hit loss (`Tw`).
        tw: f64,
    },
    /// LHybrid (Cheng et al.): loop-blocks (clean blocks reused in the LLC)
    /// go to NVM; SRAM replacement migrates the most-recent loop-block to
    /// NVM. Frame-granularity disabling, no compression.
    LHybrid,
    /// TAP (Luo et al.): only clean blocks that have hit at least
    /// `hit_threshold` times are inserted into NVM. More conservative than
    /// LHybrid. Frame-granularity disabling, no compression.
    Tap {
        /// LLC hits required before a block counts as thrashing-resistant.
        hit_threshold: u32,
    },
}

impl Policy {
    /// CP_SD with the paper's default pure-performance winner rule.
    pub fn cp_sd() -> Policy {
        Policy::CpSd { th: 0.0, tw: 5.0 }
    }

    /// CP_SD_Th with the given hit-sacrifice threshold (`Tw = 5 %`,
    /// as in the paper's evaluation).
    pub fn cp_sd_th(th: f64) -> Policy {
        Policy::CpSd { th, tw: 5.0 }
    }

    /// TAP with the default `H_thresh = 3`: a block must prove reuse more
    /// than once (unlike LHybrid's single loop-block hit) before entering
    /// the NVM part.
    pub fn tap() -> Policy {
        Policy::Tap { hit_threshold: 3 }
    }

    /// True if blocks are stored compressed in the NVM part.
    pub fn uses_compression(&self) -> bool {
        matches!(
            self,
            Policy::BhCp | Policy::Ca { .. } | Policy::CaRwr { .. } | Policy::CpSd { .. }
        )
    }

    /// Hard-fault disabling granularity (Table III): compression-enabled
    /// policies disable at byte level, the rest at frame level.
    pub fn granularity(&self) -> DisableGranularity {
        if self.uses_compression() {
            DisableGranularity::Byte
        } else {
            DisableGranularity::Frame
        }
    }

    /// True if the policy distinguishes the NVM part when steering blocks.
    pub fn is_nvm_aware(&self) -> bool {
        !matches!(self, Policy::Bh | Policy::BhCp)
    }

    /// True if the policy tracks read/write-reuse (or loop/thrashing) tags.
    pub fn uses_reuse(&self) -> bool {
        matches!(
            self,
            Policy::CaRwr { .. } | Policy::CpSd { .. } | Policy::LHybrid | Policy::Tap { .. }
        )
    }

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Policy::Bh => "BH".into(),
            Policy::BhCp => "BH_CP".into(),
            Policy::Ca { cp_th } => format!("CA(cpth={cp_th})"),
            Policy::CaRwr { cp_th } => format!("CA_RWR(cpth={cp_th})"),
            Policy::CpSd { th, .. } if *th == 0.0 => "CP_SD".into(),
            Policy::CpSd { th, .. } => format!("CP_SD_Th{th:.0}"),
            Policy::LHybrid => "LHybrid".into(),
            Policy::Tap { .. } => "TAP".into(),
        }
    }

    /// Parses a policy label (Table III aliases). The inverse of
    /// [`Policy::label`]; this is what `--policy` flags and spec files go
    /// through.
    ///
    /// `cp_sd_th<N>` takes any positive percentage `N` (e.g. `cp_sd_th2`,
    /// `cp_sd_th0.5`), not just the paper's 4 and 8; an optional `_tw<W>`
    /// suffix (or a bare `cp_sd_tw<W>`) overrides the write-reduction
    /// threshold. `ca_cpth<N>` / `ca_rwr_cpth<N>` / `tap_h<N>` name
    /// non-default static parameters.
    pub fn parse(name: &str) -> Option<Policy> {
        let name = name.to_ascii_lowercase();
        let pct = |s: &str| -> Option<f64> {
            let v: f64 = s.parse().ok()?;
            (v.is_finite() && v > 0.0 && v <= 100.0).then_some(v)
        };
        if let Some(rest) = name.strip_prefix("cp_sd_th") {
            let (th, tw) = match rest.split_once("_tw") {
                Some((th, tw)) => (pct(th)?, pct(tw)?),
                None => (pct(rest)?, 5.0),
            };
            return Some(Policy::CpSd { th, tw });
        }
        if let Some(tw) = name.strip_prefix("cp_sd_tw") {
            return Some(Policy::CpSd {
                th: 0.0,
                tw: pct(tw)?,
            });
        }
        let cpth = |s: &str| -> Option<u8> {
            let v: u8 = s.parse().ok()?;
            (1..=64).contains(&v).then_some(v)
        };
        if let Some(rest) = name.strip_prefix("ca_rwr_cpth") {
            return Some(Policy::CaRwr { cp_th: cpth(rest)? });
        }
        if let Some(rest) = name.strip_prefix("ca_cpth") {
            return Some(Policy::Ca { cp_th: cpth(rest)? });
        }
        if let Some(rest) = name.strip_prefix("tap_h") {
            let h: u32 = rest.parse().ok()?;
            return (h >= 1).then_some(Policy::Tap { hit_threshold: h });
        }
        match name.as_str() {
            "bh" => Some(Policy::Bh),
            "bh_cp" | "bhcp" => Some(Policy::BhCp),
            "ca" => Some(Policy::Ca { cp_th: 58 }),
            "ca_rwr" | "carwr" => Some(Policy::CaRwr { cp_th: 58 }),
            "cp_sd" | "cpsd" => Some(Policy::cp_sd()),
            "lhybrid" => Some(Policy::LHybrid),
            "tap" => Some(Policy::tap()),
            _ => None,
        }
    }

    /// Canonical flag spelling: `Policy::parse(p.label())` reconstructs `p`
    /// exactly, which is what lets spec files and trace headers carry
    /// policies as plain strings.
    pub fn label(&self) -> String {
        match self {
            Policy::Bh => "bh".into(),
            Policy::BhCp => "bh_cp".into(),
            Policy::Ca { cp_th: 58 } => "ca".into(),
            Policy::Ca { cp_th } => format!("ca_cpth{cp_th}"),
            Policy::CaRwr { cp_th: 58 } => "ca_rwr".into(),
            Policy::CaRwr { cp_th } => format!("ca_rwr_cpth{cp_th}"),
            Policy::CpSd { th, tw } if *th == 0.0 && *tw == 5.0 => "cp_sd".into(),
            Policy::CpSd { th, tw } if *th == 0.0 => format!("cp_sd_tw{tw}"),
            Policy::CpSd { th, tw } if *tw == 5.0 => format!("cp_sd_th{th}"),
            Policy::CpSd { th, tw } => format!("cp_sd_th{th}_tw{tw}"),
            Policy::LHybrid => "lhybrid".into(),
            Policy::Tap { hit_threshold: 3 } => "tap".into(),
            Policy::Tap { hit_threshold } => format!("tap_h{hit_threshold}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_taxonomy() {
        assert!(!Policy::Bh.uses_compression());
        assert!(!Policy::Bh.is_nvm_aware());
        assert_eq!(Policy::Bh.granularity(), DisableGranularity::Frame);

        assert!(Policy::BhCp.uses_compression());
        assert!(!Policy::BhCp.is_nvm_aware());
        assert_eq!(Policy::BhCp.granularity(), DisableGranularity::Byte);

        assert!(Policy::LHybrid.is_nvm_aware());
        assert_eq!(Policy::LHybrid.granularity(), DisableGranularity::Frame);

        let sd = Policy::cp_sd();
        assert!(sd.uses_compression() && sd.is_nvm_aware() && sd.uses_reuse());
    }

    #[test]
    fn names() {
        assert_eq!(Policy::cp_sd().name(), "CP_SD");
        assert_eq!(Policy::cp_sd_th(4.0).name(), "CP_SD_Th4");
        assert_eq!(Policy::Ca { cp_th: 58 }.name(), "CA(cpth=58)");
    }

    #[test]
    fn defaults() {
        assert_eq!(Policy::tap(), Policy::Tap { hit_threshold: 3 });
        assert_eq!(Policy::cp_sd(), Policy::CpSd { th: 0.0, tw: 5.0 });
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for p in [
            Policy::Bh,
            Policy::BhCp,
            Policy::Ca { cp_th: 58 },
            Policy::Ca { cp_th: 40 },
            Policy::CaRwr { cp_th: 58 },
            Policy::CaRwr { cp_th: 32 },
            Policy::cp_sd(),
            Policy::cp_sd_th(4.0),
            Policy::cp_sd_th(8.0),
            Policy::cp_sd_th(0.5),
            Policy::CpSd { th: 4.0, tw: 10.0 },
            Policy::CpSd { th: 0.0, tw: 2.0 },
            Policy::LHybrid,
            Policy::tap(),
            Policy::Tap { hit_threshold: 5 },
        ] {
            let label = p.label();
            assert_eq!(Policy::parse(&label), Some(p), "label '{label}'");
        }
    }

    #[test]
    fn parse_rejects_malformed_names() {
        for bad in [
            "nonsense",
            "cp_sd_th",
            "cp_sd_th0",
            "cp_sd_th101",
            "cp_sd_th4_tw0",
            "ca_cpth0",
            "ca_cpth65",
            "ca_rwr_cpthx",
            "tap_h0",
        ] {
            assert!(Policy::parse(bad).is_none(), "'{bad}' accepted");
        }
    }
}
