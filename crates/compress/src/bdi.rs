//! The BDI compressor and decompressor.
//!
//! Hardware evaluates all compression encodings in parallel and picks the
//! smallest applicable one (§II-B); this software model gathers the same
//! information in a single pass over the block: one sweep computes the
//! zero/repeated flags and the min/max signed delta against lane 0 for every
//! base width, from which the minimal delta width per base — and therefore
//! the unique smallest encoding (Table I sizes are all distinct) — follows
//! arithmetically. Decompression is exact: `decompress(compress(b)) == b`
//! for every 64-byte block.
//!
//! Nothing in this module allocates: [`Compressor::probe`] works from the
//! raw bytes alone, and [`CompressedBlock`] stores its payload inline.

use crate::block::{le_bytes, Block, BLOCK_SIZE};
use crate::encoding::Encoding;

/// A compressed cache block: the chosen encoding plus its payload bytes.
///
/// The payload layout is `base || delta_1 || ... || delta_{lanes-1}` with
/// little-endian bases and little-endian two's-complement deltas, matching
/// [`Encoding::compressed_size`] exactly. The payload is stored inline (the
/// unused tail is zero), so compressing never touches the heap.
///
/// # Example
///
/// ```
/// use hllc_compress::{Block, Compressor};
///
/// let block = Block::from_u64_lanes([100, 101, 102, 103, 104, 105, 106, 107]);
/// let cb = Compressor::new().compress(&block);
/// assert_eq!(cb.size(), 15); // B8Δ1
/// assert_eq!(cb.decompress(), block);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedBlock {
    encoding: Encoding,
    payload: [u8; BLOCK_SIZE],
}

impl CompressedBlock {
    /// The encoding this block was compressed with.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Compressed block (CB) size in bytes.
    pub fn size(&self) -> u8 {
        self.encoding.compressed_size()
    }

    /// Extended compressed block (ECB) size in bytes: CB plus the 4-bit CE
    /// and the 11-bit SECDED code, rounded up to whole bytes (§III-B1).
    pub fn ecb_size(&self) -> u8 {
        ecb_size(self.encoding.compressed_size())
    }

    /// The raw payload bytes (base followed by deltas).
    pub fn payload(&self) -> &[u8] {
        // compressed_size() <= 64 == payload.len().
        &self.payload[..self.encoding.compressed_size() as usize]
    }

    /// Reconstructs the original 64-byte block.
    pub fn decompress(&self) -> Block {
        match self.encoding {
            Encoding::Zeros => Block::zeroed(),
            Encoding::Repeated => {
                let v = u64::from_le_bytes(le_bytes(&self.payload, 0));
                Block::from_u64_lanes([v; 8])
            }
            Encoding::Uncompressed => Block::new(self.payload),
            e => decompress_base_delta(e, self.payload()),
        }
    }

    /// Reassembles a `CompressedBlock` from an encoding and payload bytes,
    /// e.g. after reading an ECB back from an NVM frame.
    ///
    /// Returns `None` if the payload length does not match the encoding.
    pub fn from_parts(encoding: Encoding, payload: &[u8]) -> Option<Self> {
        if payload.len() == encoding.compressed_size() as usize {
            let mut inline = [0u8; BLOCK_SIZE];
            // payload.len() == compressed_size() <= 64 (checked above).
            inline[..payload.len()].copy_from_slice(payload);
            Some(CompressedBlock {
                encoding,
                payload: inline,
            })
        } else {
            None
        }
    }
}

/// Extended-compressed-block size for a CB of `cb_size` bytes: the CB plus
/// 4 CE bits plus 11 SECDED bits, i.e. `cb_size + 2` whole bytes.
pub(crate) fn ecb_size(cb_size: u8) -> u8 {
    cb_size + 2
}

/// The modified BDI compressor (Table I).
///
/// Stateless; `Compressor` exists as a type so callers can later swap in a
/// different compression mechanism — the paper notes the insertion policies
/// are orthogonal to the compressor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Compressor;

/// The B8 encodings indexed by `delta_width - 1`.
const B8_BY_WIDTH: [Encoding; 7] = [
    Encoding::B8D1,
    Encoding::B8D2,
    Encoding::B8D3,
    Encoding::B8D4,
    Encoding::B8D5,
    Encoding::B8D6,
    Encoding::B8D7,
];

/// The B4 encodings indexed by `delta_width - 1`.
const B4_BY_WIDTH: [Encoding; 3] = [Encoding::B4D1, Encoding::B4D2, Encoding::B4D3];

impl Compressor {
    /// Creates a compressor.
    pub fn new() -> Self {
        Compressor
    }

    /// Compresses a block, choosing the smallest applicable encoding.
    ///
    /// The encoding comes from [`probe`](Self::probe); this method only adds
    /// the payload materialization, writing base and deltas straight into
    /// the inline buffer.
    pub fn compress(&self, block: &Block) -> CompressedBlock {
        let encoding = self.probe(block.bytes());
        let mut payload = [0u8; BLOCK_SIZE];
        match encoding {
            Encoding::Zeros => {}
            Encoding::Repeated => payload[..8].copy_from_slice(&block.bytes()[..8]),
            Encoding::Uncompressed => payload.copy_from_slice(block.bytes()),
            e => encode_base_delta(e, block, &mut payload),
        }
        CompressedBlock { encoding, payload }
    }

    /// Returns only the compressed size in bytes — the fast path used by the
    /// insertion engine, which needs the size before deciding where (and
    /// whether) to materialize the compressed payload.
    pub fn compressed_size(&self, block: &Block) -> u8 {
        self.probe(block.bytes()).compressed_size()
    }

    /// Chooses the minimum-size encoding that can represent `block`.
    pub fn best_encoding(&self, block: &Block) -> Encoding {
        self.probe(block.bytes())
    }

    /// The one-pass size probe: determines the best encoding from the raw
    /// bytes alone, without materializing a payload.
    ///
    /// A single sweep over the eight 64-bit lanes computes everything every
    /// encoding's applicability test needs — the OR of all lanes (zero
    /// check), whether every lane equals lane 0 (repeated check), and the
    /// min/max signed delta against lane 0 for the 8-, 4-, and 2-byte
    /// groupings (the narrower lanes are carved out of the same loaded
    /// words). The minimal delta width per base follows from the ranges, and
    /// because Table I sizes are pairwise distinct the smallest applicable
    /// encoding is unique, so this equals the exhaustive per-encoding
    /// search (proven by property test).
    pub fn probe(&self, bytes: &[u8; BLOCK_SIZE]) -> Encoding {
        let mut lanes = [0u64; 8];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u64::from_le_bytes(le_bytes(bytes, i * 8));
        }

        let first = lanes[0];
        let base8 = first as i64;
        let base4 = i64::from(first as u32 as i32);
        let base2 = i64::from(first as u16 as i16);

        let mut any_bits = 0u64;
        let mut repeated = true;
        let (mut min8, mut max8) = (0i64, 0i64);
        let (mut min4, mut max4) = (0i64, 0i64);
        let (mut min2, mut max2) = (0i64, 0i64);

        for (i, &lane) in lanes.iter().enumerate() {
            any_bits |= lane;
            if i > 0 {
                repeated &= lane == first;
                let d = (lane as i64).wrapping_sub(base8);
                min8 = min8.min(d);
                max8 = max8.max(d);
            }
            for j in 0..2 {
                if i == 0 && j == 0 {
                    continue;
                }
                let d = i64::from((lane >> (32 * j)) as u32 as i32) - base4;
                min4 = min4.min(d);
                max4 = max4.max(d);
            }
            for j in 0..4 {
                if i == 0 && j == 0 {
                    continue;
                }
                let d = i64::from((lane >> (16 * j)) as u16 as i16) - base2;
                min2 = min2.min(d);
                max2 = max2.max(d);
            }
        }

        if any_bits == 0 {
            return Encoding::Zeros;
        }

        let mut best = Encoding::Uncompressed;
        if repeated {
            best = smaller(best, Encoding::Repeated);
        }
        let d8 = min_delta_width(min8, max8);
        if d8 <= 7 {
            // d8 in 1..=7, so the index is in 0..=6.
            best = smaller(best, B8_BY_WIDTH[usize::from(d8) - 1]);
        }
        let d4 = min_delta_width(min4, max4);
        if d4 <= 3 {
            // d4 in 1..=3, so the index is in 0..=2.
            best = smaller(best, B4_BY_WIDTH[usize::from(d4) - 1]);
        }
        if min_delta_width(min2, max2) == 1 {
            best = smaller(best, Encoding::B2D1);
        }
        best
    }

    /// The compressed size in bytes straight from the raw block bytes — the
    /// probe's headline number: `probe_size(b) == compress(b).size()` for
    /// every block, with no payload materialized.
    pub fn probe_size(&self, bytes: &[u8; BLOCK_SIZE]) -> u8 {
        self.probe(bytes).compressed_size()
    }
}

/// The smaller-CB of two encodings (sizes are distinct, so no tie exists).
fn smaller(a: Encoding, b: Encoding) -> Encoding {
    if b.compressed_size() < a.compressed_size() {
        b
    } else {
        a
    }
}

/// Smallest signed byte width (1..=8) whose two's-complement range
/// `[-(1 << (8w - 1)), (1 << (8w - 1)) - 1]` contains `[min, max]`.
fn min_delta_width(min: i64, max: i64) -> u8 {
    let mut w = 1u8;
    while w < 8 {
        let hi = (1i64 << (8 * w - 1)) - 1;
        if min >= -hi - 1 && max <= hi {
            break;
        }
        w += 1;
    }
    w
}

/// Writes `base || deltas` for a base/delta encoding into `out` without any
/// intermediate lane buffer: each lane is read from the block bytes, its
/// delta computed, and the truncated little-endian bytes stored directly.
fn encode_base_delta(encoding: Encoding, block: &Block, out: &mut [u8; BLOCK_SIZE]) {
    let (Some(base_w), Some(delta_w)) = (encoding.base_width(), encoding.delta_width()) else {
        debug_assert!(false, "encode_base_delta only sees base/delta encodings");
        return;
    };
    let (base_w, delta_w) = (base_w as usize, delta_w as usize);
    let bytes = block.bytes();
    // base_w <= 8 <= BLOCK_SIZE, the length of both buffers.
    out[..base_w].copy_from_slice(&bytes[..base_w]);
    let base = read_lane(bytes, 0, base_w);
    let mut off = base_w;
    for lane in 1..BLOCK_SIZE / base_w {
        let d = read_lane(bytes, lane, base_w).wrapping_sub(base);
        // The payload fits the block: off + delta_w <= CB size <= BLOCK_SIZE.
        out[off..off + delta_w].copy_from_slice(&d.to_le_bytes()[..delta_w]);
        off += delta_w;
    }
}

/// Reads lane `lane` of width `width` from `bytes`, sign-extended to i64.
fn read_lane(bytes: &[u8; BLOCK_SIZE], lane: usize, width: usize) -> i64 {
    let off = lane * width;
    match width {
        8 => i64::from_le_bytes(le_bytes(bytes, off)),
        4 => i64::from(i32::from_le_bytes(le_bytes(bytes, off))),
        2 => i64::from(i16::from_le_bytes(le_bytes(bytes, off))),
        _ => {
            debug_assert!(false, "lane widths are 2, 4, or 8");
            0
        }
    }
}

fn decompress_base_delta(encoding: Encoding, payload: &[u8]) -> Block {
    let (Some(base_w), Some(delta_w)) = (encoding.base_width(), encoding.delta_width()) else {
        debug_assert!(
            false,
            "decompress_base_delta only sees base/delta encodings"
        );
        return Block::zeroed();
    };
    let (base_w, delta_w) = (base_w as usize, delta_w as usize);
    let n_lanes = BLOCK_SIZE / base_w;

    let mut base_bytes = [0u8; 8];
    base_bytes[..base_w].copy_from_slice(&payload[..base_w]);
    // Sign-extend the base to i64 according to its width.
    let base = match base_w {
        4 => i64::from(u32::from_le_bytes(le_bytes(&base_bytes, 0)) as i32),
        2 => i64::from(u16::from_le_bytes(le_bytes(&base_bytes, 0)) as i16),
        w => {
            debug_assert_eq!(w, 8, "base widths are 2, 4, or 8");
            u64::from_le_bytes(base_bytes) as i64
        }
    };

    let mut lanes = [0i64; BLOCK_SIZE / 2];
    lanes[0] = base;
    let mut off = base_w;
    // n_lanes = BLOCK_SIZE / base_w <= BLOCK_SIZE / 2 == lanes.len().
    for lane in lanes[1..n_lanes].iter_mut() {
        let mut d_bytes = [0u8; 8];
        d_bytes[..delta_w].copy_from_slice(&payload[off..off + delta_w]);
        // Sign-extend the delta.
        let shift = 64 - 8 * delta_w;
        let d = (i64::from_le_bytes(d_bytes) << shift) >> shift;
        *lane = base.wrapping_add(d);
        off += delta_w;
    }

    match base_w {
        // from_fn's i < lane count (8/16/32) <= lanes.len() == 32.
        8 => Block::from_u64_lanes(core::array::from_fn(|i| lanes[i] as u64)),
        4 => Block::from_u32_lanes(core::array::from_fn(|i| lanes[i] as u32)),
        w => {
            debug_assert_eq!(w, 2, "base widths are 2, 4, or 8");
            Block::from_u16_lanes(core::array::from_fn(|i| lanes[i] as u16))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(block: Block) -> Encoding {
        let cb = Compressor::new().compress(&block);
        assert_eq!(cb.decompress(), block, "round trip failed for {block:?}");
        cb.encoding()
    }

    /// The pre-probe oracle: per-encoding applicability by re-scanning the
    /// block, exactly as the original multi-pass implementation did. The
    /// probe must agree with an exhaustive minimum-size search over this.
    fn applies(encoding: Encoding, block: &Block) -> bool {
        fn fits<const N: usize>(lanes: &[i64; N], min: i64, max: i64) -> bool {
            let base = lanes[0];
            lanes[1..]
                .iter()
                .all(|&v| matches!(v.wrapping_sub(base), d if d >= min && d <= max))
        }
        match encoding {
            Encoding::Uncompressed => true,
            Encoding::Zeros => block.is_zero(),
            Encoding::Repeated => {
                let lanes = block.u64_lanes();
                lanes.iter().all(|&v| v == lanes[0])
            }
            e => {
                let delta = i64::from(e.delta_width().unwrap());
                let max = (1i64 << (8 * delta - 1)) - 1;
                let min = -(1i64 << (8 * delta - 1));
                match e.base_width().unwrap() {
                    8 => fits::<8>(&block.u64_lanes().map(|v| v as i64), min, max),
                    4 => fits::<16>(&block.u32_lanes().map(|v| i64::from(v as i32)), min, max),
                    2 => fits::<32>(&block.u16_lanes().map(|v| i64::from(v as i16)), min, max),
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Exhaustive minimum-size search over the oracle.
    fn oracle_best(block: &Block) -> Encoding {
        let mut best = Encoding::Uncompressed;
        for e in Encoding::ALL {
            if e.compressed_size() < best.compressed_size() && applies(e, block) {
                best = e;
            }
        }
        best
    }

    #[test]
    fn probe_agrees_with_exhaustive_search() {
        let c = Compressor::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for round in 0..2000u64 {
            let mut bytes = [0u8; 64];
            for b in bytes.iter_mut() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
            // Alternate raw noise with clustered variants that actually
            // exercise the base/delta encodings.
            if round % 2 == 1 {
                let spread = 1u64 << (round % 60);
                let base = x;
                let lanes: [u64; 8] =
                    core::array::from_fn(|i| base.wrapping_add((x >> (i * 7)) % spread.max(2)));
                bytes = *Block::from_u64_lanes(lanes).bytes();
            }
            let block = Block::new(bytes);
            assert_eq!(
                c.probe(block.bytes()),
                oracle_best(&block),
                "probe diverged on {block:?}"
            );
        }
        // The structured corners.
        for block in [
            Block::zeroed(),
            Block::from_u64_lanes([u64::MAX; 8]),
            Block::from_u64_lanes([i64::MIN as u64, i64::MAX as u64, 0, 1, 2, 3, 4, 5]),
        ] {
            assert_eq!(c.probe(block.bytes()), oracle_best(&block));
        }
    }

    #[test]
    fn zeros() {
        assert_eq!(round_trip(Block::zeroed()), Encoding::Zeros);
    }

    #[test]
    fn repeated() {
        assert_eq!(
            round_trip(Block::from_u64_lanes([0xdead_beef_cafe_f00d; 8])),
            Encoding::Repeated
        );
    }

    #[test]
    fn b8d1() {
        let b = Block::from_u64_lanes([1000, 1001, 999, 1127, 1000 - 128, 1000, 1000, 1000]);
        assert_eq!(round_trip(b), Encoding::B8D1);
    }

    #[test]
    fn b8d1_boundary_deltas() {
        // +127 and -128 are the extreme 1-byte deltas; +128 must spill to Δ2.
        let inside = Block::from_u64_lanes([0, 127, (-128i64) as u64, 0, 0, 0, 0, 0]);
        // Note: the all-zeros block would win; shift base so Zeros/Rep do not apply.
        let inside = Block::from_u64_lanes(inside.u64_lanes().map(|v| v.wrapping_add(5000)));
        assert_eq!(round_trip(inside), Encoding::B8D1);

        let outside = Block::from_u64_lanes([5000, 5128, 5000, 5001, 5002, 5003, 5004, 5005]);
        assert_eq!(round_trip(outside), Encoding::B8D2);
    }

    #[test]
    fn all_delta_widths_reachable() {
        // Construct blocks whose max delta needs exactly d bytes.
        for (d, expect) in [
            (1u32, Encoding::B8D1),
            (2, Encoding::B8D2),
            (3, Encoding::B8D3),
            (4, Encoding::B8D4),
            (5, Encoding::B8D5),
            (6, Encoding::B8D6),
            (7, Encoding::B8D7),
        ] {
            let delta = 1u64 << (8 * (d - 1) + 6); // needs d bytes signed
            let base = 0x0100_0000_0000_0000u64;
            let mut lanes = [base; 8];
            lanes[3] = base + delta;
            // Vary another lane so Repeated never applies.
            lanes[5] = base + 1;
            assert_eq!(
                round_trip(Block::from_u64_lanes(lanes)),
                expect,
                "delta width {d}"
            );
        }
    }

    #[test]
    fn b4_variants() {
        // Perturb the *high* u32 of a u64 lane so the B8 groupings see a huge
        // delta and the B4 encodings genuinely win on size.
        let mut lanes = [0x7000_0000u32; 16];
        lanes[3] = 0x7000_0001;
        assert_eq!(round_trip(Block::from_u32_lanes(lanes)), Encoding::B4D1);
        lanes[3] = 0x7000_4000;
        assert_eq!(round_trip(Block::from_u32_lanes(lanes)), Encoding::B4D2);
        lanes[3] = 0x7040_0000;
        assert_eq!(round_trip(Block::from_u32_lanes(lanes)), Encoding::B4D3);
    }

    #[test]
    fn b2d1() {
        let mut lanes = [0x4000u16; 32];
        lanes[7] = 0x4001;
        lanes[8] = 0x3FFF;
        assert_eq!(round_trip(Block::from_u16_lanes(lanes)), Encoding::B2D1);
    }

    #[test]
    fn incompressible() {
        // High-entropy-looking bytes: wide 2-, 4-, and 8-byte spreads.
        let mut bytes = [0u8; 64];
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for b in bytes.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 33) as u8;
        }
        assert_eq!(round_trip(Block::new(bytes)), Encoding::Uncompressed);
    }

    #[test]
    fn smaller_encoding_preferred() {
        // A block that is both B4Δ1 (19 B) and B8Δ4-compatible must pick B4Δ1.
        let lanes = [0x10u32; 16];
        let mut lanes = lanes;
        lanes[1] = 0x11;
        let cb = Compressor::new().compress(&Block::from_u32_lanes(lanes));
        assert_eq!(cb.encoding(), Encoding::B4D1);
    }

    #[test]
    fn ecb_adds_two_bytes() {
        let cb = Compressor::new().compress(&Block::zeroed());
        assert_eq!(cb.ecb_size(), cb.size() + 2);
    }

    #[test]
    fn from_parts_validates_length() {
        assert!(CompressedBlock::from_parts(Encoding::Zeros, &[0]).is_some());
        assert!(CompressedBlock::from_parts(Encoding::Zeros, &[0, 0]).is_none());
    }

    #[test]
    fn payload_length_matches_encoding() {
        let c = Compressor::new();
        let cb = c.compress(&Block::from_u64_lanes([5000, 5001, 5002, 5003, 5, 6, 7, 8]));
        assert_eq!(cb.payload().len(), cb.size() as usize);
    }

    #[test]
    fn compressed_size_matches_compress() {
        let c = Compressor::new();
        for seed in 0..50u64 {
            let mut bytes = [0u8; 64];
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            for b in bytes.iter_mut() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
            let blk = Block::new(bytes);
            assert_eq!(c.compressed_size(&blk), c.compress(&blk).size());
            assert_eq!(c.probe_size(blk.bytes()), c.compress(&blk).size());
        }
    }

    #[test]
    fn min_delta_width_boundaries() {
        assert_eq!(min_delta_width(0, 0), 1);
        assert_eq!(min_delta_width(-128, 127), 1);
        assert_eq!(min_delta_width(-129, 0), 2);
        assert_eq!(min_delta_width(0, 128), 2);
        assert_eq!(min_delta_width(i64::MIN, i64::MAX), 8);
        for w in 1..=7u8 {
            let hi = (1i64 << (8 * w - 1)) - 1;
            assert_eq!(min_delta_width(-hi - 1, hi), w);
            assert_eq!(min_delta_width(0, hi + 1), w + 1);
        }
    }

    #[test]
    fn negative_base_values() {
        // Lanes interpreted as signed: base near i64::MIN with small spread.
        let base = i64::MIN as u64 + 10;
        let mut lanes = [base; 8];
        lanes[1] = base + 3;
        assert_eq!(round_trip(Block::from_u64_lanes(lanes)), Encoding::B8D1);
    }
}
