//! The BDI compressor and decompressor.
//!
//! Hardware evaluates all compression encodings in parallel and picks the
//! smallest applicable one (§II-B); this software model does the same
//! sequentially. Decompression is exact: `decompress(compress(b)) == b` for
//! every 64-byte block.

use crate::block::{Block, BLOCK_SIZE};
use crate::encoding::Encoding;

/// A compressed cache block: the chosen encoding plus its payload bytes.
///
/// The payload layout is `base || delta_1 || ... || delta_{lanes-1}` with
/// little-endian bases and little-endian two's-complement deltas, matching
/// [`Encoding::compressed_size`] exactly.
///
/// # Example
///
/// ```
/// use hllc_compress::{Block, Compressor};
///
/// let block = Block::from_u64_lanes([100, 101, 102, 103, 104, 105, 106, 107]);
/// let cb = Compressor::new().compress(&block);
/// assert_eq!(cb.size(), 15); // B8Δ1
/// assert_eq!(cb.decompress(), block);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedBlock {
    encoding: Encoding,
    payload: Vec<u8>,
}

impl CompressedBlock {
    /// The encoding this block was compressed with.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Compressed block (CB) size in bytes.
    pub fn size(&self) -> u8 {
        self.encoding.compressed_size()
    }

    /// Extended compressed block (ECB) size in bytes: CB plus the 4-bit CE
    /// and the 11-bit SECDED code, rounded up to whole bytes (§III-B1).
    pub fn ecb_size(&self) -> u8 {
        ecb_size(self.encoding.compressed_size())
    }

    /// The raw payload bytes (base followed by deltas).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Reconstructs the original 64-byte block.
    pub fn decompress(&self) -> Block {
        match self.encoding {
            Encoding::Zeros => Block::zeroed(),
            Encoding::Repeated => {
                let v = u64::from_le_bytes(self.payload[..8].try_into().unwrap());
                Block::from_u64_lanes([v; 8])
            }
            Encoding::Uncompressed => {
                let mut bytes = [0u8; BLOCK_SIZE];
                bytes.copy_from_slice(&self.payload);
                Block::new(bytes)
            }
            e => decompress_base_delta(e, &self.payload),
        }
    }

    /// Reassembles a `CompressedBlock` from an encoding and payload bytes,
    /// e.g. after reading an ECB back from an NVM frame.
    ///
    /// Returns `None` if the payload length does not match the encoding.
    pub fn from_parts(encoding: Encoding, payload: Vec<u8>) -> Option<Self> {
        if payload.len() == encoding.compressed_size() as usize {
            Some(CompressedBlock { encoding, payload })
        } else {
            None
        }
    }
}

/// Extended-compressed-block size for a CB of `cb_size` bytes: the CB plus
/// 4 CE bits plus 11 SECDED bits, i.e. `cb_size + 2` whole bytes.
pub(crate) fn ecb_size(cb_size: u8) -> u8 {
    cb_size + 2
}

/// The modified BDI compressor (Table I).
///
/// Stateless; `Compressor` exists as a type so callers can later swap in a
/// different compression mechanism — the paper notes the insertion policies
/// are orthogonal to the compressor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Compressor;

impl Compressor {
    /// Creates a compressor.
    pub fn new() -> Self {
        Compressor
    }

    /// Compresses a block, choosing the smallest applicable encoding.
    pub fn compress(&self, block: &Block) -> CompressedBlock {
        let encoding = self.best_encoding(block);
        let payload = match encoding {
            Encoding::Zeros => vec![0u8],
            Encoding::Repeated => block.bytes()[..8].to_vec(),
            Encoding::Uncompressed => block.bytes().to_vec(),
            e => encode_base_delta(e, block),
        };
        debug_assert_eq!(payload.len(), encoding.compressed_size() as usize);
        CompressedBlock { encoding, payload }
    }

    /// Returns only the compressed size in bytes — the fast path used by the
    /// insertion engine, which needs the size before deciding where (and
    /// whether) to materialize the compressed payload.
    pub fn compressed_size(&self, block: &Block) -> u8 {
        self.best_encoding(block).compressed_size()
    }

    /// Chooses the minimum-size encoding that can represent `block`.
    pub fn best_encoding(&self, block: &Block) -> Encoding {
        let mut best = Encoding::Uncompressed;
        let mut best_size = best.compressed_size();
        for e in Encoding::ALL {
            if e.compressed_size() < best_size && applies(e, block) {
                best = e;
                best_size = e.compressed_size();
            }
        }
        best
    }
}

/// True if `encoding` can losslessly represent `block`.
fn applies(encoding: Encoding, block: &Block) -> bool {
    match encoding {
        Encoding::Uncompressed => true,
        Encoding::Zeros => block.is_zero(),
        Encoding::Repeated => {
            let lanes = block.u64_lanes();
            lanes.iter().all(|&v| v == lanes[0])
        }
        e => {
            let delta = i64::from(e.delta_width().unwrap());
            // Signed range representable in `delta` bytes.
            let max = (1i64 << (8 * delta - 1)) - 1;
            let min = -(1i64 << (8 * delta - 1));
            match e.base_width().unwrap() {
                8 => fits::<8>(&block.u64_lanes().map(|v| v as i64), min, max),
                4 => fits::<16>(&block.u32_lanes().map(|v| i64::from(v as i32)), min, max),
                2 => fits::<32>(&block.u16_lanes().map(|v| i64::from(v as i16)), min, max),
                _ => unreachable!(),
            }
        }
    }
}

/// True if every lane's signed difference from the first lane lies in
/// `[min, max]`.
fn fits<const N: usize>(lanes: &[i64; N], min: i64, max: i64) -> bool {
    let base = lanes[0];
    lanes[1..]
        .iter()
        .all(|&v| matches!(v.wrapping_sub(base), d if d >= min && d <= max))
}

fn encode_base_delta(encoding: Encoding, block: &Block) -> Vec<u8> {
    let base_w = encoding.base_width().unwrap() as usize;
    let delta_w = encoding.delta_width().unwrap() as usize;
    let lanes: Vec<i64> = match base_w {
        8 => block.u64_lanes().iter().map(|&v| v as i64).collect(),
        4 => block
            .u32_lanes()
            .iter()
            .map(|&v| i64::from(v as i32))
            .collect(),
        2 => block
            .u16_lanes()
            .iter()
            .map(|&v| i64::from(v as i16))
            .collect(),
        _ => unreachable!(),
    };
    let mut payload = Vec::with_capacity(encoding.compressed_size() as usize);
    payload.extend_from_slice(&block.bytes()[..base_w]);
    let base = lanes[0];
    for &v in &lanes[1..] {
        let d = v.wrapping_sub(base);
        payload.extend_from_slice(&d.to_le_bytes()[..delta_w]);
    }
    payload
}

fn decompress_base_delta(encoding: Encoding, payload: &[u8]) -> Block {
    let base_w = encoding.base_width().unwrap() as usize;
    let delta_w = encoding.delta_width().unwrap() as usize;
    let n_lanes = 64 / base_w;

    let mut base_bytes = [0u8; 8];
    base_bytes[..base_w].copy_from_slice(&payload[..base_w]);
    // Sign-extend the base to i64 according to its width.
    let base = match base_w {
        8 => u64::from_le_bytes(base_bytes) as i64,
        4 => i64::from(u32::from_le_bytes(base_bytes[..4].try_into().unwrap()) as i32),
        2 => i64::from(u16::from_le_bytes(base_bytes[..2].try_into().unwrap()) as i16),
        _ => unreachable!(),
    };

    let mut lanes = vec![base];
    let mut off = base_w;
    for _ in 1..n_lanes {
        let mut d_bytes = [0u8; 8];
        d_bytes[..delta_w].copy_from_slice(&payload[off..off + delta_w]);
        // Sign-extend the delta.
        let mut d = i64::from_le_bytes(d_bytes);
        let shift = 64 - 8 * delta_w;
        d = (d << shift) >> shift;
        lanes.push(base.wrapping_add(d));
        off += delta_w;
    }

    match base_w {
        8 => Block::from_u64_lanes(core::array::from_fn(|i| lanes[i] as u64)),
        4 => Block::from_u32_lanes(core::array::from_fn(|i| lanes[i] as u32)),
        2 => Block::from_u16_lanes(core::array::from_fn(|i| lanes[i] as u16)),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(block: Block) -> Encoding {
        let cb = Compressor::new().compress(&block);
        assert_eq!(cb.decompress(), block, "round trip failed for {block:?}");
        cb.encoding()
    }

    #[test]
    fn zeros() {
        assert_eq!(round_trip(Block::zeroed()), Encoding::Zeros);
    }

    #[test]
    fn repeated() {
        assert_eq!(
            round_trip(Block::from_u64_lanes([0xdead_beef_cafe_f00d; 8])),
            Encoding::Repeated
        );
    }

    #[test]
    fn b8d1() {
        let b = Block::from_u64_lanes([1000, 1001, 999, 1127, 1000 - 128, 1000, 1000, 1000]);
        assert_eq!(round_trip(b), Encoding::B8D1);
    }

    #[test]
    fn b8d1_boundary_deltas() {
        // +127 and -128 are the extreme 1-byte deltas; +128 must spill to Δ2.
        let inside = Block::from_u64_lanes([0, 127, (-128i64) as u64, 0, 0, 0, 0, 0]);
        // Note: the all-zeros block would win; shift base so Zeros/Rep do not apply.
        let inside = Block::from_u64_lanes(inside.u64_lanes().map(|v| v.wrapping_add(5000)));
        assert_eq!(round_trip(inside), Encoding::B8D1);

        let outside = Block::from_u64_lanes([5000, 5128, 5000, 5001, 5002, 5003, 5004, 5005]);
        assert_eq!(round_trip(outside), Encoding::B8D2);
    }

    #[test]
    fn all_delta_widths_reachable() {
        // Construct blocks whose max delta needs exactly d bytes.
        for (d, expect) in [
            (1u32, Encoding::B8D1),
            (2, Encoding::B8D2),
            (3, Encoding::B8D3),
            (4, Encoding::B8D4),
            (5, Encoding::B8D5),
            (6, Encoding::B8D6),
            (7, Encoding::B8D7),
        ] {
            let delta = 1u64 << (8 * (d - 1) + 6); // needs d bytes signed
            let base = 0x0100_0000_0000_0000u64;
            let mut lanes = [base; 8];
            lanes[3] = base + delta;
            // Vary another lane so Repeated never applies.
            lanes[5] = base + 1;
            assert_eq!(
                round_trip(Block::from_u64_lanes(lanes)),
                expect,
                "delta width {d}"
            );
        }
    }

    #[test]
    fn b4_variants() {
        // Perturb the *high* u32 of a u64 lane so the B8 groupings see a huge
        // delta and the B4 encodings genuinely win on size.
        let mut lanes = [0x7000_0000u32; 16];
        lanes[3] = 0x7000_0001;
        assert_eq!(round_trip(Block::from_u32_lanes(lanes)), Encoding::B4D1);
        lanes[3] = 0x7000_4000;
        assert_eq!(round_trip(Block::from_u32_lanes(lanes)), Encoding::B4D2);
        lanes[3] = 0x7040_0000;
        assert_eq!(round_trip(Block::from_u32_lanes(lanes)), Encoding::B4D3);
    }

    #[test]
    fn b2d1() {
        let mut lanes = [0x4000u16; 32];
        lanes[7] = 0x4001;
        lanes[8] = 0x3FFF;
        assert_eq!(round_trip(Block::from_u16_lanes(lanes)), Encoding::B2D1);
    }

    #[test]
    fn incompressible() {
        // High-entropy-looking bytes: wide 2-, 4-, and 8-byte spreads.
        let mut bytes = [0u8; 64];
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for b in bytes.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 33) as u8;
        }
        assert_eq!(round_trip(Block::new(bytes)), Encoding::Uncompressed);
    }

    #[test]
    fn smaller_encoding_preferred() {
        // A block that is both B4Δ1 (19 B) and B8Δ4-compatible must pick B4Δ1.
        let lanes = [0x10u32; 16];
        let mut lanes = lanes;
        lanes[1] = 0x11;
        let cb = Compressor::new().compress(&Block::from_u32_lanes(lanes));
        assert_eq!(cb.encoding(), Encoding::B4D1);
    }

    #[test]
    fn ecb_adds_two_bytes() {
        let cb = Compressor::new().compress(&Block::zeroed());
        assert_eq!(cb.ecb_size(), cb.size() + 2);
    }

    #[test]
    fn from_parts_validates_length() {
        assert!(CompressedBlock::from_parts(Encoding::Zeros, vec![0]).is_some());
        assert!(CompressedBlock::from_parts(Encoding::Zeros, vec![0, 0]).is_none());
    }

    #[test]
    fn compressed_size_matches_compress() {
        let c = Compressor::new();
        for seed in 0..50u64 {
            let mut bytes = [0u8; 64];
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            for b in bytes.iter_mut() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
            let blk = Block::new(bytes);
            assert_eq!(c.compressed_size(&blk), c.compress(&blk).size());
        }
    }

    #[test]
    fn negative_base_values() {
        // Lanes interpreted as signed: base near i64::MIN with small spread.
        let base = i64::MIN as u64 + 10;
        let mut lanes = [base; 8];
        lanes[1] = base + 3;
        assert_eq!(round_trip(Block::from_u64_lanes(lanes)), Encoding::B8D1);
    }
}
