//! Modified Base-Delta-Immediate (BDI) cache-block compression.
//!
//! This crate implements the compression substrate of the hybrid LLC
//! described in *Compression-Aware and Performance-Efficient Insertion
//! Policies for Long-Lasting Hybrid LLCs* (HPCA 2023), §II-B and Table I.
//!
//! Unlike the original BDI proposal, the variant used by the paper keeps
//! *low-compression-ratio* (LCR) encodings — encodings whose compressed size
//! exceeds 37 bytes — because in a byte-level fault-tolerant NVM cache even a
//! block compressed to 57 bytes can be placed into a partially worn-out
//! frame that can no longer hold an uncompressed block.
//!
//! # Example
//!
//! ```
//! use hllc_compress::{Block, Compressor, Encoding};
//!
//! let block = Block::zeroed();
//! let compressed = Compressor::new().compress(&block);
//! assert_eq!(compressed.encoding(), Encoding::Zeros);
//! assert_eq!(compressed.size(), 1);
//! assert_eq!(compressed.decompress(), block);
//! ```

mod analysis;
mod bdi;
mod block;
mod encoding;
mod fpc;

pub use analysis::{classify, BlockClass, ClassCounts, CompressionStats};
pub use bdi::{CompressedBlock, Compressor};
pub use block::{Block, BLOCK_SIZE};
pub use encoding::{Encoding, CE_BITS, LCR_THRESHOLD};
pub use fpc::{CompressorKind, Fpc, FpcPattern};
