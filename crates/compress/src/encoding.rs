//! Compression encodings (CE) — Table I of the paper.
//!
//! A Compression Encoding is a particular combination of base width and
//! delta width that a 64-byte block may be compacted with. The CE identifier
//! travels with the compressed block (4 bits) so the decompressor can be
//! selected on a read.

use std::fmt;

/// Number of bits used to encode the CE alongside the compressed block.
pub const CE_BITS: u32 = 4;

/// Boundary between high- and low-compression-ratio blocks (§II-B).
///
/// Blocks whose compressed size is `<= LCR_THRESHOLD` bytes are HCR
/// ("high compression ratio"); larger-but-still-compressed blocks are LCR.
pub const LCR_THRESHOLD: u8 = 37;

/// A compression encoding from the modified BDI table (Table I).
///
/// Naming: `B<base>D<delta>` compacts the block into one `<base>`-byte base
/// value plus one signed `<delta>`-byte difference for each remaining lane.
///
/// # Example
///
/// ```
/// use hllc_compress::Encoding;
///
/// assert_eq!(Encoding::B8D1.compressed_size(), 15);
/// assert!(Encoding::B8D1.is_hcr());
/// assert!(Encoding::B8D7.is_lcr());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Encoding {
    /// All 64 bytes are zero; 1-byte representation.
    Zeros = 0,
    /// Eight repetitions of the same 8-byte value.
    Repeated = 1,
    /// 8-byte base, 1-byte deltas.
    B8D1 = 2,
    /// 8-byte base, 2-byte deltas.
    B8D2 = 3,
    /// 8-byte base, 3-byte deltas.
    B8D3 = 4,
    /// 8-byte base, 4-byte deltas.
    B8D4 = 5,
    /// 8-byte base, 5-byte deltas (LCR).
    B8D5 = 6,
    /// 8-byte base, 6-byte deltas (LCR).
    B8D6 = 7,
    /// 8-byte base, 7-byte deltas (LCR).
    B8D7 = 8,
    /// 4-byte base, 1-byte deltas.
    B4D1 = 9,
    /// 4-byte base, 2-byte deltas.
    B4D2 = 10,
    /// 4-byte base, 3-byte deltas (LCR).
    B4D3 = 11,
    /// 2-byte base, 1-byte deltas.
    B2D1 = 12,
    /// Incompressible; stored verbatim.
    Uncompressed = 13,
}

impl Encoding {
    /// All encodings, in CE-identifier order.
    pub const ALL: [Encoding; 14] = [
        Encoding::Zeros,
        Encoding::Repeated,
        Encoding::B8D1,
        Encoding::B8D2,
        Encoding::B8D3,
        Encoding::B8D4,
        Encoding::B8D5,
        Encoding::B8D6,
        Encoding::B8D7,
        Encoding::B4D1,
        Encoding::B4D2,
        Encoding::B4D3,
        Encoding::B2D1,
        Encoding::Uncompressed,
    ];

    /// Base width in bytes, or `None` for the special encodings.
    pub fn base_width(self) -> Option<u8> {
        match self {
            Encoding::Zeros | Encoding::Repeated | Encoding::Uncompressed => None,
            Encoding::B8D1
            | Encoding::B8D2
            | Encoding::B8D3
            | Encoding::B8D4
            | Encoding::B8D5
            | Encoding::B8D6
            | Encoding::B8D7 => Some(8),
            Encoding::B4D1 | Encoding::B4D2 | Encoding::B4D3 => Some(4),
            Encoding::B2D1 => Some(2),
        }
    }

    /// Delta width in bytes, or `None` for the special encodings.
    pub fn delta_width(self) -> Option<u8> {
        match self {
            Encoding::Zeros | Encoding::Repeated | Encoding::Uncompressed => None,
            Encoding::B8D1 | Encoding::B4D1 | Encoding::B2D1 => Some(1),
            Encoding::B8D2 | Encoding::B4D2 => Some(2),
            Encoding::B8D3 | Encoding::B4D3 => Some(3),
            Encoding::B8D4 => Some(4),
            Encoding::B8D5 => Some(5),
            Encoding::B8D6 => Some(6),
            Encoding::B8D7 => Some(7),
        }
    }

    /// Number of lanes the 64-byte block is split into, for base/delta
    /// encodings (8, 16, or 32).
    pub fn lanes(self) -> Option<u8> {
        self.base_width().map(|b| (64 / b as usize) as u8)
    }

    /// Compressed block (CB) size in bytes.
    ///
    /// The base is stored once; deltas are stored for the remaining
    /// `lanes - 1` lanes: `size = base + (lanes - 1) * delta`.
    pub fn compressed_size(self) -> u8 {
        match self {
            Encoding::Zeros => 1,
            Encoding::Repeated => 8,
            Encoding::Uncompressed => 64,
            _ => {
                let (Some(base), Some(delta), Some(lanes)) =
                    (self.base_width(), self.delta_width(), self.lanes())
                else {
                    debug_assert!(false, "base/delta encoding without widths");
                    return 64;
                };
                base + (lanes - 1) * delta
            }
        }
    }

    /// True if the encoding yields a high-compression-ratio block
    /// (compressed size `<=` [`LCR_THRESHOLD`]).
    pub fn is_hcr(self) -> bool {
        self != Encoding::Uncompressed && self.compressed_size() <= LCR_THRESHOLD
    }

    /// True if the encoding yields a low-compression-ratio block: compressed
    /// relative to 64 B, but above [`LCR_THRESHOLD`]. Marked with a star in
    /// Table I; the original BDI discards them but this design keeps them.
    pub fn is_lcr(self) -> bool {
        self != Encoding::Uncompressed && self.compressed_size() > LCR_THRESHOLD
    }

    /// The 4-bit CE identifier stored alongside the compressed block.
    pub fn ce(self) -> u8 {
        self as u8
    }

    /// Reconstructs an encoding from its 4-bit CE identifier.
    ///
    /// Returns `None` for identifiers outside the table (14 and 15 are
    /// reserved).
    pub fn from_ce(ce: u8) -> Option<Encoding> {
        Encoding::ALL.get(ce as usize).copied()
    }
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Encoding::Zeros => "Z",
            Encoding::Repeated => "R",
            Encoding::B8D1 => "B8Δ1",
            Encoding::B8D2 => "B8Δ2",
            Encoding::B8D3 => "B8Δ3",
            Encoding::B8D4 => "B8Δ4",
            Encoding::B8D5 => "B8Δ5",
            Encoding::B8D6 => "B8Δ6",
            Encoding::B8D7 => "B8Δ7",
            Encoding::B4D1 => "B4Δ1",
            Encoding::B4D2 => "B4Δ2",
            Encoding::B4D3 => "B4Δ3",
            Encoding::B2D1 => "B2Δ1",
            Encoding::Uncompressed => "U",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes() {
        assert_eq!(Encoding::Zeros.compressed_size(), 1);
        assert_eq!(Encoding::Repeated.compressed_size(), 8);
        assert_eq!(Encoding::B8D1.compressed_size(), 15);
        assert_eq!(Encoding::B8D2.compressed_size(), 22);
        assert_eq!(Encoding::B8D3.compressed_size(), 29);
        assert_eq!(Encoding::B8D4.compressed_size(), 36);
        assert_eq!(Encoding::B8D5.compressed_size(), 43);
        assert_eq!(Encoding::B8D6.compressed_size(), 50);
        assert_eq!(Encoding::B8D7.compressed_size(), 57);
        assert_eq!(Encoding::B4D1.compressed_size(), 19);
        assert_eq!(Encoding::B4D2.compressed_size(), 34);
        assert_eq!(Encoding::B4D3.compressed_size(), 49);
        assert_eq!(Encoding::B2D1.compressed_size(), 33);
        assert_eq!(Encoding::Uncompressed.compressed_size(), 64);
    }

    #[test]
    fn hcr_lcr_partition() {
        // Exactly the >37-byte compressible encodings are LCR (paper §II-B).
        let lcr: Vec<Encoding> = Encoding::ALL
            .iter()
            .copied()
            .filter(|e| e.is_lcr())
            .collect();
        assert_eq!(
            lcr,
            vec![
                Encoding::B8D5,
                Encoding::B8D6,
                Encoding::B8D7,
                Encoding::B4D3
            ]
        );
        // Uncompressed is neither HCR nor LCR.
        assert!(!Encoding::Uncompressed.is_hcr());
        assert!(!Encoding::Uncompressed.is_lcr());
    }

    #[test]
    fn b8d7_fits_one_faulty_byte_frame() {
        // §III-B: a frame with one disabled byte can still hold B8Δ7 blocks.
        // ECB = CB + 2 bytes of CE+SECDED; 66-byte frame with 65 live bytes.
        assert!(Encoding::B8D7.compressed_size() + 2 <= 65);
    }

    #[test]
    fn ce_round_trip() {
        for e in Encoding::ALL {
            assert_eq!(Encoding::from_ce(e.ce()), Some(e));
            assert!(u32::from(e.ce()) < (1 << CE_BITS));
        }
        assert_eq!(Encoding::from_ce(14), None);
        assert_eq!(Encoding::from_ce(15), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Encoding::B8D7.to_string(), "B8Δ7");
        assert_eq!(Encoding::Zeros.to_string(), "Z");
        assert_eq!(Encoding::Uncompressed.to_string(), "U");
    }

    #[test]
    fn sizes_strictly_below_uncompressed() {
        for e in Encoding::ALL {
            if e != Encoding::Uncompressed {
                assert!(e.compressed_size() < 64, "{e} does not compress");
            }
        }
    }
}
