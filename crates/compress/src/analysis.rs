//! Block-population compressibility analysis (Figure 2 of the paper).

use crate::bdi::{CompressedBlock, Compressor};
use crate::block::Block;
use crate::encoding::{Encoding, LCR_THRESHOLD};

/// Coarse compressibility class of a block, as plotted in Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockClass {
    /// Compressed size `<= 37` bytes.
    Hcr,
    /// Compressed, but size `> 37` bytes.
    Lcr,
    /// Not compressible by any encoding in the table.
    Incompressible,
}

/// Classifies a compressed size (in bytes) into HCR / LCR / incompressible.
///
/// # Example
///
/// ```
/// use hllc_compress::{classify, BlockClass};
///
/// assert_eq!(classify(15), BlockClass::Hcr);
/// assert_eq!(classify(57), BlockClass::Lcr);
/// assert_eq!(classify(64), BlockClass::Incompressible);
/// ```
pub fn classify(compressed_size: u8) -> BlockClass {
    if compressed_size >= 64 {
        BlockClass::Incompressible
    } else if compressed_size <= LCR_THRESHOLD {
        BlockClass::Hcr
    } else {
        BlockClass::Lcr
    }
}

/// Counts of blocks per compressibility class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Blocks compressed to `<= 37` bytes.
    pub hcr: u64,
    /// Blocks compressed to 38–63 bytes.
    pub lcr: u64,
    /// Incompressible (64-byte) blocks.
    pub incompressible: u64,
}

impl ClassCounts {
    /// Total number of classified blocks.
    pub fn total(&self) -> u64 {
        self.hcr + self.lcr + self.incompressible
    }

    /// Fraction of blocks in `class`, or 0.0 if no blocks were counted.
    pub fn fraction(&self, class: BlockClass) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let n = match class {
            BlockClass::Hcr => self.hcr,
            BlockClass::Lcr => self.lcr,
            BlockClass::Incompressible => self.incompressible,
        };
        n as f64 / t as f64
    }

    /// Fraction of blocks compressible at all (HCR + LCR).
    pub fn compressible_fraction(&self) -> f64 {
        self.fraction(BlockClass::Hcr) + self.fraction(BlockClass::Lcr)
    }

    /// Records one block of the given class.
    pub fn record(&mut self, class: BlockClass) {
        match class {
            BlockClass::Hcr => self.hcr += 1,
            BlockClass::Lcr => self.lcr += 1,
            BlockClass::Incompressible => self.incompressible += 1,
        }
    }
}

/// Streaming compression statistics over a population of blocks.
///
/// Feed blocks (or pre-compressed blocks) in; read per-encoding histograms,
/// class fractions, and the mean compression ratio out. This is the engine
/// behind the Figure 2 harness.
///
/// # Example
///
/// ```
/// use hllc_compress::{Block, CompressionStats};
///
/// let mut stats = CompressionStats::new();
/// stats.observe(&Block::zeroed());
/// assert_eq!(stats.class_counts().hcr, 1);
/// assert!(stats.mean_compression_ratio() > 60.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompressionStats {
    compressor: Compressor,
    per_encoding: [u64; Encoding::ALL.len()],
    classes: ClassCounts,
    total_uncompressed_bytes: u64,
    total_compressed_bytes: u64,
}

impl CompressionStats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compresses `block` and records the outcome.
    pub fn observe(&mut self, block: &Block) -> Encoding {
        let cb = self.compressor.compress(block);
        self.observe_compressed(&cb);
        cb.encoding()
    }

    /// Records an already-compressed block.
    pub fn observe_compressed(&mut self, cb: &CompressedBlock) {
        let e = cb.encoding();
        // ce() < 16 == per_encoding.len() (4-bit encoding id).
        self.per_encoding[e.ce() as usize] += 1;
        self.classes.record(classify(cb.size()));
        self.total_uncompressed_bytes += 64;
        self.total_compressed_bytes += u64::from(cb.size());
    }

    /// Number of blocks observed with `encoding`.
    pub fn count(&self, encoding: Encoding) -> u64 {
        // ce() < 16 == per_encoding.len().
        self.per_encoding[encoding.ce() as usize]
    }

    /// Per-class counts.
    pub fn class_counts(&self) -> ClassCounts {
        self.classes
    }

    /// Total number of observed blocks.
    pub fn total(&self) -> u64 {
        self.classes.total()
    }

    /// Mean compression ratio (uncompressed bytes / compressed bytes);
    /// 1.0 when everything is incompressible, 0.0 when empty.
    pub fn mean_compression_ratio(&self) -> f64 {
        if self.total_compressed_bytes == 0 {
            return 0.0;
        }
        self.total_uncompressed_bytes as f64 / self.total_compressed_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_boundaries() {
        assert_eq!(classify(1), BlockClass::Hcr);
        assert_eq!(classify(37), BlockClass::Hcr);
        assert_eq!(classify(38), BlockClass::Lcr);
        assert_eq!(classify(63), BlockClass::Lcr);
        assert_eq!(classify(64), BlockClass::Incompressible);
    }

    #[test]
    fn class_counts_fractions() {
        let mut c = ClassCounts::default();
        for _ in 0..49 {
            c.record(BlockClass::Hcr);
        }
        for _ in 0..29 {
            c.record(BlockClass::Lcr);
        }
        for _ in 0..22 {
            c.record(BlockClass::Incompressible);
        }
        // The paper's average population: 49% HCR, 29% LCR, 78% compressible.
        assert!((c.fraction(BlockClass::Hcr) - 0.49).abs() < 1e-9);
        assert!((c.compressible_fraction() - 0.78).abs() < 1e-9);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let c = ClassCounts::default();
        assert_eq!(c.fraction(BlockClass::Hcr), 0.0);
        assert_eq!(CompressionStats::new().mean_compression_ratio(), 0.0);
    }

    #[test]
    fn stats_track_encodings() {
        let mut s = CompressionStats::new();
        s.observe(&Block::zeroed());
        s.observe(&Block::from_u64_lanes([42; 8]));
        assert_eq!(s.count(Encoding::Zeros), 1);
        assert_eq!(s.count(Encoding::Repeated), 1);
        assert_eq!(s.total(), 2);
        // 128 raw bytes vs 1 + 8 compressed.
        assert!((s.mean_compression_ratio() - 128.0 / 9.0).abs() < 1e-9);
    }
}
