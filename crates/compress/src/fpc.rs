//! Frequent Pattern Compression (FPC) — an alternative block compressor.
//!
//! The paper's insertion policies are orthogonal to the compression
//! mechanism (§II-B); this module provides Alameldeen & Wood's FPC so the
//! claim can be exercised: each 32-bit word is encoded with a 3-bit prefix
//! selecting one of eight patterns. Sizes here include the prefixes,
//! rounded up to whole bytes.

use crate::block::Block;

/// FPC word patterns, in prefix order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpcPattern {
    /// 000 — all-zero word (data bits: 0).
    Zero,
    /// 001 — 4-bit sign-extended immediate.
    Imm4,
    /// 010 — 8-bit sign-extended immediate.
    Imm8,
    /// 011 — 16-bit sign-extended immediate.
    Imm16,
    /// 100 — halfword padded with a zero halfword (low half zero).
    PaddedHalf,
    /// 101 — two halfwords, each a sign-extended byte.
    TwoSignedBytes,
    /// 110 — word consisting of four repeated bytes.
    RepeatedBytes,
    /// 111 — uncompressed 32-bit word.
    Uncompressed,
}

impl FpcPattern {
    /// Data bits stored for a word of this pattern (the 3-bit prefix is
    /// charged separately).
    pub fn data_bits(self) -> u32 {
        match self {
            FpcPattern::Zero => 0,
            FpcPattern::Imm4 => 4,
            FpcPattern::Imm8 => 8,
            FpcPattern::Imm16 => 16,
            FpcPattern::PaddedHalf => 16,
            FpcPattern::TwoSignedBytes => 16,
            FpcPattern::RepeatedBytes => 8,
            FpcPattern::Uncompressed => 32,
        }
    }

    /// Classifies one 32-bit word.
    pub fn classify(word: u32) -> FpcPattern {
        let signed = word as i32;
        if word == 0 {
            FpcPattern::Zero
        } else if (-8..8).contains(&signed) {
            FpcPattern::Imm4
        } else if (-128..128).contains(&signed) {
            FpcPattern::Imm8
        } else if (-32_768..32_768).contains(&signed) {
            FpcPattern::Imm16
        } else if word & 0xFFFF == 0 {
            FpcPattern::PaddedHalf
        } else if Self::halves_are_signed_bytes(word) {
            FpcPattern::TwoSignedBytes
        } else if Self::bytes_repeat(word) {
            FpcPattern::RepeatedBytes
        } else {
            FpcPattern::Uncompressed
        }
    }

    fn halves_are_signed_bytes(word: u32) -> bool {
        let lo = (word & 0xFFFF) as u16 as i16;
        let hi = (word >> 16) as u16 as i16;
        (-128..128).contains(&lo) && (-128..128).contains(&hi)
    }

    fn bytes_repeat(word: u32) -> bool {
        let b = word & 0xFF;
        word == b * 0x0101_0101
    }
}

/// The FPC compressor (size model).
///
/// # Example
///
/// ```
/// use hllc_compress::{Block, Fpc};
///
/// let fpc = Fpc::new();
/// assert_eq!(fpc.compressed_size(&Block::zeroed()), 6); // 16 × 3-bit prefixes
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fpc;

impl Fpc {
    /// Creates an FPC compressor.
    pub fn new() -> Self {
        Fpc
    }

    /// Compressed size in bytes (1–64): 16 prefixes plus per-word data
    /// bits, rounded up, capped at the uncompressed size.
    pub fn compressed_size(&self, block: &Block) -> u8 {
        let mut bits = 0u32;
        for word in block.u32_lanes() {
            bits += 3 + FpcPattern::classify(word).data_bits();
        }
        (bits.div_ceil(8) as u8).min(64)
    }

    /// Per-word pattern breakdown (diagnostics and tests).
    pub fn patterns(&self, block: &Block) -> [FpcPattern; 16] {
        let lanes = block.u32_lanes();
        // from_fn's i < 16 == lanes.len().
        core::array::from_fn(|i| FpcPattern::classify(lanes[i]))
    }
}

/// Which compression mechanism a data model sizes blocks with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CompressorKind {
    /// The paper's modified Base-Delta-Immediate (Table I).
    #[default]
    Bdi,
    /// Frequent Pattern Compression (ablation).
    Fpc,
}

impl CompressorKind {
    /// Compressed size of a block under this mechanism.
    pub fn compressed_size(self, block: &Block) -> u8 {
        match self {
            CompressorKind::Bdi => crate::bdi::Compressor::new().compressed_size(block),
            CompressorKind::Fpc => Fpc::new().compressed_size(block),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CompressorKind::Bdi => "BDI",
            CompressorKind::Fpc => "FPC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_classification() {
        assert_eq!(FpcPattern::classify(0), FpcPattern::Zero);
        assert_eq!(FpcPattern::classify(7), FpcPattern::Imm4);
        assert_eq!(FpcPattern::classify(0xFFFF_FFF8), FpcPattern::Imm4); // -8
        assert_eq!(FpcPattern::classify(100), FpcPattern::Imm8);
        assert_eq!(FpcPattern::classify(30_000), FpcPattern::Imm16);
        assert_eq!(FpcPattern::classify(0xFFFF_8000), FpcPattern::Imm16); // -32768
        assert_eq!(FpcPattern::classify(0x1234_0000), FpcPattern::PaddedHalf);
        assert_eq!(
            FpcPattern::classify(0x0042_0017),
            FpcPattern::TwoSignedBytes
        );
        assert_eq!(FpcPattern::classify(0xABAB_ABAB), FpcPattern::RepeatedBytes);
        assert_eq!(FpcPattern::classify(0x1234_5678), FpcPattern::Uncompressed);
    }

    #[test]
    fn zero_block_size() {
        // 16 words × 3 prefix bits = 48 bits = 6 bytes.
        assert_eq!(Fpc::new().compressed_size(&Block::zeroed()), 6);
    }

    #[test]
    fn incompressible_block_capped_at_64() {
        let lanes: [u32; 16] = core::array::from_fn(|i| 0x1234_5678u32.wrapping_mul(i as u32 | 1));
        let b = Block::from_u32_lanes(lanes);
        // 16 × (3 + 32) = 560 bits = 70 bytes, capped to 64.
        assert_eq!(Fpc::new().compressed_size(&b), 64);
    }

    #[test]
    fn small_immediates_compress_well() {
        let lanes: [u32; 16] = core::array::from_fn(|i| i as u32 % 8);
        let b = Block::from_u32_lanes(lanes);
        // Mixed Zero/Imm4 words: 16×3 prefix + (<=15)×4 data < 16 bytes.
        assert!(Fpc::new().compressed_size(&b) <= 14);
    }

    #[test]
    fn kind_dispatch() {
        let zeros = Block::zeroed();
        assert_eq!(CompressorKind::Bdi.compressed_size(&zeros), 1);
        assert_eq!(CompressorKind::Fpc.compressed_size(&zeros), 6);
        assert_eq!(CompressorKind::Bdi.name(), "BDI");
        assert_eq!(CompressorKind::Fpc.name(), "FPC");
    }

    #[test]
    fn patterns_reported_per_word() {
        let mut lanes = [0u32; 16];
        lanes[3] = 0x1234_5678;
        let p = Fpc::new().patterns(&Block::from_u32_lanes(lanes));
        assert_eq!(p[0], FpcPattern::Zero);
        assert_eq!(p[3], FpcPattern::Uncompressed);
    }
}
