//! Fixed-size cache block payloads.

use std::fmt;

/// Size of a cache block in bytes, uniform across all cache levels
/// (Table IV: "64 B data block in all levels").
pub const BLOCK_SIZE: usize = 64;

/// A 64-byte cache block payload.
///
/// `Block` is the unit the compressor operates on. It is deliberately a thin
/// newtype over `[u8; 64]` so the simulator can synthesize payloads cheaply
/// and the compressor can reinterpret them as 8-, 4-, or 2-byte lanes.
///
/// # Example
///
/// ```
/// use hllc_compress::Block;
///
/// let b = Block::from_u64_lanes([7; 8]);
/// assert_eq!(b.u64_lanes()[3], 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block([u8; BLOCK_SIZE]);

/// Copies `N` bytes out of `src` starting at `at` — a panic-free stand-in
/// for `src[at..at + N].try_into().unwrap()`. The zip reads short (and the
/// debug assertion fires) if the caller's offset were ever out of range.
#[inline]
pub(crate) fn le_bytes<const N: usize>(src: &[u8], at: usize) -> [u8; N] {
    debug_assert!(at + N <= src.len());
    let mut out = [0u8; N];
    for (o, b) in out.iter_mut().zip(src.iter().skip(at)) {
        *o = *b;
    }
    out
}

impl Block {
    /// Creates a block of all zero bytes.
    pub fn zeroed() -> Self {
        Block([0; BLOCK_SIZE])
    }

    /// Creates a block from raw bytes.
    pub fn new(bytes: [u8; BLOCK_SIZE]) -> Self {
        Block(bytes)
    }

    /// Builds a block from eight little-endian 64-bit lanes.
    pub fn from_u64_lanes(lanes: [u64; 8]) -> Self {
        let mut bytes = [0u8; BLOCK_SIZE];
        for (i, lane) in lanes.iter().enumerate() {
            // (i + 1) * 8 <= 8 * 8 == BLOCK_SIZE.
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&lane.to_le_bytes());
        }
        Block(bytes)
    }

    /// Builds a block from sixteen little-endian 32-bit lanes.
    pub fn from_u32_lanes(lanes: [u32; 16]) -> Self {
        let mut bytes = [0u8; BLOCK_SIZE];
        for (i, lane) in lanes.iter().enumerate() {
            // (i + 1) * 4 <= 16 * 4 == BLOCK_SIZE.
            bytes[i * 4..(i + 1) * 4].copy_from_slice(&lane.to_le_bytes());
        }
        Block(bytes)
    }

    /// Builds a block from thirty-two little-endian 16-bit lanes.
    pub fn from_u16_lanes(lanes: [u16; 32]) -> Self {
        let mut bytes = [0u8; BLOCK_SIZE];
        for (i, lane) in lanes.iter().enumerate() {
            // (i + 1) * 2 <= 32 * 2 == BLOCK_SIZE.
            bytes[i * 2..(i + 1) * 2].copy_from_slice(&lane.to_le_bytes());
        }
        Block(bytes)
    }

    /// Returns the raw bytes of the block.
    pub fn bytes(&self) -> &[u8; BLOCK_SIZE] {
        &self.0
    }

    /// Returns the raw bytes of the block mutably.
    pub fn bytes_mut(&mut self) -> &mut [u8; BLOCK_SIZE] {
        &mut self.0
    }

    /// Reinterprets the block as eight little-endian 64-bit lanes.
    pub fn u64_lanes(&self) -> [u64; 8] {
        let mut lanes = [0u64; 8];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u64::from_le_bytes(le_bytes(&self.0, i * 8));
        }
        lanes
    }

    /// Reinterprets the block as sixteen little-endian 32-bit lanes.
    pub fn u32_lanes(&self) -> [u32; 16] {
        let mut lanes = [0u32; 16];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u32::from_le_bytes(le_bytes(&self.0, i * 4));
        }
        lanes
    }

    /// Reinterprets the block as thirty-two little-endian 16-bit lanes.
    pub fn u16_lanes(&self) -> [u16; 32] {
        let mut lanes = [0u16; 32];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u16::from_le_bytes(le_bytes(&self.0, i * 2));
        }
        lanes
    }

    /// True iff every byte in the block is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::zeroed()
    }
}

impl From<[u8; BLOCK_SIZE]> for Block {
    fn from(bytes: [u8; BLOCK_SIZE]) -> Self {
        Block(bytes)
    }
}

impl AsRef<[u8]> for Block {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block(")?;
        for chunk in self.0.chunks(8) {
            for b in chunk {
                write!(f, "{b:02x}")?;
            }
            write!(f, " ")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero() {
        assert!(Block::zeroed().is_zero());
        assert!(Block::default().is_zero());
    }

    #[test]
    fn lane_round_trips() {
        let b = Block::from_u64_lanes([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(b.u64_lanes(), [1, 2, 3, 4, 5, 6, 7, 8]);

        let lanes32: [u32; 16] = core::array::from_fn(|i| i as u32 * 1000);
        assert_eq!(Block::from_u32_lanes(lanes32).u32_lanes(), lanes32);

        let lanes16: [u16; 32] = core::array::from_fn(|i| i as u16 * 99);
        assert_eq!(Block::from_u16_lanes(lanes16).u16_lanes(), lanes16);
    }

    #[test]
    fn nonzero_detected() {
        let mut b = Block::zeroed();
        b.bytes_mut()[63] = 1;
        assert!(!b.is_zero());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Block::zeroed()).is_empty());
    }
}
