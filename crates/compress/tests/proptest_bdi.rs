//! Property-based tests for the BDI compressor.

use hllc_compress::{classify, Block, BlockClass, CompressedBlock, Compressor, Encoding};
use proptest::prelude::*;

fn arb_block() -> impl Strategy<Value = Block> {
    any::<[u8; 64]>().prop_map(Block::new)
}

/// Blocks biased toward compressibility: a base lane plus bounded jitter.
fn arb_clustered_block() -> impl Strategy<Value = Block> {
    (
        any::<u64>(),
        prop::collection::vec(-1_000_000i64..1_000_000, 8),
    )
        .prop_map(|(base, jit)| {
            let lanes: [u64; 8] = core::array::from_fn(|i| base.wrapping_add(jit[i] as u64));
            Block::from_u64_lanes(lanes)
        })
}

/// Blocks spanning every encoding family in Table I: zeros, repeated, each
/// B8Δd width, each B4Δd width, B2Δ1, and incompressible noise — so the
/// probe/compress equivalence and round-trip properties are exercised
/// across all encodings, not just whatever random bytes happen to hit.
fn arb_any_encoding_block() -> impl Strategy<Value = Block> {
    let b8 = (
        1u32..=7,
        any::<u64>(),
        prop::collection::vec(any::<i64>(), 8),
    )
        .prop_map(|(d, base, jit)| {
            let bound = (1i64 << (8 * d - 1)) - 1;
            let lanes: [u64; 8] = core::array::from_fn(|i| {
                if i == 0 {
                    base
                } else {
                    base.wrapping_add((jit[i] % (bound + 1)) as u64)
                }
            });
            Block::from_u64_lanes(lanes)
        });
    let b4 = (
        1u32..=3,
        any::<u32>(),
        prop::collection::vec(any::<i64>(), 16),
    )
        .prop_map(|(d, base, jit)| {
            let bound = (1i64 << (8 * d - 1)) - 1;
            let lanes: [u32; 16] = core::array::from_fn(|i| {
                if i == 0 {
                    base
                } else {
                    base.wrapping_add((jit[i] % (bound + 1)) as u32)
                }
            });
            Block::from_u32_lanes(lanes)
        });
    let b2 = (any::<u64>(), prop::collection::vec(-128i64..=127, 32)).prop_map(|(base, jit)| {
        let base = base as u16;
        let lanes: [u16; 32] = core::array::from_fn(|i| {
            if i == 0 {
                base
            } else {
                base.wrapping_add(jit[i] as u16)
            }
        });
        Block::from_u16_lanes(lanes)
    });
    prop_oneof![
        Just(Block::zeroed()),
        any::<u64>().prop_map(|v| Block::from_u64_lanes([v; 8])),
        b8,
        b4,
        b2,
        arb_block(),
    ]
}

proptest! {
    /// Any 64-byte block round-trips exactly.
    #[test]
    fn round_trip_random(block in arb_block()) {
        let cb = Compressor::new().compress(&block);
        prop_assert_eq!(cb.decompress(), block);
    }

    /// Clustered (compressible-leaning) blocks round-trip exactly and never
    /// report a size larger than 64.
    #[test]
    fn round_trip_clustered(block in arb_clustered_block()) {
        let c = Compressor::new();
        let cb = c.compress(&block);
        prop_assert_eq!(cb.decompress(), block);
        prop_assert!(cb.size() <= 64);
    }

    /// `compressed_size` always agrees with the full compression pass.
    #[test]
    fn size_fast_path_agrees(block in arb_block()) {
        let c = Compressor::new();
        prop_assert_eq!(c.compressed_size(&block), c.compress(&block).size());
    }

    /// The one-pass probe computes the same size as the data path, and the
    /// data path round-trips, across blocks spanning every Table I encoding.
    #[test]
    fn probe_matches_compress_across_all_encodings(block in arb_any_encoding_block()) {
        let c = Compressor::new();
        let cb = c.compress(&block);
        prop_assert_eq!(c.probe_size(block.bytes()), cb.size());
        prop_assert_eq!(c.probe(block.bytes()), cb.encoding());
        prop_assert_eq!(cb.decompress(), block);
    }

    /// The chosen encoding is minimal: no other applicable encoding is
    /// strictly smaller (verified by attempting an exact round-trip through
    /// every smaller encoding's payload layout).
    #[test]
    fn chosen_encoding_is_minimal(block in arb_clustered_block()) {
        let c = Compressor::new();
        let chosen = c.compress(&block);
        for e in Encoding::ALL {
            if e.compressed_size() < chosen.size() {
                // Re-encode through `e` by constructing a candidate payload;
                // if it decompresses to the original, minimality is violated.
                // We use the public API only: compress must have chosen it.
                // Constructing payloads for arbitrary e is internal, so we
                // assert indirectly: a block that *is* representable by a
                // smaller encoding would have been compressed to it. We check
                // the two cheap universal cases explicitly.
                match e {
                    Encoding::Zeros => prop_assert!(!block.is_zero()),
                    Encoding::Repeated => {
                        let lanes = block.u64_lanes();
                        prop_assert!(!lanes.iter().all(|&v| v == lanes[0]));
                    }
                    _ => {}
                }
            }
        }
    }

    /// Payload serialization round-trips through `from_parts`.
    #[test]
    fn parts_round_trip(block in arb_block()) {
        let cb = Compressor::new().compress(&block);
        let rebuilt = CompressedBlock::from_parts(cb.encoding(), cb.payload()).unwrap();
        prop_assert_eq!(rebuilt.decompress(), block);
    }

    /// Classification is consistent with encoding flags.
    #[test]
    fn classes_consistent(block in arb_block()) {
        let cb = Compressor::new().compress(&block);
        let class = classify(cb.size());
        match class {
            BlockClass::Hcr => prop_assert!(cb.encoding().is_hcr()),
            BlockClass::Lcr => prop_assert!(cb.encoding().is_lcr()),
            BlockClass::Incompressible => {
                prop_assert_eq!(cb.encoding(), Encoding::Uncompressed)
            }
        }
    }
}
