//! # hllc-config
//!
//! The declarative experiment layer: every figure of the paper is a point
//! in one configuration space — Table IV geometry × policy × workload ×
//! endurance × sensitivity knobs — and [`ExperimentSpec`] is that point as
//! one owned, validated, serializable value. `hllc run`, `record`,
//! `replay`, `sweep`, and `forecast` all construct their systems through
//! it, recordings embed the resolved spec in the trace header so a replay
//! reconstructs the exact system, and the named [presets](ExperimentSpec::preset)
//! pin the paper's configurations (including the Fig. 10b/11a/11b/11c
//! sensitivity variants) in one place.
//!
//! The JSON schema mirrors the struct nesting (`system` / `hybrid` /
//! `workload` / `run` / `forecast` sections); parsing is strict — unknown
//! or missing fields are structured [`SpecError`]s naming the offending
//! field, not silent defaults.

use std::collections::BTreeMap;

use hllc_compress::CompressorKind;
use hllc_core::{HybridConfig, Policy};
use hllc_sim::{DramConfig, LlcGeometry, SystemConfig};
use serde_json::{Number, Value};

/// LLC sets of the paper's full-scale 4 MB configuration. Workload
/// footprints scale relative to this (see [`footprint_scale`]).
pub const PAPER_SETS: usize = 4096;

/// Width of the coherence-directory sharer mask: the hard ceiling on
/// `system.cores`.
pub const MAX_CORES: usize = 16;

/// Width of the per-set way mask: the hard ceiling on
/// `sram_ways + nvm_ways`.
pub const MAX_WAYS: usize = 16;

/// Footprint scale implied by an LLC set count ([`PAPER_SETS`] = 1.0).
/// The single home of the sets-relative-to-4096 derivation.
pub fn footprint_scale(sets: usize) -> f64 {
    sets as f64 / PAPER_SETS as f64
}

/// System geometry and timing knobs (Table IV and its sensitivity axes).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemSpec {
    /// Number of cores (1..=[`MAX_CORES`]).
    pub cores: usize,
    /// L1 data-cache sets.
    pub l1_sets: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Private L2 sets.
    pub l2_sets: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Shared LLC sets (power of two).
    pub llc_sets: usize,
    /// SRAM ways per LLC set.
    pub sram_ways: usize,
    /// NVM ways per LLC set.
    pub nvm_ways: usize,
    /// NVM data-array read-latency scale (Fig. 11b runs ×1.5).
    pub nvm_latency_factor: f64,
    /// Model banked open-page DRAM instead of the flat memory latency.
    pub dram: bool,
}

/// Hybrid-LLC policy and endurance knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct HybridSpec {
    /// Insertion-policy label, parsed by [`Policy::parse`].
    pub policy: String,
    /// Mean bitcell endurance (writes).
    pub endurance_mean: f64,
    /// Coefficient of variation of the endurance distribution.
    pub endurance_cv: f64,
    /// Set Dueling epoch length in cycles.
    pub epoch_cycles: u64,
    /// Inter-epoch smoothing of the Set Dueling counters (0 = raw).
    pub dueling_smoothing: f64,
    /// Compressor label: `bdi` or `fpc`.
    pub compressor: String,
}

/// Workload binding: which Table V mix, at what seed. The footprint scale
/// is not stored — it derives from `system.llc_sets` (see
/// [`ExperimentSpec::footprint_scale`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Table V mix number, 1-based (as printed by `hllc mixes`).
    pub mix: usize,
    /// Base seed.
    pub seed: u64,
}

/// Single-phase run recipe.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Warm-up, as a fraction of `cycles`, driven before statistics reset.
    pub warmup_fraction: f64,
    /// Measured cycle budget.
    pub cycles: f64,
}

/// Aging-forecast recipe (the alternating simulate/predict procedure).
#[derive(Clone, Debug, PartialEq)]
pub struct ForecastSpec {
    /// Warm-up cycles per simulation phase.
    pub warmup_cycles: f64,
    /// Measured cycles per simulation phase.
    pub measure_cycles: f64,
    /// Maximum capacity fraction lost per prediction step.
    pub capacity_step: f64,
    /// Hard cap on a prediction step, in seconds.
    pub max_step_seconds: f64,
    /// Stop when NVM capacity reaches this fraction.
    pub stop_capacity: f64,
    /// Hard cap on the number of simulate/predict iterations.
    pub max_steps: usize,
}

/// One experiment, fully parameterized. See the crate docs.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    /// Human-readable label (preset name, or whatever the file says).
    pub name: String,
    /// System geometry and timing.
    pub system: SystemSpec,
    /// LLC policy and endurance knobs.
    pub hybrid: HybridSpec,
    /// Workload binding.
    pub workload: WorkloadSpec,
    /// Single-phase run recipe.
    pub run: RunSpec,
    /// Forecast recipe.
    pub forecast: ForecastSpec,
}

/// Structured specification errors. Every variant names what went wrong
/// precisely enough to fix the spec file without reading source code.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// A field is present but its value is out of range or malformed.
    Invalid {
        /// Dotted path of the offending field, e.g. `system.llc_sets`.
        field: String,
        /// What constraint was violated.
        message: String,
    },
    /// The JSON names a field the schema does not have (typo protection).
    UnknownField {
        /// Dotted path of the unrecognized field.
        field: String,
    },
    /// A required field is absent.
    MissingField {
        /// Dotted path of the absent field.
        field: String,
    },
    /// The file is not valid JSON at all.
    Json {
        /// Parser message with byte offset.
        message: String,
    },
    /// Reading or writing the spec file failed.
    Io {
        /// The path involved.
        path: String,
        /// The I/O error text.
        message: String,
    },
    /// [`ExperimentSpec::preset`] was asked for a name it does not know.
    UnknownPreset {
        /// The requested name.
        name: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Invalid { field, message } => {
                write!(f, "invalid spec field '{field}': {message}")
            }
            SpecError::UnknownField { field } => write!(f, "unknown spec field '{field}'"),
            SpecError::MissingField { field } => write!(f, "missing spec field '{field}'"),
            SpecError::Json { message } => write!(f, "spec is not valid JSON: {message}"),
            SpecError::Io { path, message } => write!(f, "spec file {path}: {message}"),
            SpecError::UnknownPreset { name } => write!(
                f,
                "unknown preset '{name}' (available: {})",
                ExperimentSpec::preset_names().join(", ")
            ),
        }
    }
}

impl std::error::Error for SpecError {}

fn invalid(field: &str, message: impl Into<String>) -> SpecError {
    SpecError::Invalid {
        field: field.to_string(),
        message: message.into(),
    }
}

impl ExperimentSpec {
    // ------------------------------------------------------------------
    // Presets
    // ------------------------------------------------------------------

    /// The names [`ExperimentSpec::preset`] accepts.
    pub fn preset_names() -> Vec<&'static str> {
        vec![
            "paper",
            "scaled",
            "waysplit-3-13",
            "l2-doubled",
            "nvm-latency-x1.5",
            "equal-cost-10w",
        ]
    }

    /// A named preset:
    ///
    /// | name | configuration |
    /// |------|---------------|
    /// | `paper` | Table IV full scale: 4096 sets, μ = 10¹⁰ endurance, 2 M-cycle epochs |
    /// | `scaled` | 1/8-set system for fast runs: 512 sets, μ = 10⁸, 100 k-cycle epochs, 0.6 dueling smoothing (the default of every CLI command) |
    /// | `waysplit-3-13` | `scaled` with 3 SRAM + 13 NVM ways (Fig. 10b) |
    /// | `l2-doubled` | `scaled` with the private L2 doubled (Fig. 11a) |
    /// | `nvm-latency-x1.5` | `scaled` with the NVM data array ×1.5 slower (Fig. 11b) |
    /// | `equal-cost-10w` | `scaled` with 10 NVM ways — the fault-map storage equalization of Fig. 11c |
    pub fn preset(name: &str) -> Result<ExperimentSpec, SpecError> {
        let spec = match name {
            "paper" => ExperimentSpec {
                name: "paper".into(),
                system: SystemSpec {
                    cores: 4,
                    l1_sets: 128,
                    l1_ways: 4,
                    l2_sets: 128,
                    l2_ways: 16,
                    llc_sets: 4096,
                    sram_ways: 4,
                    nvm_ways: 12,
                    nvm_latency_factor: 1.0,
                    dram: false,
                },
                hybrid: HybridSpec {
                    policy: "cp_sd".into(),
                    endurance_mean: 1e10,
                    endurance_cv: 0.2,
                    epoch_cycles: 2_000_000,
                    dueling_smoothing: 0.0,
                    compressor: "bdi".into(),
                },
                workload: WorkloadSpec { mix: 1, seed: 42 },
                run: RunSpec {
                    warmup_fraction: 0.2,
                    cycles: 2.0e6,
                },
                forecast: ForecastSpec {
                    warmup_cycles: 2.0e6,
                    measure_cycles: 8.0e6,
                    capacity_step: 0.025,
                    max_step_seconds: 120.0 * 86_400.0,
                    stop_capacity: 0.5,
                    max_steps: 60,
                },
            },
            "scaled" => ExperimentSpec {
                name: "scaled".into(),
                system: SystemSpec {
                    cores: 4,
                    l1_sets: 64,
                    l1_ways: 4,
                    l2_sets: 32,
                    l2_ways: 16,
                    llc_sets: 512,
                    sram_ways: 4,
                    nvm_ways: 12,
                    nvm_latency_factor: 1.0,
                    dram: false,
                },
                hybrid: HybridSpec {
                    policy: "cp_sd".into(),
                    endurance_mean: 1e8,
                    endurance_cv: 0.2,
                    epoch_cycles: 100_000,
                    dueling_smoothing: 0.6,
                    compressor: "bdi".into(),
                },
                workload: WorkloadSpec { mix: 1, seed: 42 },
                run: RunSpec {
                    warmup_fraction: 0.2,
                    cycles: 2.0e6,
                },
                forecast: ForecastSpec {
                    warmup_cycles: 4.0e5,
                    measure_cycles: 1.6e6,
                    capacity_step: 0.03,
                    max_step_seconds: 2.0 * 86_400.0,
                    stop_capacity: 0.5,
                    max_steps: 40,
                },
            },
            "waysplit-3-13" => {
                let mut s = ExperimentSpec::preset("scaled")?;
                s.name = "waysplit-3-13".into();
                s.system.sram_ways = 3;
                s.system.nvm_ways = 13;
                s
            }
            "l2-doubled" => {
                let mut s = ExperimentSpec::preset("scaled")?;
                s.name = "l2-doubled".into();
                s.system.l2_sets *= 2;
                s
            }
            "nvm-latency-x1.5" => {
                let mut s = ExperimentSpec::preset("scaled")?;
                s.name = "nvm-latency-x1.5".into();
                s.system.nvm_latency_factor = 1.5;
                s
            }
            "equal-cost-10w" => {
                let mut s = ExperimentSpec::preset("scaled")?;
                s.name = "equal-cost-10w".into();
                s.system.nvm_ways = 10;
                s
            }
            other => {
                return Err(SpecError::UnknownPreset {
                    name: other.to_string(),
                })
            }
        };
        spec.validate().expect("presets must validate");
        Ok(spec)
    }

    /// Resolves a `--spec` argument: a preset name, or a path to a JSON
    /// spec file. The result is validated.
    pub fn resolve(arg: &str) -> Result<ExperimentSpec, SpecError> {
        if Self::preset_names().contains(&arg) {
            return Self::preset(arg);
        }
        Self::load(arg)
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Checks every constraint the simulator's constructors would otherwise
    /// assert, returning a structured error naming the offending field.
    pub fn validate(&self) -> Result<(), SpecError> {
        let s = &self.system;
        if s.cores == 0 || s.cores > MAX_CORES {
            return Err(invalid(
                "system.cores",
                format!(
                    "must be 1..={MAX_CORES} (the coherence directory's sharer mask is {MAX_CORES} bits), got {}",
                    s.cores
                ),
            ));
        }
        for (field, v) in [
            ("system.l1_sets", s.l1_sets),
            ("system.l1_ways", s.l1_ways),
            ("system.l2_sets", s.l2_sets),
            ("system.l2_ways", s.l2_ways),
        ] {
            if v == 0 {
                return Err(invalid(field, "must be at least 1"));
            }
        }
        if !s.llc_sets.is_power_of_two() {
            return Err(invalid(
                "system.llc_sets",
                format!("must be a power of two, got {}", s.llc_sets),
            ));
        }
        if s.sram_ways + s.nvm_ways == 0 {
            return Err(invalid(
                "system.sram_ways",
                "the LLC needs at least one way (sram_ways + nvm_ways >= 1)",
            ));
        }
        if s.sram_ways + s.nvm_ways > MAX_WAYS {
            return Err(invalid(
                "system.nvm_ways",
                format!(
                    "sram_ways + nvm_ways must be <= {MAX_WAYS} (the per-set way mask is {MAX_WAYS} bits), got {} + {}",
                    s.sram_ways, s.nvm_ways
                ),
            ));
        }
        if !s.nvm_latency_factor.is_finite() || s.nvm_latency_factor <= 0.0 {
            return Err(invalid(
                "system.nvm_latency_factor",
                "must be a finite positive number",
            ));
        }

        let h = &self.hybrid;
        if Policy::parse(&h.policy).is_none() {
            return Err(invalid(
                "hybrid.policy",
                format!("unknown policy '{}' (try `hllc policies`)", h.policy),
            ));
        }
        if !h.endurance_mean.is_finite() || h.endurance_mean <= 0.0 {
            return Err(invalid(
                "hybrid.endurance_mean",
                "must be a finite positive number of writes",
            ));
        }
        if !h.endurance_cv.is_finite() || h.endurance_cv < 0.0 || h.endurance_cv >= 1.0 {
            return Err(invalid("hybrid.endurance_cv", "must be in 0.0..1.0"));
        }
        if h.epoch_cycles == 0 {
            return Err(invalid("hybrid.epoch_cycles", "must be at least 1"));
        }
        if !h.dueling_smoothing.is_finite()
            || h.dueling_smoothing < 0.0
            || h.dueling_smoothing >= 1.0
        {
            return Err(invalid("hybrid.dueling_smoothing", "must be in 0.0..1.0"));
        }
        if parse_compressor(&h.compressor).is_none() {
            return Err(invalid(
                "hybrid.compressor",
                format!("unknown compressor '{}' (bdi or fpc)", h.compressor),
            ));
        }

        if !(1..=10).contains(&self.workload.mix) {
            return Err(invalid(
                "workload.mix",
                format!(
                    "Table V mixes are numbered 1..=10, got {}",
                    self.workload.mix
                ),
            ));
        }

        let r = &self.run;
        if !r.warmup_fraction.is_finite() || r.warmup_fraction < 0.0 || r.warmup_fraction > 10.0 {
            return Err(invalid("run.warmup_fraction", "must be in 0.0..=10.0"));
        }
        if !r.cycles.is_finite() || r.cycles <= 0.0 {
            return Err(invalid(
                "run.cycles",
                "must be a finite positive cycle count",
            ));
        }

        let f = &self.forecast;
        for (field, v) in [
            ("forecast.warmup_cycles", f.warmup_cycles),
            ("forecast.measure_cycles", f.measure_cycles),
            ("forecast.max_step_seconds", f.max_step_seconds),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(invalid(field, "must be a finite positive number"));
            }
        }
        if !f.capacity_step.is_finite() || f.capacity_step <= 0.0 || f.capacity_step > 1.0 {
            return Err(invalid("forecast.capacity_step", "must be in 0.0..=1.0"));
        }
        if !f.stop_capacity.is_finite() || f.stop_capacity <= 0.0 || f.stop_capacity >= 1.0 {
            return Err(invalid("forecast.stop_capacity", "must be in 0.0..1.0"));
        }
        if f.max_steps == 0 {
            return Err(invalid("forecast.max_steps", "must be at least 1"));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Constructors onto the simulator's types
    // ------------------------------------------------------------------

    /// Builds the [`SystemConfig`] this spec describes. Call
    /// [`validate`](Self::validate) first; geometry constraints are not
    /// re-checked here.
    pub fn system_config(&self) -> SystemConfig {
        let s = &self.system;
        let mut cfg = SystemConfig {
            cores: s.cores,
            l1_sets: s.l1_sets,
            l1_ways: s.l1_ways,
            l2_sets: s.l2_sets,
            l2_ways: s.l2_ways,
            llc: LlcGeometry {
                sets: s.llc_sets,
                sram_ways: s.sram_ways,
                nvm_ways: s.nvm_ways,
            },
            timing: Default::default(),
            dram: s.dram.then(DramConfig::default),
        };
        if s.nvm_latency_factor != 1.0 {
            cfg = cfg.with_nvm_latency_factor(s.nvm_latency_factor);
        }
        cfg
    }

    /// The parsed insertion policy.
    ///
    /// # Panics
    ///
    /// Panics if `hybrid.policy` does not parse — validate first.
    pub fn policy(&self) -> Policy {
        Policy::parse(&self.hybrid.policy)
            .unwrap_or_else(|| panic!("unvalidated spec: bad policy '{}'", self.hybrid.policy))
    }

    /// The parsed compressor kind.
    ///
    /// # Panics
    ///
    /// Panics if `hybrid.compressor` does not parse — validate first.
    pub fn compressor(&self) -> CompressorKind {
        parse_compressor(&self.hybrid.compressor).unwrap_or_else(|| {
            panic!(
                "unvalidated spec: bad compressor '{}'",
                self.hybrid.compressor
            )
        })
    }

    /// Builds the [`HybridConfig`] this spec describes, under its own
    /// policy.
    pub fn llc_config(&self) -> HybridConfig {
        self.llc_config_for(self.policy())
    }

    /// Builds the [`HybridConfig`] this spec describes, under `policy`
    /// (the replay-under-another-policy and compare paths).
    pub fn llc_config_for(&self, policy: Policy) -> HybridConfig {
        let s = &self.system;
        let h = &self.hybrid;
        HybridConfig::new(s.llc_sets, s.sram_ways, s.nvm_ways, policy)
            .with_endurance(h.endurance_mean, h.endurance_cv)
            .with_epoch_cycles(h.epoch_cycles)
            .with_dueling_smoothing(h.dueling_smoothing)
    }

    /// Workload footprint scale implied by the LLC geometry
    /// ([`PAPER_SETS`] sets = 1.0).
    pub fn footprint_scale(&self) -> f64 {
        footprint_scale(self.system.llc_sets)
    }

    /// The 0-based index of the Table V mix (`workload.mix` is 1-based).
    pub fn mix_index(&self) -> usize {
        self.workload.mix - 1
    }

    // ------------------------------------------------------------------
    // JSON
    // ------------------------------------------------------------------

    /// Renders the spec as a JSON value with sorted keys.
    pub fn to_json(&self) -> Value {
        let obj = |pairs: Vec<(&str, Value)>| {
            Value::Object(
                pairs
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect::<BTreeMap<_, _>>(),
            )
        };
        let s = &self.system;
        let h = &self.hybrid;
        let f = &self.forecast;
        obj(vec![
            ("name", Value::String(self.name.clone())),
            (
                "system",
                obj(vec![
                    ("cores", uint(s.cores as u64)),
                    ("l1_sets", uint(s.l1_sets as u64)),
                    ("l1_ways", uint(s.l1_ways as u64)),
                    ("l2_sets", uint(s.l2_sets as u64)),
                    ("l2_ways", uint(s.l2_ways as u64)),
                    ("llc_sets", uint(s.llc_sets as u64)),
                    ("sram_ways", uint(s.sram_ways as u64)),
                    ("nvm_ways", uint(s.nvm_ways as u64)),
                    ("nvm_latency_factor", float(s.nvm_latency_factor)),
                    ("dram", Value::Bool(s.dram)),
                ]),
            ),
            (
                "hybrid",
                obj(vec![
                    ("policy", Value::String(h.policy.clone())),
                    ("endurance_mean", float(h.endurance_mean)),
                    ("endurance_cv", float(h.endurance_cv)),
                    ("epoch_cycles", uint(h.epoch_cycles)),
                    ("dueling_smoothing", float(h.dueling_smoothing)),
                    ("compressor", Value::String(h.compressor.clone())),
                ]),
            ),
            (
                "workload",
                obj(vec![
                    ("mix", uint(self.workload.mix as u64)),
                    ("seed", uint(self.workload.seed)),
                ]),
            ),
            (
                "run",
                obj(vec![
                    ("warmup_fraction", float(self.run.warmup_fraction)),
                    ("cycles", float(self.run.cycles)),
                ]),
            ),
            (
                "forecast",
                obj(vec![
                    ("warmup_cycles", float(f.warmup_cycles)),
                    ("measure_cycles", float(f.measure_cycles)),
                    ("capacity_step", float(f.capacity_step)),
                    ("max_step_seconds", float(f.max_step_seconds)),
                    ("stop_capacity", float(f.stop_capacity)),
                    ("max_steps", uint(f.max_steps as u64)),
                ]),
            ),
        ])
    }

    /// Pretty-printed JSON, trailing newline included (the `--dump` and
    /// `specs/` file format).
    pub fn to_string_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("spec serialization cannot fail")
            + "\n"
    }

    /// Decodes and validates a spec from a JSON value. Strict: every field
    /// of the schema is required, unknown fields are errors.
    pub fn from_json(v: &Value) -> Result<ExperimentSpec, SpecError> {
        let root = Fields::new(v, "")?;
        let system = {
            let f = Fields::new(root.get("system")?, "system")?;
            let spec = SystemSpec {
                cores: f.usize("cores")?,
                l1_sets: f.usize("l1_sets")?,
                l1_ways: f.usize("l1_ways")?,
                l2_sets: f.usize("l2_sets")?,
                l2_ways: f.usize("l2_ways")?,
                llc_sets: f.usize("llc_sets")?,
                sram_ways: f.usize("sram_ways")?,
                nvm_ways: f.usize("nvm_ways")?,
                nvm_latency_factor: f.f64("nvm_latency_factor")?,
                dram: f.bool("dram")?,
            };
            f.finish()?;
            spec
        };
        let hybrid = {
            let f = Fields::new(root.get("hybrid")?, "hybrid")?;
            let spec = HybridSpec {
                policy: f.string("policy")?,
                endurance_mean: f.f64("endurance_mean")?,
                endurance_cv: f.f64("endurance_cv")?,
                epoch_cycles: f.u64("epoch_cycles")?,
                dueling_smoothing: f.f64("dueling_smoothing")?,
                compressor: f.string("compressor")?,
            };
            f.finish()?;
            spec
        };
        let workload = {
            let f = Fields::new(root.get("workload")?, "workload")?;
            let spec = WorkloadSpec {
                mix: f.usize("mix")?,
                seed: f.u64("seed")?,
            };
            f.finish()?;
            spec
        };
        let run = {
            let f = Fields::new(root.get("run")?, "run")?;
            let spec = RunSpec {
                warmup_fraction: f.f64("warmup_fraction")?,
                cycles: f.f64("cycles")?,
            };
            f.finish()?;
            spec
        };
        let forecast = {
            let f = Fields::new(root.get("forecast")?, "forecast")?;
            let spec = ForecastSpec {
                warmup_cycles: f.f64("warmup_cycles")?,
                measure_cycles: f.f64("measure_cycles")?,
                capacity_step: f.f64("capacity_step")?,
                max_step_seconds: f.f64("max_step_seconds")?,
                stop_capacity: f.f64("stop_capacity")?,
                max_steps: f.usize("max_steps")?,
            };
            f.finish()?;
            spec
        };
        let name = root.string("name")?;
        root.finish()?;
        let spec = ExperimentSpec {
            name,
            system,
            hybrid,
            workload,
            run,
            forecast,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses and validates a spec from JSON text. An inherent method (not
    /// the `FromStr` trait) so call sites read `ExperimentSpec::from_str`
    /// without importing anything.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Result<ExperimentSpec, SpecError> {
        let v = serde_json::from_str(text).map_err(|e| SpecError::Json {
            message: e.to_string(),
        })?;
        Self::from_json(&v)
    }

    /// Loads and validates a spec file.
    pub fn load(path: &str) -> Result<ExperimentSpec, SpecError> {
        let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        Self::from_str(&text)
    }

    /// Writes the spec as pretty JSON to `path`.
    pub fn store(&self, path: &str) -> Result<(), SpecError> {
        std::fs::write(path, self.to_string_pretty()).map_err(|e| SpecError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })
    }
}

fn parse_compressor(name: &str) -> Option<CompressorKind> {
    match name.to_ascii_lowercase().as_str() {
        "bdi" => Some(CompressorKind::Bdi),
        "fpc" => Some(CompressorKind::Fpc),
        _ => None,
    }
}

fn uint(v: u64) -> Value {
    Value::Number(Number::U64(v))
}

fn float(v: f64) -> Value {
    Value::Number(Number::F64(v))
}

/// Strict object cursor: tracks which keys were consumed so `finish` can
/// report the first unknown field by its dotted path.
struct Fields<'a> {
    map: &'a BTreeMap<String, Value>,
    prefix: &'a str,
    seen: std::cell::RefCell<Vec<&'a str>>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Value, prefix: &'a str) -> Result<Self, SpecError> {
        match v {
            Value::Object(map) => Ok(Fields {
                map,
                prefix,
                seen: std::cell::RefCell::new(Vec::new()),
            }),
            _ => Err(invalid(
                if prefix.is_empty() { "(root)" } else { prefix },
                "expected a JSON object",
            )),
        }
    }

    fn path(&self, key: &str) -> String {
        if self.prefix.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.prefix)
        }
    }

    fn get(&self, key: &'static str) -> Result<&'a Value, SpecError> {
        self.seen.borrow_mut().push(key);
        self.map.get(key).ok_or_else(|| SpecError::MissingField {
            field: self.path(key),
        })
    }

    fn string(&self, key: &'static str) -> Result<String, SpecError> {
        let v = self.get(key)?;
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| invalid(&self.path(key), "expected a string"))
    }

    fn bool(&self, key: &'static str) -> Result<bool, SpecError> {
        match self.get(key)? {
            Value::Bool(b) => Ok(*b),
            _ => Err(invalid(&self.path(key), "expected true or false")),
        }
    }

    fn f64(&self, key: &'static str) -> Result<f64, SpecError> {
        let v = self.get(key)?;
        v.as_f64()
            .ok_or_else(|| invalid(&self.path(key), "expected a number"))
    }

    fn u64(&self, key: &'static str) -> Result<u64, SpecError> {
        match self.get(key)? {
            Value::Number(Number::U64(v)) => Ok(*v),
            Value::Number(Number::F64(v)) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2e18 => {
                Ok(*v as u64)
            }
            _ => Err(invalid(&self.path(key), "expected a non-negative integer")),
        }
    }

    fn usize(&self, key: &'static str) -> Result<usize, SpecError> {
        Ok(self.u64(key)? as usize)
    }

    fn finish(&self) -> Result<(), SpecError> {
        let seen = self.seen.borrow();
        for key in self.map.keys() {
            if !seen.contains(&key.as_str()) {
                return Err(SpecError::UnknownField {
                    field: self.path(key),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates_and_round_trips() {
        for name in ExperimentSpec::preset_names() {
            let spec = ExperimentSpec::preset(name).unwrap();
            assert_eq!(spec.name, name);
            spec.validate().unwrap();
            let back = ExperimentSpec::from_str(&spec.to_string_pretty()).unwrap();
            assert_eq!(back, spec, "preset '{name}' did not round trip");
        }
    }

    #[test]
    fn scaled_preset_matches_the_historical_recipe() {
        let spec = ExperimentSpec::preset("scaled").unwrap();
        let sys = spec.system_config();
        assert_eq!(sys.cores, 4);
        assert_eq!((sys.l1_sets, sys.l1_ways), (64, 4));
        assert_eq!((sys.l2_sets, sys.l2_ways), (32, 16));
        assert_eq!(
            (sys.llc.sets, sys.llc.sram_ways, sys.llc.nvm_ways),
            (512, 4, 12)
        );
        assert!(sys.dram.is_none());
        let llc = spec.llc_config();
        assert_eq!(llc.policy, Policy::cp_sd());
        assert_eq!(llc.endurance.mean(), 1e8);
        assert_eq!(llc.endurance.cv(), 0.2);
        assert_eq!(llc.epoch_cycles, 100_000);
        assert_eq!(llc.dueling_smoothing, 0.6);
        assert_eq!(spec.footprint_scale(), 0.125);
        assert_eq!(spec.compressor(), CompressorKind::Bdi);
    }

    #[test]
    fn paper_preset_is_table_iv() {
        let spec = ExperimentSpec::preset("paper").unwrap();
        let sys = spec.system_config();
        assert_eq!(sys.llc.capacity_bytes(), 4 * 1024 * 1024);
        assert_eq!(spec.footprint_scale(), 1.0);
        let llc = spec.llc_config();
        assert_eq!(llc.endurance.mean(), 1e10);
        assert_eq!(llc.epoch_cycles, hllc_core::DEFAULT_EPOCH_CYCLES);
        assert_eq!(llc.dueling_smoothing, 0.0);
    }

    #[test]
    fn sensitivity_presets_differ_only_on_their_axis() {
        let base = ExperimentSpec::preset("scaled").unwrap();
        let split = ExperimentSpec::preset("waysplit-3-13").unwrap();
        assert_eq!((split.system.sram_ways, split.system.nvm_ways), (3, 13));
        let l2 = ExperimentSpec::preset("l2-doubled").unwrap();
        assert_eq!(l2.system.l2_sets, 2 * base.system.l2_sets);
        let lat = ExperimentSpec::preset("nvm-latency-x1.5").unwrap();
        assert_eq!(lat.system.nvm_latency_factor, 1.5);
        assert_eq!(lat.system_config().timing.llc_nvm_hit(), 36);
        let eq = ExperimentSpec::preset("equal-cost-10w").unwrap();
        assert_eq!(eq.system.nvm_ways, 10);
        assert_eq!(ExperimentSpec::preset("scaled").unwrap(), base);
    }

    #[test]
    fn unknown_preset_is_a_structured_error() {
        let e = ExperimentSpec::preset("warp-speed").unwrap_err();
        assert!(matches!(e, SpecError::UnknownPreset { ref name } if name == "warp-speed"));
        assert!(e.to_string().contains("scaled"), "{e}");
    }

    #[test]
    fn unknown_fields_are_named() {
        let mut spec = ExperimentSpec::preset("scaled").unwrap().to_json();
        if let Value::Object(m) = &mut spec {
            if let Some(Value::Object(sys)) = m.get_mut("system") {
                sys.insert("frobnicate".into(), Value::Bool(true));
            }
        }
        let text = serde_json::to_string_pretty(&spec).unwrap();
        let e = ExperimentSpec::from_str(&text).unwrap_err();
        assert_eq!(
            e,
            SpecError::UnknownField {
                field: "system.frobnicate".into()
            }
        );
        assert!(e.to_string().contains("system.frobnicate"), "{e}");
    }

    #[test]
    fn missing_fields_are_named() {
        let mut spec = ExperimentSpec::preset("scaled").unwrap().to_json();
        if let Value::Object(m) = &mut spec {
            if let Some(Value::Object(w)) = m.get_mut("workload") {
                w.remove("seed");
            }
        }
        let text = serde_json::to_string_pretty(&spec).unwrap();
        let e = ExperimentSpec::from_str(&text).unwrap_err();
        assert_eq!(
            e,
            SpecError::MissingField {
                field: "workload.seed".into()
            }
        );
    }

    #[test]
    fn malformed_json_reports_the_parser_message() {
        let e = ExperimentSpec::from_str("{ not json").unwrap_err();
        assert!(matches!(e, SpecError::Json { .. }), "{e:?}");
    }

    #[test]
    fn validation_names_the_offending_field() {
        let mut spec = ExperimentSpec::preset("scaled").unwrap();
        spec.system.llc_sets = 500;
        assert_eq!(
            spec.validate().unwrap_err(),
            invalid("system.llc_sets", "must be a power of two, got 500")
        );

        let mut spec = ExperimentSpec::preset("scaled").unwrap();
        spec.system.sram_ways = 8;
        spec.system.nvm_ways = 9;
        let e = spec.validate().unwrap_err();
        assert!(matches!(e, SpecError::Invalid { ref field, .. } if field == "system.nvm_ways"));

        let mut spec = ExperimentSpec::preset("scaled").unwrap();
        spec.system.cores = 17;
        let e = spec.validate().unwrap_err();
        assert!(matches!(e, SpecError::Invalid { ref field, .. } if field == "system.cores"));
        spec.system.cores = 16;
        spec.validate().unwrap();

        let mut spec = ExperimentSpec::preset("scaled").unwrap();
        spec.hybrid.policy = "nonsense".into();
        let e = spec.validate().unwrap_err();
        assert!(matches!(e, SpecError::Invalid { ref field, .. } if field == "hybrid.policy"));

        let mut spec = ExperimentSpec::preset("scaled").unwrap();
        spec.workload.mix = 11;
        let e = spec.validate().unwrap_err();
        assert!(matches!(e, SpecError::Invalid { ref field, .. } if field == "workload.mix"));
    }

    #[test]
    fn nvm_latency_factor_flows_into_timing() {
        let mut spec = ExperimentSpec::preset("scaled").unwrap();
        spec.system.nvm_latency_factor = 1.5;
        assert_eq!(spec.system_config().timing.llc_nvm_hit(), 36);
        spec.system.nvm_latency_factor = 1.0;
        assert_eq!(spec.system_config().timing.llc_nvm_hit(), 32);
    }

    #[test]
    fn footprint_scale_is_sets_relative_to_paper() {
        assert_eq!(footprint_scale(PAPER_SETS), 1.0);
        assert_eq!(footprint_scale(512), 0.125);
        assert_eq!(footprint_scale(256), 0.0625);
    }

    #[test]
    fn dram_flag_enables_the_model() {
        let mut spec = ExperimentSpec::preset("scaled").unwrap();
        spec.system.dram = true;
        assert!(spec.system_config().dram.is_some());
    }

    #[test]
    fn resolve_prefers_presets() {
        assert_eq!(
            ExperimentSpec::resolve("scaled").unwrap(),
            ExperimentSpec::preset("scaled").unwrap()
        );
        let e = ExperimentSpec::resolve("/nonexistent/spec.json").unwrap_err();
        assert!(matches!(e, SpecError::Io { .. }), "{e:?}");
    }
}
