//! The lint rules and the engine that runs them.
//!
//! Each rule scans one tokenized file and yields [`Finding`]s. The engine
//! walks the workspace, applies each rule to the files its configuration
//! covers, and resolves findings against the `[[allow]]` list.

use crate::config::{AllowEntry, LintConfig, RuleConfig};
use crate::tokenizer::{self, Lexed, TokKind};
use std::path::{Path, PathBuf};

/// All rule ids, in reporting order.
pub(crate) const RULE_IDS: &[&str] = &[
    "no-panic-paths",
    "indexing-without-comment",
    "no-unordered-iteration",
    "no-float-replay",
    "exhaustive-match",
    "banned-config-literals",
];

/// One lint hit.
#[derive(Debug, Clone)]
pub(crate) struct Finding {
    /// Rule id.
    pub(crate) rule: &'static str,
    /// Workspace-relative path.
    pub(crate) path: String,
    /// 1-based source line.
    pub(crate) line: u32,
    /// Human-readable description.
    pub(crate) message: String,
    /// The offending source line, trimmed (allowlist `contains` matches
    /// against this).
    pub(crate) snippet: String,
    /// Set when an `[[allow]]` entry suppressed the finding.
    pub(crate) allowed_by: Option<usize>,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub(crate) struct LintOutcome {
    /// Every finding, allowed or not, in path/line order.
    pub(crate) findings: Vec<Finding>,
    /// Number of files scanned.
    pub(crate) files_scanned: usize,
    /// Indices into `config.allow` that matched nothing (stale entries).
    pub(crate) stale_allows: Vec<usize>,
}

impl LintOutcome {
    /// Findings not covered by the allowlist.
    pub(crate) fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed_by.is_none())
    }
}

/// Recursively collects `.rs` files under `root`, skipping build products,
/// vendored code, and VCS metadata. Paths come back sorted so reports are
/// deterministic.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn applies(rule: &RuleConfig, rel_path: &str) -> bool {
    rule.paths.iter().any(|p| rel_path.starts_with(p.as_str()))
        && !rule
            .exclude
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
}

/// Source line `line` (1-based), trimmed, for snippets.
fn line_text(lines: &[&str], line: u32) -> String {
    lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

/// Per-file context shared by the token-based rules.
struct FileCtx<'a> {
    rel_path: &'a str,
    lines: &'a [&'a str],
    lexed: &'a Lexed,
    test_spans: &'a [(usize, usize)],
}

impl FileCtx<'_> {
    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: self.rel_path.to_string(),
            line,
            message,
            snippet: line_text(self.lines, line),
            allowed_by: None,
        }
    }

    fn in_test(&self, tok_idx: usize) -> bool {
        tokenizer::in_spans(self.test_spans, tok_idx)
    }
}

// ---------------------------------------------------------------------------
// Rule: no-panic-paths
// ---------------------------------------------------------------------------

/// Flags `.unwrap()`, `.expect(..)`, and the `panic!` family in hot-path
/// crates. Typed errors or `debug_assert!`-backed invariants belong there
/// instead; documented exceptions go in the allowlist.
fn rule_no_panic_paths(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const MACROS: &[&str] = &["panic", "unreachable", "unimplemented", "todo"];
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(i) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if prev_dot && next_paren && (t.text == "unwrap" || t.text == "expect") {
            out.push(ctx.finding(
                "no-panic-paths",
                t.line,
                format!(
                    ".{}() in a hot-path crate — return a typed error or \
                     guard the invariant with debug_assert!",
                    t.text
                ),
            ));
        }
        if MACROS.contains(&t.text.as_str()) && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            out.push(ctx.finding(
                "no-panic-paths",
                t.line,
                format!(
                    "{}! in a hot-path crate — return a typed error or \
                     guard the invariant with debug_assert!",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: indexing-without-comment
// ---------------------------------------------------------------------------

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [T]`, `return [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "dyn", "as", "in", "return", "break", "else", "match", "if", "while", "impl",
    "box", "move", "static", "const", "fn", "where", "use", "crate", "pub", "let", "enum",
    "struct", "type", "unsafe", "loop", "for",
];

/// Flags `expr[index]` with a non-constant index and no nearby comment:
/// slice indexing panics on out-of-range, so hot-path code must either use
/// a checked accessor or document why the bound holds. Each distinct index
/// expression is reported once per file — the first commented occurrence
/// (or one comment at the first site) documents that expression's bound
/// for the whole file.
fn rule_indexing_without_comment(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    let mut documented: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut first_hit: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct("[") || i == 0 || ctx.in_test(i) {
            continue;
        }
        let prev = &toks[i - 1];
        let indexes_expr = match prev.kind {
            TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct => prev.text == "]" || prev.text == ")",
            _ => false,
        };
        if !indexes_expr {
            continue;
        }
        // Inner tokens up to the matching `]` (shallow).
        let mut depth = 1;
        let mut j = i + 1;
        let mut has_ident = false;
        let mut expr = String::new();
        while j < toks.len() && depth > 0 {
            match toks[j].kind {
                TokKind::Punct if toks[j].text == "[" => depth += 1,
                TokKind::Punct if toks[j].text == "]" => depth -= 1,
                TokKind::Ident if depth == 1 => has_ident = true,
                _ => {}
            }
            if depth > 0 {
                if !expr.is_empty() {
                    expr.push(' ');
                }
                expr.push_str(&toks[j].text);
            }
            j += 1;
        }
        // Constant indices (`x[0]`, `x[1 + 2]`) are visibly in range.
        if !has_ident {
            continue;
        }
        let commented = ctx.lexed.has_comment(t.line) || ctx.lexed.has_comment(t.line - 1);
        if commented {
            documented.insert(expr);
        } else {
            first_hit.entry(expr).or_insert_with(|| {
                out.push(
                    ctx.finding(
                        "indexing-without-comment",
                        t.line,
                        "non-constant index without a bound-justifying comment on \
                     this or the previous line (first use of this index \
                     expression in the file)"
                            .to_string(),
                    ),
                );
                out.len() - 1
            });
        }
    }
    // A commented occurrence anywhere in the file documents the
    // expression's bound, including for occurrences seen earlier: drop
    // findings whose expression turned out to be documented.
    let drop_lines: Vec<u32> = first_hit
        .iter()
        .filter(|(expr, _)| documented.contains(*expr))
        .filter_map(|(_, &idx)| out.get(idx).map(|f| f.line))
        .collect();
    out.retain(|f| {
        f.rule != "indexing-without-comment"
            || f.path != ctx.rel_path
            || !drop_lines.contains(&f.line)
    });
}

// ---------------------------------------------------------------------------
// Rule: no-unordered-iteration
// ---------------------------------------------------------------------------

/// Flags `HashMap`/`HashSet` in deterministic-output paths. Their
/// iteration order varies run to run; deterministic code wants
/// `BTreeMap`/`BTreeSet`, and proven lookup-only uses go in the allowlist.
fn rule_no_unordered_iteration(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(i) {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            out.push(ctx.finding(
                "no-unordered-iteration",
                t.line,
                format!(
                    "{} in a deterministic output path — iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet, or allowlist a \
                     proven lookup-only use",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-float-replay
// ---------------------------------------------------------------------------

/// Flags floating-point literals and `f32`/`f64` in replay-affecting code
/// (trace framing, deterministic scheduling): float arithmetic is the
/// classic source of byte-level replay divergence.
fn rule_no_float_replay(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.lexed.tokens.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        let hit = match t.kind {
            TokKind::Num { float } => float,
            TokKind::Ident => t.text == "f32" || t.text == "f64",
            _ => false,
        };
        if hit {
            out.push(ctx.finding(
                "no-float-replay",
                t.line,
                format!(
                    "floating point (`{}`) in replay-affecting code — use \
                     integers or bit-exact framing",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: exhaustive-match
// ---------------------------------------------------------------------------

/// Flags `_ =>` catch-all arms in `match` expressions over the configured
/// enums (`Policy`, the coherence-state enums): a wildcard arm silently
/// absorbs newly added variants instead of forcing each site to decide.
fn rule_exhaustive_match(ctx: &FileCtx<'_>, enums: &[String], out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("match") || ctx.in_test(i) {
            i += 1;
            continue;
        }
        // Scrutinee runs to the body `{` at shallow depth (struct literals
        // cannot appear bare in a scrutinee, so the first shallow `{` is
        // the body).
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].kind == TokKind::Punct {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let body_start = j + 1;
        // Walk the arms at shallow depth inside the body.
        let mut depth = 1i32;
        let mut k = body_start;
        let mut arm_pattern: Vec<usize> = Vec::new();
        let mut in_pattern = true;
        let mut names_enum = false;
        let mut wildcard_line: Option<u32> = None;
        let mut matched_enum_name = String::new();
        while k < toks.len() && depth > 0 {
            let tk = &toks[k];
            if tk.kind == TokKind::Punct {
                match tk.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    "=>" if depth == 1 && in_pattern => {
                        // Pattern complete: classify it.
                        for &pi in &arm_pattern {
                            if toks[pi].kind == TokKind::Ident
                                && enums.iter().any(|e| e == &toks[pi].text)
                                && toks.get(pi + 1).is_some_and(|n| n.is_punct("::"))
                            {
                                names_enum = true;
                                matched_enum_name = toks[pi].text.clone();
                            }
                        }
                        if arm_pattern.len() == 1 && toks[arm_pattern[0]].is_ident("_") {
                            wildcard_line = Some(toks[arm_pattern[0]].line);
                        }
                        arm_pattern.clear();
                        in_pattern = false;
                    }
                    "," if depth == 1 => in_pattern = true,
                    _ => {}
                }
            } else if tk.kind == TokKind::Ident && tk.text == "match" && !in_pattern {
                // Nested match inside an arm body: its own `{` bumps depth,
                // so the shallow walk already skips it.
            }
            if in_pattern
                && depth == 1
                && !(tk.kind == TokKind::Punct && (tk.text == "=>" || tk.text == ","))
            {
                arm_pattern.push(k);
            }
            // An arm whose body is a block `{...}` is not followed by `,`;
            // returning to depth 1 after the block re-opens a pattern. A
            // struct pattern's own `}` (depth back to 1 while still in the
            // pattern) must not reset the accumulator.
            if depth == 1 && !in_pattern && tk.kind == TokKind::Punct && tk.text == "}" {
                in_pattern = true;
                arm_pattern.clear();
            }
            k += 1;
        }
        if names_enum {
            if let Some(line) = wildcard_line {
                out.push(ctx.finding(
                    "exhaustive-match",
                    line,
                    format!(
                        "wildcard `_` arm in a match over `{matched_enum_name}` — \
                         list every variant so new ones are handled explicitly"
                    ),
                ));
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule: banned-config-literals
// ---------------------------------------------------------------------------

/// Flags configuration literals that `ExperimentSpec` owns leaking outside
/// `crates/config` (migrated from the old `tests/no_banned_literals.rs`
/// integration test; same failure mode, now with the rule id in the
/// output). Matches raw source lines, comments and strings included — a
/// literal in a doc example leaks just as surely.
fn rule_banned_config_literals(
    rel_path: &str,
    lines: &[&str],
    patterns: &[String],
    out: &mut Vec<Finding>,
) {
    for (idx, line) in lines.iter().enumerate() {
        for p in patterns {
            if line.contains(p.as_str()) {
                out.push(Finding {
                    rule: "banned-config-literals",
                    path: rel_path.to_string(),
                    line: (idx + 1) as u32,
                    message: format!(
                        "banned configuration literal `{p}` outside crates/config — \
                         route it through ExperimentSpec"
                    ),
                    snippet: line.trim().to_string(),
                    allowed_by: None,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Runs every configured rule over the workspace at `root`.
pub(crate) fn run(root: &Path, config: &LintConfig) -> LintOutcome {
    let files = collect_rs_files(root);
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    let empty = RuleConfig::default();
    let rule_cfg = |id: &str| config.rules.get(id).unwrap_or(&empty);

    for file in &files {
        let rel_path = rel(root, file);
        let wanted = RULE_IDS.iter().any(|id| applies(rule_cfg(id), &rel_path));
        if !wanted {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(file) else {
            continue;
        };
        files_scanned += 1;
        let lines: Vec<&str> = src.lines().collect();
        let lexed = tokenizer::lex(&src);
        let test_spans = tokenizer::test_mod_spans(&lexed.tokens);
        let ctx = FileCtx {
            rel_path: &rel_path,
            lines: &lines,
            lexed: &lexed,
            test_spans: &test_spans,
        };

        if applies(rule_cfg("no-panic-paths"), &rel_path) {
            rule_no_panic_paths(&ctx, &mut findings);
        }
        if applies(rule_cfg("indexing-without-comment"), &rel_path) {
            rule_indexing_without_comment(&ctx, &mut findings);
        }
        if applies(rule_cfg("no-unordered-iteration"), &rel_path) {
            rule_no_unordered_iteration(&ctx, &mut findings);
        }
        if applies(rule_cfg("no-float-replay"), &rel_path) {
            rule_no_float_replay(&ctx, &mut findings);
        }
        let em = rule_cfg("exhaustive-match");
        if applies(em, &rel_path) {
            rule_exhaustive_match(&ctx, &em.enums, &mut findings);
        }
        let bl = rule_cfg("banned-config-literals");
        if applies(bl, &rel_path) {
            rule_banned_config_literals(&rel_path, &lines, &bl.patterns, &mut findings);
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));

    // Resolve against the allowlist.
    let mut used = vec![false; config.allow.len()];
    for f in &mut findings {
        for (i, entry) in config.allow.iter().enumerate() {
            if entry.rule == f.rule
                && f.path == entry.path
                && (entry.contains.is_empty() || f.snippet.contains(&entry.contains))
            {
                f.allowed_by = Some(i);
                used[i] = true;
                break;
            }
        }
    }
    let stale_allows = used
        .iter()
        .enumerate()
        .filter(|(_, u)| !**u)
        .map(|(i, _)| i)
        .collect();

    LintOutcome {
        findings,
        files_scanned,
        stale_allows,
    }
}

/// Formats one finding as a `file:line: [rule] message` diagnostic.
pub(crate) fn format_finding(f: &Finding, allow: &[AllowEntry]) -> String {
    match f.allowed_by {
        Some(i) => format!(
            "{}:{}: [{}] allowed: {} (reason: {})",
            f.path, f.line, f.rule, f.message, allow[i].reason
        ),
        None => format!(
            "{}:{}: [{}] {}\n    {}",
            f.path, f.line, f.rule, f.message, f.snippet
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer;

    fn ctx_findings(src: &str, rule: fn(&FileCtx<'_>, &mut Vec<Finding>)) -> Vec<Finding> {
        let lines: Vec<&str> = src.lines().collect();
        let lexed = tokenizer::lex(src);
        let spans = tokenizer::test_mod_spans(&lexed.tokens);
        let ctx = FileCtx {
            rel_path: "test.rs",
            lines: &lines,
            lexed: &lexed,
            test_spans: &spans,
        };
        let mut out = Vec::new();
        rule(&ctx, &mut out);
        out
    }

    #[test]
    fn panic_rule_catches_unwrap_expect_and_macros() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }\n\
                   fn g() { c.unwrap_or(0); d.unwrap_or_else(|| 1); }\n";
        let hits = ctx_findings(src, rule_no_panic_paths);
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|f| f.line == 1));
    }

    #[test]
    fn panic_rule_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { a.unwrap(); }\n}\n";
        assert!(ctx_findings(src, rule_no_panic_paths).is_empty());
    }

    #[test]
    fn indexing_rule_wants_a_comment_for_variable_indices() {
        let uncommented = "fn f(v: &[u8], i: usize) -> u8 { v[i] }\n";
        assert_eq!(
            ctx_findings(uncommented, rule_indexing_without_comment).len(),
            1
        );
        let commented =
            "fn f(v: &[u8], i: usize) -> u8 {\n    // i < v.len(): caller checked\n    v[i]\n}\n";
        assert!(ctx_findings(commented, rule_indexing_without_comment).is_empty());
        let constant = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        assert!(ctx_findings(constant, rule_indexing_without_comment).is_empty());
        let array_ty = "fn f() -> [u8; 4] { [0; 4] }\nstruct S { x: [u64; 2] }\n";
        assert!(ctx_findings(array_ty, rule_indexing_without_comment).is_empty());
    }

    #[test]
    fn unordered_rule_flags_hash_collections() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        assert_eq!(ctx_findings(src, rule_no_unordered_iteration).len(), 3);
    }

    #[test]
    fn float_rule_flags_literals_and_types() {
        let src = "fn f() -> f64 { 1.5 }\nfn g() -> u64 { 42 }\n";
        let hits = ctx_findings(src, rule_no_float_replay);
        assert_eq!(hits.len(), 2); // `f64` + `1.5`
    }

    #[test]
    fn exhaustive_rule_flags_wildcards_over_configured_enums() {
        let enums = vec!["Policy".to_string()];
        let flagged = "fn f(p: Policy) -> u8 { match p { Policy::Bh => 1, _ => 0 } }\n";
        let lines: Vec<&str> = flagged.lines().collect();
        let lexed = tokenizer::lex(flagged);
        let spans = tokenizer::test_mod_spans(&lexed.tokens);
        let ctx = FileCtx {
            rel_path: "t.rs",
            lines: &lines,
            lexed: &lexed,
            test_spans: &spans,
        };
        let mut out = Vec::new();
        rule_exhaustive_match(&ctx, &enums, &mut out);
        assert_eq!(out.len(), 1);

        // Exhaustive match: clean. Wildcard over an unconfigured enum: clean.
        for clean in [
            "fn f(p: Policy) -> u8 { match p { Policy::Bh => 1, Policy::Cp => 0 } }\n",
            "fn f(x: u8) -> u8 { match x { 1 => 1, _ => 0 } }\n",
        ] {
            let lines: Vec<&str> = clean.lines().collect();
            let lexed = tokenizer::lex(clean);
            let spans = tokenizer::test_mod_spans(&lexed.tokens);
            let ctx = FileCtx {
                rel_path: "t.rs",
                lines: &lines,
                lexed: &lexed,
                test_spans: &spans,
            };
            let mut out = Vec::new();
            rule_exhaustive_match(&ctx, &enums, &mut out);
            assert!(out.is_empty(), "{clean}");
        }
    }

    #[test]
    fn banned_literal_rule_reports_pattern_and_line() {
        let patterns = vec!["with_epoch_cycles(100_000)".to_string()];
        let src = "fn f() { cfg.with_epoch_cycles(100_000); }\n";
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        rule_banned_config_literals("t.rs", &lines, &patterns, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }
}
