//! Minimal TOML-subset parser for `xtask/lint.toml`.
//!
//! Supports exactly what the lint configuration needs — `[rules.<id>]`
//! tables with string / string-array values, and `[[allow]]`
//! array-of-tables entries — and rejects anything else loudly. No external
//! parser: the workspace builds with no registry access.

use std::collections::BTreeMap;

/// Per-rule configuration.
#[derive(Debug, Default, Clone)]
pub(crate) struct RuleConfig {
    /// Workspace-relative path prefixes the rule applies to.
    pub(crate) paths: Vec<String>,
    /// Workspace-relative path prefixes excluded again from `paths`.
    pub(crate) exclude: Vec<String>,
    /// Enum names (for `exhaustive-match`).
    pub(crate) enums: Vec<String>,
    /// Banned substrings (for `banned-config-literals`).
    pub(crate) patterns: Vec<String>,
}

/// One `[[allow]]` entry: a justified suppression.
#[derive(Debug, Clone)]
pub(crate) struct AllowEntry {
    /// Rule id the entry suppresses.
    pub(crate) rule: String,
    /// Workspace-relative file path the entry applies to.
    pub(crate) path: String,
    /// Substring the offending source line must contain; empty matches any
    /// finding of `rule` in `path`.
    pub(crate) contains: String,
    /// Why the finding is acceptable. Required: an allowlist entry without
    /// a reason is itself a lint error.
    pub(crate) reason: String,
    /// 1-based line in lint.toml (for diagnostics).
    pub(crate) line: u32,
}

/// The parsed lint configuration.
#[derive(Debug, Default)]
pub(crate) struct LintConfig {
    /// Rule id → configuration.
    pub(crate) rules: BTreeMap<String, RuleConfig>,
    /// Justified suppressions.
    pub(crate) allow: Vec<AllowEntry>,
}

/// A parse error with its lint.toml line.
#[derive(Debug)]
pub(crate) struct ConfigError {
    /// 1-based line.
    pub(crate) line: u32,
    /// What went wrong.
    pub(crate) message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parses one `"..."` string starting at `s[0]`; returns (value, rest).
fn parse_string(s: &str, line: u32) -> Result<(String, &str), ConfigError> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(err(line, format!("expected a string, found `{s}`"))),
    }
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                '\\' => '\\',
                '"' => '"',
                other => other,
            });
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok((out, &s[i + 1..]));
        } else {
            out.push(c);
        }
    }
    Err(err(line, "unterminated string"))
}

/// Parses a `[...]` array of strings (already joined to one line).
fn parse_array(s: &str, line: u32) -> Result<Vec<String>, ConfigError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.trim_end().strip_suffix(']'))
        .ok_or_else(|| err(line, "expected `[ ... ]`"))?;
    let mut out = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        let (value, after) = parse_string(rest, line)?;
        out.push(value);
        rest = after.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(err(line, format!("expected `,` or `]` near `{rest}`")));
        }
    }
    Ok(out)
}

/// Strips a trailing `# comment` that is not inside a string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
        } else if in_string && c == '\\' {
            escaped = true;
        } else if c == '"' {
            in_string = !in_string;
        } else if c == '#' && !in_string {
            return &line[..i];
        }
    }
    line
}

enum Section {
    None,
    Rule(String),
    Allow,
}

/// Parses the configuration text.
pub(crate) fn parse(text: &str) -> Result<LintConfig, ConfigError> {
    let mut cfg = LintConfig::default();
    let mut section = Section::None;
    let mut lines = text.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            if header.trim() != "allow" {
                return Err(err(lineno, format!("unknown array-of-tables `{header}`")));
            }
            cfg.allow.push(AllowEntry {
                rule: String::new(),
                path: String::new(),
                contains: String::new(),
                reason: String::new(),
                line: lineno,
            });
            section = Section::Allow;
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let header = header.trim();
            let Some(rule) = header.strip_prefix("rules.") else {
                return Err(err(lineno, format!("unknown table `{header}`")));
            };
            cfg.rules.entry(rule.to_string()).or_default();
            section = Section::Rule(rule.to_string());
            continue;
        }

        let Some((key, value)) = line.split_once('=') else {
            return Err(err(
                lineno,
                format!("expected `key = value`, found `{line}`"),
            ));
        };
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Multi-line arrays: join until the brackets balance (strings may
        // not contain brackets in this config, which keeps this simple).
        if value.starts_with('[') {
            while value.matches('[').count() > value.matches(']').count() {
                let Some((_, next)) = lines.next() else {
                    return Err(err(lineno, "unterminated array"));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
        }

        match &section {
            Section::None => {
                return Err(err(lineno, format!("key `{key}` outside any table")));
            }
            Section::Rule(rule) => {
                let slot = cfg.rules.entry(rule.clone()).or_default();
                let parsed = parse_array(&value, lineno)?;
                match key {
                    "paths" => slot.paths = parsed,
                    "exclude" => slot.exclude = parsed,
                    "enums" => slot.enums = parsed,
                    "patterns" => slot.patterns = parsed,
                    other => {
                        return Err(err(lineno, format!("unknown rule key `{other}`")));
                    }
                }
            }
            Section::Allow => {
                let (parsed, rest) = parse_string(&value, lineno)?;
                if !rest.trim().is_empty() {
                    return Err(err(lineno, format!("trailing input `{}`", rest.trim())));
                }
                let entry = cfg
                    .allow
                    .last_mut()
                    .ok_or_else(|| err(lineno, "allow key before any [[allow]]"))?;
                match key {
                    "rule" => entry.rule = parsed,
                    "path" => entry.path = parsed,
                    "contains" => entry.contains = parsed,
                    "reason" => entry.reason = parsed,
                    other => {
                        return Err(err(lineno, format!("unknown allow key `{other}`")));
                    }
                }
            }
        }
    }

    for entry in &cfg.allow {
        if entry.rule.is_empty() || entry.path.is_empty() {
            return Err(err(
                entry.line,
                "[[allow]] entries need both `rule` and `path`",
            ));
        }
        if entry.reason.trim().is_empty() {
            return Err(err(
                entry.line,
                format!(
                    "allowlist entry for `{}` in `{}` has no `reason` — every \
                     suppression must be justified",
                    entry.rule, entry.path
                ),
            ));
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_and_allow_entries() {
        let cfg = parse(
            r#"
# comment
[rules.no-panic-paths]
paths = ["crates/core/src", "crates/sim/src"] # trailing comment
exclude = []

[rules.banned-config-literals]
patterns = [
    "scaled_down(",
    "with_epoch_cycles(100_000)",
]

[[allow]]
rule = "no-panic-paths"
path = "crates/sim/src/hierarchy.rs"
contains = "step_or_panic"
reason = "protocol coverage proven by check-protocol"
"#,
        )
        .expect("parses");
        assert_eq!(cfg.rules["no-panic-paths"].paths.len(), 2);
        assert_eq!(cfg.rules["banned-config-literals"].patterns.len(), 2);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].contains, "step_or_panic");
    }

    #[test]
    fn rejects_a_reasonless_allow_entry() {
        let e = parse("[[allow]]\nrule = \"x\"\npath = \"y\"\n").expect_err("must fail");
        assert!(e.message.contains("reason"));
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(parse("[rules.x]\nbogus = [\"a\"]\n").is_err());
        assert!(parse("stray = \"value\"\n").is_err());
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let cfg = parse("[rules.x]\npatterns = [\"a#b\"]\n").expect("parses");
        assert_eq!(cfg.rules["x"].patterns, ["a#b"]);
    }
}
