//! A lightweight Rust tokenizer — just enough fidelity for the lint
//! rules: identifiers, punctuation (with the handful of two-character
//! operators the rules care about), string/char/lifetime literals, and
//! numbers with float detection. Comments are skipped but their line
//! numbers are recorded so rules can require "a comment nearby".
//!
//! This is deliberately not a full lexer: it never fails, and on input it
//! does not understand it degrades to single-character punctuation, which
//! at worst makes a rule miss a match — never crash.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation (single char, or one of `::`, `=>`, `->`, `..`, `..=`).
    Punct,
    /// Number literal.
    Num {
        /// True for floating-point literals (`1.5`, `2e5`, `1f64`).
        float: bool,
    },
    /// String literal (cooked, raw, or byte).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its source line (1-based).
#[derive(Clone, Debug)]
pub(crate) struct Token {
    /// Classification.
    pub(crate) kind: TokKind,
    /// Source text (identifiers and punctuation verbatim; literals may be
    /// abbreviated).
    pub(crate) text: String,
    /// 1-based source line.
    pub(crate) line: u32,
}

impl Token {
    /// True if the token is an identifier with exactly this text.
    pub(crate) fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True if the token is punctuation with exactly this text.
    pub(crate) fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub(crate) struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub(crate) tokens: Vec<Token>,
    /// Lines (1-based) that contain or are spanned by a comment.
    pub(crate) comment_lines: Vec<u32>,
}

impl Lexed {
    /// True if `line` contains (part of) a comment.
    pub(crate) fn has_comment(&self, line: u32) -> bool {
        self.comment_lines.binary_search(&line).is_ok()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails.
pub(crate) fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut comment_lines = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let push = |tokens: &mut Vec<Token>, kind: TokKind, text: String, line: u32| {
        tokens.push(Token { kind, text, line });
    };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (incl. doc comments).
        if c == '/' && next == Some('/') {
            comment_lines.push(line);
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }

        // Block comment (nested).
        if c == '/' && next == Some('*') {
            comment_lines.push(line);
            let mut depth = 1;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    comment_lines.push(line);
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 1;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 1;
                }
                i += 1;
            }
            continue;
        }

        // Raw / byte string prefixes: r", r#…", b", br", br#…".
        if (c == 'r' || c == 'b') && matches!(next, Some('"') | Some('#') | Some('r')) {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"')
                && (c != 'b' || hashes > 0 || chars.get(i + 1) != Some(&'\''))
            {
                // Raw string: scan to `"` followed by `hashes` hashes.
                // (For `r"…"` and `b"…"` hashes is 0 and escapes are only
                // meaningful in the cooked-byte case, which the cooked
                // loop below handles identically well for our purposes.)
                let start_line = line;
                let raw = hashes > 0 || c == 'r';
                j += 1;
                if raw {
                    loop {
                        match chars.get(j) {
                            None => break,
                            Some('\n') => {
                                line += 1;
                                j += 1;
                            }
                            Some('"') => {
                                let mut k = 0;
                                while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                    k += 1;
                                }
                                j += 1 + k;
                                if k == hashes {
                                    break;
                                }
                            }
                            Some(_) => j += 1,
                        }
                    }
                } else {
                    // Cooked byte string.
                    loop {
                        match chars.get(j) {
                            None => break,
                            Some('\\') => j += 2,
                            Some('\n') => {
                                line += 1;
                                j += 1;
                            }
                            Some('"') => {
                                j += 1;
                                break;
                            }
                            Some(_) => j += 1,
                        }
                    }
                }
                push(&mut tokens, TokKind::Str, String::new(), start_line);
                i = j;
                continue;
            }
            // Fall through to ident lexing (`r` / `b` as identifier start).
        }

        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            push(&mut tokens, TokKind::Ident, text, line);
            continue;
        }

        // Cooked string.
        if c == '"' {
            let start_line = line;
            i += 1;
            loop {
                match chars.get(i) {
                    None => break,
                    Some('\\') => i += 2,
                    Some('\n') => {
                        line += 1;
                        i += 1;
                    }
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some(_) => i += 1,
                }
            }
            push(&mut tokens, TokKind::Str, String::new(), start_line);
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if next == Some('\\') {
                // Escaped char literal: '\n', '\u{..}', …
                i += 2;
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                push(&mut tokens, TokKind::Char, String::new(), line);
                continue;
            }
            if next.is_some_and(is_ident_start) {
                // `'a'` is a char literal, `'a` (no closing quote) a
                // lifetime.
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    push(&mut tokens, TokKind::Char, String::new(), line);
                    i = j + 1;
                } else {
                    let text: String = chars[i + 1..j].iter().collect();
                    push(&mut tokens, TokKind::Lifetime, text, line);
                    i = j;
                }
                continue;
            }
            // `'('` style char literal.
            if chars.get(i + 2) == Some(&'\'') {
                push(&mut tokens, TokKind::Char, String::new(), line);
                i += 3;
                continue;
            }
            push(&mut tokens, TokKind::Punct, "'".into(), line);
            i += 1;
            continue;
        }

        // Number literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut float = false;
            // 0x / 0b / 0o prefixes: plain digit run.
            if c == '0' && matches!(next, Some('x') | Some('b') | Some('o')) {
                i += 2;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part (but not `..` ranges or method calls
                // like `1.max(..)`).
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    float = true;
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // `1.` with nothing after (rare but legal).
                if !float
                    && chars.get(i) == Some(&'.')
                    && chars.get(i + 1) != Some(&'.')
                    && !chars.get(i + 1).copied().is_some_and(is_ident_start)
                {
                    float = true;
                    i += 1;
                }
                // Exponent.
                if matches!(chars.get(i), Some('e') | Some('E')) {
                    let mut j = i + 1;
                    if matches!(chars.get(j), Some('+') | Some('-')) {
                        j += 1;
                    }
                    if chars.get(j).is_some_and(|d| d.is_ascii_digit()) {
                        float = true;
                        i = j;
                        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Suffix (`u32`, `f64`, …).
                if chars.get(i).copied().is_some_and(is_ident_start) {
                    let suffix_start = i;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    let suffix: String = chars[suffix_start..i].iter().collect();
                    if suffix == "f32" || suffix == "f64" {
                        float = true;
                    }
                }
            }
            let text: String = chars[start..i].iter().collect();
            push(&mut tokens, TokKind::Num { float }, text, line);
            continue;
        }

        // Two-character punctuation the rules need as units.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if two == "::" || two == "=>" || two == "->" {
            push(&mut tokens, TokKind::Punct, two, line);
            i += 2;
            continue;
        }
        if two == ".." {
            let three = chars.get(i + 2) == Some(&'=');
            let text = if three { "..=" } else { ".." };
            push(&mut tokens, TokKind::Punct, text.into(), line);
            i += if three { 3 } else { 2 };
            continue;
        }

        push(&mut tokens, TokKind::Punct, c.to_string(), line);
        i += 1;
    }

    comment_lines.dedup();
    Lexed {
        tokens,
        comment_lines,
    }
}

/// Token-index spans `[start, end)` of `#[cfg(test)] mod … { … }` bodies.
/// Rules skip findings inside them: test code may unwrap and iterate
/// freely.
pub(crate) fn test_mod_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct("#")
            && tokens[i + 1].is_punct("[")
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct("(")
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(")")
            && tokens[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {`.
        let mut j = i + 7;
        while j < tokens.len() && tokens[j].is_punct("#") {
            // Skip the bracketed attribute.
            let mut depth = 0;
            j += 1;
            while j < tokens.len() {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j < tokens.len() && tokens[j].is_ident("mod") {
            // Find the opening brace, then the matching close.
            while j < tokens.len() && !tokens[j].is_punct("{") {
                j += 1;
            }
            let start = j;
            let mut depth = 0;
            while j < tokens.len() {
                if tokens[j].is_punct("{") {
                    depth += 1;
                } else if tokens[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            spans.push((start, j));
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// True if token index `idx` falls inside any of `spans`.
pub(crate) fn in_spans(spans: &[(usize, usize)], idx: usize) -> bool {
    spans.iter().any(|&(s, e)| idx >= s && idx < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("fn main() {\n    x.unwrap();\n}\n");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "main", "(", ")", "{", "x", ".", "unwrap", "(", ")", ";", "}"]
        );
        assert_eq!(l.tokens[7].line, 2);
    }

    #[test]
    fn comments_are_recorded_not_tokenized() {
        let l = lex("a // c\nb /* d\ne */ f\n");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "b", "f"]);
        assert!(l.has_comment(1) && l.has_comment(2) && l.has_comment(3));
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        let l = lex(r##"let s = "x.unwrap()"; let c = 'a'; fn f<'a>() {} let r = r#"raw"#;"##);
        assert!(!l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "unwrap"));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Char));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn float_detection() {
        for (src, expect) in [
            ("1.5", true),
            ("2e5", true),
            ("1f64", true),
            ("3.0f32", true),
            ("42", false),
            ("0x1f", false),
            ("1..4", false),
            ("100_000", false),
        ] {
            let l = lex(src);
            let float = l
                .tokens
                .iter()
                .any(|t| matches!(t.kind, TokKind::Num { float: true }));
            assert_eq!(float, expect, "{src}");
            let _ = l;
        }
    }

    #[test]
    fn test_mod_spans_cover_test_code() {
        let src =
            "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn b() { y.unwrap(); }\n}\n";
        let l = lex(src);
        let spans = test_mod_spans(&l.tokens);
        assert_eq!(spans.len(), 1);
        let unwraps: Vec<usize> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!in_spans(&spans, unwraps[0]));
        assert!(in_spans(&spans, unwraps[1]));
    }
}
