//! `check-protocol`: exhaustive state-space enumeration of the coherence
//! protocol in `hllc_sim::coherence`.
//!
//! The abstract state of one block across an `N`-core system is the
//! per-core L2 state plus the LLC presence bit. Cores holding the same
//! state are interchangeable (the protocol never names a core), so states
//! are explored as *sharer-mask symmetry classes* — the counts
//! `(llc, #S, #E, #M)` — which collapses the `4^N × 2` raw space to a few
//! hundred classes per core count. For every reachable class the checker
//! fires every request class a core can issue (`Load`/`Store` from each
//! distinct held state and from `I`, `Evict` from each held state), with
//! the LLC environment branched both ways (victim kept / bypassed) plus a
//! spontaneous LLC eviction, and after each transition verifies the
//! protocol invariants via [`ModelState::check_invariants`]:
//!
//! * SWMR, no-stale-owner, sharer-mask/directory consistency;
//! * no missing table entry (a reachable configuration with no
//!   [`TRANSITION_TABLE`] row fails the run);
//! * no unreachable table entry (every row must be exercised).

use hllc_sim::coherence::model::ModelState;
use hllc_sim::coherence::{CacheState, ReqKind, TRANSITION_TABLE};
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One symmetry class: the LLC presence bit and per-state core counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Class {
    llc: bool,
    n_s: u8,
    n_e: u8,
    n_m: u8,
}

impl Class {
    fn of(m: &ModelState) -> Class {
        let mut c = Class {
            llc: m.llc,
            n_s: 0,
            n_e: 0,
            n_m: 0,
        };
        for s in &m.cores {
            match s {
                CacheState::S => c.n_s += 1,
                CacheState::E => c.n_e += 1,
                CacheState::M => c.n_m += 1,
                CacheState::I => {}
            }
        }
        c
    }

    /// Canonical concrete representative: cores sorted `M, E, S, I…` with
    /// the directory mask derived from the states.
    fn instantiate(&self, n: usize) -> ModelState {
        let mut m = ModelState::new(n);
        let mut i = 0usize;
        for _ in 0..self.n_m {
            m.cores[i] = CacheState::M;
            i += 1;
        }
        for _ in 0..self.n_e {
            m.cores[i] = CacheState::E;
            i += 1;
        }
        for _ in 0..self.n_s {
            m.cores[i] = CacheState::S;
            i += 1;
        }
        m.llc = self.llc;
        m.dir_mask = m.derived_mask();
        m
    }
}

/// The checker's result.
#[derive(Debug, Default)]
pub(crate) struct ProtocolReport {
    /// Core counts enumerated.
    pub(crate) max_cores: usize,
    /// Reachable symmetry classes, summed over all core counts.
    pub(crate) states_explored: u64,
    /// Transitions fired (request × environment branches + LLC evicts).
    pub(crate) transitions_checked: u64,
    /// Transition-table rows exercised (indices into `TRANSITION_TABLE`).
    pub(crate) rows_covered: BTreeSet<usize>,
    /// Reachable classes per core count (for the report).
    pub(crate) classes_per_n: BTreeMap<usize, u64>,
    /// Invariant violations / missing entries, as printable diagnostics.
    pub(crate) errors: Vec<String>,
}

impl ProtocolReport {
    /// True when every invariant held and the table is exactly the
    /// reachable set.
    pub(crate) fn ok(&self) -> bool {
        self.errors.is_empty() && self.rows_covered.len() == TRANSITION_TABLE.len()
    }
}

/// The distinct states cores currently hold, plus `I` if any core is idle
/// — one representative request source per class.
fn requester_classes(c: &Class, n: usize) -> Vec<CacheState> {
    let mut out = Vec::new();
    let held = usize::from(c.n_s) + usize::from(c.n_e) + usize::from(c.n_m);
    if c.n_m > 0 {
        out.push(CacheState::M);
    }
    if c.n_e > 0 {
        out.push(CacheState::E);
    }
    if c.n_s > 0 {
        out.push(CacheState::S);
    }
    if held < n {
        out.push(CacheState::I);
    }
    out
}

/// Index of the canonical representative core holding `state` (cores are
/// laid out `M, E, S, I…` by [`Class::instantiate`]).
fn core_holding(c: &Class, state: CacheState) -> usize {
    let (n_m, n_e, n_s) = (usize::from(c.n_m), usize::from(c.n_e), usize::from(c.n_s));
    match state {
        CacheState::M => 0,
        CacheState::E => n_m,
        CacheState::S => n_m + n_e,
        CacheState::I => n_m + n_e + n_s,
    }
}

/// Exhaustively enumerates the reachable classes for every core count in
/// `1..=max_cores`, firing every request/environment branch and checking
/// the invariants after each step.
pub(crate) fn check(max_cores: usize) -> ProtocolReport {
    let mut report = ProtocolReport {
        max_cores,
        ..ProtocolReport::default()
    };

    for n in 1..=max_cores {
        let mut seen: BTreeSet<Class> = BTreeSet::new();
        let mut queue: VecDeque<Class> = VecDeque::new();
        let start = Class {
            llc: false,
            n_s: 0,
            n_e: 0,
            n_m: 0,
        };
        seen.insert(start);
        queue.push_back(start);

        while let Some(class) = queue.pop_front() {
            let push = |c: Class, seen: &mut BTreeSet<Class>, queue: &mut VecDeque<Class>| {
                if seen.insert(c) {
                    queue.push_back(c);
                }
            };

            for requester in requester_classes(&class, n) {
                let core = core_holding(&class, requester);
                let mut reqs = vec![ReqKind::Load, ReqKind::Store];
                if requester != CacheState::I {
                    reqs.push(ReqKind::Evict);
                }
                for req in reqs {
                    for insert_kept in [false, true] {
                        let mut m = class.instantiate(n);
                        report.transitions_checked += 1;
                        match m.apply(core, req, insert_kept) {
                            Ok(row) => {
                                report.rows_covered.insert(row);
                                if let Err(e) = m.check_invariants() {
                                    report.errors.push(format!(
                                        "N={n} {class:?} core {core} {req:?} \
                                         (kept={insert_kept}): {e}"
                                    ));
                                } else {
                                    push(Class::of(&m), &mut seen, &mut queue);
                                }
                            }
                            Err(e) => {
                                report
                                    .errors
                                    .push(format!("N={n} {class:?} core {core} {req:?}: {e}"));
                            }
                        }
                    }
                }
            }

            // Environment event: the LLC silently evicts its copy.
            if class.llc {
                let mut m = class.instantiate(n);
                m.llc_evict();
                report.transitions_checked += 1;
                if let Err(e) = m.check_invariants() {
                    report
                        .errors
                        .push(format!("N={n} {class:?} llc-evict: {e}"));
                } else {
                    push(Class::of(&m), &mut seen, &mut queue);
                }
            }
        }

        report.classes_per_n.insert(n, seen.len() as u64);
        report.states_explored += seen.len() as u64;
    }

    if report.rows_covered.len() != TRANSITION_TABLE.len() {
        let missing: Vec<String> = (0..TRANSITION_TABLE.len())
            .filter(|i| !report.rows_covered.contains(i))
            .map(|i| {
                let r = &TRANSITION_TABLE[i];
                format!("row {i}: ({:?}, {:?}, {:?})", r.requester, r.others, r.req)
            })
            .collect();
        report.errors.push(format!(
            "unreachable transition-table entries: {}",
            missing.join(", ")
        ));
    }
    report
}

/// Renders the human summary.
pub(crate) fn render(report: &ProtocolReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "check-protocol: N=1..={} cores, sharer-mask symmetry classes\n",
        report.max_cores
    ));
    out.push_str(&format!(
        "  reachable classes: {} (per N: {})\n",
        report.states_explored,
        report
            .classes_per_n
            .iter()
            .map(|(n, c)| format!("{n}:{c}"))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out.push_str(&format!(
        "  transitions checked: {}\n",
        report.transitions_checked
    ));
    out.push_str(&format!(
        "  table coverage: {}/{} rows reachable\n",
        report.rows_covered.len(),
        TRANSITION_TABLE.len()
    ));
    if report.errors.is_empty() {
        out.push_str(
            "  invariants: SWMR ok; no stale owner; directory consistent; \
             no missing table entries\n",
        );
    } else {
        out.push_str(&format!("  FAILURES ({}):\n", report.errors.len()));
        for e in &report.errors {
            out.push_str(&format!("    {e}\n"));
        }
    }
    out
}

/// Builds the machine-readable report.
pub(crate) fn to_json(report: &ProtocolReport) -> Value {
    let mut obj: BTreeMap<String, Value> = BTreeMap::new();
    obj.insert(
        "max_cores".into(),
        serde_json::to_value(&(report.max_cores as u64)),
    );
    obj.insert(
        "states_explored".into(),
        serde_json::to_value(&report.states_explored),
    );
    obj.insert(
        "transitions_checked".into(),
        serde_json::to_value(&report.transitions_checked),
    );
    obj.insert(
        "rows_covered".into(),
        Value::Array(
            report
                .rows_covered
                .iter()
                .map(|&i| serde_json::to_value(&(i as u64)))
                .collect(),
        ),
    );
    obj.insert(
        "table_rows".into(),
        serde_json::to_value(&(TRANSITION_TABLE.len() as u64)),
    );
    obj.insert(
        "errors".into(),
        Value::Array(
            report
                .errors
                .iter()
                .map(|e| Value::String(e.clone()))
                .collect(),
        ),
    );
    obj.insert("ok".into(), Value::Bool(report.ok()));
    Value::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_covers_exactly_the_private_rows() {
        let report = check(1);
        assert!(report.errors.iter().all(|e| e.contains("unreachable")));
        // With one core every `others` summary is `None`: 11 of the 20
        // rows are reachable (4 load, 4 store, 3 evict).
        assert_eq!(report.rows_covered.len(), 11);
    }

    #[test]
    fn two_cores_reach_the_full_table() {
        let report = check(2);
        assert!(report.ok(), "{}", render(&report));
        assert_eq!(report.rows_covered.len(), TRANSITION_TABLE.len());
    }

    #[test]
    fn sixteen_cores_hold_every_invariant() {
        let report = check(16);
        assert!(report.ok(), "{}", render(&report));
    }
}
