//! `hllc-xtask` — workspace static-analysis driver.
//!
//! Two commands, both wired into CI's `static-analysis` job:
//!
//! * `cargo run -p hllc-xtask -- lint` — runs the custom rule engine
//!   (std-only tokenizer, no external parser) over the workspace with the
//!   per-rule allowlists in `xtask/lint.toml`, prints `file:line`
//!   diagnostics, and writes the machine-readable `lint_report.json`.
//! * `cargo run -p hllc-xtask -- check-protocol` — exhaustively
//!   enumerates the coherence protocol's reachable state space (up to 16
//!   cores' worth of sharer-mask symmetry classes) and proves SWMR,
//!   no-stale-owner, directory consistency, and exact transition-table
//!   coverage.
//!
//! Exit codes: 0 clean, 1 violations/invariant failures, 2 usage or
//! configuration errors.

mod config;
mod protocol;
mod report;
mod rules;
mod tokenizer;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p hllc-xtask -- <command> [options]

commands:
  lint             run the workspace lint rules
      --config <path>   lint configuration (default: xtask/lint.toml)
      --report <path>   machine-readable output (default: lint_report.json)
  check-protocol   enumerate the coherence-protocol state space
      --max-cores <n>   largest core count to enumerate (default: 16)
      --json <path>     also write a machine-readable report
";

/// The workspace root: this crate lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn cmd_lint(mut args: Vec<String>) -> Result<ExitCode, String> {
    let root = workspace_root();
    let config_path = take_value(&mut args, "--config")?
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("xtask/lint.toml"));
    let report_path = take_value(&mut args, "--report")?
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("lint_report.json"));
    if let Some(stray) = args.first() {
        return Err(format!("unknown lint option `{stray}`"));
    }

    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = config::parse(&text).map_err(|e| e.to_string())?;
    let outcome = rules::run(&root, &config);

    for f in &outcome.findings {
        println!("{}", rules::format_finding(f, &config.allow));
    }
    for &i in &outcome.stale_allows {
        let e = &config.allow[i];
        println!(
            "xtask/lint.toml:{}: warning: stale allowlist entry ([{}] {} contains \
             {:?} matched nothing)",
            e.line, e.rule, e.path, e.contains
        );
    }

    let doc = report::build(&outcome, &config);
    let json = serde_json::to_string_pretty(&doc).map_err(|e| format!("serialize: {e:?}"))?;
    std::fs::write(&report_path, json + "\n")
        .map_err(|e| format!("cannot write {}: {e}", report_path.display()))?;

    let violations = outcome.violations().count();
    let allowed = outcome.findings.len() - violations;
    println!(
        "lint: {} files scanned, {} violation(s), {} allowed finding(s), report: {}",
        outcome.files_scanned,
        violations,
        allowed,
        report_path.display()
    );
    Ok(if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_check_protocol(mut args: Vec<String>) -> Result<ExitCode, String> {
    let max_cores = match take_value(&mut args, "--max-cores")? {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|n| (1..=32).contains(n))
            .ok_or_else(|| format!("--max-cores wants 1..=32, got `{v}`"))?,
        None => 16,
    };
    let json_path = take_value(&mut args, "--json")?.map(PathBuf::from);
    if let Some(stray) = args.first() {
        return Err(format!("unknown check-protocol option `{stray}`"));
    }

    let report = protocol::check(max_cores);
    print!("{}", protocol::render(&report));
    if let Some(path) = json_path {
        let doc = protocol::to_json(&report);
        let json = serde_json::to_string_pretty(&doc).map_err(|e| format!("serialize: {e:?}"))?;
        std::fs::write(&path, json + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "lint" => cmd_lint(args),
        "check-protocol" => cmd_check_protocol(args),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("hllc-xtask: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
