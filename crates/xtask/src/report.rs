//! Machine-readable lint report (`lint_report.json`).

use crate::config::LintConfig;
use crate::rules::{Finding, LintOutcome, RULE_IDS};
use serde_json::Value;
use std::collections::BTreeMap;

fn num(n: u64) -> Value {
    serde_json::to_value(&n)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

fn finding_json(f: &Finding, config: &LintConfig) -> Value {
    let mut pairs = vec![
        ("rule", Value::String(f.rule.to_string())),
        ("path", Value::String(f.path.clone())),
        ("line", num(u64::from(f.line))),
        ("message", Value::String(f.message.clone())),
        ("snippet", Value::String(f.snippet.clone())),
        ("allowed", Value::Bool(f.allowed_by.is_some())),
    ];
    if let Some(i) = f.allowed_by {
        pairs.push((
            "allow_reason",
            Value::String(config.allow[i].reason.clone()),
        ));
    }
    obj(pairs)
}

/// Builds the `lint_report.json` document.
pub(crate) fn build(outcome: &LintOutcome, config: &LintConfig) -> Value {
    let per_rule: Vec<Value> = RULE_IDS
        .iter()
        .map(|id| {
            let total = outcome.findings.iter().filter(|f| f.rule == *id).count();
            let allowed = outcome
                .findings
                .iter()
                .filter(|f| f.rule == *id && f.allowed_by.is_some())
                .count();
            obj(vec![
                ("id", Value::String((*id).to_string())),
                ("findings", num(total as u64)),
                ("allowed", num(allowed as u64)),
                ("violations", num((total - allowed) as u64)),
            ])
        })
        .collect();

    let findings: Vec<Value> = outcome
        .findings
        .iter()
        .map(|f| finding_json(f, config))
        .collect();

    let stale: Vec<Value> = outcome
        .stale_allows
        .iter()
        .map(|&i| {
            let e = &config.allow[i];
            obj(vec![
                ("rule", Value::String(e.rule.clone())),
                ("path", Value::String(e.path.clone())),
                ("contains", Value::String(e.contains.clone())),
                ("config_line", num(u64::from(e.line))),
            ])
        })
        .collect();

    obj(vec![
        ("schema_version", num(1)),
        ("tool", Value::String("hllc-xtask lint".to_string())),
        ("files_scanned", num(outcome.files_scanned as u64)),
        ("violations", num(outcome.violations().count() as u64)),
        ("rules", Value::Array(per_rule)),
        ("findings", Value::Array(findings)),
        ("stale_allow_entries", Value::Array(stale)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_violations_and_allowed_separately() {
        let outcome = LintOutcome {
            findings: vec![
                Finding {
                    rule: "no-panic-paths",
                    path: "a.rs".into(),
                    line: 1,
                    message: "m".into(),
                    snippet: "s".into(),
                    allowed_by: None,
                },
                Finding {
                    rule: "no-panic-paths",
                    path: "b.rs".into(),
                    line: 2,
                    message: "m".into(),
                    snippet: "s".into(),
                    allowed_by: Some(0),
                },
            ],
            files_scanned: 2,
            stale_allows: vec![],
        };
        let mut config = LintConfig::default();
        config.allow.push(crate::config::AllowEntry {
            rule: "no-panic-paths".into(),
            path: "b.rs".into(),
            contains: String::new(),
            reason: "documented".into(),
            line: 1,
        });
        let v = build(&outcome, &config);
        let text = serde_json::to_string(&v).expect("serializes");
        assert!(text.contains("\"violations\":1") || text.contains("\"violations\": 1"));
        assert!(text.contains("documented"));
    }
}
