//! Cross-core sharing through the directory: cache-to-cache transfers,
//! invalidate-on-write, and the single-owner invariant.

use hllc_sim::{Access, ConstSizeData, Hierarchy, LlcPort, NullLlc, SystemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cfg(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.cores = cores;
    cfg.l1_sets = 2;
    cfg.l1_ways = 2;
    cfg.l2_sets = 4;
    cfg.l2_ways = 2;
    cfg
}

fn h(cores: usize) -> Hierarchy<NullLlc, ConstSizeData> {
    Hierarchy::new(&cfg(cores), NullLlc::default(), ConstSizeData::new(64))
}

const REMOTE_SLOT: usize = 6;

#[test]
fn second_reader_gets_cache_to_cache_transfer() {
    let mut h = h(2);
    h.access(&Access::load(0, 0x80)); // core 0: memory fill (E)
    h.access(&Access::load(1, 0x80)); // core 1: remote transfer
    assert_eq!(h.stats().services[5], 1, "one memory fill");
    assert_eq!(h.stats().services[REMOTE_SLOT], 1, "one remote transfer");
    h.assert_coherent();
    // Both can now read locally.
    h.access(&Access::load(0, 0x80));
    h.access(&Access::load(1, 0x80));
    assert_eq!(h.stats().services[0], 2, "both L1 hit afterwards");
}

#[test]
fn reading_a_remote_dirty_block_writes_it_back() {
    let mut h = h(2);
    h.access(&Access::store(0, 0x80)); // core 0 owns dirty data (M)
    h.access(&Access::load(1, 0x80)); // core 1 reads: transfer + LLC writeback
                                      // The dirty data was handed to the (Null) LLC: one insert with dirty,
                                      // which NullLlc counts as a writeback.
    assert_eq!(h.llc().stats().writebacks, 1);
    h.assert_coherent();
    // Core 0 still has a (now clean, shared) copy.
    h.access(&Access::load(0, 0x80));
    assert_eq!(h.stats().services[0], 1);
}

#[test]
fn writer_invalidates_all_readers() {
    let mut h = h(3);
    for core in 0..3 {
        h.access(&Access::load(core, 0x100));
    }
    h.assert_coherent();
    // Core 2 writes: cores 0 and 1 lose their copies.
    h.access(&Access::store(2, 0x100));
    assert_eq!(h.stats().remote_invalidations, 2);
    h.assert_coherent();
    // A reader must re-fetch (remote transfer from the new owner).
    let before = h.stats().services[REMOTE_SLOT];
    h.access(&Access::load(0, 0x100));
    assert_eq!(h.stats().services[REMOTE_SLOT], before + 1);
    h.assert_coherent();
}

#[test]
fn upgrade_from_shared_invalidates_peers() {
    let mut h = h(2);
    h.access(&Access::load(0, 0x40));
    h.access(&Access::load(1, 0x40)); // both S
    h.assert_coherent();
    // Core 0 writes its L1-resident shared copy: upgrade path.
    h.access(&Access::store(0, 0x40));
    assert_eq!(h.stats().remote_invalidations, 1);
    assert_eq!(h.stats().upgrades, 1);
    h.assert_coherent();
    // Core 1's next read cannot be a local hit.
    let l1_hits = h.stats().services[0];
    h.access(&Access::load(1, 0x40));
    assert_eq!(h.stats().services[0], l1_hits, "core 1's copy must be gone");
}

#[test]
fn ping_pong_writes_stay_coherent() {
    let mut h = h(2);
    for i in 0..20 {
        let core = (i % 2) as u8;
        h.access(&Access::store(core, 0x200));
        h.assert_coherent();
    }
    // Exactly one core holds the block (M); 19 of the 20 stores invalidated
    // the other side.
    assert_eq!(h.stats().remote_invalidations, 19);
}

#[test]
fn random_sharing_traffic_maintains_invariants() {
    let mut h = h(4);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..3_000 {
        let core = rng.gen_range(0..4u8);
        let addr = u64::from(rng.gen_range(0..24u8)) * 64; // heavy sharing
        if rng.gen_bool(0.3) {
            h.access(&Access::store(core, addr));
        } else {
            h.access(&Access::load(core, addr));
        }
    }
    h.assert_coherent();
    assert!(h.stats().remote_invalidations > 0);
    assert!(h.stats().services[REMOTE_SLOT] > 0);
}

#[test]
fn disjoint_workloads_never_touch_the_directory_paths() {
    let mut h = h(2);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..2_000 {
        let core = rng.gen_range(0..2u8);
        // Disjoint address spaces per core, like the real workloads.
        let addr = (u64::from(core) << 40) | (u64::from(rng.gen_range(0..64u8)) * 64);
        if rng.gen_bool(0.3) {
            h.access(&Access::store(core, addr));
        } else {
            h.access(&Access::load(core, addr));
        }
    }
    h.assert_coherent();
    assert_eq!(h.stats().remote_invalidations, 0);
    assert_eq!(h.stats().services[REMOTE_SLOT], 0);
}
