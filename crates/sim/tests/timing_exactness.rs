//! Exact timing accounting of the hierarchy's analytical model.

use hllc_sim::{Access, ConstSizeData, Hierarchy, NullLlc, SystemConfig, TimingModel};

fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.cores = 1;
    cfg
}

#[test]
fn cold_load_charges_memory_latency() {
    let cfg = cfg();
    let t = cfg.timing;
    let mut h = Hierarchy::new(&cfg, NullLlc::default(), ConstSizeData::new(64));
    let stall = h.access(&Access::load(0, 0).with_gap(7));
    assert!((stall - f64::from(t.memory) * t.load_mlp).abs() < 1e-12);
    // Clock = 8 instructions at base CPI + the stall.
    let expected = 8.0 * t.cpi_base + stall;
    assert!((h.core_clock(0) - expected).abs() < 1e-12);
}

#[test]
fn l1_hits_are_free_of_stall() {
    let cfg = cfg();
    let mut h = Hierarchy::new(&cfg, NullLlc::default(), ConstSizeData::new(64));
    h.access(&Access::load(0, 0));
    let stall = h.access(&Access::load(0, 0));
    assert_eq!(stall, 0.0, "L1 hits hide inside the pipeline");
}

#[test]
fn stores_charge_less_than_loads() {
    let cfg = cfg();
    let mut h = Hierarchy::new(&cfg, NullLlc::default(), ConstSizeData::new(64));
    let load_stall = h.access(&Access::load(0, 0x100000));
    let store_stall = h.access(&Access::store(0, 0x200000));
    assert!(store_stall < load_stall);
    let t = cfg.timing;
    assert!((store_stall - f64::from(t.memory) * t.store_mlp).abs() < 1e-12);
}

#[test]
fn l2_hit_latency_is_charged_exactly() {
    let mut cfg = cfg();
    cfg.l1_sets = 1;
    cfg.l1_ways = 1;
    let t = cfg.timing;
    let mut h = Hierarchy::new(&cfg, NullLlc::default(), ConstSizeData::new(64));
    // Fill two blocks through the 1-entry L1; the first falls back to L2.
    h.access(&Access::load(0, 0));
    h.access(&Access::load(0, 64));
    let stall = h.access(&Access::load(0, 0)); // L1 miss, L2 hit
    assert!((stall - f64::from(t.l2_hit) * t.load_mlp).abs() < 1e-12);
}

#[test]
fn ipc_matches_hand_computation() {
    let cfg = cfg();
    let t: TimingModel = cfg.timing;
    let mut h = Hierarchy::new(&cfg, NullLlc::default(), ConstSizeData::new(64));
    // One cold load with a 9-instruction gap: 10 instructions total.
    h.access(&Access::load(0, 0).with_gap(9));
    let cycles = 10.0 * t.cpi_base + f64::from(t.memory) * t.load_mlp;
    assert!((h.ipc(0) - 10.0 / cycles).abs() < 1e-12);
    assert!((h.system_ipc() - h.ipc(0)).abs() < 1e-12);
}

#[test]
fn instruction_gaps_accumulate() {
    let cfg = cfg();
    let mut h = Hierarchy::new(&cfg, NullLlc::default(), ConstSizeData::new(64));
    h.access(&Access::load(0, 0).with_gap(4));
    h.access(&Access::load(0, 0).with_gap(6)); // L1 hit
    assert_eq!(h.stats().total_instructions(), 12);
    assert_eq!(h.stats().accesses(), 2);
}
