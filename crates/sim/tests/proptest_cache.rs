//! Property-based equivalence of the generic set-associative cache against
//! a reference LRU model.

use hllc_sim::Cache;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
enum Op {
    Lookup(u64),
    Insert(u64, bool),
    Invalidate(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u64..64).prop_map(Op::Lookup),
        (0u64..64, any::<bool>()).prop_map(|(b, d)| Op::Insert(b, d)),
        (0u64..64).prop_map(Op::Invalidate),
    ];
    prop::collection::vec(op, 1..300)
}

/// Reference: per-set vectors in LRU order (front = LRU), with dirty bits.
#[derive(Default)]
struct Model {
    sets: usize,
    ways: usize,
    lists: HashMap<usize, Vec<(u64, bool)>>,
}

impl Model {
    fn new(sets: usize, ways: usize) -> Self {
        Model {
            sets,
            ways,
            lists: HashMap::new(),
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block as usize) % self.sets
    }

    fn lookup(&mut self, block: u64) -> bool {
        let set = self.set_of(block);
        let list = self.lists.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&(b, _)| b == block) {
            let e = list.remove(pos);
            list.push(e);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, block: u64, dirty: bool) -> Option<(u64, bool)> {
        let ways = self.ways;
        let set = self.set_of(block);
        let list = self.lists.entry(set).or_default();
        let victim = if list.len() == ways {
            Some(list.remove(0))
        } else {
            None
        };
        list.push((block, dirty));
        victim
    }

    fn invalidate(&mut self, block: u64) -> Option<(u64, bool)> {
        let set = self.set_of(block);
        let list = self.lists.entry(set).or_default();
        list.iter()
            .position(|&(b, _)| b == block)
            .map(|p| list.remove(p))
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_lru(ops in arb_ops(), sets_log in 0u32..3, ways in 1usize..5) {
        let sets = 1usize << sets_log;
        let mut cache: Cache<()> = Cache::new(sets, ways);
        let mut model = Model::new(sets, ways);

        for op in ops {
            match op {
                Op::Lookup(b) => {
                    let hit = cache.lookup(b).is_some();
                    prop_assert_eq!(hit, model.lookup(b), "lookup({}) diverged", b);
                }
                Op::Insert(b, d) => {
                    if cache.contains(b) {
                        // The cache's insert requires absence; refresh instead
                        // (mirrors how the hierarchy uses it).
                        cache.lookup(b);
                        model.lookup(b);
                        continue;
                    }
                    let victim = cache.insert(b, d, ());
                    let expected = model.insert(b, d);
                    match (victim, expected) {
                        (Some(v), Some((mb, md))) => {
                            prop_assert_eq!(v.block, mb);
                            prop_assert_eq!(v.dirty, md);
                        }
                        (None, None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "insert({b}) victims diverged: {got:?} vs {want:?}"
                            )));
                        }
                    }
                }
                Op::Invalidate(b) => {
                    let got = cache.invalidate(b).map(|e| (e.block, e.dirty));
                    prop_assert_eq!(got, model.invalidate(b), "invalidate({}) diverged", b);
                }
            }
        }

        // Final occupancy agrees.
        let model_occupancy: usize = model.lists.values().map(|l| l.len()).sum();
        prop_assert_eq!(cache.occupancy(), model_occupancy);
    }
}
