//! Model-based property tests for the coherence protocol.
//!
//! `check-protocol` (in `hllc-xtask`) proves the reachable state space
//! exhaustively via symmetry classes; these tests attack the same model
//! with *random concrete* request sequences, which additionally exercises
//! the model's bookkeeping glue (directory masks over arbitrary core
//! permutations) rather than only canonical representatives. A sequence
//! must never panic, never reach a configuration missing from the
//! transition table, and keep every invariant after every step.

use hllc_sim::coherence::model::{ModelState, ProtocolError};
use hllc_sim::coherence::{CacheState, ReqKind};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Request {
        core: usize,
        req: ReqKind,
        insert_kept: bool,
    },
    LlcEvict,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (any::<usize>(), 0usize..9, any::<bool>()).prop_map(|(core, r, insert_kept)| match r {
        0..=2 => Op::Request {
            core,
            req: ReqKind::Load,
            insert_kept,
        },
        3..=5 => Op::Request {
            core,
            req: ReqKind::Store,
            insert_kept,
        },
        6..=7 => Op::Request {
            core,
            req: ReqKind::Evict,
            insert_kept,
        },
        _ => Op::LlcEvict,
    })
}

proptest! {
    /// Random request sequences stay inside the transition table and keep
    /// every invariant: SWMR, no stale owner, directory consistency.
    #[test]
    fn random_sequences_never_leave_the_table(
        n in 1usize..=8,
        ops in prop::collection::vec(arb_op(), 1..200),
    ) {
        let mut m = ModelState::new(n);
        for op in ops {
            match op {
                Op::Request { core, req, insert_kept } => {
                    let core = core % n;
                    match m.apply(core, req, insert_kept) {
                        Ok(row) => prop_assert!(row < hllc_sim::coherence::TRANSITION_TABLE.len()),
                        // Evicting a block the core does not hold is the
                        // only request the model may reject.
                        Err(ProtocolError::BadRequest { .. }) => {
                            prop_assert_eq!(req, ReqKind::Evict);
                            prop_assert_eq!(m.cores[core], CacheState::I);
                        }
                        Err(e) => prop_assert!(false, "protocol fell off the table: {e}"),
                    }
                }
                Op::LlcEvict => m.llc_evict(),
            }
            if let Err(e) = m.check_invariants() {
                prop_assert!(false, "invariant violated after {e} in {m:?}");
            }
            prop_assert_eq!(m.dir_mask, m.derived_mask(), "directory mask drift");
        }
    }

    /// A load followed by a store from the same core always ends with that
    /// core as the exclusive dirty owner, whatever state the system was
    /// driven into beforehand.
    #[test]
    fn store_always_ends_in_m(
        n in 1usize..=8,
        ops in prop::collection::vec(arb_op(), 0..100),
        requester in any::<usize>(),
    ) {
        let mut m = ModelState::new(n);
        for op in ops {
            match op {
                Op::Request { core, req, insert_kept } => {
                    let _ = m.apply(core % n, req, insert_kept);
                }
                Op::LlcEvict => m.llc_evict(),
            }
        }
        let requester = requester % n;
        m.apply(requester, ReqKind::Store, false).expect("store is always legal");
        prop_assert_eq!(m.cores[requester], CacheState::M);
        for (i, &s) in m.cores.iter().enumerate() {
            if i != requester {
                prop_assert_eq!(s, CacheState::I, "SWMR after store");
            }
        }
        prop_assert!(!m.llc, "invalidate-on-hit must purge the LLC copy");
        prop_assert!(m.check_invariants().is_ok());
    }
}
