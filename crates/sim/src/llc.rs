//! The LLC attachment point: request/insert protocol, reuse tags, and
//! shared statistics.

use crate::data::DataModel;

/// Reuse classification of a block, carried between L2 and LLC (§IV-B).
///
/// * `None` — the block has shown no LLC reuse yet (all blocks start here
///   when they enter the hierarchy from main memory).
/// * `Read` — the block hit in the LLC while clean. This is the paper's
///   *read-reuse* class and coincides with LHybrid's *loop-block* tag.
/// * `Write` — the block hit in the LLC while dirty, or was re-acquired
///   with write permission (`GetX` hit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReuseClass {
    /// No reuse demonstrated yet.
    #[default]
    None,
    /// Read reuse (loop-block).
    Read,
    /// Write reuse.
    Write,
}

/// LLC request kinds issued by an L2 miss or upgrade.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LlcReq {
    /// Read request (load / fetch). A hit leaves the block in the LLC.
    GetS,
    /// Write-permission request. A hit *invalidates* the LLC copy
    /// (invalidate-on-hit, §III-A) because the private levels will hold the
    /// up-to-date dirty data from now on.
    GetX,
}

/// Outcome of an LLC request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LlcResponse {
    /// True if the block was present.
    pub hit: bool,
    /// True if the hit was served from the NVM part (slower reads).
    pub nvm: bool,
    /// True if the block was stored compressed (adds decompression +
    /// rearrangement latency, §III-B3).
    pub compressed: bool,
    /// Updated reuse tag for the block, to be stored in L2 and handed back
    /// on eviction.
    pub reuse: ReuseClass,
    /// Extra service cycles beyond the level's base latency — e.g. a read
    /// waiting for an in-progress NVM write to the same bank (Table IV's
    /// 20-cycle data-array write occupancy).
    pub extra_cycles: u32,
}

impl LlcResponse {
    /// The canonical miss response.
    pub fn miss() -> Self {
        LlcResponse {
            hit: false,
            nvm: false,
            compressed: false,
            reuse: ReuseClass::None,
            extra_cycles: 0,
        }
    }
}

/// Statistics shared by every LLC implementation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// `GetS` requests received.
    pub gets: u64,
    /// `GetX` requests received.
    pub getx: u64,
    /// Requests that hit.
    pub hits: u64,
    /// Requests that missed.
    pub misses: u64,
    /// Hits served by the SRAM part.
    pub sram_hits: u64,
    /// Hits served by the NVM part.
    pub nvm_hits: u64,
    /// Blocks inserted into the SRAM part.
    pub sram_inserts: u64,
    /// Blocks inserted into the NVM part (including migrations).
    pub nvm_inserts: u64,
    /// SRAM→NVM migrations (CA_RWR read-reuse victims, LHybrid loop-blocks).
    pub migrations: u64,
    /// Bytes written to the NVM part (ECB bytes, the lifetime currency).
    pub nvm_bytes_written: u64,
    /// Dirty evictions written back to main memory.
    pub writebacks: u64,
    /// Insertions that bypassed the LLC entirely (no usable frame).
    pub bypasses: u64,
    /// Cycles reads spent waiting behind NVM writes (bank contention).
    pub write_stall_cycles: u64,
}

impl LlcStats {
    /// Total requests.
    pub fn requests(&self) -> u64 {
        self.gets + self.getx
    }

    /// Hit rate over all requests, 0.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let r = self.requests();
        if r == 0 {
            0.0
        } else {
            self.hits as f64 / r as f64
        }
    }
}

/// Interface every last-level cache implementation plugs into the
/// [`Hierarchy`](crate::Hierarchy) through.
///
/// `now` is the global cycle count, used by epoch-based mechanisms
/// (Set Dueling).
pub trait LlcPort {
    /// Handles a `GetS`/`GetX` from an L2 miss or upgrade.
    fn request(&mut self, now: u64, block: u64, req: LlcReq) -> LlcResponse;

    /// Inserts an L2 victim (clean or dirty). `reuse` is the tag the block
    /// carried in L2. The LLC consults `data` for the compressed size.
    fn insert(
        &mut self,
        now: u64,
        block: u64,
        dirty: bool,
        reuse: ReuseClass,
        data: &mut dyn DataModel,
    );

    /// Aggregate statistics.
    fn stats(&self) -> &LlcStats;

    /// Resets the statistics counters (state is untouched).
    fn reset_stats(&mut self);
}

/// An LLC that caches nothing: every request misses, every insert is
/// dropped. Useful as the no-LLC baseline and in hierarchy unit tests.
#[derive(Clone, Debug, Default)]
pub struct NullLlc {
    stats: LlcStats,
}

impl LlcPort for NullLlc {
    fn request(&mut self, _now: u64, _block: u64, req: LlcReq) -> LlcResponse {
        match req {
            LlcReq::GetS => self.stats.gets += 1,
            LlcReq::GetX => self.stats.getx += 1,
        }
        self.stats.misses += 1;
        LlcResponse::miss()
    }

    fn insert(
        &mut self,
        _now: u64,
        _block: u64,
        dirty: bool,
        _reuse: ReuseClass,
        _data: &mut dyn DataModel,
    ) {
        self.stats.bypasses += 1;
        if dirty {
            self.stats.writebacks += 1;
        }
    }

    fn stats(&self) -> &LlcStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_llc_always_misses() {
        let mut llc = NullLlc::default();
        let r = llc.request(0, 42, LlcReq::GetS);
        assert!(!r.hit);
        llc.request(0, 42, LlcReq::GetX);
        assert_eq!(llc.stats().requests(), 2);
        assert_eq!(llc.stats().hit_rate(), 0.0);
    }

    #[test]
    fn stats_hit_rate() {
        let s = LlcStats {
            gets: 8,
            getx: 2,
            hits: 5,
            misses: 5,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}
