//! Analytical timing model (Table IV latencies).
//!
//! The paper's detailed numbers come from gem5; this reproduction uses a
//! cycle-approximate model: each memory reference charges its instruction
//! gap at the base CPI plus a stall proportional to the load-use latency of
//! the level that served it, attenuated by a memory-level-parallelism (MLP)
//! factor for the out-of-order core's ability to overlap misses. Stores are
//! largely absorbed by the store buffer and attenuated further. Absolute
//! IPC is not comparable to gem5, but *normalized* IPC — the only form the
//! paper reports — preserves its shape.

use crate::access::Op;

/// Where an access was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// L1 hit (load-use latency hidden by the pipeline).
    L1,
    /// Private L2 hit.
    L2,
    /// LLC hit in an SRAM way.
    LlcSram,
    /// LLC hit in an NVM way, uncompressed block.
    LlcNvm,
    /// LLC hit in an NVM way, compressed block (decompression +
    /// rearrangement adds 2 cycles, §III-B3).
    LlcNvmCompressed,
    /// Main memory.
    Memory,
    /// Cache-to-cache transfer from another core's L2 (directory
    /// indirection + remote array access).
    RemoteL2,
}

/// Latency and CPI parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingModel {
    /// Cycles per non-memory instruction of the 8-wide OoO core.
    pub cpi_base: f64,
    /// L2 hit load-use latency (cycles).
    pub l2_hit: u32,
    /// LLC SRAM-way load-use latency (28 cycles, Table IV).
    pub llc_sram_hit: u32,
    /// Interconnect + tag portion of an NVM-way hit (cycles). Fixed: the
    /// tag array is SRAM regardless of the data technology.
    pub llc_nvm_tag: u32,
    /// NVM data-array portion of an NVM-way hit (cycles), before scaling.
    /// Table IV: 8 of the 32 load-use cycles.
    pub llc_nvm_array: u32,
    /// Scale applied to the NVM data array only (the Figure 11b
    /// sensitivity axis). The effective NVM-hit latency is
    /// [`TimingModel::llc_nvm_hit`].
    pub nvm_latency_factor: f64,
    /// Extra cycles for BDI decompression + block rearrangement.
    pub nvm_decompress: u32,
    /// Main-memory load-use latency (cycles).
    pub memory: u32,
    /// Fraction of a load miss's latency that stalls the core.
    pub load_mlp: f64,
    /// Fraction of a store miss's latency that stalls the core.
    pub store_mlp: f64,
    /// Core frequency in GHz (Table IV: 3.5 GHz), used to convert cycles to
    /// wall-clock time in the aging forecast.
    pub freq_ghz: f64,
}

impl TimingModel {
    /// Table IV defaults.
    pub fn paper_default() -> Self {
        TimingModel {
            cpi_base: 0.25,
            l2_hit: 12,
            llc_sram_hit: 28,
            llc_nvm_tag: 24,
            llc_nvm_array: 8,
            nvm_latency_factor: 1.0,
            nvm_decompress: 2,
            memory: 180,
            load_mlp: 0.6,
            store_mlp: 0.15,
            freq_ghz: 3.5,
        }
    }

    /// LLC NVM-way load-use latency: fixed tag portion plus the scaled
    /// data array (32 cycles at factor 1.0, Table IV; 36 at the ×1.5 of
    /// Figure 11b).
    pub fn llc_nvm_hit(&self) -> u32 {
        self.llc_nvm_tag + (f64::from(self.llc_nvm_array) * self.nvm_latency_factor).round() as u32
    }

    /// Raw load-use latency of a service level.
    pub fn latency(&self, level: ServiceLevel) -> u32 {
        match level {
            ServiceLevel::L1 => 0,
            ServiceLevel::L2 => self.l2_hit,
            ServiceLevel::LlcSram => self.llc_sram_hit,
            ServiceLevel::LlcNvm => self.llc_nvm_hit(),
            ServiceLevel::LlcNvmCompressed => self.llc_nvm_hit() + self.nvm_decompress,
            ServiceLevel::Memory => self.memory,
            ServiceLevel::RemoteL2 => self.llc_sram_hit + self.l2_hit,
        }
    }

    /// Effective stall cycles charged to the core for an access of kind
    /// `op` served at `level`.
    pub fn stall(&self, op: Op, level: ServiceLevel) -> f64 {
        self.stall_cycles(op, f64::from(self.latency(level)))
    }

    /// Effective stall for a raw latency (used when the latency is
    /// variable: DRAM bank state, NVM write contention).
    pub fn stall_cycles(&self, op: Op, raw_latency: f64) -> f64 {
        match op {
            Op::Load => raw_latency * self.load_mlp,
            Op::Store => raw_latency * self.store_mlp,
        }
    }

    /// Converts a cycle count to seconds at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// Converts seconds to cycles at the configured frequency.
    pub fn seconds_to_cycles(&self, seconds: f64) -> f64 {
        seconds * self.freq_ghz * 1e9
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_ordered() {
        let t = TimingModel::paper_default();
        assert!(t.latency(ServiceLevel::L1) < t.latency(ServiceLevel::L2));
        assert!(t.latency(ServiceLevel::L2) < t.latency(ServiceLevel::LlcSram));
        assert!(t.latency(ServiceLevel::LlcSram) < t.latency(ServiceLevel::LlcNvm));
        assert!(t.latency(ServiceLevel::LlcNvm) < t.latency(ServiceLevel::LlcNvmCompressed));
        assert!(t.latency(ServiceLevel::LlcNvmCompressed) < t.latency(ServiceLevel::Memory));
        assert!(t.latency(ServiceLevel::RemoteL2) < t.latency(ServiceLevel::Memory));
        assert!(t.latency(ServiceLevel::RemoteL2) > t.latency(ServiceLevel::LlcSram));
    }

    #[test]
    fn nvm_hit_composes_tag_and_scaled_array() {
        let mut t = TimingModel::paper_default();
        assert_eq!(t.llc_nvm_hit(), 32);
        t.nvm_latency_factor = 1.5;
        assert_eq!(t.llc_nvm_hit(), 36);
        // Scaling acts on the stored base, so re-deriving is idempotent
        // and survives prior timing customization.
        t.llc_nvm_tag = 30;
        assert_eq!(t.llc_nvm_hit(), 42);
    }

    #[test]
    fn stores_stall_less_than_loads() {
        let t = TimingModel::paper_default();
        assert!(t.stall(Op::Store, ServiceLevel::Memory) < t.stall(Op::Load, ServiceLevel::Memory));
    }

    #[test]
    fn time_conversion_round_trip() {
        let t = TimingModel::paper_default();
        let cycles = 7e9;
        let s = t.cycles_to_seconds(cycles);
        assert!((t.seconds_to_cycles(s) - cycles).abs() < 1.0);
        // 3.5e9 cycles is one second.
        assert!((t.cycles_to_seconds(3.5e9) - 1.0).abs() < 1e-12);
    }
}
