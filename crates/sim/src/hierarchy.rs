//! The multi-core hierarchy: private L1/L2 over a pluggable LLC.
//!
//! # Protocol
//!
//! The hierarchy implements the paper's NVM-friendly non-inclusive model
//! (§III-A):
//!
//! * A miss in all levels fetches from main memory **directly into L1/L2**;
//!   the LLC is not filled on the way in.
//! * The victim replaced in L2, clean or dirty, is sent to the LLC and
//!   written if it was not already there.
//! * A `GetX` (write permission) request that hits the LLC returns the
//!   block and **invalidates** the LLC copy.
//!
//! # Coherence
//!
//! L2 entries carry M/E/S states: memory fills grant E (no LLC copy), LLC
//! `GetS` hits grant S (the LLC keeps a copy), stores upgrade S→M through a
//! `GetX` to the LLC and E→M silently.
//!
//! A block-granular **directory** tracks which private caches hold each
//! block. Cross-core reads of a modified block trigger a cache-to-cache
//! transfer (the dirty data is simultaneously written back into the LLC,
//! which becomes the owner — the "O" responsibility of MOESI); writes
//! invalidate every remote copy. The paper's multi-programmed workloads
//! never share, so the directory is quiescent there, but the protocol is
//! fully functional (see `assert_coherent` and the sharing tests).
//!
//! The protocol itself is specified as data: every coherence decision is
//! a lookup in [`coherence::TRANSITION_TABLE`] through the pure
//! [`coherence::step`] function, and this module only *executes* the
//! decided [`Transition`]s (cache fills, LLC probes, statistics) in a
//! fixed canonical order. `hllc-xtask -- check-protocol` exhaustively
//! enumerates the table's reachable state space offline.

use crate::access::{Access, Op};
use crate::address::block_of;
use crate::cache::Cache;
use crate::coherence::{
    self, CacheState, LlcOp, OthersClass, RemoteAction, ReqKind, ServeClass, Transition,
};
use crate::config::SystemConfig;
use crate::data::DataModel;
use crate::dram::Dram;
use crate::llc::{LlcPort, LlcReq, ReuseClass};
use crate::stats::HierarchyStats;
use crate::timing::{ServiceLevel, TimingModel};
// Keyed directory lookups only; never iterated on a simulation path (the
// only iteration is the order-insensitive `assert_coherent` diagnostic).
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
struct L2Meta {
    /// Coherence state; resident entries are never `CacheState::I`.
    state: CacheState,
    reuse: ReuseClass,
}

/// Looks the configuration up in the transition table. Reaching a
/// configuration without a table entry means the protocol invariants were
/// already broken; `check-protocol` proves the reachable space is fully
/// covered, so the panic is a last-resort guard, not a control path.
fn step_or_panic(requester: CacheState, others: OthersClass, req: ReqKind) -> Transition {
    coherence::step(requester, others, req).unwrap_or_else(|| {
        panic!("no coherence transition for ({requester:?}, {others:?}, {req:?})")
    })
}

/// Private L1/L2 per core in front of a shared LLC implementation `L`,
/// consulting data model `D` for block compressibility.
///
/// # Example
///
/// ```
/// use hllc_sim::{Access, ConstSizeData, Hierarchy, NullLlc, SystemConfig};
///
/// let mut h = Hierarchy::new(&SystemConfig::default(), NullLlc::default(),
///                            ConstSizeData::new(64));
/// h.access(&Access::load(0, 0x40));
/// h.access(&Access::load(0, 0x40)); // L1 hit
/// assert_eq!(h.stats().services[0], 1);
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy<L, D> {
    l1: Vec<Cache<()>>,
    l2: Vec<Cache<L2Meta>>,
    llc: L,
    data: D,
    timing: TimingModel,
    dram: Option<Dram>,
    /// Directory: bitmask of cores whose L2 holds each block. Entries are
    /// removed when the last sharer evicts.
    directory: HashMap<u64, u16>,
    stats: HierarchyStats,
    clocks: Vec<f64>,
}

impl<L: LlcPort, D: DataModel> Hierarchy<L, D> {
    /// Builds the hierarchy described by `cfg` around the given LLC.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` exceeds 16 (the directory uses a 16-bit
    /// sharer mask; the paper's system has 4 cores). User-facing inputs
    /// are range-checked earlier by `ExperimentSpec::validate` in
    /// `hllc-config`; this assert is the last-resort guard for configs
    /// built by hand.
    pub fn new(cfg: &SystemConfig, llc: L, data: D) -> Self {
        assert!(cfg.cores <= 16, "directory supports at most 16 cores");
        Hierarchy {
            l1: (0..cfg.cores)
                .map(|_| Cache::new(cfg.l1_sets, cfg.l1_ways))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| Cache::new(cfg.l2_sets, cfg.l2_ways))
                .collect(),
            llc,
            data,
            timing: cfg.timing,
            dram: cfg.dram.map(Dram::new),
            directory: HashMap::new(),
            stats: HierarchyStats::new(cfg.cores),
            clocks: vec![0.0; cfg.cores],
        }
    }

    /// The DRAM model, when enabled.
    pub fn dram(&self) -> Option<&Dram> {
        self.dram.as_ref()
    }

    /// The LLC implementation.
    pub fn llc(&self) -> &L {
        &self.llc
    }

    /// Mutable access to the LLC (forecast state updates, epoch pokes).
    pub fn llc_mut(&mut self) -> &mut L {
        &mut self.llc
    }

    /// The data model.
    pub fn data_mut(&mut self) -> &mut D {
        &mut self.data
    }

    /// Hierarchy statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Current cycle clock of `core`.
    pub fn core_clock(&self, core: usize) -> f64 {
        self.clocks[core]
    }

    /// Minimum clock over all cores — the global time reference for
    /// interleaving drivers.
    pub fn min_clock(&self) -> f64 {
        self.clocks.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Instructions-per-cycle of `core` (0.0 before any work).
    pub fn ipc(&self, core: usize) -> f64 {
        if self.clocks[core] == 0.0 {
            0.0
        } else {
            self.stats.instructions[core] as f64 / self.clocks[core]
        }
    }

    /// Arithmetic mean of per-core IPCs — the paper's workload metric.
    pub fn system_ipc(&self) -> f64 {
        let n = self.clocks.len();
        (0..n).map(|c| self.ipc(c)).sum::<f64>() / n as f64
    }

    /// Resets statistics and clocks (after warm-up). Cache contents and LLC
    /// policy state are preserved.
    pub fn reset_stats(&mut self) {
        let cores = self.clocks.len();
        self.stats = HierarchyStats::new(cores);
        self.clocks.iter_mut().for_each(|c| *c = 0.0);
        self.llc.reset_stats();
    }

    /// Executes one memory reference, advancing the issuing core's clock.
    /// Returns the stall cycles charged.
    pub fn access(&mut self, a: &Access) -> f64 {
        let core = a.core as usize;
        let block = block_of(a.addr);

        self.clocks[core] += a.instructions() as f64 * self.timing.cpi_base;
        self.stats.instructions[core] += a.instructions();
        match a.op {
            Op::Load => self.stats.loads += 1,
            Op::Store => self.stats.stores += 1,
        }

        let now = self.clocks[core] as u64;
        let (level, raw_latency) = self.serve(core, block, a.op, now);
        // level_slot maps every ServiceLevel into 0..SERVICE_LEVELS.
        self.stats.services[HierarchyStats::level_slot(level)] += 1;

        let stall = self.timing.stall_cycles(a.op, f64::from(raw_latency));
        self.clocks[core] += stall;
        stall
    }

    /// Resolves `block` for `core`, returning the serving level and its
    /// raw latency in cycles (variable for DRAM and contended NVM banks).
    fn serve(&mut self, core: usize, block: u64, op: Op, now: u64) -> (ServiceLevel, u32) {
        // L1.
        if self.l1[core].lookup(block).is_some() {
            if op == Op::Store {
                self.ensure_writable(core, block, now);
            }
            return (ServiceLevel::L1, self.timing.latency(ServiceLevel::L1));
        }

        // L2.
        if self.l2[core].lookup(block).is_some() {
            if op == Op::Store {
                self.ensure_writable(core, block, now);
            }
            self.fill_l1(core, block);
            return (ServiceLevel::L2, self.timing.latency(ServiceLevel::L2));
        }

        // Miss in the private levels: classify the rest of the system and
        // let the transition table decide what happens.
        let remote_mask = self.directory.get(&block).copied().unwrap_or(0) & !(1u16 << core);
        let others = self.classify_remotes(block, remote_mask);
        let req = if op == Op::Store {
            ReqKind::Store
        } else {
            ReqKind::Load
        };
        let t = step_or_panic(CacheState::I, others, req);
        match t.serve {
            ServeClass::Remote => {
                let level = self.serve_from_remote(core, block, &t, remote_mask, now);
                (level, self.timing.latency(level))
            }
            ServeClass::LlcOrMemory | ServeClass::Local | ServeClass::NoService => {
                debug_assert_eq!(t.serve, ServeClass::LlcOrMemory);
                self.serve_from_llc_or_memory(core, block, &t, now)
            }
        }
    }

    /// Executes an `LlcOrMemory` transition: probe the LLC, fall back to
    /// main memory, fill the private levels in the table-decided state.
    fn serve_from_llc_or_memory(
        &mut self,
        core: usize,
        block: u64,
        t: &Transition,
        now: u64,
    ) -> (ServiceLevel, u32) {
        let req = match t.llc {
            LlcOp::GetX => LlcReq::GetX,
            LlcOp::GetS
            | LlcOp::None
            | LlcOp::WritebackDirty
            | LlcOp::InsertClean
            | LlcOp::InsertDirty => {
                debug_assert_eq!(t.llc, LlcOp::GetS);
                LlcReq::GetS
            }
        };
        let resp = self.llc.request(now, block, req);
        let (level, latency, state, reuse) = if resp.hit {
            let level = match (resp.nvm, resp.compressed) {
                (false, _) => ServiceLevel::LlcSram,
                (true, false) => ServiceLevel::LlcNvm,
                (true, true) => ServiceLevel::LlcNvmCompressed,
            };
            let latency = self.timing.latency(level) + resp.extra_cycles;
            (level, latency, t.next_on_hit, resp.reuse)
        } else {
            let latency = match &mut self.dram {
                Some(dram) => dram.access(block, now),
                None => self.timing.latency(ServiceLevel::Memory),
            };
            (
                ServiceLevel::Memory,
                latency,
                t.next_on_miss,
                ReuseClass::None,
            )
        };

        self.fill_l2(core, block, state, reuse, now);
        self.fill_l1(core, block);
        if t.dirty_fill {
            self.mark_dirty(core, block);
        }
        (level, latency)
    }

    /// Summarizes the remote holders of `block` for the transition table:
    /// a dirty owner wins, then an exclusive-clean owner, then sharers.
    fn classify_remotes(&self, block: u64, remote_mask: u16) -> OthersClass {
        if remote_mask == 0 {
            return OthersClass::None;
        }
        let mut class = OthersClass::Sharers;
        for other in 0..self.l2.len() {
            if remote_mask & (1 << other) == 0 {
                continue;
            }
            // other < l2.len() by the loop bound.
            let Some(e) = self.l2[other].peek(block) else {
                debug_assert!(false, "directory points at a core without the block");
                continue;
            };
            match e.aux.state {
                CacheState::M => return OthersClass::OwnerM,
                CacheState::E => class = OthersClass::OwnerE,
                CacheState::S | CacheState::I => {}
            }
        }
        class
    }

    /// Grants write permission for a block already held in L2: S requires a
    /// `GetX` through the LLC (invalidate-on-hit); E/M upgrade silently.
    /// The table decides; this only executes the transition.
    fn ensure_writable(&mut self, core: usize, block: u64, now: u64) {
        let Some(entry) = self.l2[core].lookup(block) else {
            debug_assert!(false, "writable block must be in L2");
            return;
        };
        let state = entry.aux.state;
        // SWMR (proven by `check-protocol`) lets the owner states skip the
        // directory probe: an E/M holder never has remote company.
        let (others, remote_mask) = match state {
            CacheState::M | CacheState::E => (OthersClass::None, 0),
            CacheState::S | CacheState::I => {
                let mask = self.directory.get(&block).copied().unwrap_or(0) & !(1u16 << core);
                (self.classify_remotes(block, mask), mask)
            }
        };
        let t = step_or_panic(state, others, ReqKind::Store);
        if t.upgrade {
            self.stats.upgrades += 1;
        }
        if t.remote == RemoteAction::Invalidate {
            self.invalidate_remote(core, block, remote_mask);
        }
        match t.llc {
            LlcOp::GetX => {
                let resp = self.llc.request(now, block, LlcReq::GetX);
                let Some(entry) = self.l2[core].lookup(block) else {
                    debug_assert!(false, "upgraded block vanished from L2");
                    return;
                };
                entry.aux.state = if resp.hit {
                    t.next_on_hit
                } else {
                    t.next_on_miss
                };
                if resp.hit {
                    entry.aux.reuse = resp.reuse;
                }
            }
            LlcOp::None
            | LlcOp::GetS
            | LlcOp::WritebackDirty
            | LlcOp::InsertClean
            | LlcOp::InsertDirty => {
                debug_assert_eq!(t.llc, LlcOp::None);
                if let Some(entry) = self.l2[core].entry_mut(block) {
                    entry.aux.state = t.next_on_hit;
                }
            }
        }
        debug_assert!(t.dirty_fill, "store transitions always dirty the copy");
        self.mark_dirty(core, block);
    }

    fn mark_dirty(&mut self, core: usize, block: u64) {
        if let Some(e) = self.l2[core].lookup(block) {
            e.dirty = true;
            debug_assert_eq!(e.aux.state, CacheState::M, "dirty block must be in M");
        }
    }

    fn fill_l1(&mut self, core: usize, block: u64) {
        // L1 victims need no action: the dirty bit is propagated to L2 at
        // store time, so the L1 copy is never the only up-to-date one.
        let _ = self.l1[core].insert(block, false, ());
    }

    /// Fills L2 and routes the L2 victim (clean or dirty) into the LLC —
    /// the non-inclusive insertion path that generates all LLC write
    /// traffic. The victim follows the table's `Evict` transitions
    /// (requester → I, LLC insert, clean or dirty by coherence state);
    /// those rows do not depend on the remote summary, so the hot path
    /// skips re-classifying the victim block.
    fn fill_l2(&mut self, core: usize, block: u64, state: CacheState, reuse: ReuseClass, now: u64) {
        debug_assert_ne!(state, CacheState::I, "resident entries are never I");
        let victim = self.l2[core].insert(block, false, L2Meta { state, reuse });
        *self.directory.entry(block).or_insert(0) |= 1 << core;
        if let Some(v) = victim {
            debug_assert_eq!(
                v.dirty,
                v.aux.state == CacheState::M,
                "victim dirtiness must match its coherence state"
            );
            // Inclusion: drop the L1 copy of the victim.
            let _ = self.l1[core].invalidate(v.block);
            self.directory_drop(core, v.block);
            self.llc
                .insert(now, v.block, v.dirty, v.aux.reuse, &mut self.data);
        }
    }

    /// Clears `core`'s directory bit for `block`, removing empty entries.
    fn directory_drop(&mut self, core: usize, block: u64) {
        if let Some(mask) = self.directory.get_mut(&block) {
            *mask &= !(1u16 << core);
            if *mask == 0 {
                self.directory.remove(&block);
            }
        }
    }

    /// Executes a `Remote` transition: serves an L2 miss from a remote
    /// private cache (cache-to-cache).
    ///
    /// * `Downgrade` (loads): every remote copy drops to S; a modified
    ///   owner's dirty data is written back into the LLC (which becomes
    ///   the owner) as it is forwarded. The requester receives S.
    /// * `Invalidate` (stores): every remote copy (L1 + L2) is
    ///   invalidated; the requester receives M. Any LLC copy is
    ///   invalidated too (GetX).
    fn serve_from_remote(
        &mut self,
        core: usize,
        block: u64,
        t: &Transition,
        remote_mask: u16,
        now: u64,
    ) -> ServiceLevel {
        let mut forwarded_reuse = ReuseClass::None;
        if t.remote == RemoteAction::Invalidate {
            self.invalidate_remote(core, block, remote_mask);
            // The LLC may also hold a (clean) copy: invalidate-on-GetX.
            debug_assert_eq!(t.llc, LlcOp::GetX);
            let resp = self.llc.request(now, block, LlcReq::GetX);
            if resp.hit {
                forwarded_reuse = resp.reuse;
            }
            self.fill_l2(core, block, t.next_on_hit, forwarded_reuse, now);
            self.fill_l1(core, block);
            if t.dirty_fill {
                self.mark_dirty(core, block);
            }
        } else {
            debug_assert_eq!(t.remote, RemoteAction::Downgrade);
            let mut observed_dirty = false;
            for other in 0..self.l2.len() {
                if remote_mask & (1 << other) == 0 {
                    continue;
                }
                let Some(entry) = self.l2[other].entry_mut(block) else {
                    debug_assert!(false, "directory points at a core without the block");
                    continue;
                };
                if entry.dirty {
                    observed_dirty = true;
                }
                forwarded_reuse = entry.aux.reuse;
                entry.dirty = false;
                entry.aux.state = CacheState::S;
            }
            let writeback = t.llc == LlcOp::WritebackDirty;
            debug_assert_eq!(
                writeback, observed_dirty,
                "table writeback decision must match the observed owner state"
            );
            if writeback {
                // Ownership of the dirty data transfers to the LLC.
                self.llc
                    .insert(now, block, true, forwarded_reuse, &mut self.data);
            }
            self.fill_l2(core, block, t.next_on_hit, forwarded_reuse, now);
            self.fill_l1(core, block);
        }
        ServiceLevel::RemoteL2
    }

    /// Invalidates `block` in every core of `mask` (L1 and L2), updating
    /// the directory. Dirty remote data is implicitly forwarded to the
    /// requesting writer (which will mark its own copy dirty).
    fn invalidate_remote(&mut self, _requester: usize, block: u64, mask: u16) {
        for other in 0..self.l2.len() {
            if mask & (1 << other) == 0 {
                continue;
            }
            let _ = self.l1[other].invalidate(block);
            let _ = self.l2[other].invalidate(block);
            self.directory_drop(other, block);
            self.stats.remote_invalidations += 1;
        }
    }

    /// Verifies the coherence invariants (test/diagnostic helper):
    /// directory bits match L2 contents exactly; a block with any M/E
    /// holder has exactly one holder; dirty copies are in M.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_coherent(&self) {
        for (block, mask) in &self.directory {
            let mut holders = 0u32;
            let mut exclusive = false;
            for core in 0..self.l2.len() {
                let has = self.l2[core].peek(*block).is_some();
                let bit = mask & (1 << core) != 0;
                assert_eq!(
                    has, bit,
                    "directory bit mismatch for block {block:#x} core {core}"
                );
                if let Some(e) = self.l2[core].peek(*block) {
                    holders += 1;
                    assert_ne!(e.aux.state, CacheState::I, "resident block {block:#x} in I");
                    if e.aux.state != CacheState::S {
                        exclusive = true;
                    }
                    if e.dirty {
                        assert_eq!(
                            e.aux.state,
                            CacheState::M,
                            "dirty block {block:#x} not in M"
                        );
                    }
                }
            }
            assert!(
                !(exclusive && holders > 1),
                "block {block:#x} exclusive with {holders} holders"
            );
        }
        // Every L2-resident block must be in the directory.
        for core in 0..self.l2.len() {
            for e in self.l2[core].iter() {
                let mask = self.directory.get(&e.block).copied().unwrap_or(0);
                assert!(
                    mask & (1 << core) != 0,
                    "block {:#x} in L2 {core} missing from directory",
                    e.block
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::data::ConstSizeData;
    use crate::llc::{LlcResponse, LlcStats, NullLlc};

    fn tiny_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_default();
        cfg.cores = 2;
        cfg.l1_sets = 2;
        cfg.l1_ways = 2;
        cfg.l2_sets = 2;
        cfg.l2_ways = 2;
        cfg
    }

    fn h() -> Hierarchy<NullLlc, ConstSizeData> {
        Hierarchy::new(&tiny_cfg(), NullLlc::default(), ConstSizeData::new(64))
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = h();
        h.access(&Access::load(0, 0x40));
        h.access(&Access::load(0, 0x40));
        assert_eq!(h.stats().services[0], 1); // one L1 hit
        assert_eq!(h.stats().services[5], 1); // one memory fill
    }

    #[test]
    fn l2_victims_are_inserted_into_llc() {
        let mut h = h();
        // Fill one L2 set (2 ways) and overflow it: 3 blocks, same set.
        // L2 has 2 sets, so blocks 0, 2, 4 share set 0.
        for b in [0u64, 2, 4] {
            h.access(&Access::load(0, b * 64));
        }
        // Victim of the third fill must have been offered to the LLC.
        assert_eq!(h.llc().stats().bypasses, 1);
    }

    #[test]
    fn store_after_shared_fill_issues_upgrade() {
        // An LLC that reports hits so fills are granted S.
        #[derive(Default)]
        struct HitLlc {
            stats: LlcStats,
            invalidated: Vec<u64>,
        }
        impl LlcPort for HitLlc {
            fn request(&mut self, _n: u64, block: u64, req: LlcReq) -> LlcResponse {
                match req {
                    LlcReq::GetS => self.stats.gets += 1,
                    LlcReq::GetX => {
                        self.stats.getx += 1;
                        self.invalidated.push(block);
                    }
                }
                self.stats.hits += 1;
                LlcResponse {
                    hit: true,
                    nvm: false,
                    compressed: false,
                    reuse: ReuseClass::Read,
                    extra_cycles: 0,
                }
            }
            fn insert(
                &mut self,
                _n: u64,
                _b: u64,
                _d: bool,
                _r: ReuseClass,
                _dm: &mut dyn DataModel,
            ) {
            }
            fn stats(&self) -> &LlcStats {
                &self.stats
            }
            fn reset_stats(&mut self) {
                self.stats = LlcStats::default();
            }
        }

        let mut h = Hierarchy::new(&tiny_cfg(), HitLlc::default(), ConstSizeData::new(64));
        h.access(&Access::load(0, 0x80)); // GetS hit -> S state
        h.access(&Access::store(0, 0x80)); // L1 hit but S: must GetX
        assert_eq!(h.stats().upgrades, 1);
        assert_eq!(h.llc().invalidated, vec![2]);
        // A second store needs no new upgrade (now M).
        h.access(&Access::store(0, 0x80));
        assert_eq!(h.stats().upgrades, 1);
    }

    #[test]
    fn store_miss_is_getx_and_dirty_eviction_follows() {
        let mut h = h();
        h.access(&Access::store(0, 0)); // miss -> memory, M, dirty
        assert_eq!(h.llc().stats().getx, 1);
        // Evict it by filling the set: set 0 holds blocks 0,2,4.
        h.access(&Access::load(0, 2 * 64));
        h.access(&Access::load(0, 4 * 64));
        // Victim (block 0) must be offered dirty: NullLlc counts writebacks.
        assert_eq!(h.llc().stats().writebacks, 1);
    }

    #[test]
    fn shared_reads_are_forwarded_between_cores() {
        let mut h = h();
        h.access(&Access::load(0, 0x100));
        h.access(&Access::load(1, 0x100));
        // One memory fill; the second core is served core-to-core.
        assert_eq!(h.stats().services[5], 1);
        assert_eq!(h.stats().services[6], 1);
        h.assert_coherent();
    }

    #[test]
    fn disjoint_blocks_stay_private() {
        let mut h = h();
        h.access(&Access::load(0, 0x100));
        h.access(&Access::load(1, 0x10000));
        assert_eq!(h.stats().services[5], 2);
        assert_eq!(h.stats().services[6], 0);
        h.assert_coherent();
    }

    #[test]
    fn twelve_cores_share_through_the_widened_directory() {
        let mut cfg = tiny_cfg();
        cfg.cores = 12;
        let mut h = Hierarchy::new(&cfg, NullLlc::default(), ConstSizeData::new(64));
        // Every core reads the same block: the high cores exercise the
        // sharer-mask bits beyond the old u8 width.
        for core in 0..12 {
            h.access(&Access::load(core as u8, 0x1000));
        }
        h.assert_coherent();
        // One memory fill, eleven cache-to-cache transfers.
        assert_eq!(h.stats().services[5], 1);
        assert_eq!(h.stats().services[6], 11);
        // A store from core 11 invalidates all other copies.
        h.access(&Access::store(11, 0x1000));
        assert_eq!(h.stats().remote_invalidations, 11);
        h.assert_coherent();
    }

    #[test]
    fn clocks_advance_with_stalls() {
        let mut h = h();
        let before = h.core_clock(0);
        h.access(&Access::load(0, 0).with_gap(10));
        assert!(h.core_clock(0) > before);
        assert!(h.ipc(0) > 0.0);
        // Other core untouched.
        assert_eq!(h.core_clock(1), 0.0);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut h = h();
        h.access(&Access::load(0, 0x40));
        h.reset_stats();
        assert_eq!(h.stats().accesses(), 0);
        h.access(&Access::load(0, 0x40));
        // Still an L1 hit: contents survived the reset.
        assert_eq!(h.stats().services[0], 1);
    }
}
