//! Address manipulation helpers.
//!
//! All caches use 64-byte blocks (Table IV), so block addresses are byte
//! addresses shifted right by [`BLOCK_OFFSET_BITS`]. Set indices are the low
//! bits of the block address.

/// log2 of the block size (64 B).
pub const BLOCK_OFFSET_BITS: u32 = 6;

/// Converts a byte address to a block address.
///
/// # Example
///
/// ```
/// use hllc_sim::block_of;
///
/// assert_eq!(block_of(0x0), 0);
/// assert_eq!(block_of(0x3F), 0);
/// assert_eq!(block_of(0x40), 1);
/// ```
pub fn block_of(byte_addr: u64) -> u64 {
    byte_addr >> BLOCK_OFFSET_BITS
}

/// Converts a block address back to the byte address of its first byte.
pub fn block_addr(block: u64) -> u64 {
    block << BLOCK_OFFSET_BITS
}

/// Extracts the set index for a cache with `sets` sets (must be a power of
/// two) from a block address.
///
/// # Panics
///
/// Panics in debug builds if `sets` is not a power of two.
pub fn set_index(block: u64, sets: usize) -> usize {
    debug_assert!(sets.is_power_of_two(), "set count must be a power of two");
    (block as usize) & (sets - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trip() {
        assert_eq!(block_of(block_addr(1234)), 1234);
    }

    #[test]
    fn set_index_masks_low_bits() {
        assert_eq!(set_index(0x1234, 256), 0x34);
        assert_eq!(set_index(0xFF, 16), 0xF);
    }

    #[test]
    fn consecutive_blocks_map_to_consecutive_sets() {
        let sets = 128;
        for b in 0..2 * sets as u64 {
            assert_eq!(set_index(b, sets), (b as usize) % sets);
        }
    }
}
