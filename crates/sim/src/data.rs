//! The data model: where block *contents* come from.
//!
//! The insertion policies only need the compressed size of a block at LLC
//! insertion time. Rather than carrying 64-byte payloads through the whole
//! hierarchy, the hierarchy consults a [`DataModel`] when it inserts a block
//! into the LLC. The workload generator (`hllc-trace`) implements this trait
//! by synthesizing real 64-byte payloads from per-application
//! compressibility profiles and running them through the real BDI
//! compressor, memoizing the result per block.

/// Source of per-block compressed sizes.
pub trait DataModel {
    /// Compressed size in bytes (1–64) of the current contents of `block`.
    fn compressed_size(&mut self, block: u64) -> u8;
}

/// A trivial data model where every block compresses to the same size.
/// Useful for unit tests and for the incompressible upper bound.
///
/// # Example
///
/// ```
/// use hllc_sim::{ConstSizeData, DataModel};
///
/// let mut d = ConstSizeData::new(22);
/// assert_eq!(d.compressed_size(0xABC), 22);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstSizeData {
    size: u8,
}

impl ConstSizeData {
    /// Creates a model reporting `size` bytes for every block.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds 64.
    pub fn new(size: u8) -> Self {
        assert!((1..=64).contains(&size), "compressed size must be 1..=64");
        ConstSizeData { size }
    }
}

impl DataModel for ConstSizeData {
    fn compressed_size(&mut self, _block: u64) -> u8 {
        self.size
    }
}

impl<D: DataModel + ?Sized> DataModel for &mut D {
    fn compressed_size(&mut self, block: u64) -> u8 {
        (**self).compressed_size(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_size() {
        let mut d = ConstSizeData::new(64);
        assert_eq!(d.compressed_size(1), 64);
        assert_eq!(d.compressed_size(2), 64);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_zero() {
        ConstSizeData::new(0);
    }
}
