//! A banked, open-page DRAM model.
//!
//! Table IV specifies one DDR4 channel. The default hierarchy charges a
//! fixed memory latency; enabling this model replaces it with a
//! bank-visible one: row-buffer hits pay CAS only, row misses pay
//! precharge + activate + CAS, and requests queue behind a busy bank.
//! Latencies are expressed in core cycles (3.5 GHz: ~14 ns ≈ 50 cycles per
//! DRAM timing step).

/// DRAM timing and geometry parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks in the channel.
    pub banks: usize,
    /// Blocks per row (a 2 KB row holds 32 64-byte blocks).
    pub blocks_per_row: u64,
    /// Core cycles for a row-buffer hit (CAS + bus).
    pub row_hit_cycles: u32,
    /// Core cycles for a closed-row access (activate + CAS + bus).
    pub row_miss_cycles: u32,
    /// Additional core cycles to precharge an open conflicting row.
    pub precharge_cycles: u32,
    /// Core cycles a bank stays busy per access (command occupancy).
    pub bank_occupancy_cycles: u32,
}

impl DramConfig {
    /// One DDR4-2400-ish channel at a 3.5 GHz core clock.
    pub fn ddr4_single_channel() -> Self {
        DramConfig {
            banks: 16,
            blocks_per_row: 32,
            row_hit_cycles: 90,
            row_miss_cycles: 160,
            precharge_cycles: 50,
            bank_occupancy_cycles: 24,
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr4_single_channel()
    }
}

/// Per-bank open-row state.
#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The DRAM channel: open-page row buffers plus bank queueing.
///
/// # Example
///
/// ```
/// use hllc_sim::{Dram, DramConfig};
///
/// let mut d = Dram::new(DramConfig::ddr4_single_channel());
/// let first = d.access(0, 0);   // row miss
/// let second = d.access(1, 1_000); // same row: row hit, cheaper
/// assert!(second < first);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    row_hits: u64,
    row_misses: u64,
    conflicts: u64,
}

impl Dram {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no banks or empty rows.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0, "need at least one bank");
        assert!(cfg.blocks_per_row > 0, "rows must hold blocks");
        Dram {
            cfg,
            banks: vec![Bank::default(); cfg.banks],
            row_hits: 0,
            row_misses: 0,
            conflicts: 0,
        }
    }

    fn locate(&self, block: u64) -> (usize, u64) {
        let row = block / self.cfg.blocks_per_row;
        // XOR-fold the row into the bank index to spread streams.
        let bank = ((row ^ (row >> 7)) as usize) % self.cfg.banks;
        (bank, row)
    }

    /// Services one block access at time `now`, returning its latency in
    /// core cycles (including any wait for the bank).
    pub fn access(&mut self, block: u64, now: u64) -> u32 {
        let (bank_idx, row) = self.locate(block);
        // locate() reduces the bank index modulo cfg.banks == banks.len().
        let bank = &mut self.banks[bank_idx];

        let queue_wait = bank.busy_until.saturating_sub(now) as u32;
        let service = match bank.open_row {
            Some(open) if open == row => {
                self.row_hits += 1;
                self.cfg.row_hit_cycles
            }
            Some(_) => {
                self.conflicts += 1;
                self.cfg.precharge_cycles + self.cfg.row_miss_cycles
            }
            None => {
                self.row_misses += 1;
                self.cfg.row_miss_cycles
            }
        };
        bank.open_row = Some(row);
        bank.busy_until = now.max(bank.busy_until) + u64::from(self.cfg.bank_occupancy_cycles);
        queue_wait + service
    }

    /// (row hits, row misses, row conflicts) served so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.row_hits, self.row_misses, self.conflicts)
    }

    /// Resets the row-locality statistics (open rows are kept).
    pub fn reset_stats(&mut self) {
        self.row_hits = 0;
        self.row_misses = 0;
        self.conflicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::ddr4_single_channel())
    }

    #[test]
    fn row_hits_are_cheaper_than_misses() {
        let mut d = dram();
        let miss = d.access(0, 0);
        let hit = d.access(1, 10_000);
        assert!(hit < miss, "row hit {hit} !< miss {miss}");
        assert_eq!(d.stats(), (1, 1, 0));
    }

    #[test]
    fn row_conflicts_pay_precharge() {
        let cfg = DramConfig::ddr4_single_channel();
        let mut d = Dram::new(cfg);
        let (bank0, row0) = d.locate(0);
        d.access(0, 0);
        // Find a block in the same bank but a different row.
        let block = (1..)
            .map(|r| r * cfg.blocks_per_row)
            .find(|&b| {
                let (bank, row) = d.locate(b);
                bank == bank0 && row != row0
            })
            .unwrap();
        let lat = d.access(block, 1_000_000); // bank idle by then
        assert_eq!(lat, cfg.precharge_cycles + cfg.row_miss_cycles);
        assert_eq!(d.stats().2, 1, "must count one conflict");
    }

    #[test]
    fn busy_bank_queues_requests() {
        let mut d = dram();
        let l1 = d.access(0, 0);
        // Immediate second access to the same bank waits out the occupancy.
        let l2 = d.access(1, 0);
        assert!(l2 > d.cfg.row_hit_cycles, "queued access must wait: {l2}");
        let _ = l1;
    }

    #[test]
    fn sequential_stream_is_mostly_row_hits() {
        let mut d = dram();
        for b in 0..320u64 {
            d.access(b, b * 500);
        }
        let (hits, misses, conflicts) = d.stats();
        assert!(hits > 300, "streaming should hit the row buffer: {hits}");
        assert!(misses + conflicts <= 20);
    }

    #[test]
    fn random_stream_mostly_misses() {
        let mut d = dram();
        let mut x = 0x12345u64;
        for i in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            d.access(x >> 20, i * 500);
        }
        let (hits, misses, conflicts) = d.stats();
        assert!(
            misses + conflicts > hits,
            "random stream should thrash rows"
        );
    }
}
