//! System configuration (Table IV).

use crate::dram::DramConfig;
use crate::timing::TimingModel;

/// Geometry of the shared hybrid LLC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LlcGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// SRAM ways per set (4 in the paper's main configuration).
    pub sram_ways: usize,
    /// NVM ways per set (12 in the paper's main configuration).
    pub nvm_ways: usize,
}

impl LlcGeometry {
    /// Total associativity.
    pub fn total_ways(&self) -> usize {
        self.sram_ways + self.nvm_ways
    }

    /// Total capacity in bytes at 64 B per block.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.total_ways() * 64
    }
}

/// Full system configuration: core count, private cache geometry, LLC
/// geometry, and timing.
///
/// # Example
///
/// ```
/// use hllc_sim::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// assert_eq!(cfg.cores, 4);
/// assert_eq!(cfg.llc.sram_ways, 4);
/// assert_eq!(cfg.llc.nvm_ways, 12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (paper: 4).
    pub cores: usize,
    /// L1 data cache sets (32 KB, 4-way, 64 B blocks → 128 sets).
    pub l1_sets: usize,
    /// L1 associativity (paper: 4).
    pub l1_ways: usize,
    /// Private L2 sets (128 KB, 16-way → 128 sets).
    pub l2_sets: usize,
    /// L2 associativity (paper: 16).
    pub l2_ways: usize,
    /// Shared LLC geometry.
    pub llc: LlcGeometry,
    /// Timing parameters.
    pub timing: TimingModel,
    /// Banked open-page DRAM model; `None` charges the flat
    /// `timing.memory` latency instead (the calibrated default).
    pub dram: Option<DramConfig>,
}

impl SystemConfig {
    /// The paper's Table IV system: 4 cores, 32 KB L1, 128 KB L2,
    /// 4 MB LLC (4096 sets × 16 ways), 4 SRAM + 12 NVM ways.
    pub fn paper_default() -> Self {
        SystemConfig {
            cores: 4,
            l1_sets: 128,
            l1_ways: 4,
            l2_sets: 128,
            l2_ways: 16,
            llc: LlcGeometry {
                sets: 4096,
                sram_ways: 4,
                nvm_ways: 12,
            },
            timing: TimingModel::paper_default(),
            dram: None,
        }
    }

    /// Doubles the private L2 (the Figure 11a sensitivity study).
    pub fn with_l2_doubled(mut self) -> Self {
        self.l2_sets *= 2;
        self
    }

    /// Sets the SRAM/NVM way split (Figures 10b and 11c studies).
    pub fn with_way_split(mut self, sram_ways: usize, nvm_ways: usize) -> Self {
        self.llc.sram_ways = sram_ways;
        self.llc.nvm_ways = nvm_ways;
        self
    }

    /// Enables the banked open-page DRAM model.
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = Some(dram);
        self
    }

    /// Scales the NVM read latency (the Figure 11b ×1.5 study raises the
    /// 8-cycle data array to 12 cycles, i.e. load-use 32 → 36). Only the
    /// scale is stored; the effective latency derives from the base
    /// `timing.llc_nvm_tag`/`llc_nvm_array`, so applying this after other
    /// timing customization (or twice) does not reset them.
    pub fn with_nvm_latency_factor(mut self, factor: f64) -> Self {
        self.timing.nvm_latency_factor = factor;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_llc_is_4mb() {
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.llc.capacity_bytes(), 4 * 1024 * 1024);
        assert_eq!(cfg.llc.total_ways(), 16);
    }

    #[test]
    fn l2_doubling() {
        let cfg = SystemConfig::paper_default().with_l2_doubled();
        assert_eq!(cfg.l2_sets, 256);
    }

    #[test]
    fn nvm_latency_factor() {
        let cfg = SystemConfig::paper_default().with_nvm_latency_factor(1.5);
        assert_eq!(cfg.timing.llc_nvm_hit(), 36);
        let cfg1 = SystemConfig::paper_default().with_nvm_latency_factor(1.0);
        assert_eq!(cfg1.timing.llc_nvm_hit(), 32);
        // Applying the factor twice, or after customizing the base, no
        // longer resets the latency to a literal.
        let twice = cfg.clone().with_nvm_latency_factor(1.5);
        assert_eq!(twice.timing.llc_nvm_hit(), 36);
        let mut custom = SystemConfig::paper_default();
        custom.timing.llc_nvm_array = 10;
        let custom = custom.with_nvm_latency_factor(1.5);
        assert_eq!(custom.timing.llc_nvm_hit(), 39);
    }

    #[test]
    fn way_split() {
        let cfg = SystemConfig::paper_default().with_way_split(3, 13);
        assert_eq!(cfg.llc.sram_ways, 3);
        assert_eq!(cfg.llc.nvm_ways, 13);
        assert_eq!(cfg.llc.total_ways(), 16);
    }
}
