//! Memory-reference trace records.

/// Kind of memory reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// A load (read). LLC misses issue `GetS`.
    Load,
    /// A store (write). The hierarchy fetches on write miss (Table IV) and
    /// acquires write permission via `GetX`.
    Store,
}

/// One memory reference of a core's instruction stream.
///
/// `inst_gap` is the number of non-memory instructions executed since the
/// previous memory reference of the same core; the timing model charges
/// them at the base CPI. This stands in for the instruction stream of the
/// trace-driven simulator (DESIGN.md substitution #2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Issuing core (0-based).
    pub core: u8,
    /// Load or store.
    pub op: Op,
    /// Byte address.
    pub addr: u64,
    /// Non-memory instructions preceding this reference.
    pub inst_gap: u32,
}

impl Access {
    /// Convenience constructor for a load with no instruction gap.
    pub fn load(core: u8, addr: u64) -> Self {
        Access {
            core,
            op: Op::Load,
            addr,
            inst_gap: 0,
        }
    }

    /// Convenience constructor for a store with no instruction gap.
    pub fn store(core: u8, addr: u64) -> Self {
        Access {
            core,
            op: Op::Store,
            addr,
            inst_gap: 0,
        }
    }

    /// Returns a copy with the given instruction gap.
    pub fn with_gap(mut self, inst_gap: u32) -> Self {
        self.inst_gap = inst_gap;
        self
    }

    /// Number of instructions this record accounts for (the gap plus the
    /// memory instruction itself).
    pub fn instructions(&self) -> u64 {
        u64::from(self.inst_gap) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = Access::load(2, 0x80).with_gap(9);
        assert_eq!(a.core, 2);
        assert_eq!(a.op, Op::Load);
        assert_eq!(a.instructions(), 10);
        assert_eq!(Access::store(0, 0).op, Op::Store);
    }
}
