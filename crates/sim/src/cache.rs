//! A generic set-associative, write-back cache with true-LRU replacement,
//! used for the private L1 and L2 levels.

use crate::address::set_index;

/// One valid cache entry carrying caller-defined metadata `T`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry<T> {
    /// Block address stored in this entry.
    pub block: u64,
    /// True if the copy is modified with respect to the next level.
    pub dirty: bool,
    /// Caller metadata (e.g. coherence state, reuse tag).
    pub aux: T,
    lru: u64,
}

/// A block evicted by [`Cache::insert`] or removed by [`Cache::invalidate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evicted<T> {
    /// Block address of the victim.
    pub block: u64,
    /// True if the victim was dirty and must be passed down.
    pub dirty: bool,
    /// Caller metadata of the victim.
    pub aux: T,
}

/// Set-associative cache of block addresses with per-set LRU.
///
/// # Example
///
/// ```
/// use hllc_sim::Cache;
///
/// let mut c: Cache<()> = Cache::new(2, 2);
/// assert!(c.insert(0, false, ()).is_none());
/// assert!(c.lookup(0).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Cache<T> {
    sets: usize,
    ways: usize,
    entries: Vec<Option<Entry<T>>>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl<T> Cache<T> {
    /// Creates an empty cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "cache must have at least one way");
        Cache {
            sets,
            ways,
            entries: (0..sets * ways).map(|_| None).collect(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Hits recorded by [`Cache::lookup`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`Cache::lookup`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_range(&self, block: u64) -> std::ops::Range<usize> {
        let s = set_index(block, self.sets);
        s * self.ways..(s + 1) * self.ways
    }

    /// Looks a block up, updating LRU and hit/miss statistics. Returns the
    /// entry on a hit.
    pub fn lookup(&mut self, block: u64) -> Option<&mut Entry<T>> {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(block);
        // range is in bounds: set_index(_, sets) < sets, len == sets * ways.
        let hit = self.entries[range]
            .iter_mut()
            .flatten()
            .find(|e| e.block == block);
        match hit {
            Some(e) => {
                self.hits += 1;
                e.lru = stamp;
                Some(e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Mutable access to a block's entry without touching LRU order or
    /// hit/miss statistics — for coherence actions (downgrades) performed
    /// *on* a cache rather than *by* it.
    pub fn entry_mut(&mut self, block: u64) -> Option<&mut Entry<T>> {
        // set_range is in bounds (see `lookup`).
        let range = self.set_range(block);
        self.entries[range]
            .iter_mut()
            .flatten()
            .find(|e| e.block == block)
    }

    /// Looks a block up without touching LRU or statistics.
    pub fn peek(&self, block: u64) -> Option<&Entry<T>> {
        let range = self.set_range(block);
        self.entries[range]
            .iter()
            .flatten()
            .find(|e| e.block == block)
    }

    /// Inserts a block (which must not already be present), evicting the
    /// set's LRU entry if the set is full. Returns the victim, if any.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block is already present.
    pub fn insert(&mut self, block: u64, dirty: bool, aux: T) -> Option<Evicted<T>> {
        debug_assert!(
            self.peek(block).is_none(),
            "block {block:#x} already present"
        );
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(block);

        // Prefer an invalid way; otherwise evict the LRU entry.
        let mut victim_idx = range.start;
        let mut victim_lru = u64::MAX;
        for i in range.clone() {
            // i ranges over the set's ways (range ⊆ entries).
            match &self.entries[i] {
                None => {
                    victim_idx = i;
                    break;
                }
                Some(e) if e.lru < victim_lru => {
                    victim_idx = i;
                    victim_lru = e.lru;
                }
                Some(_) => {}
            }
        }

        // victim_idx was chosen inside `range`, so it is in bounds.
        let evicted = self.entries[victim_idx].take().map(|e| Evicted {
            block: e.block,
            dirty: e.dirty,
            aux: e.aux,
        });
        self.entries[victim_idx] = Some(Entry {
            block,
            dirty,
            aux,
            lru: stamp,
        });
        evicted
    }

    /// Removes a block if present, returning it.
    pub fn invalidate(&mut self, block: u64) -> Option<Evicted<T>> {
        let range = self.set_range(block);
        for i in range {
            // i ranges over the set's ways (range ⊆ entries).
            if let Some(e) = self.entries[i].take_if(|e| e.block == block) {
                return Some(Evicted {
                    block: e.block,
                    dirty: e.dirty,
                    aux: e.aux,
                });
            }
        }
        None
    }

    /// True if the block is cached.
    pub fn contains(&self, block: u64) -> bool {
        self.peek(block).is_some()
    }

    /// Number of valid entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Iterates over all valid entries.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        self.entries.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c: Cache<u8> = Cache::new(4, 2);
        c.insert(100, false, 7);
        let e = c.lookup(100).expect("hit");
        assert_eq!(e.aux, 7);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // One set, two ways: fill a, b; touch a; inserting c evicts b.
        let mut c: Cache<()> = Cache::new(1, 2);
        c.insert(1, false, ());
        c.insert(2, false, ());
        c.lookup(1);
        let victim = c.insert(3, false, ()).expect("eviction");
        assert_eq!(victim.block, 2);
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c: Cache<()> = Cache::new(1, 1);
        c.insert(5, true, ());
        let v = c.insert(9, false, ()).unwrap();
        assert!(v.dirty);
        assert_eq!(v.block, 5);
    }

    #[test]
    fn invalidate_removes() {
        let mut c: Cache<()> = Cache::new(2, 2);
        c.insert(4, true, ());
        let v = c.invalidate(4).unwrap();
        assert!(v.dirty);
        assert!(!c.contains(4));
        assert!(c.invalidate(4).is_none());
    }

    #[test]
    fn sets_are_independent() {
        let mut c: Cache<()> = Cache::new(2, 1);
        c.insert(0, false, ()); // set 0
        c.insert(1, false, ()); // set 1
        assert!(c.insert(3, false, ()).is_some()); // set 1 again -> evicts 1
        assert!(c.contains(0));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn empty_ways_used_before_eviction() {
        let mut c: Cache<()> = Cache::new(1, 4);
        for b in 0..4 {
            assert!(c.insert(b, false, ()).is_none());
        }
        assert!(c.insert(4, false, ()).is_some());
    }

    #[test]
    fn peek_does_not_affect_lru() {
        let mut c: Cache<()> = Cache::new(1, 2);
        c.insert(1, false, ());
        c.insert(2, false, ());
        let _ = c.peek(1); // must not refresh 1
        let victim = c.insert(3, false, ()).unwrap();
        assert_eq!(victim.block, 1);
    }
}
