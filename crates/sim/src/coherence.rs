//! Pure, table-driven coherence protocol (§III-A).
//!
//! The MESI-subset directory protocol the [`Hierarchy`](crate::Hierarchy)
//! implements is specified here as data: an explicit
//! [`TRANSITION_TABLE`] mapping every reachable
//! (requester state, others summary, request) configuration to a
//! [`Transition`], and a pure, side-effect-free lookup [`step`]. The
//! hierarchy *executes* transitions (cache fills, LLC probes, stats);
//! this module only *decides* them, which is what lets
//! `hllc-xtask -- check-protocol` exhaustively enumerate the reachable
//! state space and prove the protocol invariants offline:
//!
//! * **SWMR** — at most one core in `E`/`M`, never alongside sharers;
//! * **no-stale-owner** — while a core owns a block (`E`/`M`), the LLC
//!   holds no copy (memory fills bypass the LLC, `GetX` hits invalidate);
//! * **sharer-mask/dir-state consistency** — the directory mask equals
//!   the set of cores whose L2 holds the block;
//! * **table coverage** — every reachable configuration has exactly one
//!   table entry, and every table entry is reachable.
//!
//! The [`model`] submodule is the executable form of the abstract
//! protocol over N cores; the checker and the property tests drive it.

/// Per-core private-cache (L2) coherence state.
///
/// `I` means "not present"; resident L2 entries are never `I`. The states
/// are the MESI subset of §III-A: `E` is granted on a memory fill (no LLC
/// copy), `S` on an LLC or cache-to-cache read, `M` on any write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CacheState {
    /// Invalid / not present.
    I = 0,
    /// Shared clean: the LLC or other cores may also hold a copy.
    S = 1,
    /// Exclusive clean: filled from memory; no other copy anywhere.
    E = 2,
    /// Modified: exclusive and dirty; no other copy anywhere.
    M = 3,
}

/// The requester-relative summary of every *other* core's state.
///
/// Under SWMR these four classes are exhaustive: an owner (`E`/`M`) never
/// coexists with remote sharers, so the remote side is either empty, all
/// shared, or a single owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OthersClass {
    /// No other core holds the block.
    None = 0,
    /// One or more other cores hold the block in `S`.
    Sharers = 1,
    /// Exactly one other core holds the block in `E`.
    OwnerE = 2,
    /// Exactly one other core holds the block in `M` (dirty).
    OwnerM = 3,
}

/// Coherence-relevant request kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ReqKind {
    /// A load issued by the requesting core.
    Load = 0,
    /// A store issued by the requesting core.
    Store = 1,
    /// The requesting core's L2 evicts its copy (victim to the LLC).
    Evict = 2,
}

/// What the shared LLC is asked to do during a transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlcOp {
    /// The LLC is not involved.
    None,
    /// Read probe: a hit leaves the LLC copy in place.
    GetS,
    /// Write-permission probe: a hit *invalidates* the LLC copy
    /// (invalidate-on-hit, §III-A).
    GetX,
    /// The remote owner's dirty data is written back into the LLC as it is
    /// forwarded (ownership transfers to the LLC).
    WritebackDirty,
    /// The evicted clean victim is inserted into the LLC.
    InsertClean,
    /// The evicted dirty victim is inserted into the LLC.
    InsertDirty,
}

/// What happens to the remote copies during a transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteAction {
    /// Remote copies are untouched.
    None,
    /// Every remote copy is downgraded to `S` (read forward).
    Downgrade,
    /// Every remote copy is invalidated (write).
    Invalidate,
}

/// Where the request is served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeClass {
    /// The requester already holds the block (L1/L2 hit).
    Local,
    /// Cache-to-cache transfer from a remote private cache.
    Remote,
    /// LLC probe; on a miss the block comes from main memory.
    LlcOrMemory,
    /// Not a service (evictions).
    NoService,
}

/// The pure outcome of one coherence step: the requester's next state, the
/// fate of remote copies, and the LLC involvement. The hierarchy executes
/// these effects in a fixed canonical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Requester state when the LLC probe hits (or unconditionally, when
    /// the transition involves no probe).
    pub next_on_hit: CacheState,
    /// Requester state when the LLC probe misses (equals `next_on_hit`
    /// when the transition involves no probe).
    pub next_on_miss: CacheState,
    /// Fate of remote copies.
    pub remote: RemoteAction,
    /// LLC involvement.
    pub llc: LlcOp,
    /// Service classification (drives the latency charged).
    pub serve: ServeClass,
    /// True if the step counts as an S→M upgrade in the statistics.
    pub upgrade: bool,
    /// True if the requester must mark its copy dirty afterwards (every
    /// store path; `M` is always dirty).
    pub dirty_fill: bool,
}

/// One row of the protocol specification.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Requesting core's current state.
    pub requester: CacheState,
    /// Summary of the other cores.
    pub others: OthersClass,
    /// The request being served.
    pub req: ReqKind,
    /// The decided transition.
    pub action: Transition,
}

const fn t(
    next_on_hit: CacheState,
    next_on_miss: CacheState,
    remote: RemoteAction,
    llc: LlcOp,
    serve: ServeClass,
    upgrade: bool,
    dirty_fill: bool,
) -> Transition {
    Transition {
        next_on_hit,
        next_on_miss,
        remote,
        llc,
        serve,
        upgrade,
        dirty_fill,
    }
}

const fn rule(
    requester: CacheState,
    others: OthersClass,
    req: ReqKind,
    action: Transition,
) -> Rule {
    Rule {
        requester,
        others,
        req,
        action,
    }
}

use CacheState::{E, I, M, S};
use LlcOp::{GetS, GetX, InsertClean, InsertDirty, WritebackDirty};
use OthersClass::{OwnerE, OwnerM, Sharers};
use RemoteAction::{Downgrade, Invalidate};
use ReqKind::{Evict, Load, Store};
use ServeClass::{LlcOrMemory, Local, NoService, Remote};

/// The complete protocol: every reachable (requester, others, request)
/// configuration and its transition. `check-protocol` proves this list is
/// exactly the reachable set — no entry missing, none unreachable.
pub const TRANSITION_TABLE: &[Rule] = &[
    // ---- Loads on a locally held block: silent hits. -------------------
    rule(
        S,
        OthersClass::None,
        Load,
        t(S, S, RemoteAction::None, LlcOp::None, Local, false, false),
    ),
    rule(
        S,
        Sharers,
        Load,
        t(S, S, RemoteAction::None, LlcOp::None, Local, false, false),
    ),
    rule(
        E,
        OthersClass::None,
        Load,
        t(E, E, RemoteAction::None, LlcOp::None, Local, false, false),
    ),
    rule(
        M,
        OthersClass::None,
        Load,
        t(M, M, RemoteAction::None, LlcOp::None, Local, false, false),
    ),
    // ---- Load misses. --------------------------------------------------
    // Nobody else holds it: probe the LLC; a hit grants S (the LLC keeps
    // its copy), a miss fills from memory in E.
    rule(
        I,
        OthersClass::None,
        Load,
        t(S, E, RemoteAction::None, GetS, LlcOrMemory, false, false),
    ),
    // Remote sharers: cache-to-cache forward, requester joins in S.
    rule(
        I,
        Sharers,
        Load,
        t(S, S, Downgrade, LlcOp::None, Remote, false, false),
    ),
    // Remote exclusive-clean owner: downgrade to S, forward.
    rule(
        I,
        OwnerE,
        Load,
        t(S, S, Downgrade, LlcOp::None, Remote, false, false),
    ),
    // Remote modified owner: downgrade to S; the dirty data is written
    // back into the LLC (which becomes the owner) as it is forwarded.
    rule(
        I,
        OwnerM,
        Load,
        t(S, S, Downgrade, WritebackDirty, Remote, false, false),
    ),
    // ---- Stores on a locally held block. -------------------------------
    rule(
        M,
        OthersClass::None,
        Store,
        t(M, M, RemoteAction::None, LlcOp::None, Local, false, true),
    ),
    // E→M upgrades silently (no bus traffic).
    rule(
        E,
        OthersClass::None,
        Store,
        t(M, M, RemoteAction::None, LlcOp::None, Local, false, true),
    ),
    // S→M is an upgrade: GetX through the LLC (invalidate-on-hit).
    rule(
        S,
        OthersClass::None,
        Store,
        t(M, M, RemoteAction::None, GetX, Local, true, true),
    ),
    // ... invalidating any remote shared copies first.
    rule(
        S,
        Sharers,
        Store,
        t(M, M, Invalidate, GetX, Local, true, true),
    ),
    // ---- Store misses. -------------------------------------------------
    // Nobody else holds it: GetX probe (invalidate-on-hit), fill in M.
    rule(
        I,
        OthersClass::None,
        Store,
        t(M, M, RemoteAction::None, GetX, LlcOrMemory, false, true),
    ),
    // Remote copies exist: invalidate them all; a remote dirty owner's
    // data is implicitly forwarded to the requesting writer.
    rule(
        I,
        Sharers,
        Store,
        t(M, M, Invalidate, GetX, Remote, false, true),
    ),
    rule(
        I,
        OwnerE,
        Store,
        t(M, M, Invalidate, GetX, Remote, false, true),
    ),
    rule(
        I,
        OwnerM,
        Store,
        t(M, M, Invalidate, GetX, Remote, false, true),
    ),
    // ---- Evictions (L2 victim to the LLC, non-inclusive insertion). ----
    rule(
        S,
        OthersClass::None,
        Evict,
        t(
            I,
            I,
            RemoteAction::None,
            InsertClean,
            NoService,
            false,
            false,
        ),
    ),
    rule(
        S,
        Sharers,
        Evict,
        t(
            I,
            I,
            RemoteAction::None,
            InsertClean,
            NoService,
            false,
            false,
        ),
    ),
    rule(
        E,
        OthersClass::None,
        Evict,
        t(
            I,
            I,
            RemoteAction::None,
            InsertClean,
            NoService,
            false,
            false,
        ),
    ),
    rule(
        M,
        OthersClass::None,
        Evict,
        t(
            I,
            I,
            RemoteAction::None,
            InsertDirty,
            NoService,
            false,
            false,
        ),
    ),
];

/// Number of distinct (requester, others, request) keys.
const KEY_SPACE: usize = 4 * 4 * 3;

const fn key(requester: CacheState, others: OthersClass, req: ReqKind) -> usize {
    requester as usize * 12 + others as usize * 3 + req as usize
}

/// Dense index from configuration key to table row, built at compile time.
/// A duplicate table entry is a compile error.
const LUT: [Option<u8>; KEY_SPACE] = {
    let mut lut: [Option<u8>; KEY_SPACE] = [None; KEY_SPACE];
    let mut i = 0;
    while i < TRANSITION_TABLE.len() {
        // i is bounded by the loop; key() < KEY_SPACE for all enum values.
        let r = &TRANSITION_TABLE[i];
        let k = key(r.requester, r.others, r.req);
        // k < KEY_SPACE as above.
        assert!(lut[k].is_none(), "duplicate transition-table entry");
        lut[k] = Some(i as u8);
        i += 1;
    }
    lut
};

/// Looks the configuration up in the transition table. Returns `None` for
/// configurations the protocol proves unreachable (e.g. a requester in `M`
/// alongside a remote owner) — hitting `None` at runtime is a protocol
/// bug, and `check-protocol` verifies the reachable set is fully covered.
pub const fn step(requester: CacheState, others: OthersClass, req: ReqKind) -> Option<Transition> {
    // key() < KEY_SPACE for all enum values; LUT stores table indices.
    match LUT[key(requester, others, req)] {
        // i came out of LUT, which only holds valid row indices.
        Some(i) => Some(TRANSITION_TABLE[i as usize].action),
        None => None,
    }
}

/// Like [`step`], but returns the index of the matching
/// [`TRANSITION_TABLE`] row — the checker uses this to prove every entry
/// reachable.
pub const fn step_index(requester: CacheState, others: OthersClass, req: ReqKind) -> Option<usize> {
    match LUT[key(requester, others, req)] {
        Some(i) => Some(i as usize),
        None => None,
    }
}

pub mod model {
    //! Executable abstract model of the protocol over N cores.
    //!
    //! This is the same transition table applied to an abstract system
    //! state: per-core [`CacheState`]s, one LLC presence bit, and the
    //! directory sharer mask, with the LLC environment (inserts kept or
    //! bypassed, silent LLC evictions) left nondeterministic. The
    //! `check-protocol` state-space checker enumerates it exhaustively;
    //! the property tests drive it with random request sequences.

    use super::{
        step_index, CacheState, LlcOp, OthersClass, RemoteAction, ReqKind, ServeClass,
        TRANSITION_TABLE,
    };

    /// A protocol invariant violation or specification gap found while
    /// applying a request to the abstract model.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum ProtocolError {
        /// A reachable (requester, others, request) configuration has no
        /// transition-table entry.
        MissingEntry {
            /// Requesting core's state.
            requester: CacheState,
            /// Summary of the other cores.
            others: OthersClass,
            /// The request without an entry.
            req: ReqKind,
        },
        /// More than one core in `E`/`M`, or an owner alongside sharers.
        MultipleOwners {
            /// Number of cores in `E` or `M`.
            owners: usize,
            /// Number of cores in `S`.
            sharers: usize,
        },
        /// A core owns the block (`E`/`M`) while the LLC also holds a copy.
        StaleOwner {
            /// The owning core.
            core: usize,
            /// The owner's state.
            state: CacheState,
        },
        /// The directory mask disagrees with the per-core states.
        DirMismatch {
            /// The directory's sharer mask.
            mask: u32,
            /// The mask derived from the per-core states.
            derived: u32,
        },
        /// A request was applied to a core that cannot issue it (evicting
        /// a block the core does not hold).
        BadRequest {
            /// The offending core.
            core: usize,
            /// The request.
            req: ReqKind,
        },
    }

    impl std::fmt::Display for ProtocolError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                ProtocolError::MissingEntry {
                    requester,
                    others,
                    req,
                } => write!(
                    f,
                    "no transition-table entry for ({requester:?}, {others:?}, {req:?})"
                ),
                ProtocolError::MultipleOwners { owners, sharers } => write!(
                    f,
                    "SWMR violated: {owners} owner(s) with {sharers} sharer(s)"
                ),
                ProtocolError::StaleOwner { core, state } => write!(
                    f,
                    "stale owner: core {core} in {state:?} while the LLC holds a copy"
                ),
                ProtocolError::DirMismatch { mask, derived } => write!(
                    f,
                    "directory mask {mask:#x} != derived sharer set {derived:#x}"
                ),
                ProtocolError::BadRequest { core, req } => {
                    write!(f, "core {core} cannot issue {req:?} in state I")
                }
            }
        }
    }

    /// Abstract state of one block across the system.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    pub struct ModelState {
        /// Per-core L2 state.
        pub cores: Vec<CacheState>,
        /// True if the LLC holds a copy.
        pub llc: bool,
        /// Directory sharer mask, maintained by the modeled directory
        /// bookkeeping (checked against `cores` by
        /// [`ModelState::check_invariants`]).
        pub dir_mask: u32,
    }

    impl ModelState {
        /// All-invalid initial state for `n` cores (n ≤ 32).
        pub fn new(n: usize) -> Self {
            assert!((1..=32).contains(&n), "model supports 1..=32 cores");
            ModelState {
                cores: vec![CacheState::I; n],
                llc: false,
                dir_mask: 0,
            }
        }

        /// Classifies every core but `core`, the way the hierarchy does
        /// before consulting the table: a dirty owner wins, then an
        /// exclusive-clean owner, then sharers.
        pub fn others_class(&self, core: usize) -> OthersClass {
            let mut class = OthersClass::None;
            for (i, s) in self.cores.iter().enumerate() {
                if i == core {
                    continue;
                }
                match s {
                    CacheState::M => return OthersClass::OwnerM,
                    CacheState::E => class = OthersClass::OwnerE,
                    CacheState::S => {
                        if class == OthersClass::None {
                            class = OthersClass::Sharers;
                        }
                    }
                    CacheState::I => {}
                }
            }
            class
        }

        /// Applies `req` issued by `core`, mirroring the hierarchy's
        /// directory bookkeeping. `insert_kept` resolves the LLC's
        /// nondeterministic choice to keep or bypass an inserted victim
        /// (only meaningful for `Evict` and dirty-forward writebacks).
        ///
        /// Returns the index of the [`TRANSITION_TABLE`] row applied.
        pub fn apply(
            &mut self,
            core: usize,
            req: ReqKind,
            insert_kept: bool,
        ) -> Result<usize, ProtocolError> {
            // The caller picks `core` from 0..cores.len().
            let requester = self.cores[core];
            if req == ReqKind::Evict && requester == CacheState::I {
                return Err(ProtocolError::BadRequest { core, req });
            }
            let others = self.others_class(core);
            let Some(idx) = step_index(requester, others, req) else {
                return Err(ProtocolError::MissingEntry {
                    requester,
                    others,
                    req,
                });
            };
            // step_index only returns valid table rows.
            let t = TRANSITION_TABLE[idx].action;

            // Remote copies.
            match t.remote {
                RemoteAction::None => {}
                RemoteAction::Downgrade => {
                    for (i, s) in self.cores.iter_mut().enumerate() {
                        if i != core && *s != CacheState::I {
                            *s = CacheState::S;
                        }
                    }
                }
                RemoteAction::Invalidate => {
                    for (i, s) in self.cores.iter_mut().enumerate() {
                        if i != core && *s != CacheState::I {
                            *s = CacheState::I;
                            self.dir_mask &= !(1u32 << i);
                        }
                    }
                }
            }

            // LLC involvement. Probes resolve hit/miss against the
            // presence bit; writebacks and inserts may be kept or dropped
            // by the (abstract) LLC.
            let probe_hit = self.llc;
            match t.llc {
                LlcOp::None => {}
                LlcOp::GetS => {}
                LlcOp::GetX => self.llc = false, // invalidate-on-hit (no-op on miss)
                LlcOp::WritebackDirty | LlcOp::InsertClean | LlcOp::InsertDirty => {
                    self.llc = self.llc || insert_kept;
                }
            }

            // Requester state and directory bit.
            let next = if probe_hit {
                t.next_on_hit
            } else {
                t.next_on_miss
            };
            self.cores[core] = next;
            if next == CacheState::I {
                self.dir_mask &= !(1u32 << core);
            } else if matches!(t.serve, ServeClass::Remote | ServeClass::LlcOrMemory) {
                self.dir_mask |= 1u32 << core;
            }
            Ok(idx)
        }

        /// The LLC silently evicts its copy (environment event).
        pub fn llc_evict(&mut self) {
            self.llc = false;
        }

        /// Sharer mask derived from the per-core states.
        pub fn derived_mask(&self) -> u32 {
            self.cores
                .iter()
                .enumerate()
                .filter(|(_, s)| **s != CacheState::I)
                .fold(0u32, |m, (i, _)| m | (1u32 << i))
        }

        /// Verifies SWMR, no-stale-owner, and sharer-mask/dir-state
        /// consistency.
        pub fn check_invariants(&self) -> Result<(), ProtocolError> {
            let mut owners = 0usize;
            let mut sharers = 0usize;
            let mut owner_core = 0usize;
            let mut owner_state = CacheState::I;
            for (i, s) in self.cores.iter().enumerate() {
                match s {
                    CacheState::E | CacheState::M => {
                        owners += 1;
                        owner_core = i;
                        owner_state = *s;
                    }
                    CacheState::S => sharers += 1,
                    CacheState::I => {}
                }
            }
            if owners > 1 || (owners == 1 && sharers > 0) {
                return Err(ProtocolError::MultipleOwners { owners, sharers });
            }
            if owners == 1 && self.llc {
                return Err(ProtocolError::StaleOwner {
                    core: owner_core,
                    state: owner_state,
                });
            }
            let derived = self.derived_mask();
            if derived != self.dir_mask {
                return Err(ProtocolError::DirMismatch {
                    mask: self.dir_mask,
                    derived,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::model::{ModelState, ProtocolError};
    use super::*;

    #[test]
    fn table_has_no_duplicates_and_lut_agrees() {
        for (i, r) in TRANSITION_TABLE.iter().enumerate() {
            assert_eq!(step_index(r.requester, r.others, r.req), Some(i));
            assert_eq!(step(r.requester, r.others, r.req), Some(r.action));
        }
    }

    #[test]
    fn swmr_violating_configurations_have_no_entry() {
        // A requester already in M never coexists with another owner.
        assert_eq!(step(M, OwnerM, Load), None);
        assert_eq!(step(M, OwnerE, Store), None);
        assert_eq!(step(E, Sharers, Load), None);
        // A block the core does not hold cannot be evicted.
        assert_eq!(step(I, OthersClass::None, Evict), None);
    }

    #[test]
    fn load_miss_grants_e_from_memory_and_s_from_llc() {
        let t = step(I, OthersClass::None, Load).unwrap();
        assert_eq!(t.next_on_hit, S);
        assert_eq!(t.next_on_miss, E);
        assert_eq!(t.llc, GetS);
    }

    #[test]
    fn model_basic_sharing_round_trip() {
        let mut m = ModelState::new(4);
        m.apply(0, Load, false).unwrap(); // memory fill: E
        assert_eq!(m.cores[0], E);
        m.apply(1, Load, false).unwrap(); // forward: both S
        assert_eq!((m.cores[0], m.cores[1]), (S, S));
        m.apply(2, Store, false).unwrap(); // invalidate both, M
        assert_eq!(m.cores, vec![I, I, M, I]);
        m.check_invariants().unwrap();
        // Reading the dirty owner writes the data back into the LLC.
        m.apply(3, Load, true).unwrap();
        assert!(m.llc);
        assert_eq!((m.cores[2], m.cores[3]), (S, S));
        m.check_invariants().unwrap();
    }

    #[test]
    fn model_rejects_eviction_of_an_absent_block() {
        let mut m = ModelState::new(2);
        assert_eq!(
            m.apply(0, Evict, true),
            Err(ProtocolError::BadRequest {
                core: 0,
                req: Evict
            })
        );
    }

    #[test]
    fn model_detects_a_corrupted_directory() {
        let mut m = ModelState::new(2);
        m.apply(0, Load, false).unwrap();
        m.dir_mask = 0; // corrupt it
        assert!(matches!(
            m.check_invariants(),
            Err(ProtocolError::DirMismatch { .. })
        ));
    }
}
