//! Trace-driven multi-core cache-hierarchy simulator.
//!
//! This crate provides the substrate the hybrid LLC sits under in
//! *Compression-Aware and Performance-Efficient Insertion Policies for
//! Long-Lasting Hybrid LLCs* (HPCA 2023), §III-A and Table IV:
//!
//! * private, inclusive L1/L2 per core with LRU replacement;
//! * a *non-inclusive, mostly-exclusive* LLC attachment: memory fills go
//!   directly to the private levels, L2 victims (clean or dirty) are
//!   inserted into the LLC, and `GetX` requests that hit the LLC invalidate
//!   the LLC copy;
//! * a block-granular directory coherence layer: M/E/S states in L2,
//!   upgrade-on-write through the LLC, cache-to-cache transfers with
//!   LLC-writeback of forwarded dirty data, and invalidate-on-write — fully
//!   functional for shared data, quiescent under the paper's
//!   multi-programmed (disjoint) workloads;
//! * an analytical timing model using the paper's latencies;
//! * the [`LlcPort`] trait that concrete last-level caches (the hybrid LLC
//!   in `hllc-core`) plug into.
//!
//! # Example
//!
//! ```
//! use hllc_sim::{Access, ConstSizeData, Hierarchy, NullLlc, SystemConfig};
//!
//! let cfg = SystemConfig::default();
//! let mut h = Hierarchy::new(&cfg, NullLlc::default(), ConstSizeData::new(64));
//! let stall = h.access(&Access::load(0, 0x1000));
//! assert!(stall > 0.0); // cold miss goes to memory
//! ```

mod access;
mod address;
mod cache;
pub mod coherence;
mod config;
mod data;
mod dram;
mod energy;
mod hierarchy;
mod llc;
mod stats;
mod timing;

pub use access::{Access, Op};
pub use address::{block_addr, block_of, set_index, BLOCK_OFFSET_BITS};
pub use cache::{Cache, Entry, Evicted};
pub use config::{LlcGeometry, SystemConfig};
pub use data::{ConstSizeData, DataModel};
pub use dram::{Dram, DramConfig};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use hierarchy::Hierarchy;
pub use llc::{LlcPort, LlcReq, LlcResponse, LlcStats, NullLlc, ReuseClass};
pub use stats::HierarchyStats;
pub use timing::TimingModel;
