//! Aggregate hierarchy statistics.

use crate::timing::ServiceLevel;

/// Counters collected by the [`Hierarchy`](crate::Hierarchy).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HierarchyStats {
    /// Instructions retired per core (memory references + gaps).
    pub instructions: Vec<u64>,
    /// Accesses served at each level: `[L1, L2, LLC-SRAM, LLC-NVM,
    /// LLC-NVM-compressed, memory, remote-L2]`.
    pub services: [u64; 7],
    /// Loads observed.
    pub loads: u64,
    /// Stores observed.
    pub stores: u64,
    /// Write-permission upgrades that had to consult the LLC.
    pub upgrades: u64,
    /// Remote private-cache copies invalidated by writes (coherence).
    pub remote_invalidations: u64,
}

impl HierarchyStats {
    /// Creates zeroed statistics for `cores` cores.
    pub fn new(cores: usize) -> Self {
        HierarchyStats {
            instructions: vec![0; cores],
            ..Default::default()
        }
    }

    pub(crate) fn level_slot(level: ServiceLevel) -> usize {
        match level {
            ServiceLevel::L1 => 0,
            ServiceLevel::L2 => 1,
            ServiceLevel::LlcSram => 2,
            ServiceLevel::LlcNvm => 3,
            ServiceLevel::LlcNvmCompressed => 4,
            ServiceLevel::Memory => 5,
            ServiceLevel::RemoteL2 => 6,
        }
    }

    /// Accesses that reached main memory.
    pub fn memory_accesses(&self) -> u64 {
        self.services[5]
    }

    /// Total memory references.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total instructions across cores.
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_distinct() {
        use ServiceLevel::*;
        let mut seen = [false; 7];
        for l in [L1, L2, LlcSram, LlcNvm, LlcNvmCompressed, Memory, RemoteL2] {
            let s = HierarchyStats::level_slot(l);
            assert!(!seen[s]);
            seen[s] = true;
        }
    }
}
