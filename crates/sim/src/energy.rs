//! LLC energy accounting.
//!
//! The hybrid-LLC literature the paper builds on (TAP in particular)
//! motivates NVM-aware insertion with *energy*: STT-MRAM reads are cheap
//! and its leakage is negligible, but writes are energy-hungry, while SRAM
//! burns leakage continuously. This module computes a post-hoc energy
//! breakdown from the LLC statistics — dynamic energy per access plus
//! per-byte NVM write energy (so compression directly saves write energy)
//! and leakage over the simulated interval.
//!
//! The default coefficients are representative NVSim-style values for a
//! 4 MB LLC at 16 nm (documented, not paper-normative — the paper does not
//! tabulate its energy numbers).

use crate::llc::LlcStats;

/// Energy coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// SRAM read energy per access (pJ).
    pub sram_read_pj: f64,
    /// SRAM write energy per access (pJ).
    pub sram_write_pj: f64,
    /// NVM read energy per access (pJ).
    pub nvm_read_pj: f64,
    /// NVM write energy per *byte* written (pJ/B) — the write mask only
    /// drives the ECB bytes, so compressed writes cost proportionally less.
    pub nvm_write_pj_per_byte: f64,
    /// SRAM-part leakage power (mW).
    pub sram_leakage_mw: f64,
    /// NVM-part leakage power (mW) — near zero for STT-MRAM.
    pub nvm_leakage_mw: f64,
}

impl EnergyModel {
    /// Representative 16 nm coefficients for the paper's 1 MB SRAM + 3 MB
    /// NVM split.
    pub fn default_16nm() -> Self {
        EnergyModel {
            sram_read_pj: 180.0,
            sram_write_pj: 200.0,
            nvm_read_pj: 260.0,
            nvm_write_pj_per_byte: 15.0,
            sram_leakage_mw: 90.0,
            nvm_leakage_mw: 2.0,
        }
    }

    /// Computes the energy breakdown for an interval of `cycles` at
    /// `freq_ghz`.
    pub fn breakdown(&self, stats: &LlcStats, cycles: f64, freq_ghz: f64) -> EnergyBreakdown {
        let seconds = cycles / (freq_ghz * 1e9);
        let sram_dynamic_pj = stats.sram_hits as f64 * self.sram_read_pj
            + stats.sram_inserts as f64 * self.sram_write_pj;
        let nvm_dynamic_pj = stats.nvm_hits as f64 * self.nvm_read_pj
            + stats.nvm_bytes_written as f64 * self.nvm_write_pj_per_byte;
        let leakage_mj = (self.sram_leakage_mw + self.nvm_leakage_mw) * seconds;
        EnergyBreakdown {
            sram_dynamic_mj: sram_dynamic_pj * 1e-9,
            nvm_dynamic_mj: nvm_dynamic_pj * 1e-9,
            leakage_mj,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::default_16nm()
    }
}

/// Energy totals over an interval, in millijoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic energy spent in the SRAM part.
    pub sram_dynamic_mj: f64,
    /// Dynamic energy spent in the NVM part (reads + per-byte writes).
    pub nvm_dynamic_mj: f64,
    /// Leakage over the interval.
    pub leakage_mj: f64,
}

impl EnergyBreakdown {
    /// Total LLC energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.sram_dynamic_mj + self.nvm_dynamic_mj + self.leakage_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(nvm_bytes: u64, nvm_hits: u64, sram_hits: u64) -> LlcStats {
        LlcStats {
            nvm_bytes_written: nvm_bytes,
            nvm_hits,
            sram_hits,
            sram_inserts: 10,
            ..Default::default()
        }
    }

    #[test]
    fn write_energy_scales_with_bytes() {
        let m = EnergyModel::default_16nm();
        let a = m.breakdown(&stats(1000, 0, 0), 0.0, 3.5);
        let b = m.breakdown(&stats(2000, 0, 0), 0.0, 3.5);
        // Doubling bytes doubles the NVM write component.
        let write_a = a.nvm_dynamic_mj;
        let write_b = b.nvm_dynamic_mj;
        assert!((write_b - 2.0 * write_a).abs() < 1e-15);
    }

    #[test]
    fn leakage_scales_with_time() {
        let m = EnergyModel::default_16nm();
        let one_ms = m.breakdown(&LlcStats::default(), 3.5e6, 3.5);
        assert!((one_ms.leakage_mj - 92.0 * 1e-3).abs() < 1e-9);
        let two_ms = m.breakdown(&LlcStats::default(), 7e6, 3.5);
        assert!((two_ms.leakage_mj - 2.0 * one_ms.leakage_mj).abs() < 1e-12);
    }

    #[test]
    fn totals_add_up() {
        let m = EnergyModel::default_16nm();
        let b = m.breakdown(&stats(500, 20, 30), 1e6, 3.5);
        assert!(
            (b.total_mj() - (b.sram_dynamic_mj + b.nvm_dynamic_mj + b.leakage_mj)).abs() < 1e-18
        );
        assert!(b.total_mj() > 0.0);
    }
}
