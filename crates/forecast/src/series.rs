//! Forecast output: performance/capacity over time.

/// One sample of the forecast timeline, taken at the start of a simulation
/// phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForecastPoint {
    /// Wall-clock time since deployment, in seconds.
    pub time_seconds: f64,
    /// NVM capacity fraction at this time.
    pub capacity: f64,
    /// System IPC (arithmetic mean over cores).
    pub ipc: f64,
    /// LLC hit rate.
    pub hit_rate: f64,
    /// NVM write bandwidth, bytes per cycle.
    pub nvm_bytes_per_cycle: f64,
}

/// A full forecast run for one policy/configuration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ForecastSeries {
    /// Label (usually the policy name).
    pub label: String,
    /// Timeline samples in chronological order.
    pub points: Vec<ForecastPoint>,
}

const SECONDS_PER_DAY: f64 = 86_400.0;
/// Average Gregorian month, used for the paper's "months" axes.
pub(crate) const SECONDS_PER_MONTH: f64 = 30.44 * SECONDS_PER_DAY;

impl ForecastSeries {
    /// Creates an empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        ForecastSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Time (seconds) at which capacity first reaches `target`, linearly
    /// interpolated between samples; `None` if the run never got there.
    pub fn lifetime_seconds(&self, target: f64) -> Option<f64> {
        let mut prev: Option<&ForecastPoint> = None;
        for p in &self.points {
            if p.capacity <= target {
                return Some(match prev {
                    Some(q) if q.capacity > p.capacity => {
                        let f = (q.capacity - target) / (q.capacity - p.capacity);
                        q.time_seconds + f * (p.time_seconds - q.time_seconds)
                    }
                    _ => p.time_seconds,
                });
            }
            prev = Some(p);
        }
        None
    }

    /// Lifetime to `target` capacity in days.
    pub fn lifetime_days(&self, target: f64) -> Option<f64> {
        self.lifetime_seconds(target).map(|s| s / SECONDS_PER_DAY)
    }

    /// Lifetime to `target` capacity in (average) months.
    pub fn lifetime_months(&self, target: f64) -> Option<f64> {
        self.lifetime_seconds(target).map(|s| s / SECONDS_PER_MONTH)
    }

    /// IPC of the first sample (the "beginning of life" performance the
    /// paper quotes percentages against).
    pub fn initial_ipc(&self) -> Option<f64> {
        self.points.first().map(|p| p.ipc)
    }

    /// Timestamp of the last sample (0.0 for an empty series).
    pub fn end_time(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.time_seconds)
    }

    /// Piecewise-linear interpolation of the series at time `t`. Clamps to
    /// the first/last sample outside the recorded range. Returns `None` for
    /// an empty series.
    pub fn sample_at(&self, t: f64) -> Option<ForecastPoint> {
        let first = self.points.first()?;
        if t <= first.time_seconds {
            return Some(*first);
        }
        for w in self.points.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if t <= b.time_seconds {
                let span = b.time_seconds - a.time_seconds;
                let f = if span > 0.0 {
                    (t - a.time_seconds) / span
                } else {
                    1.0
                };
                let lerp = |x: f64, y: f64| x + f * (y - x);
                return Some(ForecastPoint {
                    time_seconds: t,
                    capacity: lerp(a.capacity, b.capacity),
                    ipc: lerp(a.ipc, b.ipc),
                    hit_rate: lerp(a.hit_rate, b.hit_rate),
                    nvm_bytes_per_cycle: lerp(a.nvm_bytes_per_cycle, b.nvm_bytes_per_cycle),
                });
            }
        }
        self.points.last().copied()
    }

    /// Averages several runs (e.g. one per mix) onto a common time grid —
    /// the paper reports the arithmetic mean over the mixes at each
    /// simulation phase. The grid spans the longest run with `grid_points`
    /// samples; shorter runs are clamp-extended (their capacity and IPC
    /// plateau once they stop, mirroring a cache that stopped aging).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty or any run is empty.
    pub fn average(label: impl Into<String>, runs: &[ForecastSeries], grid_points: usize) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        let horizon = runs.iter().map(|r| r.end_time()).fold(0.0, f64::max);
        let n = grid_points.max(2);
        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            let t = horizon * i as f64 / (n - 1) as f64;
            let samples: Vec<ForecastPoint> = runs
                .iter()
                .map(|r| r.sample_at(t).expect("non-empty run"))
                .collect();
            let m = samples.len() as f64;
            points.push(ForecastPoint {
                time_seconds: t,
                capacity: samples.iter().map(|p| p.capacity).sum::<f64>() / m,
                ipc: samples.iter().map(|p| p.ipc).sum::<f64>() / m,
                hit_rate: samples.iter().map(|p| p.hit_rate).sum::<f64>() / m,
                nvm_bytes_per_cycle: samples.iter().map(|p| p.nvm_bytes_per_cycle).sum::<f64>() / m,
            });
        }
        ForecastSeries {
            label: label.into(),
            points,
        }
    }

    /// Time-weighted mean IPC up to `until_seconds` (or the whole series).
    pub fn mean_ipc(&self, until_seconds: Option<f64>) -> Option<f64> {
        if self.points.len() < 2 {
            return self.points.first().map(|p| p.ipc);
        }
        let horizon = until_seconds.unwrap_or(self.points.last().unwrap().time_seconds);
        let mut weighted = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.time_seconds >= horizon {
                break;
            }
            let dt = b.time_seconds.min(horizon) - a.time_seconds;
            if dt > 0.0 {
                weighted += 0.5 * (a.ipc + b.ipc) * dt;
                span += dt;
            }
        }
        if span > 0.0 {
            Some(weighted / span)
        } else {
            self.points.first().map(|p| p.ipc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(t: f64, cap: f64, ipc: f64) -> ForecastPoint {
        ForecastPoint {
            time_seconds: t,
            capacity: cap,
            ipc,
            hit_rate: 0.5,
            nvm_bytes_per_cycle: 1.0,
        }
    }

    #[test]
    fn lifetime_interpolates() {
        let s = ForecastSeries {
            label: "x".into(),
            points: vec![p(0.0, 1.0, 2.0), p(100.0, 0.8, 1.9), p(200.0, 0.4, 1.5)],
        };
        // 0.5 crossed between t=100 (0.8) and t=200 (0.4): 3/4 of the way.
        let t = s.lifetime_seconds(0.5).unwrap();
        assert!((t - 175.0).abs() < 1e-9, "t={t}");
        assert_eq!(s.lifetime_seconds(0.3), None);
    }

    #[test]
    fn lifetime_exact_sample() {
        let s = ForecastSeries {
            label: "x".into(),
            points: vec![p(0.0, 1.0, 2.0), p(50.0, 0.5, 1.0)],
        };
        assert_eq!(s.lifetime_seconds(0.5), Some(50.0));
    }

    #[test]
    fn unit_conversions() {
        let s = ForecastSeries {
            label: "x".into(),
            points: vec![p(0.0, 1.0, 2.0), p(86_400.0, 0.5, 1.0)],
        };
        assert!((s.lifetime_days(0.5).unwrap() - 1.0).abs() < 1e-12);
        assert!((s.lifetime_months(0.5).unwrap() - 1.0 / 30.44).abs() < 1e-9);
    }

    #[test]
    fn mean_ipc_time_weighted() {
        let s = ForecastSeries {
            label: "x".into(),
            points: vec![p(0.0, 1.0, 2.0), p(10.0, 0.9, 2.0), p(20.0, 0.8, 1.0)],
        };
        // Segments: [2.0 avg over 10s], [1.5 avg over 10s] -> 1.75.
        assert!((s.mean_ipc(None).unwrap() - 1.75).abs() < 1e-12);
        // Horizon inside the first segment.
        assert!((s.mean_ipc(Some(10.0)).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_at_interpolates_and_clamps() {
        let s = ForecastSeries {
            label: "x".into(),
            points: vec![p(10.0, 1.0, 2.0), p(20.0, 0.5, 1.0)],
        };
        assert_eq!(s.sample_at(5.0).unwrap().capacity, 1.0); // clamp left
        assert_eq!(s.sample_at(30.0).unwrap().capacity, 0.5); // clamp right
        let mid = s.sample_at(15.0).unwrap();
        assert!((mid.capacity - 0.75).abs() < 1e-12);
        assert!((mid.ipc - 1.5).abs() < 1e-12);
    }

    #[test]
    fn average_over_runs() {
        let a = ForecastSeries {
            label: "a".into(),
            points: vec![p(0.0, 1.0, 2.0), p(100.0, 0.5, 1.0)],
        };
        let b = ForecastSeries {
            label: "b".into(),
            points: vec![p(0.0, 1.0, 4.0), p(50.0, 0.5, 2.0)],
        };
        let avg = ForecastSeries::average("avg", &[a, b], 3);
        assert_eq!(avg.points.len(), 3);
        assert!((avg.points[0].ipc - 3.0).abs() < 1e-12);
        // At t=50: a interpolates to (0.75, 1.5); b is at its end (0.5, 2.0).
        assert!((avg.points[1].capacity - 0.625).abs() < 1e-12);
        assert!((avg.points[1].ipc - 1.75).abs() < 1e-12);
        assert_eq!(avg.end_time(), 100.0);
    }

    #[test]
    fn degenerate_series() {
        let s = ForecastSeries::new("x");
        assert_eq!(s.lifetime_seconds(0.5), None);
        assert_eq!(s.mean_ipc(None), None);
        assert_eq!(s.initial_ipc(), None);
    }
}
