//! The prediction phase: advancing wall-clock time against measured write
//! rates.
//!
//! Wear within a frame is spread uniformly over its live bytes — the
//! steady-state effect of the intra-frame wear-leveling rotation, whose
//! period (hours) is far shorter than a prediction step (weeks). Rates are
//! held constant within a step; steps are bounded so the rate error stays
//! small (DESIGN.md substitution #5).

use hllc_nvm::{DisableGranularity, NvmArray, FRAME_BYTES};

/// Read-only estimate of the capacity fraction after `dt_seconds` of wear
/// at the given per-frame byte rates (`bytes_per_second[f]`, index
/// `set * ways + way`).
pub fn capacity_after(array: &NvmArray, bytes_per_second: &[f64], dt_seconds: f64) -> f64 {
    let sets = array.sets();
    let ways = array.ways();
    let mut live_units = 0usize;
    let total_units = match array.granularity() {
        DisableGranularity::Byte => sets * ways * FRAME_BYTES,
        DisableGranularity::Frame => sets * ways,
    };
    for set in 0..sets {
        for way in 0..ways {
            let f = set * ways + way;
            if array.is_disabled(set, way) {
                continue;
            }
            let frame = array.frame(set, way);
            let live = frame.live_bytes();
            if live == 0 {
                continue;
            }
            let per_byte = bytes_per_second[f] * dt_seconds / live as f64;
            match array.granularity() {
                DisableGranularity::Byte => {
                    live_units += frame
                        .fault_map()
                        .live_indices()
                        .filter(|&b| frame.remaining_writes(b) > per_byte)
                        .count();
                }
                DisableGranularity::Frame => {
                    let survives = frame
                        .fault_map()
                        .live_indices()
                        .all(|b| frame.remaining_writes(b) > per_byte);
                    if survives {
                        live_units += 1;
                    }
                }
            }
        }
    }
    live_units as f64 / total_units as f64
}

/// Chooses a prediction step: the largest `dt <= max_step_seconds` whose
/// capacity drop does not exceed `max_capacity_drop` (bisection). Returns
/// `max_step_seconds` if even that loses less than the allowed drop.
///
/// Failures are discrete, so the chosen step may overshoot the drop target
/// by up to one disabling unit (one byte, or one frame under
/// frame-granularity disabling) — the bound is a sampling-granularity
/// control, not a hard invariant.
pub fn choose_step(
    array: &NvmArray,
    bytes_per_second: &[f64],
    max_capacity_drop: f64,
    max_step_seconds: f64,
) -> f64 {
    let current = array.capacity_fraction();
    if capacity_after(array, bytes_per_second, max_step_seconds) >= current - max_capacity_drop {
        return max_step_seconds;
    }
    let (mut lo, mut hi) = (0.0f64, max_step_seconds);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if capacity_after(array, bytes_per_second, mid) >= current - max_capacity_drop {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Guarantee forward progress even when a single failure exceeds the
    // allowed drop (e.g. frame-granularity disabling of a hot frame).
    hi.max(max_step_seconds * 1e-6)
}

/// Applies `dt_seconds` of wear to the array. Returns the number of newly
/// failed bytes.
pub fn advance_wear(array: &mut NvmArray, bytes_per_second: &[f64], dt_seconds: f64) -> usize {
    let sets = array.sets();
    let ways = array.ways();
    let mut failures = 0;
    for set in 0..sets {
        for way in 0..ways {
            let f = set * ways + way;
            let wear = bytes_per_second[f] * dt_seconds;
            if wear > 0.0 {
                failures += array.apply_uniform_wear(set, way, wear).len();
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use hllc_nvm::EnduranceModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn array(granularity: DisableGranularity, cv: f64) -> NvmArray {
        let mut rng = StdRng::seed_from_u64(7);
        NvmArray::new(8, 4, &EnduranceModel::new(1e6, cv), granularity, &mut rng)
    }

    #[test]
    fn zero_rate_never_ages() {
        let a = array(DisableGranularity::Byte, 0.2);
        let rates = vec![0.0; 32];
        assert_eq!(capacity_after(&a, &rates, 1e12), 1.0);
    }

    #[test]
    fn capacity_after_is_monotone_in_dt() {
        let a = array(DisableGranularity::Byte, 0.2);
        let rates = vec![100.0; 32];
        let mut prev = 1.0;
        for dt in [1e3, 1e4, 1e5, 1e6] {
            let c = capacity_after(&a, &rates, dt);
            assert!(c <= prev, "capacity grew with time");
            prev = c;
        }
        // Everything dies eventually: per-byte wear 100*1e6/66 >> 1e6*1.2.
        assert_eq!(capacity_after(&a, &rates, 1e7), 0.0);
    }

    #[test]
    fn advance_matches_prediction() {
        for g in [DisableGranularity::Byte, DisableGranularity::Frame] {
            let mut a = array(g, 0.25);
            let rates: Vec<f64> = (0..32).map(|i| 50.0 + 10.0 * i as f64).collect();
            let dt = 2.0e5;
            let predicted = capacity_after(&a, &rates, dt);
            advance_wear(&mut a, &rates, dt);
            let actual = a.capacity_fraction();
            assert!(
                (predicted - actual).abs() < 1e-9,
                "{g:?}: predicted {predicted} vs actual {actual}"
            );
        }
    }

    #[test]
    fn choose_step_bounds_capacity_drop() {
        let mut a = array(DisableGranularity::Byte, 0.2);
        let rates = vec![1000.0; 32];
        let dt = choose_step(&a, &rates, 0.05, 1e9);
        let before = a.capacity_fraction();
        advance_wear(&mut a, &rates, dt);
        let drop = before - a.capacity_fraction();
        // May overshoot by at most one byte of the 8×4×66-byte array.
        let one_byte = 1.0 / (8.0 * 4.0 * 66.0);
        assert!(drop <= 0.05 + one_byte + 1e-9, "dropped {drop}");
        assert!(dt > 0.0);
    }

    #[test]
    fn choose_step_returns_max_when_hardly_aging() {
        let a = array(DisableGranularity::Byte, 0.2);
        let rates = vec![1e-6; 32];
        assert_eq!(choose_step(&a, &rates, 0.05, 3600.0), 3600.0);
    }

    #[test]
    fn frame_granularity_dies_faster() {
        // Same wear: frame disabling loses capacity at the first byte death,
        // byte disabling only loses that byte.
        let mut fa = array(DisableGranularity::Frame, 0.25);
        let mut ba = array(DisableGranularity::Byte, 0.25);
        let rates = vec![500.0; 32];
        let dt = 1.3e5;
        advance_wear(&mut fa, &rates, dt);
        advance_wear(&mut ba, &rates, dt);
        assert!(fa.capacity_fraction() <= ba.capacity_fraction());
    }
}
