//! The NVM aging forecast procedure.
//!
//! Adapted from the procedure the paper borrows from its reference \[15\] (§V-A): it
//! alternates *simulation phases* — a full hierarchy simulation of a mix
//! over the current fault map, reporting IPC, hit rate, and per-frame write
//! rates — with *prediction phases* that advance wall-clock time, wearing
//! each frame at its measured rate until bytes (or frames) cross their
//! endurance limits. The procedure runs until the NVM part loses half its
//! capacity (or a step limit), yielding the performance-over-time curves of
//! Figures 1, 10, and 11.
//!
//! # Example
//!
//! ```no_run
//! use hllc_core::Policy;
//! use hllc_forecast::{Forecast, ForecastConfig};
//! use hllc_trace::mixes;
//!
//! let cfg = ForecastConfig::scaled(Policy::cp_sd());
//! let series = Forecast::new(cfg).run(&mixes()[0], 1);
//! println!("50% capacity after {:?} days", series.lifetime_days(0.5));
//! ```

mod phase;
mod predict;
mod procedure;
mod series;

pub use phase::{run_phase, run_phase_streams, PhaseMetrics, PhaseSetup};
pub use predict::{advance_wear, capacity_after, choose_step};
pub use procedure::{Forecast, ForecastConfig};
pub use series::{ForecastPoint, ForecastSeries};
