//! The full alternating simulate/predict procedure.

use hllc_config::ExperimentSpec;
use hllc_core::{HybridConfig, Policy};
use hllc_nvm::NvmArray;
use hllc_sim::SystemConfig;
use hllc_trace::Mix;

use crate::phase::{run_phase, PhaseSetup};
use crate::predict::{advance_wear, choose_step};
use crate::series::{ForecastPoint, ForecastSeries};

/// Forecast parameters.
#[derive(Clone, Debug)]
pub struct ForecastConfig {
    /// System configuration (private caches, timing).
    pub system: SystemConfig,
    /// LLC configuration (geometry, policy, endurance).
    pub llc: HybridConfig,
    /// Warm-up cycles per simulation phase.
    pub warmup_cycles: f64,
    /// Measured cycles per simulation phase.
    pub measure_cycles: f64,
    /// Maximum capacity fraction lost per prediction step.
    pub capacity_step: f64,
    /// Hard cap on a prediction step, in seconds.
    pub max_step_seconds: f64,
    /// Stop when NVM capacity reaches this fraction (paper: 0.5).
    pub stop_capacity: f64,
    /// Hard cap on the number of simulate/predict iterations.
    pub max_steps: usize,
    /// Compression mechanism (BDI unless running the compressor ablation).
    pub compressor: hllc_compress::CompressorKind,
}

impl ForecastConfig {
    /// The forecast an [`ExperimentSpec`] describes: its system, its LLC
    /// under its own policy, and its `forecast` recipe.
    pub fn from_spec(spec: &ExperimentSpec) -> Self {
        let f = &spec.forecast;
        ForecastConfig {
            system: spec.system_config(),
            llc: spec.llc_config(),
            warmup_cycles: f.warmup_cycles,
            measure_cycles: f.measure_cycles,
            capacity_step: f.capacity_step,
            max_step_seconds: f.max_step_seconds,
            stop_capacity: f.stop_capacity,
            max_steps: f.max_steps,
            compressor: spec.compressor(),
        }
    }

    /// Full-scale configuration: the `paper` preset's Table IV system,
    /// μ = 10¹⁰. One phase simulates 8 M cycles after 2 M of warm-up.
    pub fn paper(policy: Policy) -> Self {
        Self::from_spec(&ExperimentSpec::preset("paper").expect("builtin preset"))
            .with_policy(policy)
    }

    /// Scaled-down configuration for fast experimentation: the `scaled`
    /// preset's 512-set LLC, μ = 10⁸ endurance. Lifetime *ratios* between
    /// policies are preserved because failure times are linear in μ
    /// (DESIGN.md substitution #4); multiply reported lifetimes by 100 for
    /// paper-equivalent time.
    pub fn scaled(policy: Policy) -> Self {
        Self::from_spec(&ExperimentSpec::preset("scaled").expect("builtin preset"))
            .with_policy(policy)
    }

    /// Replaces the policy, keeping geometry and endurance.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.llc.policy = policy;
        self
    }
}

/// The forecast engine.
#[derive(Clone, Debug)]
pub struct Forecast {
    cfg: ForecastConfig,
}

impl Forecast {
    /// Creates a forecast from a configuration.
    pub fn new(cfg: ForecastConfig) -> Self {
        Forecast { cfg }
    }

    /// Runs the alternating procedure on `mix` and returns the performance
    /// timeline. Deterministic for a given `seed`.
    pub fn run(&self, mix: &Mix, seed: u64) -> ForecastSeries {
        let cfg = &self.cfg;
        let setup = PhaseSetup {
            system: cfg.system.clone(),
            llc: cfg.llc.clone(),
            warmup_cycles: cfg.warmup_cycles,
            measure_cycles: cfg.measure_cycles,
            scale: PhaseSetup::scale_for_sets(cfg.llc.sets),
            compressor: cfg.compressor,
        };
        let freq_hz = cfg.system.timing.freq_ghz * 1e9;

        let mut series = ForecastSeries::new(cfg.llc.policy.name());
        let mut array: Option<NvmArray> = None;
        let mut time = 0.0f64;

        for step in 0..cfg.max_steps {
            let capacity = array.as_ref().map_or(1.0, |a| a.capacity_fraction());
            let (metrics, array_back) = run_phase(&setup, mix, array, seed ^ (step as u64) << 32);
            series.points.push(ForecastPoint {
                time_seconds: time,
                capacity,
                ipc: metrics.ipc,
                hit_rate: metrics.hit_rate,
                nvm_bytes_per_cycle: metrics.nvm_bytes_per_cycle(),
            });

            let Some(mut a) = array_back else {
                array = None; // SRAM-only cache: flat forever, one point suffices
                break;
            };
            if capacity <= cfg.stop_capacity {
                array = Some(a);
                break;
            }

            // Convert per-frame byte counts to bytes/second.
            let rates: Vec<f64> = metrics
                .frame_bytes_written
                .iter()
                .map(|&b| b as f64 / metrics.measured_cycles * freq_hz)
                .collect();
            if rates.iter().all(|&r| r == 0.0) {
                // No NVM writes at all: the cache never ages.
                array = Some(a);
                break;
            }

            let dt = choose_step(&a, &rates, cfg.capacity_step, cfg.max_step_seconds);
            advance_wear(&mut a, &rates, dt);
            time += dt;
            array = Some(a);
        }

        // Close the timeline with the final capacity so lifetimes are
        // interpolable even when the loop ended on the step limit.
        if let Some(a) = &array {
            let last_ipc = series.points.last().map_or(0.0, |p| p.ipc);
            let last_hr = series.points.last().map_or(0.0, |p| p.hit_rate);
            let last_bw = series.points.last().map_or(0.0, |p| p.nvm_bytes_per_cycle);
            series.points.push(ForecastPoint {
                time_seconds: time,
                capacity: a.capacity_fraction(),
                ipc: last_ipc,
                hit_rate: last_hr,
                nvm_bytes_per_cycle: last_bw,
            });
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hllc_trace::mixes;

    /// A very small, fast forecast used by the tests.
    fn tiny(policy: Policy) -> ForecastConfig {
        let mut spec = ExperimentSpec::preset("scaled").expect("builtin preset");
        spec.system.llc_sets = 128;
        spec.validate().expect("128-set scaled variant");
        let mut cfg = ForecastConfig::from_spec(&spec);
        // Keep the historical test knobs: near-default LLC at a drastically
        // reduced endurance so the aging loop converges in milliseconds.
        cfg.llc = HybridConfig::new(128, 4, 12, policy).with_endurance(2e6, 0.2);
        cfg.warmup_cycles = 5.0e4;
        cfg.measure_cycles = 2.0e5;
        cfg.capacity_step = 0.06;
        cfg.max_step_seconds = 50.0;
        cfg.max_steps = 25;
        cfg
    }

    #[test]
    fn bh_forecast_reaches_half_capacity() {
        let series = Forecast::new(tiny(Policy::Bh)).run(&mixes()[0], 3);
        assert!(
            series.points.len() >= 3,
            "too few samples: {}",
            series.points.len()
        );
        let life = series.lifetime_seconds(0.5);
        assert!(life.is_some(), "BH never reached 50% capacity: {series:?}");
        // Capacity is non-increasing.
        for w in series.points.windows(2) {
            assert!(w[1].capacity <= w[0].capacity + 1e-12);
        }
    }

    #[test]
    fn lhybrid_outlives_bh() {
        let bh = Forecast::new(tiny(Policy::Bh)).run(&mixes()[0], 3);
        let lh = Forecast::new(tiny(Policy::LHybrid)).run(&mixes()[0], 3);
        let bh_life = bh.lifetime_seconds(0.8).expect("BH ages");
        // LHybrid writes far less: it should not have reached 80% before BH.
        let lh_life = lh.lifetime_seconds(0.8).unwrap_or(f64::INFINITY);
        assert!(
            lh_life > bh_life,
            "LHybrid ({lh_life}s) should outlive BH ({bh_life}s)"
        );
    }

    #[test]
    fn sram_only_never_ages() {
        let mut cfg = tiny(Policy::Bh);
        cfg.llc = HybridConfig::new(128, 16, 0, Policy::Bh);
        let series = Forecast::new(cfg).run(&mixes()[0], 3);
        assert_eq!(series.points.len(), 1);
        assert_eq!(series.points[0].capacity, 1.0);
        assert!(series.lifetime_seconds(0.99).is_none());
    }

    #[test]
    fn deterministic_runs() {
        let a = Forecast::new(tiny(Policy::cp_sd())).run(&mixes()[2], 9);
        let b = Forecast::new(tiny(Policy::cp_sd())).run(&mixes()[2], 9);
        assert_eq!(a, b);
    }
}
