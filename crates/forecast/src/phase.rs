//! One simulation phase: run a mix over the current NVM state.

use hllc_compress::CompressorKind;
use hllc_core::{HybridConfig, HybridLlc};
use hllc_nvm::NvmArray;
use hllc_sim::{DataModel, Hierarchy, LlcPort, LlcStats, SystemConfig};
use hllc_trace::{drive_cycles, Mix, RefSource};

/// Inputs of a simulation phase.
#[derive(Clone, Debug)]
pub struct PhaseSetup {
    /// System (cores, private caches, timing).
    pub system: SystemConfig,
    /// LLC configuration (geometry + policy).
    pub llc: HybridConfig,
    /// Cycles of warm-up before statistics are reset.
    pub warmup_cycles: f64,
    /// Measured cycles after warm-up.
    pub measure_cycles: f64,
    /// Footprint scale relative to the paper's 4 MB LLC.
    pub scale: f64,
    /// Compression mechanism sizing the blocks (BDI unless running the
    /// compressor ablation).
    pub compressor: CompressorKind,
}

impl PhaseSetup {
    /// Footprint scale implied by the LLC geometry
    /// ([`hllc_config::PAPER_SETS`] sets = 1.0).
    pub fn scale_for_sets(sets: usize) -> f64 {
        hllc_config::footprint_scale(sets)
    }
}

/// Outputs of a simulation phase.
#[derive(Clone, Debug)]
pub struct PhaseMetrics {
    /// Arithmetic-mean IPC across the cores (the paper's metric).
    pub ipc: f64,
    /// LLC hit rate over the measured window.
    pub hit_rate: f64,
    /// Full LLC statistics for the measured window.
    pub llc: LlcStats,
    /// Bytes written per frame during the measured window (index =
    /// `set * nvm_ways + way`), for the prediction phase.
    pub frame_bytes_written: Vec<u64>,
    /// Measured window length in cycles.
    pub measured_cycles: f64,
    /// Set Dueling epoch history collected during the phase (empty for
    /// non-CP_SD policies).
    pub epochs: Vec<hllc_core::EpochRecord>,
    /// References executed (diagnostics).
    pub accesses: u64,
}

impl PhaseMetrics {
    /// NVM write bandwidth in bytes per cycle.
    pub fn nvm_bytes_per_cycle(&self) -> f64 {
        if self.measured_cycles == 0.0 {
            0.0
        } else {
            self.llc.nvm_bytes_written as f64 / self.measured_cycles
        }
    }
}

/// Runs one simulation phase over `array` (or a freshly sampled array when
/// `None`), returning the metrics and the (unchanged-wear, possibly `None`)
/// array for the next phase.
pub fn run_phase(
    setup: &PhaseSetup,
    mix: &Mix,
    array: Option<NvmArray>,
    seed: u64,
) -> (PhaseMetrics, Option<NvmArray>) {
    let mut streams = mix.instantiate(setup.scale, seed);
    let data = mix.data_model_with(setup.compressor, seed);
    run_phase_streams(setup, &mut streams, data, array)
}

/// [`run_phase`] over explicit reference streams and data model — the entry
/// point trace replay uses: the same phase logic runs whether references
/// come from synthetic generators or from a recorded file.
///
/// # Panics
///
/// Panics if `streams` is empty or has more streams than `setup.system`
/// has cores.
pub fn run_phase_streams<S: RefSource, D: DataModel>(
    setup: &PhaseSetup,
    streams: &mut [S],
    data: D,
    array: Option<NvmArray>,
) -> (PhaseMetrics, Option<NvmArray>) {
    assert!(
        !streams.is_empty() && streams.len() <= setup.system.cores,
        "stream count {} incompatible with {} cores",
        streams.len(),
        setup.system.cores
    );
    let llc = match array {
        Some(a) => HybridLlc::with_array(&setup.llc, Some(a)),
        None => HybridLlc::new(&setup.llc),
    };
    let mut h = Hierarchy::new(&setup.system, llc, data);

    let warm = drive_cycles(&mut h, streams, setup.warmup_cycles);
    h.reset_stats();
    let measured = drive_cycles(&mut h, streams, setup.warmup_cycles + setup.measure_cycles);

    let ipc = h.system_ipc();
    let llc_stats = *h.llc().stats();
    let epochs = h.llc().dueling().map(|d| d.history()).unwrap_or_default();
    let frame_bytes_written = h
        .llc_mut()
        .array_mut()
        .map(|a| a.take_pending_writes())
        .unwrap_or_default();
    let array_out = h.llc_mut().array_mut().map(|a| a.clone());

    let metrics = PhaseMetrics {
        ipc,
        hit_rate: llc_stats.hit_rate(),
        llc: llc_stats,
        frame_bytes_written,
        measured_cycles: setup.measure_cycles,
        epochs,
        accesses: warm + measured,
    };
    (metrics, array_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hllc_core::Policy;
    use hllc_trace::mixes;

    fn setup(policy: Policy) -> PhaseSetup {
        let mut spec = hllc_config::ExperimentSpec::preset("scaled").expect("builtin preset");
        spec.system.llc_sets = 256;
        spec.validate().expect("256-set scaled variant");
        PhaseSetup {
            system: spec.system_config(),
            llc: spec.llc_config_for(policy),
            warmup_cycles: 100_000.0,
            measure_cycles: 200_000.0,
            scale: spec.footprint_scale(),
            compressor: CompressorKind::Bdi,
        }
    }

    #[test]
    fn phase_produces_activity() {
        let (m, array) = run_phase(&setup(Policy::Bh), &mixes()[0], None, 42);
        assert!(m.ipc > 0.0, "ipc {}", m.ipc);
        assert!(m.llc.requests() > 0);
        assert!(m.accesses > 1000);
        assert!(m.llc.nvm_bytes_written > 0, "BH must write NVM");
        let total_frame_bytes: u64 = m.frame_bytes_written.iter().sum();
        assert_eq!(total_frame_bytes, m.llc.nvm_bytes_written);
        assert!(array.is_some());
    }

    #[test]
    fn cp_sd_collects_epochs() {
        let mut s = setup(Policy::cp_sd());
        s.llc = s.llc.with_epoch_cycles(50_000);
        let (m, _) = run_phase(&s, &mixes()[0], None, 42);
        assert!(!m.epochs.is_empty(), "expected epoch history");
    }

    #[test]
    fn aged_array_is_threaded_through() {
        let s = setup(Policy::cp_sd());
        let (_, array) = run_phase(&s, &mixes()[0], None, 1);
        let mut array = array.unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        array.degrade_to(0.7, &mut rng);
        let degraded_capacity = array.capacity_fraction();
        let (m2, array2) = run_phase(&s, &mixes()[0], Some(array), 2);
        assert!((array2.unwrap().capacity_fraction() - degraded_capacity).abs() < 1e-12);
        assert!(m2.ipc > 0.0);
    }
}
