//! Property-based tests for the multi-core interleaving driver.

use hllc_sim::{Hierarchy, NullLlc, SystemConfig};
use hllc_trace::{drive_accesses, mixes};
use proptest::prelude::*;

proptest! {
    /// Laggard-core selection keeps every core's clock within one access's
    /// latency of the slowest core: stepping always the minimum clock means
    /// the spread can never exceed the largest advance a single reference
    /// has caused so far.
    #[test]
    fn laggard_keeps_clocks_within_one_access(
        mix_idx in 0usize..10,
        seed in any::<u64>(),
        n in 200u64..1500,
    ) {
        let mix = &mixes()[mix_idx];
        let cfg = SystemConfig::default();
        let mut h = Hierarchy::new(&cfg, NullLlc::default(), mix.data_model(seed));
        let mut streams = mix.instantiate(0.05, seed);
        let cores = streams.len();
        let mut prev: Vec<f64> = (0..cores).map(|c| h.core_clock(c)).collect();
        let mut max_advance = 0.0f64;
        for step in 0..n {
            drive_accesses(&mut h, &mut streams, 1);
            let now: Vec<f64> = (0..cores).map(|c| h.core_clock(c)).collect();
            for c in 0..cores {
                max_advance = max_advance.max(now[c] - prev[c]);
            }
            let max = now.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = now.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(
                max - min <= max_advance + 1e-9,
                "after access {step} the clock spread {} exceeds the largest \
                 single-access latency {max_advance} seen so far: {now:?}",
                max - min
            );
            prev = now;
        }
    }

    /// `drive_accesses(n)` executes exactly `n` references for infinite
    /// (synthetic) sources, regardless of mix, seed, or count.
    #[test]
    fn drive_accesses_executes_exactly_n(
        mix_idx in 0usize..10,
        seed in any::<u64>(),
        n in 1u64..5_000,
    ) {
        let mix = &mixes()[mix_idx];
        let cfg = SystemConfig::default();
        let mut h = Hierarchy::new(&cfg, NullLlc::default(), mix.data_model(seed));
        let mut streams = mix.instantiate(0.05, seed);
        drive_accesses(&mut h, &mut streams, n);
        prop_assert_eq!(h.stats().accesses(), n);
    }
}
