//! Property-based tests for the workload generator.

use hllc_sim::Op;
use hllc_trace::{mixes, Pattern, Profile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        (1u64..8).prop_map(|stride| Pattern::Loop { stride }),
        (1u64..8).prop_map(|spread| Pattern::Stream { spread }),
        Just(Pattern::Random),
        (0.01f64..0.9, 0.1f64..0.95).prop_map(|(hot_fraction, hot_probability)| {
            Pattern::HotCold {
                hot_fraction,
                hot_probability,
            }
        }),
        (1u64..8, 0.01f64..0.5, 0.1f64..0.9).prop_map(|(stride, hot_fraction, hot_probability)| {
            Pattern::LoopHot {
                stride,
                hot_fraction,
                hot_probability,
            }
        }),
    ];
    // One level of phasing over the leaves.
    (leaf.clone(), leaf, 1u64..10_000).prop_map(|(a, b, period)| Pattern::Phased {
        a: Box::new(a),
        b: Box::new(b),
        period,
    })
}

proptest! {
    /// Every pattern only ever produces indices inside the footprint.
    #[test]
    fn indices_stay_in_footprint(
        pattern in arb_pattern(),
        footprint in 1u64..100_000,
        seed in any::<u64>(),
    ) {
        let mut state = pattern.start();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..500 {
            let i = pattern.next_index(&mut state, footprint, &mut rng);
            prop_assert!(i < footprint, "index {i} outside footprint {footprint}");
        }
    }

    /// Streams from the same spec and seed are identical; different seeds
    /// diverge (for non-degenerate patterns).
    #[test]
    fn stream_determinism(app_idx in 0usize..20, seed in any::<u64>()) {
        let app = &hllc_trace::spec_apps()[app_idx];
        let mut a = app.instantiate(0, 0.1, seed);
        let mut b = app.instantiate(0, 0.1, seed);
        for _ in 0..200 {
            prop_assert_eq!(a.next_access(0), b.next_access(0));
        }
    }

    /// Read-only prefix blocks never receive stores.
    #[test]
    fn read_only_prefix_is_never_written(app_idx in 0usize..20, seed in any::<u64>()) {
        let app = &hllc_trace::spec_apps()[app_idx];
        let mut s = app.instantiate(0, 0.1, seed);
        let ro_blocks = (app.read_only_prefix * s.footprint() as f64) as u64;
        for _ in 0..2_000 {
            let a = s.next_access(0);
            let index = (a.addr & ((1 << hllc_trace::APP_SLOT_SHIFT) - 1)) >> 6;
            if a.op == Op::Store {
                prop_assert!(index >= ro_blocks, "store to read-only block {index}");
            }
        }
    }

    /// Workload data sizes are always valid compressed sizes.
    #[test]
    fn data_sizes_valid(mix_idx in 0usize..10, block in any::<u64>()) {
        use hllc_sim::DataModel;
        let mix = &mixes()[mix_idx];
        let mut d = mix.data_model(7);
        let size = d.compressed_size(block & 0x03FF_FFFF_FFFF);
        prop_assert!((1..=64).contains(&size));
    }

    /// Profile synthesis honours the class regardless of RNG state.
    #[test]
    fn synthesis_never_exceeds_nominal(class_idx in 0usize..10, seed in any::<u64>()) {
        use hllc_compress::Compressor;
        use hllc_trace::SynthClass;
        let class = SynthClass::ALL[class_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let block = Profile::synthesize(class, &mut rng);
        prop_assert!(Compressor::new().compressed_size(&block) <= class.nominal_size());
    }
}
