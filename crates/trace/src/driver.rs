//! Multi-core interleaving driver.
//!
//! Steps the core with the smallest local clock, pulling the next reference
//! from its reference source — approximating the concurrent execution of
//! the four programs of a mix on the shared LLC. The drivers are generic
//! over [`RefSource`], so the same interleaving logic runs synthetic
//! generators ([`AppStream`]) and recorded traces (`hllc-traceio`'s
//! `ReplayStream`) identically.

use hllc_sim::{Access, DataModel, Hierarchy, LlcPort};

use crate::app::AppStream;

/// A per-core supplier of memory references.
///
/// Synthetic streams are infinite and always return `Some`; finite sources
/// (trace replay) return `None` when exhausted, which stops the driver.
pub trait RefSource {
    /// Produces the next reference of `core`'s stream, stamped with `core`,
    /// or `None` when the source has no more references.
    fn next_access(&mut self, core: u8) -> Option<Access>;
}

impl RefSource for AppStream {
    fn next_access(&mut self, core: u8) -> Option<Access> {
        Some(AppStream::next_access(self, core))
    }
}

/// Runs until every core's clock has reached `target_cycles` or a source is
/// exhausted. Returns the number of references executed.
///
/// # Panics
///
/// Panics if `streams` is empty.
pub fn drive_cycles<L: LlcPort, D: DataModel, S: RefSource>(
    h: &mut Hierarchy<L, D>,
    streams: &mut [S],
    target_cycles: f64,
) -> u64 {
    assert!(!streams.is_empty(), "need at least one stream");
    let mut executed = 0u64;
    loop {
        let core = laggard(h, streams.len());
        if h.core_clock(core) >= target_cycles {
            break;
        }
        let Some(a) = streams[core].next_access(core as u8) else {
            break;
        };
        h.access(&a);
        executed += 1;
    }
    executed
}

/// Runs exactly `n` references (fewer only if a source is exhausted), still
/// interleaving by clock. Returns the final minimum core clock.
pub fn drive_accesses<L: LlcPort, D: DataModel, S: RefSource>(
    h: &mut Hierarchy<L, D>,
    streams: &mut [S],
    n: u64,
) -> f64 {
    assert!(!streams.is_empty(), "need at least one stream");
    for _ in 0..n {
        let core = laggard(h, streams.len());
        let Some(a) = streams[core].next_access(core as u8) else {
            break;
        };
        h.access(&a);
    }
    h.min_clock()
}

/// The core with the smallest local clock.
fn laggard<L: LlcPort, D: DataModel>(h: &Hierarchy<L, D>, cores: usize) -> usize {
    (0..cores)
        .min_by(|&a, &b| h.core_clock(a).total_cmp(&h.core_clock(b)))
        .expect("at least one core")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::mixes;
    use hllc_sim::{NullLlc, SystemConfig};

    #[test]
    fn drive_cycles_advances_all_cores() {
        let mix = &mixes()[0];
        let cfg = SystemConfig::default();
        let mut h = Hierarchy::new(&cfg, NullLlc::default(), mix.data_model(1));
        let mut streams = mix.instantiate(0.05, 1);
        let executed = drive_cycles(&mut h, &mut streams, 20_000.0);
        assert!(executed > 100);
        for core in 0..4 {
            assert!(h.core_clock(core) >= 20_000.0, "core {core} lagging");
        }
    }

    #[test]
    fn drive_accesses_balances_clocks() {
        let mix = &mixes()[1];
        let cfg = SystemConfig::default();
        let mut h = Hierarchy::new(&cfg, NullLlc::default(), mix.data_model(2));
        let mut streams = mix.instantiate(0.05, 2);
        drive_accesses(&mut h, &mut streams, 10_000);
        let clocks: Vec<f64> = (0..4).map(|c| h.core_clock(c)).collect();
        let max = clocks.iter().cloned().fold(0.0, f64::max);
        let min = clocks.iter().cloned().fold(f64::INFINITY, f64::min);
        // Interleaving keeps cores loosely in step (within one max stall).
        assert!(max - min < 5_000.0, "clocks diverged: {clocks:?}");
        assert!(h.stats().accesses() == 10_000);
    }

    #[test]
    fn exhausted_source_stops_the_drivers() {
        /// Yields `self.0` references, then runs dry.
        struct Finite(u64);
        impl RefSource for Finite {
            fn next_access(&mut self, core: u8) -> Option<Access> {
                if self.0 == 0 {
                    return None;
                }
                self.0 -= 1;
                Some(Access::load(core, (self.0 << 6) | (u64::from(core) << 40)))
            }
        }
        let cfg = SystemConfig::default();
        let mut h = Hierarchy::new(&cfg, NullLlc::default(), hllc_sim::ConstSizeData::new(64));
        let mut streams = vec![Finite(50), Finite(50), Finite(50), Finite(50)];
        let executed = drive_cycles(&mut h, &mut streams, f64::INFINITY);
        assert!(executed <= 200);
        assert!(h.stats().accesses() > 0);

        let mut h2 = Hierarchy::new(&cfg, NullLlc::default(), hllc_sim::ConstSizeData::new(64));
        let mut streams2 = vec![Finite(10)];
        drive_accesses(&mut h2, &mut streams2, 1_000);
        assert_eq!(h2.stats().accesses(), 10, "stops at exhaustion, no panic");
    }
}
