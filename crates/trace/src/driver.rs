//! Multi-core interleaving driver.
//!
//! Steps the core with the smallest local clock, pulling the next reference
//! from its application stream — approximating the concurrent execution of
//! the four programs of a mix on the shared LLC.

use hllc_sim::{DataModel, Hierarchy, LlcPort};

use crate::app::AppStream;

/// Runs until every core's clock has reached `target_cycles`. Returns the
/// number of references executed.
///
/// # Panics
///
/// Panics if `streams` is empty.
pub fn drive_cycles<L: LlcPort, D: DataModel>(
    h: &mut Hierarchy<L, D>,
    streams: &mut [AppStream],
    target_cycles: f64,
) -> u64 {
    assert!(!streams.is_empty(), "need at least one stream");
    let mut executed = 0u64;
    loop {
        let core = laggard(h, streams.len());
        if h.core_clock(core) >= target_cycles {
            break;
        }
        let a = streams[core].next_access(core as u8);
        h.access(&a);
        executed += 1;
    }
    executed
}

/// Runs exactly `n` references, still interleaving by clock. Returns the
/// final minimum core clock.
pub fn drive_accesses<L: LlcPort, D: DataModel>(
    h: &mut Hierarchy<L, D>,
    streams: &mut [AppStream],
    n: u64,
) -> f64 {
    assert!(!streams.is_empty(), "need at least one stream");
    for _ in 0..n {
        let core = laggard(h, streams.len());
        let a = streams[core].next_access(core as u8);
        h.access(&a);
    }
    h.min_clock()
}

/// The core with the smallest local clock.
fn laggard<L: LlcPort, D: DataModel>(h: &Hierarchy<L, D>, cores: usize) -> usize {
    (0..cores)
        .min_by(|&a, &b| h.core_clock(a).total_cmp(&h.core_clock(b)))
        .expect("at least one core")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::mixes;
    use hllc_sim::{NullLlc, SystemConfig};

    #[test]
    fn drive_cycles_advances_all_cores() {
        let mix = &mixes()[0];
        let cfg = SystemConfig::scaled_down();
        let mut h = Hierarchy::new(&cfg, NullLlc::default(), mix.data_model(1));
        let mut streams = mix.instantiate(0.05, 1);
        let executed = drive_cycles(&mut h, &mut streams, 20_000.0);
        assert!(executed > 100);
        for core in 0..4 {
            assert!(h.core_clock(core) >= 20_000.0, "core {core} lagging");
        }
    }

    #[test]
    fn drive_accesses_balances_clocks() {
        let mix = &mixes()[1];
        let cfg = SystemConfig::scaled_down();
        let mut h = Hierarchy::new(&cfg, NullLlc::default(), mix.data_model(2));
        let mut streams = mix.instantiate(0.05, 2);
        drive_accesses(&mut h, &mut streams, 10_000);
        let clocks: Vec<f64> = (0..4).map(|c| h.core_clock(c)).collect();
        let max = clocks.iter().cloned().fold(0.0, f64::max);
        let min = clocks.iter().cloned().fold(f64::INFINITY, f64::min);
        // Interleaving keeps cores loosely in step (within one max stall).
        assert!(max - min < 5_000.0, "clocks diverged: {clocks:?}");
        assert!(h.stats().accesses() == 10_000);
    }
}
