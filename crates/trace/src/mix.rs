//! The multi-programmed mixes of Table V.

use crate::app::{AppSpec, AppStream};
use crate::data::WorkloadData;
use crate::spec::app_by_name;

/// A four-application multi-programmed workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Mix {
    /// Mix label ("mix 1" … "mix 10").
    pub name: &'static str,
    /// The four applications, one per core.
    pub apps: Vec<AppSpec>,
}

impl Mix {
    fn from_names(name: &'static str, names: [&str; 4]) -> Self {
        let apps = names
            .iter()
            .map(|n| app_by_name(n).unwrap_or_else(|| panic!("unknown app {n}")))
            .collect();
        Mix { name, apps }
    }

    /// Creates one reference stream per core, with footprints scaled by
    /// `scale` (1.0 for the paper's 4 MB LLC).
    pub fn instantiate(&self, scale: f64, seed: u64) -> Vec<AppStream> {
        self.apps
            .iter()
            .enumerate()
            .map(|(slot, app)| app.instantiate(slot, scale, seed.wrapping_add(slot as u64 * 7919)))
            .collect()
    }

    /// Builds the matching data model (one compressibility profile per app
    /// slot), sizing blocks with the paper's BDI compressor.
    pub fn data_model(&self, seed: u64) -> WorkloadData {
        WorkloadData::new(self.apps.iter().map(|a| a.profile.clone()).collect(), seed)
    }

    /// Like [`Mix::data_model`] but with an explicit compression mechanism
    /// (the FPC ablation).
    pub fn data_model_with(&self, kind: hllc_compress::CompressorKind, seed: u64) -> WorkloadData {
        self.data_model(seed).with_compressor(kind)
    }
}

/// The ten mixes of Table V.
pub fn mixes() -> Vec<Mix> {
    vec![
        Mix::from_names("mix 1", ["zeusmp06", "gobmk06", "dealII06", "bzip206"]),
        Mix::from_names("mix 2", ["hmmer06", "bzip206", "wrf06", "roms17"]),
        Mix::from_names("mix 3", ["zeusmp06", "cactuBSSN17", "hmmer06", "soplex06"]),
        Mix::from_names("mix 4", ["omnetpp06", "astar06", "milc06", "libquantum06"]),
        Mix::from_names("mix 5", ["xalancbmk06", "leslie3d06", "bwaves17", "mcf17"]),
        Mix::from_names("mix 6", ["lbm17", "xz17", "GemsFDTD06", "wrf06"]),
        Mix::from_names(
            "mix 7",
            ["cactuBSSN17", "dealII06", "libquantum06", "xalancbmk06"],
        ),
        Mix::from_names("mix 8", ["gobmk06", "milc06", "mcf17", "lbm17"]),
        Mix::from_names("mix 9", ["xz17", "astar06", "bwaves17", "soplex06"]),
        Mix::from_names(
            "mix 10",
            ["GemsFDTD06", "omnetpp06", "roms17", "leslie3d06"],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_mixes_of_four() {
        let ms = mixes();
        assert_eq!(ms.len(), 10);
        assert!(ms.iter().all(|m| m.apps.len() == 4));
    }

    #[test]
    fn every_registered_app_appears_in_some_mix() {
        let ms = mixes();
        for app in crate::spec::spec_apps() {
            assert!(
                ms.iter().any(|m| m.apps.iter().any(|a| a.name == app.name)),
                "{} unused",
                app.name
            );
        }
    }

    #[test]
    fn instantiation_slots_are_disjoint() {
        let mix = &mixes()[0];
        let mut streams = mix.instantiate(0.1, 1);
        let mut slots = std::collections::HashSet::new();
        for (i, s) in streams.iter_mut().enumerate() {
            slots.insert(s.next_access(i as u8).addr >> crate::APP_SLOT_SHIFT);
        }
        assert_eq!(slots.len(), 4);
    }

    #[test]
    fn data_model_has_four_profiles() {
        use hllc_sim::DataModel;
        let mix = &mixes()[5]; // lbm, xz, Gems, wrf
        let mut d = mix.data_model(1);
        // Slot 1 is xz17: incompressible.
        let xz_block = 1u64 << (crate::APP_SLOT_SHIFT - 6);
        assert_eq!(d.compressed_size(xz_block | 5), 64);
    }
}
