//! The 20 SPEC CPU 2006/2017-like application models used by Table V.
//!
//! Footprints, write behaviour, pattern archetypes, and compressibility
//! profiles are calibrated so that (a) the average block population matches
//! Figure 2 (~49 % HCR, ~29 % LCR, ~22 % incompressible; GemsFDTD/zeusmp
//! almost fully compressible, xz17/milc fully incompressible), (b) the
//! mixes are memory-intensive with aggregate working sets exceeding the
//! 4 MB LLC, and (c) looping applications partially fit the LLC so that
//! loop-blocks/read-reuse are actually observable there — the behaviour the
//! NVM-aware insertion policies feed on. Footprints are in 64-byte blocks
//! (16384 blocks = 1 MB).

use crate::app::AppSpec;
use crate::pattern::Pattern;
use crate::profile::Profile;

const MB: u64 = 16_384; // blocks per megabyte

fn phased(a: Pattern, b: Pattern, period: u64) -> Pattern {
    Pattern::Phased {
        a: Box::new(a),
        b: Box::new(b),
        period,
    }
}

#[allow(clippy::too_many_arguments)]
fn app(
    name: &'static str,
    footprint_blocks: u64,
    pattern: Pattern,
    write_fraction: f64,
    writable_fraction: f64,
    mean_inst_gap: f64,
    profile: Profile,
) -> AppSpec {
    // Hot regions sit at the start of the footprint; making them read-only
    // models the coefficient/lookup arrays that loop-block detection feeds
    // on. Apps without a hot region get no read-only prefix.
    let read_only_prefix = match &pattern {
        Pattern::LoopHot { hot_fraction, .. } => *hot_fraction,
        Pattern::HotCold { hot_fraction, .. } => hot_fraction * 0.6,
        Pattern::Phased { a, .. } => match a.as_ref() {
            Pattern::LoopHot { hot_fraction, .. } => *hot_fraction,
            Pattern::HotCold { hot_fraction, .. } => hot_fraction * 0.6,
            _ => 0.0,
        },
        _ => 0.0,
    };
    AppSpec {
        name,
        footprint_blocks,
        pattern,
        write_fraction,
        writable_fraction,
        read_only_prefix,
        mean_inst_gap,
        profile,
    }
}

/// Builds the full application registry.
pub fn spec_apps() -> Vec<AppSpec> {
    vec![
        // Floating-point loop nests: LLC-resident read arrays, highly
        // compressible data.
        app(
            "zeusmp06",
            8 * MB,
            phased(
                Pattern::LoopHot {
                    stride: 1,
                    hot_fraction: 0.11,
                    hot_probability: 0.55,
                },
                Pattern::Loop { stride: 1 },
                120_000,
            ),
            0.65,
            0.50,
            7.0,
            Profile::from_fractions(0.93, 0.07, 0.00, 0.35),
        ),
        app(
            "GemsFDTD06",
            8 * MB,
            Pattern::LoopHot {
                stride: 1,
                hot_fraction: 0.11,
                hot_probability: 0.55,
            },
            0.65,
            0.50,
            6.0,
            Profile::from_fractions(0.96, 0.04, 0.00, 0.40),
        ),
        app(
            "cactuBSSN17",
            8 * MB,
            Pattern::LoopHot {
                stride: 1,
                hot_fraction: 0.11,
                hot_probability: 0.55,
            },
            0.60,
            0.50,
            7.0,
            Profile::from_fractions(0.68, 0.22, 0.10, 0.20),
        ),
        app(
            "leslie3d06",
            8 * MB,
            Pattern::LoopHot {
                stride: 1,
                hot_fraction: 0.11,
                hot_probability: 0.55,
            },
            0.65,
            0.55,
            6.0,
            Profile::from_fractions(0.58, 0.27, 0.15, 0.20),
        ),
        app(
            "wrf06",
            6 * MB,
            Pattern::LoopHot {
                stride: 2,
                hot_fraction: 0.11,
                hot_probability: 0.55,
            },
            0.60,
            0.50,
            7.0,
            Profile::from_fractions(0.55, 0.30, 0.15, 0.20),
        ),
        app(
            "libquantum06",
            6 * MB,
            Pattern::LoopHot {
                stride: 1,
                hot_fraction: 0.14,
                hot_probability: 0.60,
            },
            0.55,
            0.60,
            5.0,
            Profile::from_fractions(0.80, 0.15, 0.05, 0.40),
        ),
        app(
            "bwaves17",
            10 * MB,
            phased(
                Pattern::LoopHot {
                    stride: 1,
                    hot_fraction: 0.09,
                    hot_probability: 0.55,
                },
                Pattern::Stream { spread: 2 },
                100_000,
            ),
            0.60,
            0.50,
            5.0,
            Profile::from_fractions(0.52, 0.33, 0.15, 0.25),
        ),
        app(
            "roms17",
            8 * MB,
            phased(
                Pattern::LoopHot {
                    stride: 1,
                    hot_fraction: 0.11,
                    hot_probability: 0.55,
                },
                Pattern::Stream { spread: 3 },
                80_000,
            ),
            0.65,
            0.55,
            6.0,
            Profile::from_fractions(0.62, 0.23, 0.15, 0.25),
        ),
        // Streaming / thrashing applications.
        app(
            "lbm17",
            8 * MB,
            Pattern::Stream { spread: 2 },
            0.70,
            0.80,
            5.0,
            Profile::from_fractions(0.38, 0.32, 0.30, 0.10),
        ),
        app(
            "milc06",
            8 * MB,
            Pattern::Stream { spread: 4 },
            0.65,
            0.70,
            6.0,
            Profile::incompressible(),
        ),
        app(
            "bzip206",
            3 * MB,
            phased(Pattern::Stream { spread: 4 }, Pattern::Random, 60_000),
            0.65,
            0.70,
            8.0,
            Profile::from_fractions(0.30, 0.35, 0.35, 0.05),
        ),
        app(
            "xz17",
            4 * MB,
            phased(Pattern::Random, Pattern::Stream { spread: 2 }, 70_000),
            0.70,
            0.80,
            8.0,
            Profile::incompressible(),
        ),
        // Irregular / pointer-heavy applications.
        app(
            "mcf17",
            6 * MB,
            phased(
                Pattern::HotCold {
                    hot_fraction: 0.10,
                    hot_probability: 0.65,
                },
                Pattern::Random,
                90_000,
            ),
            0.55,
            0.60,
            7.0,
            Profile::from_fractions(0.42, 0.33, 0.25, 0.10),
        ),
        app(
            "omnetpp06",
            3 * MB,
            Pattern::HotCold {
                hot_fraction: 0.12,
                hot_probability: 0.7,
            },
            0.70,
            0.70,
            9.0,
            Profile::from_fractions(0.55, 0.25, 0.20, 0.12),
        ),
        app(
            "soplex06",
            3 * MB,
            Pattern::HotCold {
                hot_fraction: 0.12,
                hot_probability: 0.65,
            },
            0.45,
            0.55,
            9.0,
            Profile::from_fractions(0.48, 0.22, 0.30, 0.15),
        ),
        app(
            "gobmk06",
            2 * MB,
            Pattern::HotCold {
                hot_fraction: 0.15,
                hot_probability: 0.6,
            },
            0.55,
            0.60,
            14.0,
            Profile::from_fractions(0.45, 0.25, 0.30, 0.10),
        ),
        app(
            "xalancbmk06",
            3 * MB,
            phased(
                Pattern::Random,
                Pattern::HotCold {
                    hot_fraction: 0.15,
                    hot_probability: 0.8,
                },
                50_000,
            ),
            0.45,
            0.55,
            10.0,
            Profile::from_fractions(0.60, 0.25, 0.15, 0.20),
        ),
        // Hot/cold working sets.
        app(
            "astar06",
            3 * MB,
            Pattern::HotCold {
                hot_fraction: 0.1,
                hot_probability: 0.7,
            },
            0.55,
            0.60,
            11.0,
            Profile::from_fractions(0.50, 0.20, 0.30, 0.10),
        ),
        app(
            "hmmer06",
            MB / 2,
            Pattern::HotCold {
                hot_fraction: 0.1,
                hot_probability: 0.85,
            },
            0.70,
            0.70,
            12.0,
            Profile::from_fractions(0.50, 0.30, 0.20, 0.10),
        ),
        app(
            "dealII06",
            6 * MB,
            phased(
                Pattern::LoopHot {
                    stride: 1,
                    hot_fraction: 0.11,
                    hot_probability: 0.55,
                },
                Pattern::Random,
                40_000,
            ),
            0.60,
            0.55,
            10.0,
            Profile::from_fractions(0.55, 0.25, 0.20, 0.15),
        ),
    ]
}

/// Looks an application model up by its SPEC-style name.
pub fn app_by_name(name: &str) -> Option<AppSpec> {
    spec_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SynthClass;

    #[test]
    fn twenty_apps_with_unique_names() {
        let apps = spec_apps();
        assert_eq!(apps.len(), 20);
        let names: std::collections::HashSet<_> = apps.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("zeusmp06").is_some());
        assert!(app_by_name("GemsFDTD06").is_some());
        assert!(app_by_name("doom").is_none());
    }

    #[test]
    fn figure2_population_average() {
        // Average class fractions across all apps should approximate the
        // paper's 49 % HCR / 29 % LCR / 22 % incompressible (±8 points —
        // the calibration is by-eye from Figure 2).
        let apps = spec_apps();
        let mut hcr = 0.0;
        let mut lcr = 0.0;
        let mut inc = 0.0;
        let n = 10_000u64;
        for app in &apps {
            for b in 0..n {
                match app.profile.sample_class(b).nominal_size() {
                    s if s <= 37 => hcr += 1.0,
                    64 => inc += 1.0,
                    _ => lcr += 1.0,
                }
            }
        }
        let total = (apps.len() as f64) * n as f64;
        let (hcr, lcr, inc) = (hcr / total, lcr / total, inc / total);
        assert!((hcr - 0.49).abs() < 0.08, "HCR {hcr}");
        assert!((lcr - 0.29).abs() < 0.08, "LCR {lcr}");
        assert!((inc - 0.22).abs() < 0.08, "incompressible {inc}");
    }

    #[test]
    fn extreme_apps_match_paper() {
        let gems = app_by_name("GemsFDTD06").unwrap();
        let compressible = (0..1000)
            .filter(|&b| gems.profile.sample_class(b) != SynthClass::Incompressible)
            .count();
        assert!(
            compressible == 1000,
            "GemsFDTD should be fully compressible"
        );

        let xz = app_by_name("xz17").unwrap();
        let incompressible = (0..1000)
            .filter(|&b| xz.profile.sample_class(b) == SynthClass::Incompressible)
            .count();
        assert_eq!(incompressible, 1000, "xz17 should be fully incompressible");
    }

    #[test]
    fn footprints_exceed_private_caches() {
        // Every app must at least spill out of the 128 KB L2.
        for app in spec_apps() {
            assert!(
                app.footprint_blocks * 64 > 128 * 1024,
                "{} too small",
                app.name
            );
        }
    }

    #[test]
    fn write_behaviour_is_bounded() {
        for app in spec_apps() {
            assert!((0.0..=1.0).contains(&app.write_fraction), "{}", app.name);
            assert!((0.0..=1.0).contains(&app.writable_fraction), "{}", app.name);
        }
    }
}
