//! The workload-backed data model: real payload synthesis through the real
//! BDI compressor, memoized per block.

use std::collections::HashMap;

use hllc_compress::{Block, CompressorKind};
use hllc_sim::DataModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::app::APP_SLOT_SHIFT;
use crate::profile::{splitmix, BuildSplitmix, Profile};

/// Block-address bit where the app slot lives (byte bit 40 → block bit 34).
const SLOT_SHIFT_BLOCKS: u32 = APP_SLOT_SHIFT - 6;

/// Data model for a multi-programmed mix: each app slot has its own
/// compressibility profile; per-block compressed sizes are derived by
/// synthesizing a payload of the block's sticky class and compressing it
/// with the real BDI compressor, then memoized.
///
/// # Example
///
/// ```
/// use hllc_sim::DataModel;
/// use hllc_trace::{Profile, WorkloadData};
///
/// let mut d = WorkloadData::new(vec![Profile::incompressible()], 1);
/// assert_eq!(d.compressed_size(0x123), 64);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadData {
    profiles: Vec<Profile>,
    compressor: CompressorKind,
    /// Memoized per-block sizes. Keyed with the splitmix hasher: the map is
    /// only ever probed and inserted (never iterated), so the hash function
    /// affects speed, not simulation results.
    sizes: HashMap<u64, u8, BuildSplitmix>,
    rng: StdRng,
}

impl WorkloadData {
    /// Creates the model for apps in slots `0..profiles.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn new(profiles: Vec<Profile>, seed: u64) -> Self {
        assert!(!profiles.is_empty(), "at least one profile required");
        WorkloadData {
            profiles,
            compressor: CompressorKind::Bdi,
            sizes: HashMap::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Switches the compression mechanism used to size blocks (ablation:
    /// the insertion policies are compressor-orthogonal).
    pub fn with_compressor(mut self, kind: CompressorKind) -> Self {
        assert!(
            self.sizes.is_empty(),
            "switch compressors before any sizing"
        );
        self.compressor = kind;
        self
    }

    /// The compression mechanism in use.
    pub fn compressor(&self) -> CompressorKind {
        self.compressor
    }

    fn profile_of(&self, block: u64) -> &Profile {
        let slot = (block >> SLOT_SHIFT_BLOCKS) as usize;
        &self.profiles[slot.min(self.profiles.len() - 1)]
    }

    /// Synthesizes the current payload of `block` (for functional examples
    /// and round-trip tests; the hot path only needs the size).
    pub fn synthesize_block(&mut self, block: u64) -> Block {
        let class = self.profile_of(block).sample_class(splitmix(block));
        Profile::synthesize(class, &mut self.rng)
    }

    /// Number of memoized block sizes (diagnostics).
    pub fn memoized(&self) -> usize {
        self.sizes.len()
    }
}

impl DataModel for WorkloadData {
    fn compressed_size(&mut self, block: u64) -> u8 {
        if let Some(&s) = self.sizes.get(&block) {
            return s;
        }
        let class = self.profile_of(block).sample_class(splitmix(block));
        let payload = Profile::synthesize(class, &mut self.rng);
        let size = self.compressor.compressed_size(&payload);
        self.sizes.insert(block, size);
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SynthClass;

    #[test]
    fn sizes_are_memoized_and_stable() {
        let mut d = WorkloadData::new(vec![Profile::from_fractions(0.5, 0.3, 0.2, 0.2)], 3);
        let s1 = d.compressed_size(77);
        let s2 = d.compressed_size(77);
        assert_eq!(s1, s2);
        assert_eq!(d.memoized(), 1);
    }

    #[test]
    fn per_slot_profiles() {
        let mut d = WorkloadData::new(
            vec![
                Profile::incompressible(),
                Profile::from_fractions(1.0, 0.0, 0.0, 1.0),
            ],
            3,
        );
        // Slot 0: always 64. Slot 1 (all-zero bias 1.0): always 1.
        assert_eq!(d.compressed_size(5), 64);
        let slot1_block = (1u64 << SLOT_SHIFT_BLOCKS) | 5;
        assert_eq!(d.compressed_size(slot1_block), 1);
    }

    #[test]
    fn class_population_matches_profile() {
        let p = Profile::from_fractions(0.49, 0.29, 0.22, 0.2);
        let mut d = WorkloadData::new(vec![p], 9);
        let n = 20_000u64;
        let mut hcr = 0u32;
        let mut lcr = 0u32;
        let mut inc = 0u32;
        for b in 0..n {
            match d.compressed_size(b) {
                s if s <= 37 => hcr += 1,
                64 => inc += 1,
                _ => lcr += 1,
            }
        }
        // The compressor can only shrink below nominal, so HCR may gain a
        // little mass from LCR draws — tolerances are loose.
        assert!((hcr as f64 / n as f64 - 0.49).abs() < 0.05, "hcr {hcr}");
        assert!((lcr as f64 / n as f64 - 0.29).abs() < 0.05, "lcr {lcr}");
        assert!((inc as f64 / n as f64 - 0.22).abs() < 0.05, "inc {inc}");
    }

    #[test]
    fn fpc_compressor_swaps_in() {
        use hllc_compress::CompressorKind;
        let p = Profile::from_fractions(1.0, 0.0, 0.0, 1.0); // all-zero blocks
        let mut bdi = WorkloadData::new(vec![p.clone()], 3);
        let mut fpc = WorkloadData::new(vec![p], 3).with_compressor(CompressorKind::Fpc);
        assert_eq!(bdi.compressed_size(9), 1); // BDI zero encoding
        assert_eq!(fpc.compressed_size(9), 6); // FPC: 16 prefixes
    }

    #[test]
    fn synthesize_block_matches_class_size() {
        let mut d = WorkloadData::new(vec![Profile::incompressible()], 1);
        let b = d.synthesize_block(9);
        assert_eq!(
            hllc_compress::Compressor::new().compressed_size(&b),
            SynthClass::Incompressible.nominal_size()
        );
    }
}
