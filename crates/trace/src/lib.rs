//! Synthetic SPEC CPU 2006/2017-like workloads.
//!
//! The paper evaluates ten multi-programmed mixes of memory-intensive SPEC
//! applications (Table V). SPEC binaries and traces are proprietary, so this
//! crate models each application as a parameterised synthetic reference
//! generator (DESIGN.md substitution #1):
//!
//! * an **access pattern** archetype (looping, streaming, uniform random,
//!   hot/cold, phased combinations) over a private footprint;
//! * a **write fraction** and mean instruction gap;
//! * a **data-compressibility profile** calibrated against Figure 2 —
//!   64-byte payloads are synthesized per block and pushed through the real
//!   BDI compressor to obtain compressed sizes.
//!
//! # Example
//!
//! ```
//! use hllc_trace::mixes;
//!
//! let mix = &mixes()[0];
//! assert_eq!(mix.apps.len(), 4);
//! let mut streams = mix.instantiate(1.0, 42);
//! let a = streams[0].next_access(0);
//! assert_eq!(a.core, 0);
//! ```

mod app;
mod data;
mod driver;
mod mix;
mod pattern;
mod profile;
mod spec;

pub use app::{AppSpec, AppStream, APP_SLOT_SHIFT};
pub use data::WorkloadData;
pub use driver::{drive_accesses, drive_cycles, RefSource};
pub use mix::{mixes, Mix};
pub use pattern::Pattern;
pub use profile::{BuildSplitmix, Profile, SplitmixHasher, SynthClass};
pub use spec::{app_by_name, spec_apps};
