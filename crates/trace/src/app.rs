//! Application specifications and reference streams.

use hllc_sim::{Access, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pattern::{Pattern, PatternState};
use crate::profile::Profile;

/// Byte-address bit where the application slot is encoded. Each app of a
/// mix owns a disjoint 1 TiB address range, so multi-programmed workloads
/// never alias (the paper's workloads share nothing).
pub const APP_SLOT_SHIFT: u32 = 40;

/// A synthetic application model: the static description of a SPEC-like
/// program's memory behaviour.
#[derive(Clone, Debug, PartialEq)]
pub struct AppSpec {
    /// SPEC-style name, e.g. `"zeusmp06"`.
    pub name: &'static str,
    /// Data footprint in 64-byte blocks, sized against the paper's 4 MB
    /// LLC. Scaled by `instantiate`'s `scale` argument.
    pub footprint_blocks: u64,
    /// Access pattern archetype.
    pub pattern: Pattern,
    /// Fraction of references to *writable* blocks that are stores.
    pub write_fraction: f64,
    /// Fraction of the footprint that is ever written. Real programs write
    /// some arrays and only read others — this dichotomy is what loop-block
    /// and read/write-reuse detection exploits. References to read-only
    /// blocks are always loads.
    pub writable_fraction: f64,
    /// Fraction of the footprint, starting at block 0, that is *never*
    /// written regardless of `writable_fraction`. Hot regions live at the
    /// start of the footprint, so setting this to the hot fraction models
    /// read-only coefficient arrays / lookup tables — the archetypal
    /// loop-blocks.
    pub read_only_prefix: f64,
    /// Mean non-memory instructions between references (memory intensity).
    pub mean_inst_gap: f64,
    /// Block-content compressibility profile (Figure 2).
    pub profile: Profile,
}

impl AppSpec {
    /// Creates the runnable stream for this app in address slot `slot`,
    /// with footprints multiplied by `scale` (use `sets/4096` when running
    /// a scaled-down LLC).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn instantiate(&self, slot: usize, scale: f64, seed: u64) -> AppStream {
        assert!(scale > 0.0, "scale must be positive");
        let footprint = ((self.footprint_blocks as f64 * scale) as u64).max(64);
        AppStream {
            name: self.name,
            base: (slot as u64) << APP_SLOT_SHIFT,
            footprint,
            pattern: self.pattern.clone(),
            state: self.pattern.start(),
            write_fraction: self.write_fraction,
            writable_fraction: self.writable_fraction,
            read_only_blocks: (self.read_only_prefix * footprint as f64) as u64,
            mean_inst_gap: self.mean_inst_gap,
            rng: StdRng::seed_from_u64(seed ^ (slot as u64).wrapping_mul(0x9E37_79B9)),
        }
    }
}

/// An infinite stream of memory references for one application instance.
#[derive(Clone, Debug)]
pub struct AppStream {
    name: &'static str,
    base: u64,
    footprint: u64,
    pattern: Pattern,
    state: PatternState,
    write_fraction: f64,
    writable_fraction: f64,
    read_only_blocks: u64,
    mean_inst_gap: f64,
    rng: StdRng,
}

impl AppStream {
    /// The application's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The instantiated footprint in blocks.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Produces the next reference, stamped with `core`.
    pub fn next_access(&mut self, core: u8) -> Access {
        let index = self
            .pattern
            .next_index(&mut self.state, self.footprint, &mut self.rng);
        let addr = self.base | (index << 6);
        // A block is writable iff it lies past the read-only prefix and its
        // sticky hash falls below the writable fraction.
        let writable = index >= self.read_only_blocks
            && ((crate::profile::splitmix(addr) >> 11) as f64 / (1u64 << 53) as f64)
                < self.writable_fraction;
        let op = if writable && self.rng.gen::<f64>() < self.write_fraction {
            Op::Store
        } else {
            Op::Load
        };
        // Exponentially distributed gap around the mean.
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = (-self.mean_inst_gap * u.ln()).min(10_000.0) as u32;
        Access {
            core,
            op,
            addr,
            inst_gap: gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AppSpec {
        AppSpec {
            name: "test",
            footprint_blocks: 4096,
            pattern: Pattern::Random,
            write_fraction: 0.3,
            writable_fraction: 1.0,
            read_only_prefix: 0.0,
            mean_inst_gap: 10.0,
            profile: Profile::from_fractions(0.5, 0.3, 0.2, 0.2),
        }
    }

    #[test]
    fn addresses_stay_in_slot() {
        let mut s = spec().instantiate(3, 1.0, 1);
        for _ in 0..1000 {
            let a = s.next_access(3);
            assert_eq!(a.addr >> APP_SLOT_SHIFT, 3);
            assert!((a.addr & ((1 << APP_SLOT_SHIFT) - 1)) < 4096 * 64);
        }
    }

    #[test]
    fn write_fraction_approximated() {
        let mut s = spec().instantiate(0, 1.0, 2);
        let stores = (0..20_000)
            .filter(|_| s.next_access(0).op == Op::Store)
            .count();
        let frac = stores as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "store fraction {frac}");
    }

    #[test]
    fn scaling_shrinks_footprint() {
        let s = spec().instantiate(0, 0.125, 3);
        assert_eq!(s.footprint(), 512);
        // Tiny scales are clamped to a sane minimum.
        assert_eq!(spec().instantiate(0, 1e-9, 3).footprint(), 64);
    }

    #[test]
    fn gap_mean_is_reasonable() {
        let mut s = spec().instantiate(0, 1.0, 4);
        let total: u64 = (0..20_000)
            .map(|_| u64::from(s.next_access(0).inst_gap))
            .sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 10.0).abs() < 1.0, "gap mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = spec().instantiate(0, 1.0, 9);
        let mut b = spec().instantiate(0, 1.0, 9);
        for _ in 0..100 {
            assert_eq!(a.next_access(0), b.next_access(0));
        }
    }
}
