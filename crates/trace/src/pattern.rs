//! Access-pattern archetypes.

use rand::Rng;

/// A memory access pattern over a footprint of `N` blocks. Patterns return
/// block *indices* (0-based within the app's footprint); the stream layer
/// turns them into addresses.
#[derive(Clone, Debug, PartialEq)]
pub enum Pattern {
    /// Sequential loop over the footprint with the given block stride —
    /// classic loop-block behaviour (zeusmp, GemsFDTD, ...).
    Loop {
        /// Blocks advanced per access (1 = dense sweep).
        stride: u64,
    },
    /// Forward streaming with negligible reuse: the footprint is traversed
    /// once per `repeat_after` sweeps of the nominal footprint, modelling
    /// working sets far larger than the LLC (lbm, milc, ...).
    Stream {
        /// Effective footprint multiplier (≥ 1); larger = less reuse.
        spread: u64,
    },
    /// Uniform random references within the footprint (gobmk, xalancbmk,
    /// and the pointer-chasing apps, whose dependent-load serialization the
    /// analytical timing model does not distinguish).
    Random,
    /// A sequential sweep interleaved with accesses to a small hot region
    /// at the start of the footprint — the shape of stencil loop nests that
    /// stream over a grid while repeatedly touching boundary planes and
    /// coefficient arrays. The hot region is what loop-block detection
    /// latches onto.
    LoopHot {
        /// Blocks advanced per sweep access.
        stride: u64,
        /// Fraction of the footprint forming the hot region.
        hot_fraction: f64,
        /// Probability an access targets the hot region instead of
        /// advancing the sweep.
        hot_probability: f64,
    },
    /// A hot subset absorbing most references (hmmer-like).
    HotCold {
        /// Fraction of the footprint that is hot (0–1).
        hot_fraction: f64,
        /// Probability an access targets the hot subset.
        hot_probability: f64,
    },
    /// Alternates between two sub-patterns every `period` accesses —
    /// produces the epoch-to-epoch behaviour variability that Set Dueling
    /// exploits (Figure 8).
    Phased {
        /// First phase.
        a: Box<Pattern>,
        /// Second phase.
        b: Box<Pattern>,
        /// Accesses per phase.
        period: u64,
    },
}

impl Pattern {
    /// A dense sequential loop.
    pub fn dense_loop() -> Self {
        Pattern::Loop { stride: 1 }
    }

    /// Creates the mutable walker state for this pattern.
    pub fn start(&self) -> PatternState {
        PatternState {
            position: 0,
            count: 0,
        }
    }

    /// Produces the next block index in `0..footprint`.
    pub fn next_index<R: Rng + ?Sized>(
        &self,
        state: &mut PatternState,
        footprint: u64,
        rng: &mut R,
    ) -> u64 {
        state.count += 1;
        self.index_inner(state, footprint, rng)
    }

    /// Pattern dispatch without advancing the access counter (sub-patterns
    /// of `Phased` share the top-level count).
    fn index_inner<R: Rng + ?Sized>(
        &self,
        state: &mut PatternState,
        footprint: u64,
        rng: &mut R,
    ) -> u64 {
        match self {
            Pattern::Loop { stride } => {
                state.position = (state.position + stride) % footprint;
                state.position
            }
            Pattern::Stream { spread } => {
                let virtual_footprint = footprint * (*spread).max(1);
                state.position = (state.position + 1) % virtual_footprint;
                state.position % footprint
            }
            Pattern::Random => rng.gen_range(0..footprint),
            Pattern::LoopHot {
                stride,
                hot_fraction,
                hot_probability,
            } => {
                if rng.gen::<f64>() < *hot_probability {
                    let hot_blocks = ((footprint as f64 * hot_fraction) as u64).max(1);
                    rng.gen_range(0..hot_blocks)
                } else {
                    state.position = (state.position + stride) % footprint;
                    state.position
                }
            }
            Pattern::HotCold {
                hot_fraction,
                hot_probability,
            } => {
                let hot_blocks = ((footprint as f64 * hot_fraction) as u64).max(1);
                if rng.gen::<f64>() < *hot_probability {
                    rng.gen_range(0..hot_blocks)
                } else {
                    hot_blocks.saturating_add(rng.gen_range(0..(footprint - hot_blocks).max(1)))
                        % footprint
                }
            }
            Pattern::Phased { a, b, period } => {
                let phase = (state.count / (*period).max(1)) % 2;
                // Sub-patterns share the walker state; that is fine — a
                // phase change naturally "restarts" the traversal.
                if phase == 0 {
                    a.index_inner(state, footprint, rng)
                } else {
                    b.index_inner(state, footprint, rng)
                }
            }
        }
    }
}

/// Mutable walker state of a [`Pattern`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatternState {
    position: u64,
    count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn walk(p: &Pattern, n: usize, footprint: u64) -> Vec<u64> {
        let mut st = p.start();
        let mut rng = StdRng::seed_from_u64(5);
        (0..n)
            .map(|_| p.next_index(&mut st, footprint, &mut rng))
            .collect()
    }

    #[test]
    fn loop_revisits_with_period_footprint() {
        let seq = walk(&Pattern::dense_loop(), 20, 8);
        assert_eq!(&seq[..8], &[1, 2, 3, 4, 5, 6, 7, 0]);
        assert_eq!(seq[0], seq[8]);
    }

    #[test]
    fn stream_spread_reduces_reuse() {
        // spread 4 over footprint 8: the same index recurs every 8 steps of
        // position but addresses repeat only after 32 accesses of the
        // virtual footprint... the modulo still revisits; check coverage.
        let seq = walk(&Pattern::Stream { spread: 4 }, 32, 8);
        let unique: std::collections::HashSet<_> = seq.iter().collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn random_stays_in_range() {
        let seq = walk(&Pattern::Random, 1000, 16);
        assert!(seq.iter().all(|&i| i < 16));
        let unique: std::collections::HashSet<_> = seq.iter().collect();
        assert!(unique.len() > 10, "random pattern barely explores");
    }

    #[test]
    fn hot_cold_concentrates() {
        let p = Pattern::HotCold {
            hot_fraction: 0.1,
            hot_probability: 0.9,
        };
        let seq = walk(&p, 10_000, 1000);
        let hot_hits = seq.iter().filter(|&&i| i < 100).count();
        assert!(
            hot_hits as f64 / 10_000.0 > 0.85,
            "hot set not hot: {hot_hits}"
        );
    }

    #[test]
    fn phased_switches_behaviour() {
        let p = Pattern::Phased {
            a: Box::new(Pattern::dense_loop()),
            b: Box::new(Pattern::Random),
            period: 100,
        };
        let seq = walk(&p, 200, 1_000_000);
        // Phase a: consecutive increments; phase b: jumps.
        let increments = seq.windows(2).take(98).filter(|w| w[1] == w[0] + 1).count();
        assert!(increments > 90);
        let jumps = seq
            .windows(2)
            .skip(101)
            .filter(|w| w[1] != w[0] + 1)
            .count();
        assert!(jumps > 90);
    }
}
