//! Per-application data-compressibility profiles.

use hllc_compress::Block;
use rand::Rng;

/// The synthetic block classes a profile distributes its data over.
///
/// `Delta(d)` blocks are eight 64-bit lanes whose offsets from a common
/// base need exactly `d` bytes — they compress to the `B8Δd` encoding
/// (size `8 + 7·d` bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SynthClass {
    /// All-zero blocks (1 B compressed).
    Zeros,
    /// A repeated 8-byte value (8 B compressed).
    Repeated,
    /// Base + deltas of exactly `d` bytes, `1 <= d <= 7`.
    Delta(u8),
    /// High-entropy blocks no encoding captures (64 B).
    Incompressible,
}

impl SynthClass {
    /// All classes, in weight-vector order.
    pub const ALL: [SynthClass; 10] = [
        SynthClass::Zeros,
        SynthClass::Repeated,
        SynthClass::Delta(1),
        SynthClass::Delta(2),
        SynthClass::Delta(3),
        SynthClass::Delta(4),
        SynthClass::Delta(5),
        SynthClass::Delta(6),
        SynthClass::Delta(7),
        SynthClass::Incompressible,
    ];

    /// The compressed size the BDI compressor will report for a block of
    /// this class (upper bound: the compressor may find a smaller encoding
    /// for degenerate draws).
    pub fn nominal_size(self) -> u8 {
        match self {
            SynthClass::Zeros => 1,
            SynthClass::Repeated => 8,
            SynthClass::Delta(d) => 8 + 7 * d,
            SynthClass::Incompressible => 64,
        }
    }
}

/// A distribution over [`SynthClass`]es.
///
/// # Example
///
/// ```
/// use hllc_trace::Profile;
///
/// let p = Profile::incompressible();
/// assert_eq!(p.sample_class(123).nominal_size(), 64);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Cumulative weights over `SynthClass::ALL`.
    cumulative: [f64; 10],
}

impl Profile {
    /// Creates a profile from raw (non-negative, not all zero) weights over
    /// `[Zeros, Repeated, Δ1..Δ7, Incompressible]`.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    pub fn new(weights: [f64; 10]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mut cumulative = [0.0; 10];
        let mut acc = 0.0;
        for (c, w) in cumulative.iter_mut().zip(weights) {
            acc += w / total;
            *c = acc;
        }
        cumulative[9] = 1.0;
        Profile { cumulative }
    }

    /// A profile of purely incompressible blocks (xz17, milc).
    pub fn incompressible() -> Self {
        let mut w = [0.0; 10];
        w[9] = 1.0;
        Profile::new(w)
    }

    /// Convenience constructor from aggregate class fractions. The HCR mass
    /// is spread over zeros/repeated/Δ1–Δ4, the LCR mass over Δ5–Δ7, with a
    /// `zero_bias` (0–1) controlling how much of the HCR mass is all-zero
    /// blocks.
    pub fn from_fractions(hcr: f64, lcr: f64, incompressible: f64, zero_bias: f64) -> Self {
        assert!(
            (hcr + lcr + incompressible - 1.0).abs() < 1e-6,
            "fractions must sum to 1"
        );
        let z = hcr * zero_bias;
        let rest = hcr - z;
        Profile::new([
            z,
            rest * 0.15, // repeated
            rest * 0.30, // Δ1
            rest * 0.25, // Δ2
            rest * 0.20, // Δ3
            rest * 0.10, // Δ4
            lcr * 0.40,  // Δ5
            lcr * 0.35,  // Δ6
            lcr * 0.25,  // Δ7
            incompressible,
        ])
    }

    /// Deterministically picks the class of a block from its address hash —
    /// a block's compressibility class is *sticky* across rewrites
    /// (DESIGN.md substitution #6).
    pub fn sample_class(&self, block_seed: u64) -> SynthClass {
        let h = splitmix(block_seed);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        for (i, &c) in self.cumulative.iter().enumerate() {
            if u < c {
                return SynthClass::ALL[i];
            }
        }
        SynthClass::Incompressible
    }

    /// Synthesizes a 64-byte payload of the given class.
    pub fn synthesize<R: Rng + ?Sized>(class: SynthClass, rng: &mut R) -> Block {
        match class {
            SynthClass::Zeros => Block::zeroed(),
            SynthClass::Repeated => Block::from_u64_lanes([rng.gen::<u64>(); 8]),
            SynthClass::Delta(d) => {
                // Deltas that need exactly d bytes: magnitude in
                // [2^(8d-9), 2^(8d-1)).
                let lo: i64 = 1i64 << (8 * i64::from(d) - 9).max(0);
                let hi: i64 = 1i64 << (8 * i64::from(d) - 1);
                let base = rng.gen::<i64>() >> 8; // headroom against overflow
                let mut lanes = [base as u64; 8];
                // One lane pinned to the extreme magnitude so smaller delta
                // widths cannot capture the block.
                let pinned = rng.gen_range(1..8);
                for (i, lane) in lanes.iter_mut().enumerate().skip(1) {
                    let magnitude = if i == pinned {
                        hi - 1
                    } else {
                        rng.gen_range(lo..hi)
                    };
                    let signed = if rng.gen() { magnitude } else { -magnitude };
                    *lane = base.wrapping_add(signed) as u64;
                }
                Block::from_u64_lanes(lanes)
            }
            SynthClass::Incompressible => {
                let mut bytes = [0u8; 64];
                rng.fill(&mut bytes[..]);
                Block::new(bytes)
            }
        }
    }
}

/// SplitMix64: a fast, well-distributed hash for sticky class assignment.
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A [`std::hash::Hasher`] over SplitMix64, for hash maps keyed by block
/// addresses: one multiply-xor chain instead of SipHash. Deterministic
/// across runs and platforms (no random state), so memoization maps using
/// it cannot perturb reproducibility.
#[derive(Clone, Copy, Debug, Default)]
pub struct SplitmixHasher(u64);

impl std::hash::Hasher for SplitmixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = splitmix(self.0 ^ u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = splitmix(self.0 ^ i);
    }
}

/// `BuildHasher` plugging [`SplitmixHasher`] into `HashMap`.
pub type BuildSplitmix = std::hash::BuildHasherDefault<SplitmixHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use hllc_compress::Compressor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthesized_classes_compress_to_nominal_size() {
        let c = Compressor::new();
        let mut rng = StdRng::seed_from_u64(7);
        for class in SynthClass::ALL {
            for _ in 0..50 {
                let block = Profile::synthesize(class, &mut rng);
                let size = c.compressed_size(&block);
                assert!(
                    size <= class.nominal_size(),
                    "{class:?}: got {size} > nominal {}",
                    class.nominal_size()
                );
                // Delta classes are engineered to hit their width exactly.
                if let SynthClass::Delta(_) = class {
                    assert_eq!(size, class.nominal_size(), "{class:?} drifted");
                }
                if class == SynthClass::Incompressible {
                    assert_eq!(size, 64);
                }
            }
        }
    }

    #[test]
    fn sticky_class_assignment() {
        let p = Profile::from_fractions(0.5, 0.3, 0.2, 0.2);
        for b in 0..100 {
            assert_eq!(p.sample_class(b), p.sample_class(b));
        }
    }

    #[test]
    fn fractions_are_respected() {
        let p = Profile::from_fractions(0.49, 0.29, 0.22, 0.2);
        let n = 100_000;
        let mut hcr = 0;
        let mut lcr = 0;
        let mut inc = 0;
        for b in 0..n {
            match p.sample_class(b).nominal_size() {
                s if s <= 37 => hcr += 1,
                64 => inc += 1,
                _ => lcr += 1,
            }
        }
        assert!((hcr as f64 / n as f64 - 0.49).abs() < 0.01);
        assert!((lcr as f64 / n as f64 - 0.29).abs() < 0.01);
        assert!((inc as f64 / n as f64 - 0.22).abs() < 0.01);
    }

    #[test]
    fn incompressible_profile() {
        let p = Profile::incompressible();
        assert!((0..1000).all(|b| p.sample_class(b) == SynthClass::Incompressible));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_fractions() {
        Profile::from_fractions(0.5, 0.5, 0.5, 0.2);
    }
}
