//! Cross-crate integration: the complete §III-B NVM write/read datapath —
//! BDI compression → (527,516) SECDED → ECB packing → block rearrangement
//! over a faulty frame → bit error → gather → correction → decompression.

use hybrid_llc::compress::{Block, CompressedBlock, Compressor, Encoding};
use hybrid_llc::ecc::{BitVec, Decoded, FrameCodec};
use hybrid_llc::nvm::{rearrange, FaultMap, FRAME_BYTES};
use proptest::prelude::*;

/// Writes a block into a frame image and reads it back, optionally
/// flipping one stored bit. Returns the recovered block.
fn round_trip(
    block: &Block,
    fault_map: &FaultMap,
    offset: usize,
    flip_bit: Option<usize>,
) -> Block {
    let compressor = Compressor::new();
    let codec = FrameCodec::new();

    // Write path.
    let cb = compressor.compress(block);
    let mut padded = [0u8; 64];
    padded[..cb.payload().len()].copy_from_slice(cb.payload());
    let word = codec.encode(cb.encoding().ce(), &padded);
    let ecb = codec.pack_ecb(&word, cb.size());
    assert_eq!(ecb.len(), cb.size() as usize + 2);
    assert!(
        ecb.len() <= fault_map.live_bytes(),
        "test harness must pick fitting frames"
    );
    let (recb, mask) = rearrange::scatter(&ecb, fault_map, offset);
    assert_eq!(mask & fault_map.raw(), 0, "never write faulty bytes");

    // Read path.
    let mut gathered = rearrange::gather(&recb, fault_map, offset, ecb.len());
    if let Some(bit) = flip_bit {
        let stored_bits = 15 + 8 * cb.size() as usize;
        let b = bit % stored_bits;
        gathered[b / 8] ^= 1 << (b % 8);
    }
    let word_back: BitVec = codec.unpack_ecb(&gathered, cb.size());
    let payload = match codec.decode(&word_back) {
        Decoded::Clean { data } => data,
        Decoded::Corrected { data, .. } => data,
        Decoded::DoubleError => panic!("unexpected double error"),
    };
    let (ce, bytes) = FrameCodec::split_payload(&payload);
    let encoding = Encoding::from_ce(ce).expect("valid CE");
    CompressedBlock::from_parts(encoding, &bytes[..encoding.compressed_size() as usize])
        .expect("payload length matches")
        .decompress()
}

#[test]
fn clean_datapath_for_every_encoding_class() {
    let blocks = [
        Block::zeroed(),
        Block::from_u64_lanes([7; 8]),
        Block::from_u64_lanes(core::array::from_fn(|i| 1000 + i as u64)),
        Block::from_u64_lanes(core::array::from_fn(|i| (i as u64) << 40)),
    ];
    let fm = FaultMap::from_faulty([5, 31]);
    for b in &blocks {
        assert_eq!(round_trip(b, &fm, 13, None), *b);
    }
}

#[test]
fn single_bit_errors_are_transparent() {
    let block = Block::from_u64_lanes(core::array::from_fn(|i| 0xAB00 + 3 * i as u64));
    let fm = FaultMap::from_faulty([0, 1, 2]);
    for bit in (0..190).step_by(7) {
        assert_eq!(round_trip(&block, &fm, 7, Some(bit)), block);
    }
}

#[test]
fn uncompressed_blocks_need_a_pristine_frame() {
    // A 64-byte block has a 66-byte ECB: exactly one fully live frame.
    let mut raw = [0u8; 64];
    for (i, b) in raw.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(97).wrapping_add(13);
    }
    let block = Block::new(raw);
    assert_eq!(Compressor::new().compressed_size(&block), 64);
    let fm = FaultMap::new();
    assert_eq!(round_trip(&block, &fm, 0, Some(100)), block);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any clustered block survives the full datapath through any frame it
    /// fits in, at any rotation offset, with any single stored-bit error.
    #[test]
    fn datapath_round_trip(
        base in any::<u64>(),
        jitter in prop::collection::vec(-100_000i64..100_000, 8),
        faults in prop::collection::btree_set(0usize..FRAME_BYTES, 0..5),
        offset in 0usize..200,
        flip in prop::option::of(0usize..500),
    ) {
        let lanes: [u64; 8] = core::array::from_fn(|i| base.wrapping_add(jitter[i] as u64));
        let block = Block::from_u64_lanes(lanes);
        let fm = FaultMap::from_faulty(faults);
        let cb_size = Compressor::new().compressed_size(&block) as usize;
        prop_assume!(cb_size + 2 <= fm.live_bytes());
        prop_assert_eq!(round_trip(&block, &fm, offset, flip), block);
    }
}
