//! The runner's headline guarantee: a sweep's JSON report is byte-identical
//! for every `--jobs` setting.

use hybrid_llc::config::ExperimentSpec;
use hybrid_llc::llc::Policy;
use hybrid_llc::runner::{report_json, run_sweep, SweepSpec};

fn spec(threads: usize) -> SweepSpec {
    let mut exp = ExperimentSpec::preset("scaled").expect("builtin preset");
    exp.system.llc_sets = 64;
    exp.validate().expect("64-set scaled variant");
    SweepSpec {
        policies: vec![("bh".into(), Policy::Bh), ("cp_sd".into(), Policy::cp_sd())],
        mixes: vec![0, 1],
        seeds: 2,
        capacities: vec![1.0, 0.7],
        way_splits: vec![(4, 12)],
        nvm_latency_factors: vec![1.0],
        base_seed: 42,
        spec: exp,
        warmup_cycles: 5_000.0,
        measure_cycles: 10_000.0,
        threads,
        trace: None,
    }
}

#[test]
fn jobs_1_and_jobs_4_reports_are_byte_identical() {
    let serial = serde_json::to_string_pretty(&report_json(&run_sweep(&spec(1)))).unwrap();
    let parallel = serde_json::to_string_pretty(&report_json(&run_sweep(&spec(4)))).unwrap();
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "thread count leaked into the report");
}

#[test]
fn rerunning_the_same_spec_is_reproducible() {
    let a = serde_json::to_string_pretty(&report_json(&run_sweep(&spec(4)))).unwrap();
    let b = serde_json::to_string_pretty(&report_json(&run_sweep(&spec(4)))).unwrap();
    assert_eq!(a, b);
}

#[test]
fn base_seed_changes_the_measurements() {
    let mut other = spec(4);
    other.base_seed = 43;
    let a = report_json(&run_sweep(&spec(4)));
    let b = report_json(&run_sweep(&other));
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "base_seed had no effect"
    );
}
