//! Property tests for the trace generator's seed contract, which the
//! parallel runner's determinism guarantee ultimately rests on: equal seeds
//! must replay identical streams, different seeds must diverge.

use hybrid_llc::trace::mixes;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    fn equal_seeds_replay_identical_streams(seed in any::<u64>(), mix_idx in 0usize..10) {
        let mix = &mixes()[mix_idx];
        let mut a = mix.instantiate(0.05, seed);
        let mut b = mix.instantiate(0.05, seed);
        prop_assert_eq!(a.len(), b.len());
        for core in 0..a.len() {
            for _ in 0..64 {
                let x = a[core].next_access(core as u8);
                let y = b[core].next_access(core as u8);
                prop_assert_eq!(x, y);
            }
        }
    }

    fn different_seeds_diverge(seed in any::<u64>(), delta in 1u64..1_000_000) {
        let mix = &mixes()[0];
        let mut a = mix.instantiate(0.05, seed);
        let mut b = mix.instantiate(0.05, seed.wrapping_add(delta));
        let diverged = (0..256).any(|_| {
            a[0].next_access(0) != b[0].next_access(0)
        });
        prop_assert!(diverged, "seeds {seed} and +{delta} replayed the same stream");
    }

    fn equal_seeds_synthesize_identical_data(seed in any::<u64>(), block in any::<u64>()) {
        let mix = &mixes()[0];
        let mut a = mix.data_model(seed);
        let mut b = mix.data_model(seed);
        prop_assert_eq!(a.synthesize_block(block), b.synthesize_block(block));
        // Memoization must not change the synthesized content either.
        prop_assert_eq!(a.synthesize_block(block), b.synthesize_block(block));
    }

    fn different_seeds_synthesize_different_data(seed in any::<u64>(), delta in 1u64..1_000_000) {
        let mix = &mixes()[0];
        let mut a = mix.data_model(seed);
        let mut b = mix.data_model(seed.wrapping_add(delta));
        let diverged = (0..64u64).any(|block| a.synthesize_block(block) != b.synthesize_block(block));
        prop_assert!(diverged, "data models for {seed} and +{delta} agree on 64 blocks");
    }
}
