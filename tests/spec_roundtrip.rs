//! The experiment-spec contract: every named preset survives a JSON round
//! trip unchanged, the checked-in `specs/` files are exactly the presets,
//! and malformed specs fail with errors that name the offending field.

use hybrid_llc::config::{ExperimentSpec, SpecError};

#[test]
fn every_preset_validates_and_round_trips() {
    let names = ExperimentSpec::preset_names();
    assert!(names.contains(&"paper") && names.contains(&"scaled"));
    for name in names {
        let spec = ExperimentSpec::preset(name).unwrap_or_else(|e| panic!("preset {name}: {e}"));
        spec.validate()
            .unwrap_or_else(|e| panic!("preset {name} invalid: {e}"));
        let text = spec.to_string_pretty();
        let back = ExperimentSpec::from_str(&text)
            .unwrap_or_else(|e| panic!("preset {name} reparse: {e}"));
        assert_eq!(
            spec, back,
            "preset {name} did not survive a JSON round trip"
        );
        assert_eq!(
            text,
            back.to_string_pretty(),
            "preset {name} re-render is not a fixed point"
        );
    }
}

#[test]
fn checked_in_spec_files_are_the_presets() {
    for name in ExperimentSpec::preset_names() {
        let path = format!("{}/specs/{name}.json", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let preset = ExperimentSpec::preset(name).unwrap();
        assert_eq!(
            text,
            preset.to_string_pretty(),
            "{path} drifted from the built-in preset; regenerate with \
             `hllc spec --preset {name} --dump {path}`"
        );
    }
}

#[test]
fn resolve_accepts_presets_and_files() {
    let by_name = ExperimentSpec::resolve("scaled").unwrap();
    let path = format!("{}/specs/scaled.json", env!("CARGO_MANIFEST_DIR"));
    let by_file = ExperimentSpec::resolve(&path).unwrap();
    assert_eq!(by_name, by_file);
}

#[test]
fn unknown_preset_lists_the_valid_names() {
    let e = ExperimentSpec::preset("no-such-preset")
        .unwrap_err()
        .to_string();
    assert!(e.contains("no-such-preset"), "{e}");
    assert!(e.contains("paper"), "error should list valid presets: {e}");
}

#[test]
fn out_of_range_fields_are_named_in_the_error() {
    let mut spec = ExperimentSpec::preset("scaled").unwrap();
    spec.system.llc_sets = 500; // not a power of two
    let e = spec.validate().unwrap_err();
    assert!(
        matches!(&e, SpecError::Invalid { field, .. } if field == "system.llc_sets"),
        "expected system.llc_sets to be named, got {e}"
    );

    let mut spec = ExperimentSpec::preset("scaled").unwrap();
    spec.system.sram_ways = 10;
    spec.system.nvm_ways = 10; // 20 ways total, over MAX_WAYS
    let e = spec.validate().unwrap_err().to_string();
    assert!(e.contains("ways"), "{e}");

    let mut spec = ExperimentSpec::preset("scaled").unwrap();
    spec.workload.mix = 11;
    let e = spec.validate().unwrap_err();
    assert!(
        matches!(&e, SpecError::Invalid { field, .. } if field == "workload.mix"),
        "expected workload.mix to be named, got {e}"
    );
}

#[test]
fn unknown_json_fields_are_named_in_the_error() {
    let mut text = ExperimentSpec::preset("scaled").unwrap().to_string_pretty();
    text = text.replace("\"cores\": 4", "\"cores\": 4,\n    \"coress\": 4");
    let e = ExperimentSpec::from_str(&text).unwrap_err();
    assert!(
        matches!(&e, SpecError::UnknownField { field } if field == "system.coress"),
        "expected system.coress to be named, got {e}"
    );
}

#[test]
fn malformed_json_fails_with_a_parse_error() {
    let e = ExperimentSpec::from_str("{ not json").unwrap_err();
    assert!(matches!(e, SpecError::Json { .. }), "got {e}");
}

#[test]
fn missing_spec_file_names_the_path() {
    let e = ExperimentSpec::load("/nonexistent/spec.json")
        .unwrap_err()
        .to_string();
    assert!(e.contains("/nonexistent/spec.json"), "{e}");
}
