//! Integration of the aging forecast across the whole stack: lifetime
//! orderings between policies, capacity monotonicity, and the scaled-
//! endurance equivalence the harnesses rely on.

use hybrid_llc::config::ExperimentSpec;
use hybrid_llc::forecast::{Forecast, ForecastConfig};
use hybrid_llc::llc::Policy;
use hybrid_llc::trace::mixes;

fn tiny(policy: Policy, endurance_mean: f64) -> ForecastConfig {
    let mut spec = ExperimentSpec::preset("scaled").expect("builtin preset");
    spec.system.llc_sets = 128;
    spec.hybrid.policy = policy.label();
    spec.hybrid.endurance_mean = endurance_mean;
    spec.hybrid.epoch_cycles = 50_000;
    spec.forecast.warmup_cycles = 5.0e4;
    spec.forecast.measure_cycles = 2.0e5;
    spec.forecast.capacity_step = 0.06;
    spec.forecast.max_step_seconds = 1.0e4;
    spec.forecast.stop_capacity = 0.5;
    spec.forecast.max_steps = 22;
    spec.validate().expect("128-set forecast variant");
    ForecastConfig::from_spec(&spec)
}

#[test]
fn lifetime_ordering_matches_the_paper() {
    let mix = &mixes()[0];
    let life = |p: Policy| {
        Forecast::new(tiny(p, 3e6))
            .run(mix, 7)
            .lifetime_seconds(0.75)
            .unwrap_or(f64::INFINITY)
    };
    let bh = life(Policy::Bh);
    let bh_cp = life(Policy::BhCp);
    let cp_sd = life(Policy::cp_sd());
    let lhybrid = life(Policy::LHybrid);
    assert!(bh.is_finite(), "BH must age to 75% capacity");
    assert!(bh < bh_cp, "compression extends lifetime ({bh} !< {bh_cp})");
    assert!(
        bh_cp < cp_sd,
        "NVM-aware insertion extends lifetime further"
    );
    assert!(cp_sd < lhybrid, "LHybrid is the most conservative");
}

#[test]
fn performance_ordering_matches_the_paper() {
    let mix = &mixes()[0];
    let ipc0 = |p: Policy| {
        Forecast::new(tiny(p, 3e6))
            .run(mix, 7)
            .initial_ipc()
            .unwrap()
    };
    let bh = ipc0(Policy::Bh);
    let cp_sd = ipc0(Policy::cp_sd());
    let lhybrid = ipc0(Policy::LHybrid);
    let tap = ipc0(Policy::tap());
    assert!(
        cp_sd > lhybrid,
        "CP_SD outperforms LHybrid ({cp_sd} !> {lhybrid})"
    );
    assert!(lhybrid > tap, "LHybrid outperforms TAP");
    assert!(cp_sd > 0.9 * bh, "CP_SD stays near BH performance");
}

#[test]
fn capacity_and_ipc_degrade_together() {
    let series = Forecast::new(tiny(Policy::Bh, 3e6)).run(&mixes()[1], 9);
    for w in series.points.windows(2) {
        assert!(
            w[1].capacity <= w[0].capacity + 1e-12,
            "capacity must not grow"
        );
    }
    let first = series.points.first().unwrap();
    let last = series.points.last().unwrap();
    assert!(last.capacity < first.capacity);
    assert!(
        last.ipc <= first.ipc * 1.02,
        "IPC should not improve as the cache dies"
    );
}

#[test]
fn lifetimes_scale_linearly_with_endurance() {
    // t_fail = endurance / write-rate: doubling μ must double measured
    // lifetime (the basis of the ×100 scaled-time equivalence).
    let mix = &mixes()[0];
    let l1 = Forecast::new(tiny(Policy::Bh, 2e6))
        .run(mix, 7)
        .lifetime_seconds(0.8)
        .unwrap();
    let l2 = Forecast::new(tiny(Policy::Bh, 4e6))
        .run(mix, 7)
        .lifetime_seconds(0.8)
        .unwrap();
    let ratio = l2 / l1;
    assert!(
        (ratio - 2.0).abs() < 0.35,
        "lifetime should scale ~linearly with endurance, got ratio {ratio}"
    );
}
