//! Golden determinism pins: `hllc run --json` output must stay
//! byte-identical across refactors of the simulation kernel.
//!
//! The files under `tests/golden/` were produced by
//!
//! ```text
//! hllc run --json --policy <p> --mix <m> --cycles 400000 --seed 7
//! ```
//!
//! before the struct-of-arrays kernel refactor. Any change to victim
//! selection, LRU bookkeeping, size probing, or fault-map accounting shows
//! up here as a diff. If a behaviour change is *intended*, regenerate the
//! files with the command above and explain the change in the commit.

use hybrid_llc::cli::Args;
use hybrid_llc::llc::Policy;
use hybrid_llc::session::{live_session, stats_json};
use hybrid_llc::trace::mixes;

fn golden_case(policy: Policy, policy_slug: &str, mix: usize) {
    let args = Args::scaled(policy, mix, 400_000.0, 7);
    let stats = live_session(&args, 4);
    let value = stats_json(&policy.name(), mixes()[mix].name, &stats);
    let rendered = serde_json::to_string_pretty(&value).unwrap() + "\n";

    let path = format!(
        "{}/tests/golden/run_{policy_slug}_mix{}.json",
        env!("CARGO_MANIFEST_DIR"),
        mix + 1
    );
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    assert_eq!(
        rendered, golden,
        "stats JSON diverged from the pre-refactor golden {path}"
    );
}

#[test]
fn bh_matches_the_golden_trace() {
    golden_case(Policy::Bh, "bh", 0);
    golden_case(Policy::Bh, "bh", 3);
}

#[test]
fn lhybrid_matches_the_golden_trace() {
    golden_case(Policy::LHybrid, "lhybrid", 0);
    golden_case(Policy::LHybrid, "lhybrid", 3);
}

#[test]
fn cp_sd_matches_the_golden_trace() {
    golden_case(Policy::cp_sd(), "cp_sd", 0);
    golden_case(Policy::cp_sd(), "cp_sd", 3);
}
