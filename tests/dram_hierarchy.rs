//! Integration of the banked open-page DRAM model with the hierarchy.

use hybrid_llc::config::ExperimentSpec;
use hybrid_llc::llc::{HybridLlc, Policy};
use hybrid_llc::sim::{Access, Hierarchy};
use hybrid_llc::trace::{drive_cycles, mixes};

fn scaled_spec() -> ExperimentSpec {
    ExperimentSpec::preset("scaled").expect("builtin preset")
}

#[test]
fn streaming_misses_enjoy_row_buffer_hits() {
    let mut spec = scaled_spec();
    spec.system.cores = 1;
    spec.system.llc_sets = 64;
    spec.system.dram = true;
    spec.validate().unwrap();
    let cfg = spec.system_config();
    let llc = HybridLlc::new(&spec.llc_config_for(Policy::Bh));
    let mut h = Hierarchy::new(&cfg, llc, hllc_sim_const());

    // A long sequential sweep: every LLC miss goes to consecutive blocks.
    for b in 0..40_000u64 {
        h.access(&Access::load(0, b * 64));
    }
    let (hits, misses, conflicts) = h.dram().unwrap().stats();
    assert!(
        hits > 10 * (misses + conflicts),
        "stream must be row-hit dominated: {hits} vs {misses}+{conflicts}"
    );
}

#[test]
fn dram_model_slows_random_traffic_more_than_streams() {
    let run = |mix_idx: usize| -> f64 {
        let mut spec = scaled_spec();
        spec.system.dram = true;
        spec.validate().unwrap();
        let cfg = spec.system_config();
        let mix = &mixes()[mix_idx];
        let llc = HybridLlc::new(&spec.llc_config_for(Policy::Bh));
        let mut h = Hierarchy::new(&cfg, llc, mix.data_model(3));
        let mut streams = mix.instantiate(spec.footprint_scale(), 3);
        drive_cycles(&mut h, &mut streams, 600_000.0);
        let (hits, misses, conflicts) = h.dram().unwrap().stats();
        hits as f64 / (hits + misses + conflicts).max(1) as f64
    };
    // Every real mix lands somewhere between pure-stream and pure-random;
    // the model must at least report a sane row-hit ratio.
    let ratio = run(0);
    assert!((0.01..0.99).contains(&ratio), "row hit ratio {ratio}");
}

#[test]
fn hierarchy_without_dram_has_no_model() {
    let spec = scaled_spec();
    let cfg = spec.system_config();
    let llc = HybridLlc::new(&spec.llc_config_for(Policy::Bh));
    let h = Hierarchy::new(&cfg, llc, hllc_sim_const());
    assert!(h.dram().is_none());
}

fn hllc_sim_const() -> hybrid_llc::sim::ConstSizeData {
    hybrid_llc::sim::ConstSizeData::new(64)
}
