//! Integration of the banked open-page DRAM model with the hierarchy.

use hybrid_llc::llc::{HybridConfig, HybridLlc, Policy};
use hybrid_llc::sim::{Access, DramConfig, Hierarchy, SystemConfig};
use hybrid_llc::trace::{drive_cycles, mixes};

#[test]
fn streaming_misses_enjoy_row_buffer_hits() {
    let mut cfg = SystemConfig::scaled_down();
    cfg.cores = 1;
    cfg.llc.sets = 64;
    cfg = cfg.with_dram(DramConfig::ddr4_single_channel());
    let llc = HybridLlc::new(&HybridConfig::from_geometry(cfg.llc, Policy::Bh));
    let mut h = Hierarchy::new(&cfg, llc, hllc_sim_const());

    // A long sequential sweep: every LLC miss goes to consecutive blocks.
    for b in 0..40_000u64 {
        h.access(&Access::load(0, b * 64));
    }
    let (hits, misses, conflicts) = h.dram().unwrap().stats();
    assert!(
        hits > 10 * (misses + conflicts),
        "stream must be row-hit dominated: {hits} vs {misses}+{conflicts}"
    );
}

#[test]
fn dram_model_slows_random_traffic_more_than_streams() {
    let run = |mix_idx: usize| -> f64 {
        let cfg = SystemConfig::scaled_down().with_dram(DramConfig::ddr4_single_channel());
        let mix = &mixes()[mix_idx];
        let llc = HybridLlc::new(
            &HybridConfig::from_geometry(cfg.llc, Policy::Bh).with_endurance(1e8, 0.2),
        );
        let mut h = Hierarchy::new(&cfg, llc, mix.data_model(3));
        let mut streams = mix.instantiate(0.125, 3);
        drive_cycles(&mut h, &mut streams, 600_000.0);
        let (hits, misses, conflicts) = h.dram().unwrap().stats();
        hits as f64 / (hits + misses + conflicts).max(1) as f64
    };
    // Every real mix lands somewhere between pure-stream and pure-random;
    // the model must at least report a sane row-hit ratio.
    let ratio = run(0);
    assert!((0.01..0.99).contains(&ratio), "row hit ratio {ratio}");
}

#[test]
fn hierarchy_without_dram_has_no_model() {
    let cfg = SystemConfig::scaled_down();
    let llc = HybridLlc::new(&HybridConfig::from_geometry(cfg.llc, Policy::Bh));
    let h = Hierarchy::new(&cfg, llc, hllc_sim_const());
    assert!(h.dram().is_none());
}

fn hllc_sim_const() -> hybrid_llc::sim::ConstSizeData {
    hybrid_llc::sim::ConstSizeData::new(64)
}
