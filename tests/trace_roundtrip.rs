//! The traceio subsystem's headline guarantees, end to end:
//!
//! * recording a live run does not perturb it;
//! * replaying the recording under the recorded policy reproduces every
//!   counter bit-for-bit (`SessionStats` carries the full `HierarchyStats`
//!   and `LlcStats`);
//! * corrupted or truncated files fail with a structured [`TraceError`]
//!   naming the failing chunk, never a panic.

use hybrid_llc::cli::Args;
use hybrid_llc::llc::Policy;
use hybrid_llc::session::{
    live_session, record_session, recording_header, replay_session, stats_json,
};
use hybrid_llc::traceio::{TraceContent, TraceError, TraceReader, TraceWriter};

fn args(policy: Policy, mix: usize) -> Args {
    Args::scaled(policy, mix, 50_000.0, 11)
}

fn record(policy: Policy, mix: usize, cores: usize) -> (Args, Vec<u8>) {
    let a = args(policy, mix);
    let writer = TraceWriter::new(Vec::new(), &recording_header(&a, cores)).unwrap();
    let (_, bytes) = record_session(&a, cores, writer).unwrap();
    (a, bytes)
}

fn read(bytes: &[u8]) -> TraceContent {
    TraceReader::new(bytes).unwrap().read_to_end().unwrap()
}

#[test]
fn round_trip_is_bit_identical_across_policies_and_mixes() {
    for policy in [Policy::Bh, Policy::cp_sd()] {
        for mix in [0usize, 3] {
            let a = args(policy, mix);
            let live = live_session(&a, 4);
            let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 4)).unwrap();
            let (recorded, bytes) = record_session(&a, 4, writer).unwrap();
            assert_eq!(
                live,
                recorded,
                "recording perturbed {policy:?} on mix {}",
                mix + 1
            );
            let replayed = replay_session(&read(&bytes), policy, None).unwrap();
            assert_eq!(
                live,
                replayed,
                "replay diverged from the live run for {policy:?} on mix {}",
                mix + 1
            );
            let lhs = serde_json::to_string_pretty(&stats_json("p", "w", &live)).unwrap();
            let rhs = serde_json::to_string_pretty(&stats_json("p", "w", &replayed)).unwrap();
            assert_eq!(lhs, rhs, "stats JSON diverged");
        }
    }
}

#[test]
fn two_core_recordings_round_trip_too() {
    let (a, bytes) = record(Policy::cp_sd(), 0, 2);
    let content = read(&bytes);
    assert_eq!(content.header.cores, 2);
    let live = live_session(&a, 2);
    let replayed = replay_session(&content, a.policy(), None).unwrap();
    assert_eq!(live, replayed);
}

#[test]
fn replaying_under_other_policies_reinterleaves_the_same_streams() {
    let (_, bytes) = record(Policy::cp_sd(), 0, 4);
    let content = read(&bytes);
    for policy in [Policy::Bh, Policy::BhCp, Policy::LHybrid] {
        let s = replay_session(&content, policy, None).unwrap();
        assert!(s.ipc > 0.0, "{policy:?} idle on replay");
        assert!(s.llc.requests() > 0);
    }
}

#[test]
fn corrupted_chunk_fails_with_a_structured_error() {
    let (_, bytes) = record(Policy::Bh, 0, 2);

    // Flip one bit inside the last data-bearing chunk: the reader must
    // report a CRC mismatch for that exact chunk, not panic or misparse.
    let mut corrupt = bytes.clone();
    let n = corrupt.len();
    corrupt[n - 20] ^= 0x10;
    let err = TraceReader::new(&corrupt[..])
        .unwrap()
        .read_to_end()
        .unwrap_err();
    assert!(
        matches!(err, TraceError::CrcMismatch { .. }),
        "expected CrcMismatch, got {err}"
    );
    let text = err.to_string();
    assert!(
        text.contains("chunk"),
        "error does not name the chunk: {text}"
    );
}

#[test]
fn truncated_file_is_reported_as_truncation() {
    let (_, bytes) = record(Policy::Bh, 0, 2);
    let cut = &bytes[..bytes.len() - 7];
    let err = TraceReader::new(cut).unwrap().read_to_end().unwrap_err();
    assert!(
        matches!(
            err,
            TraceError::Truncated { .. } | TraceError::CrcMismatch { .. }
        ),
        "expected a structured truncation error, got {err}"
    );
}
