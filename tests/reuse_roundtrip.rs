//! The reuse-tag round trip through the full hierarchy — the pathway the
//! CA_RWR/CP_SD policies depend on (§IV-B):
//!
//! 1. a block misses everywhere and fills L2 from memory (tag: none);
//! 2. its L2 eviction inserts it into the LLC (no reuse → steered by size);
//! 3. a later reload hits the LLC (`GetS`): the block is tagged read-reuse,
//!    the tag travels to L2 with the data;
//! 4. a store upgrades through the LLC (`GetX` hit): the LLC copy is
//!    invalidated and the tag becomes write-reuse;
//! 5. the next L2 eviction re-inserts the block as write-reuse → SRAM.

use hybrid_llc::llc::{HybridConfig, HybridLlc, Part, Policy};
use hybrid_llc::sim::{Access, ConstSizeData, Hierarchy, SystemConfig};
use hybrid_llc::LlcPort;

/// A tiny hierarchy where evictions are easy to force: 2-set L1/L2.
fn tiny() -> (SystemConfig, HybridConfig) {
    let mut system = SystemConfig::paper_default();
    system.cores = 1;
    system.l1_sets = 2;
    system.l1_ways = 1;
    system.l2_sets = 2;
    system.l2_ways = 2;
    system.llc.sets = 16;
    let llc = HybridConfig::new(16, 4, 12, Policy::CaRwr { cp_th: 37 });
    (system, llc)
}

/// Byte address of a block landing in L2 set 0 and a chosen LLC set.
fn addr(i: u64) -> u64 {
    // L2 has 2 sets: even block addresses land in set 0. LLC has 16 sets.
    i * 2 * 64
}

#[test]
fn read_then_write_reuse_round_trip() {
    let (system, llc_cfg) = tiny();
    // A small-compressing block: no-reuse insertion goes to NVM.
    let mut h = Hierarchy::new(&system, HybridLlc::new(&llc_cfg), ConstSizeData::new(20));

    let target = addr(0);

    // (1) Fill from memory.
    h.access(&Access::load(0, target));
    assert!(!h.llc().contains(target / 64));

    // (2) Evict from L2 (two conflicting fills) → LLC insert, by size → NVM.
    h.access(&Access::load(0, addr(1)));
    h.access(&Access::load(0, addr(2)));
    assert_eq!(
        h.llc().locate(target / 64),
        Some(Part::Nvm),
        "no-reuse small block → NVM"
    );

    // (3) Reload: LLC GetS hit tags read-reuse; block stays in the LLC.
    h.access(&Access::load(0, target));
    assert_eq!(
        h.llc().peek(target / 64).unwrap().reuse,
        hybrid_llc::sim::ReuseClass::Read
    );

    // (4) Store: S→M upgrade goes through the LLC as GetX and invalidates.
    h.access(&Access::store(0, target));
    assert!(
        !h.llc().contains(target / 64),
        "GetX hit must invalidate the LLC copy"
    );

    // (5) Evict the now-dirty block from L2 again: write-reuse → SRAM.
    h.access(&Access::load(0, addr(3)));
    h.access(&Access::load(0, addr(4)));
    assert_eq!(
        h.llc().locate(target / 64),
        Some(Part::Sram),
        "write-reuse block must be steered to SRAM despite compressing well"
    );
    let line = h.llc().peek(target / 64).unwrap();
    assert!(line.dirty, "the dirty data travelled with the block");
    assert_eq!(h.llc().stats().getx, 1);
}

#[test]
fn read_reuse_blocks_return_to_nvm() {
    let (system, llc_cfg) = tiny();
    // Incompressible blocks: no-reuse → SRAM; read-reuse must override.
    let mut h = Hierarchy::new(&system, HybridLlc::new(&llc_cfg), ConstSizeData::new(64));
    let target = addr(0);

    h.access(&Access::load(0, target));
    h.access(&Access::load(0, addr(1)));
    h.access(&Access::load(0, addr(2)));
    assert_eq!(
        h.llc().locate(target / 64),
        Some(Part::Sram),
        "big no-reuse block → SRAM"
    );

    // Reload tags Read (clean hit) and keeps it resident.
    h.access(&Access::load(0, target));
    // Evict from L2 again: the clean copy is already in the LLC → LRU refresh
    // only; it remains wherever it is until SRAM replacement migrates it.
    h.access(&Access::load(0, addr(3)));
    h.access(&Access::load(0, addr(4)));
    let line = h.llc().peek(target / 64).expect("still resident");
    assert_eq!(line.reuse, hybrid_llc::sim::ReuseClass::Read);
}

#[test]
fn memory_refill_loses_history() {
    let (system, llc_cfg) = tiny();
    let mut h = Hierarchy::new(&system, HybridLlc::new(&llc_cfg), ConstSizeData::new(20));
    let target = addr(0);

    // Establish read reuse, then kick the block out of the LLC entirely by
    // flooding its set, and out of L2.
    h.access(&Access::load(0, target));
    h.access(&Access::load(0, addr(1)));
    h.access(&Access::load(0, addr(2)));
    h.access(&Access::load(0, target)); // Read tag
                                        // Flood LLC set 0 (blocks ≡ 0 mod 16 within the LLC) via direct inserts:
                                        // 16 conflicting L2-evicted blocks. LLC set of `target` is 0; blocks
                                        // addr(8k) map there (8k*2 % 16 == 0).
    for k in 1..40 {
        let a = addr(8 * k);
        h.access(&Access::load(0, a));
        h.access(&Access::load(0, addr(8 * k + 1)));
        h.access(&Access::load(0, addr(8 * k + 2)));
    }
    assert!(
        !h.llc().contains(target / 64),
        "flood must evict the target"
    );

    // Refill from memory: history gone, the block is no-reuse again.
    h.access(&Access::load(0, target));
    h.access(&Access::load(0, addr(1)));
    h.access(&Access::load(0, addr(2)));
    if let Some(line) = h.llc().peek(target / 64) {
        assert_eq!(line.reuse, hybrid_llc::sim::ReuseClass::None);
    }
}
