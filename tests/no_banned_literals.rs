//! Configuration literals live in one place: `crates/config`. This test
//! walks every Rust source file in the workspace and fails if a geometry
//! or knob literal that `ExperimentSpec` owns leaks back into another
//! layer — the regression the spec refactor exists to prevent.

use std::path::Path;

/// The banned patterns, assembled by concatenation so this file does not
/// match itself.
fn banned() -> Vec<String> {
    let paren = "(";
    vec![
        // The deleted scaled-geometry constructor.
        format!("scaled_down{paren}"),
        // The scaled-endurance knob triple the `scaled` preset owns.
        format!("with_endurance{paren}1e8, 0.2)"),
        format!("with_epoch_cycles{paren}100_000)"),
        // The footprint-scale denominator: use `footprint_scale()`.
        format!("/ {}.0", 4096),
        format!("/ {}_0.0", 409),
    ]
}

fn check_file(path: &Path, patterns: &[String], offenders: &mut Vec<String>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    for (lineno, line) in text.lines().enumerate() {
        for p in patterns {
            if line.contains(p.as_str()) {
                offenders.push(format!("{}:{}: {line}", path.display(), lineno + 1));
            }
        }
    }
}

fn walk(dir: &Path, patterns: &[String], offenders: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Skip the one crate allowed to own the literals, third-party
            // code, and build products.
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            if path.ends_with("crates/config") {
                continue;
            }
            walk(&path, patterns, offenders);
        } else if name.ends_with(".rs") {
            check_file(&path, patterns, offenders);
        }
    }
}

#[test]
fn config_literals_do_not_leak_outside_the_config_crate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let patterns = banned();
    let mut offenders = Vec::new();
    walk(root, &patterns, &mut offenders);
    assert!(
        offenders.is_empty(),
        "banned configuration literals outside crates/config \
         (route them through ExperimentSpec):\n{}",
        offenders.join("\n")
    );
}
