//! Trace-header version 2: recordings embed the resolved experiment spec,
//! version-1 files from before the spec existed still replay bit-
//! identically, and replaying under a mismatched `--spec` fails with an
//! error naming the divergent geometry.

use hybrid_llc::cli::Args;
use hybrid_llc::llc::Policy;
use hybrid_llc::session::{
    record_session, recording_header, replay_session_with, stats_json, trace_spec,
};
use hybrid_llc::traceio::{TraceContent, TraceReader, TraceWriter};

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn read(bytes: &[u8]) -> TraceContent {
    TraceReader::new(bytes).unwrap().read_to_end().unwrap()
}

/// The v1 fixture was recorded by the pre-spec binary
/// (`hllc record --policy cp_sd --mix 1 --cycles 4e4 --seed 7 --cores 2`);
/// its stats JSON sits next to it. The v2 reader must reconstruct the
/// recording system from the v1 header alone and reproduce every counter.
#[test]
fn v1_fixture_replays_bit_identically() {
    let bytes = std::fs::read(fixture("v1_mix1.trc")).expect("v1 fixture");
    let content = read(&bytes);
    assert_eq!(content.header.spec_json, None, "fixture must be v1");

    let spec = trace_spec(&content).expect("v1 header implies a valid system");
    assert_eq!(spec.system.llc_sets, 512);
    assert_eq!(spec.workload.seed, 7);

    let stats = replay_session_with(&content, &spec, Policy::cp_sd(), None).unwrap();
    let rendered =
        serde_json::to_string_pretty(&stats_json("CP_SD", &content.header.workload, &stats))
            .unwrap()
            + "\n";
    let golden = std::fs::read_to_string(fixture("v1_mix1.stats.json")).unwrap();
    assert_eq!(
        rendered, golden,
        "v1 replay diverged from the recorded stats"
    );
}

#[test]
fn v2_recordings_embed_the_resolved_spec() {
    let a = Args::scaled(Policy::cp_sd(), 0, 30_000.0, 3);
    let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 2)).unwrap();
    let (_, bytes) = record_session(&a, 2, writer).unwrap();
    let content = read(&bytes);
    assert!(
        content.header.spec_json.is_some(),
        "v2 header carries the spec"
    );
    let embedded = trace_spec(&content).unwrap();
    assert_eq!(embedded, a.spec);
}

#[test]
fn mismatched_spec_fails_naming_the_geometry() {
    let a = Args::scaled(Policy::cp_sd(), 0, 30_000.0, 3);
    let writer = TraceWriter::new(Vec::new(), &recording_header(&a, 2)).unwrap();
    let (_, bytes) = record_session(&a, 2, writer).unwrap();
    let content = read(&bytes);

    let mut other = a.spec.clone();
    other.system.llc_sets = 1024;
    other.validate().unwrap();
    let e = replay_session_with(&content, &other, Policy::cp_sd(), None).unwrap_err();
    assert!(e.contains("geometry mismatch"), "{e}");
    assert!(e.contains("llc_sets: spec 1024 vs recording 512"), "{e}");

    // The recording's own spec replays fine.
    replay_session_with(&content, &a.spec, Policy::cp_sd(), None).unwrap();
}

#[test]
fn v1_replay_rejects_an_explicit_mismatched_spec_too() {
    let bytes = std::fs::read(fixture("v1_mix1.trc")).expect("v1 fixture");
    let content = read(&bytes);
    let mut spec = trace_spec(&content).unwrap();
    spec.system.sram_ways = 3;
    spec.system.nvm_ways = 13;
    spec.validate().unwrap();
    let e = replay_session_with(&content, &spec, Policy::cp_sd(), None).unwrap_err();
    assert!(e.contains("geometry mismatch"), "{e}");
    assert!(e.contains("sram_ways"), "{e}");
}
