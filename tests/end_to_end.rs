//! End-to-end integration: the full hierarchy over the hybrid LLC running
//! synthetic mixes, checking cross-policy invariants the paper's story
//! rests on.

use hybrid_llc::config::ExperimentSpec;
use hybrid_llc::llc::{HybridLlc, Policy};
use hybrid_llc::sim::{Hierarchy, LlcStats};
use hybrid_llc::trace::{drive_cycles, mixes, WorkloadData};
use hybrid_llc::LlcPort;

const SETS: usize = 128;

/// The scaled preset shrunk to [`SETS`] sets with a faster dueling epoch,
/// so every policy converges within the short windows below.
fn small_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::preset("scaled").expect("builtin preset");
    spec.system.llc_sets = SETS;
    spec.hybrid.epoch_cycles = 50_000;
    spec.validate().expect("128-set scaled variant");
    spec
}

fn run_policy(policy: Policy, mix_idx: usize) -> (LlcStats, f64) {
    let spec = small_spec();
    let mix = &mixes()[mix_idx];
    let mut h: Hierarchy<HybridLlc, WorkloadData> = Hierarchy::new(
        &spec.system_config(),
        HybridLlc::new(&spec.llc_config_for(policy)),
        mix.data_model(5),
    );
    let mut streams = mix.instantiate(spec.footprint_scale(), 5);
    drive_cycles(&mut h, &mut streams, 100_000.0);
    h.reset_stats();
    drive_cycles(&mut h, &mut streams, 500_000.0);
    (*h.llc().stats(), h.system_ipc())
}

#[test]
fn llc_stats_are_internally_consistent() {
    for policy in [
        Policy::Bh,
        Policy::BhCp,
        Policy::cp_sd(),
        Policy::LHybrid,
        Policy::tap(),
    ] {
        let (s, ipc) = run_policy(policy, 0);
        assert_eq!(s.hits + s.misses, s.requests(), "{policy:?}");
        assert_eq!(s.hits, s.sram_hits + s.nvm_hits, "{policy:?}");
        assert!(s.requests() > 1000, "{policy:?} seems idle");
        assert!(ipc > 0.0, "{policy:?}");
        assert!(s.migrations <= s.nvm_inserts, "{policy:?}");
    }
}

#[test]
fn compression_aware_policies_write_fewer_nvm_bytes_than_bh() {
    let (bh, _) = run_policy(Policy::Bh, 0);
    for policy in [Policy::BhCp, Policy::cp_sd(), Policy::cp_sd_th(8.0)] {
        let (s, _) = run_policy(policy, 0);
        assert!(
            s.nvm_bytes_written < bh.nvm_bytes_written,
            "{policy:?}: {} !< {}",
            s.nvm_bytes_written,
            bh.nvm_bytes_written
        );
    }
}

#[test]
fn conservative_policies_write_least() {
    let (cp_sd, _) = run_policy(Policy::cp_sd(), 0);
    for policy in [Policy::LHybrid, Policy::tap()] {
        let (s, _) = run_policy(policy, 0);
        assert!(
            s.nvm_bytes_written < cp_sd.nvm_bytes_written,
            "{policy:?} should be more conservative than CP_SD"
        );
    }
}

#[test]
fn cp_sd_keeps_more_hits_than_lhybrid() {
    // The paper's central performance claim, checked across two mixes.
    for mix_idx in [0, 2] {
        let (sd, _) = run_policy(Policy::cp_sd(), mix_idx);
        let (lh, _) = run_policy(Policy::LHybrid, mix_idx);
        assert!(
            sd.hit_rate() > lh.hit_rate(),
            "mix {mix_idx}: CP_SD {:.3} should beat LHybrid {:.3}",
            sd.hit_rate(),
            lh.hit_rate()
        );
    }
}

#[test]
fn th_rule_trades_hits_for_writes() {
    let (th0, _) = run_policy(Policy::cp_sd(), 0);
    let (th8, _) = run_policy(Policy::cp_sd_th(8.0), 0);
    assert!(
        th8.nvm_bytes_written < th0.nvm_bytes_written,
        "Th8 must reduce NVM writes ({} !< {})",
        th8.nvm_bytes_written,
        th0.nvm_bytes_written
    );
    // And the hit sacrifice must stay bounded (well under 10 %).
    assert!(th8.hit_rate() > 0.88 * th0.hit_rate());
}

#[test]
fn every_access_is_served_exactly_once() {
    let spec = small_spec();
    let mix = &mixes()[0];
    let mut h: Hierarchy<HybridLlc, WorkloadData> = Hierarchy::new(
        &spec.system_config(),
        HybridLlc::new(&spec.llc_config_for(Policy::cp_sd())),
        mix.data_model(5),
    );
    let mut streams = mix.instantiate(spec.footprint_scale(), 5);
    drive_cycles(&mut h, &mut streams, 300_000.0);
    let s = h.stats();
    let served: u64 = s.services.iter().sum();
    assert_eq!(
        served,
        s.accesses(),
        "each access resolves at exactly one level"
    );
    // LLC requests seen by the LLC equal the LLC-or-beyond services plus
    // upgrades (S->M GetX from L1/L2 hits).
    let llc_requests = h.llc().stats().requests();
    let beyond_l2: u64 = s.services[2..].iter().sum();
    assert_eq!(llc_requests, beyond_l2 + s.upgrades);
}

#[test]
fn runs_are_deterministic() {
    let (a, ipc_a) = run_policy(Policy::cp_sd(), 1);
    let (b, ipc_b) = run_policy(Policy::cp_sd(), 1);
    assert_eq!(a, b);
    assert_eq!(ipc_a, ipc_b);
}

#[test]
fn aged_cache_serves_fewer_hits() {
    use rand::SeedableRng;
    let spec = small_spec();
    let mix = &mixes()[0];
    let llc_cfg = spec.llc_config_for(Policy::cp_sd());

    let mut hit_rates = Vec::new();
    for capacity in [1.0, 0.6] {
        let mut llc = HybridLlc::new(&llc_cfg);
        if capacity < 1.0 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            llc.array_mut().unwrap().degrade_to(capacity, &mut rng);
        }
        let mut h = Hierarchy::new(&spec.system_config(), llc, mix.data_model(5));
        let mut streams = mix.instantiate(spec.footprint_scale(), 5);
        drive_cycles(&mut h, &mut streams, 100_000.0);
        h.reset_stats();
        drive_cycles(&mut h, &mut streams, 500_000.0);
        hit_rates.push(h.llc().stats().hit_rate());
    }
    assert!(
        hit_rates[1] < hit_rates[0],
        "losing 40% of NVM capacity must cost hits: {hit_rates:?}"
    );
}
