//! Quickstart: run the paper's CP_SD policy on a multi-programmed mix and
//! print the cache-level statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_llc::llc::{HybridConfig, HybridLlc, Policy};
use hybrid_llc::sim::{Hierarchy, SystemConfig};
use hybrid_llc::trace::{drive_cycles, mixes};
use hybrid_llc::LlcPort;

fn main() {
    // A 1/8-scale version of the paper's Table IV system (512-set LLC,
    // 4 SRAM + 12 NVM ways), running mix 1 of Table V.
    let system = SystemConfig::scaled_down();
    let mix = &mixes()[0];
    println!(
        "system: {} cores, LLC {} KB ({} SRAM + {} NVM ways)",
        system.cores,
        system.llc.capacity_bytes() / 1024,
        system.llc.sram_ways,
        system.llc.nvm_ways
    );
    println!(
        "workload: {} = {}",
        mix.name,
        mix.apps
            .iter()
            .map(|a| a.name)
            .collect::<Vec<_>>()
            .join(" + ")
    );

    let llc_cfg = HybridConfig::from_geometry(system.llc, Policy::cp_sd())
        .with_endurance(1e8, 0.2)
        .with_epoch_cycles(100_000)
        .with_dueling_smoothing(0.6);
    let llc = HybridLlc::new(&llc_cfg);
    let mut hierarchy = Hierarchy::new(&system, llc, mix.data_model(42));
    let mut streams = mix.instantiate(512.0 / 4096.0, 42);

    // Warm up, then measure 2 M cycles.
    drive_cycles(&mut hierarchy, &mut streams, 400_000.0);
    hierarchy.reset_stats();
    let accesses = drive_cycles(&mut hierarchy, &mut streams, 2_400_000.0);

    let s = *hierarchy.llc().stats();
    println!("\nafter {accesses} memory references:");
    println!("  system IPC          {:.3}", hierarchy.system_ipc());
    println!(
        "  LLC requests        {} (hit rate {:.1}%)",
        s.requests(),
        100.0 * s.hit_rate()
    );
    println!("  hits SRAM / NVM     {} / {}", s.sram_hits, s.nvm_hits);
    println!(
        "  inserts SRAM / NVM  {} / {}",
        s.sram_inserts, s.nvm_inserts
    );
    println!("  SRAM->NVM migrations {}", s.migrations);
    println!("  NVM bytes written   {}", s.nvm_bytes_written);
    if let Some(d) = hierarchy.llc().dueling() {
        println!("  Set Dueling CP_th   {}", d.current_cp_th());
    }
    println!(
        "  NVM capacity        {:.1}%",
        100.0 * hierarchy.llc().capacity_fraction()
    );
}
