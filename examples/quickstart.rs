//! Quickstart: run the paper's CP_SD policy on a multi-programmed mix and
//! print the cache-level statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_llc::config::ExperimentSpec;
use hybrid_llc::llc::HybridLlc;
use hybrid_llc::sim::Hierarchy;
use hybrid_llc::trace::{drive_cycles, mixes};
use hybrid_llc::LlcPort;

fn main() {
    // The `scaled` preset: a 1/8-scale version of the paper's Table IV
    // system (512-set LLC, 4 SRAM + 12 NVM ways), running mix 1 of Table V
    // under CP_SD.
    let spec = ExperimentSpec::preset("scaled").expect("builtin preset");
    let system = spec.system_config();
    let mix = &mixes()[spec.mix_index()];
    println!(
        "system: {} cores, LLC {} KB ({} SRAM + {} NVM ways)",
        system.cores,
        system.llc.capacity_bytes() / 1024,
        system.llc.sram_ways,
        system.llc.nvm_ways
    );
    println!(
        "workload: {} = {}",
        mix.name,
        mix.apps
            .iter()
            .map(|a| a.name)
            .collect::<Vec<_>>()
            .join(" + ")
    );

    let llc = HybridLlc::new(&spec.llc_config());
    let mut hierarchy = Hierarchy::new(&system, llc, mix.data_model(42));
    let mut streams = mix.instantiate(spec.footprint_scale(), 42);

    // Warm up, then measure 2 M cycles.
    drive_cycles(&mut hierarchy, &mut streams, 400_000.0);
    hierarchy.reset_stats();
    let accesses = drive_cycles(&mut hierarchy, &mut streams, 2_400_000.0);

    let s = *hierarchy.llc().stats();
    println!("\nafter {accesses} memory references:");
    println!("  system IPC          {:.3}", hierarchy.system_ipc());
    println!(
        "  LLC requests        {} (hit rate {:.1}%)",
        s.requests(),
        100.0 * s.hit_rate()
    );
    println!("  hits SRAM / NVM     {} / {}", s.sram_hits, s.nvm_hits);
    println!(
        "  inserts SRAM / NVM  {} / {}",
        s.sram_inserts, s.nvm_inserts
    );
    println!("  SRAM->NVM migrations {}", s.migrations);
    println!("  NVM bytes written   {}", s.nvm_bytes_written);
    if let Some(d) = hierarchy.llc().dueling() {
        println!("  Set Dueling CP_th   {}", d.current_cp_th());
    }
    println!(
        "  NVM capacity        {:.1}%",
        100.0 * hierarchy.llc().capacity_fraction()
    );
}
