//! Policy face-off: run every insertion policy of Table III on the same
//! workload and compare hit rate, write traffic, and IPC — the conflict the
//! whole paper is about, in one table.
//!
//! ```sh
//! cargo run --release --example policy_faceoff [mix-index 0..9]
//! ```

use hybrid_llc::config::ExperimentSpec;
use hybrid_llc::llc::{HybridConfig, HybridLlc, Policy};
use hybrid_llc::sim::Hierarchy;
use hybrid_llc::trace::{drive_cycles, mixes};
use hybrid_llc::LlcPort;

fn run(policy_name: &str, policy: Option<Policy>, mix_idx: usize) -> (String, f64, f64, u64) {
    let spec = ExperimentSpec::preset("scaled").expect("builtin preset");
    let mut system = spec.system_config();
    let mix = &mixes()[mix_idx];
    let llc_cfg = match policy {
        Some(p) => spec.llc_config_for(p),
        None => {
            // SRAM-only upper bound: all 16 ways SRAM.
            system.llc.sram_ways = 16;
            system.llc.nvm_ways = 0;
            HybridConfig::from_geometry(system.llc, Policy::Bh)
        }
    };
    let llc = HybridLlc::new(&llc_cfg);
    let mut h = Hierarchy::new(&system, llc, mix.data_model(42));
    let mut streams = mix.instantiate(spec.footprint_scale(), 42);
    drive_cycles(&mut h, &mut streams, 400_000.0);
    h.reset_stats();
    drive_cycles(&mut h, &mut streams, 2_400_000.0);
    let s = h.llc().stats();
    (
        policy_name.to_string(),
        h.system_ipc(),
        s.hit_rate(),
        s.nvm_bytes_written,
    )
}

fn main() {
    let mix_idx: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    assert!(mix_idx < 10, "mix index must be 0..9");
    println!("workload: {}\n", mixes()[mix_idx].name);

    let rows = vec![
        run("SRAM 16-way (bound)", None, mix_idx),
        run("BH", Some(Policy::Bh), mix_idx),
        run("BH_CP", Some(Policy::BhCp), mix_idx),
        run("CA(58)", Some(Policy::Ca { cp_th: 58 }), mix_idx),
        run("CA_RWR(58)", Some(Policy::CaRwr { cp_th: 58 }), mix_idx),
        run("CP_SD", Some(Policy::cp_sd()), mix_idx),
        run("CP_SD_Th8", Some(Policy::cp_sd_th(8.0)), mix_idx),
        run("LHybrid", Some(Policy::LHybrid), mix_idx),
        run("TAP", Some(Policy::tap()), mix_idx),
    ];

    let base_ipc = rows[0].1;
    println!(
        "{:<22} {:>8} {:>9} {:>10} {:>14}",
        "policy", "IPC", "norm IPC", "LLC hit%", "NVM bytes"
    );
    for (name, ipc, hit, bytes) in rows {
        println!(
            "{name:<22} {ipc:>8.3} {:>9.3} {:>9.1}% {bytes:>14}",
            ipc / base_ipc,
            hit * 100.0
        );
    }
    println!("\nLower NVM bytes means longer NVM lifetime; the paper's CP_SD");
    println!("family keeps near-BH IPC at a fraction of BH's write traffic.");
}
