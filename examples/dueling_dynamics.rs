//! Dueling dynamics: watch Set Dueling track the workload, epoch by epoch —
//! which CP_th candidate collects the most sampler hits, and what the
//! rule-based Th/Tw winner chooses instead.
//!
//! ```sh
//! cargo run --release --example dueling_dynamics
//! ```

use hybrid_llc::config::ExperimentSpec;
use hybrid_llc::llc::{HybridLlc, Policy, CP_TH_CANDIDATES};
use hybrid_llc::sim::Hierarchy;
use hybrid_llc::trace::{drive_cycles, mixes};

fn main() {
    let spec = ExperimentSpec::preset("scaled").expect("builtin preset");
    let system = spec.system_config();
    let mix = &mixes()[5]; // lbm + xz + GemsFDTD + wrf: mixed compressibility
    println!(
        "workload {} = {}\n",
        mix.name,
        mix.apps
            .iter()
            .map(|a| a.name)
            .collect::<Vec<_>>()
            .join(" + ")
    );

    for (name, policy) in [
        ("CP_SD", Policy::cp_sd()),
        ("CP_SD_Th8", Policy::cp_sd_th(8.0)),
    ] {
        let cfg = spec.llc_config_for(policy);
        let mut h = Hierarchy::new(&system, HybridLlc::new(&cfg), mix.data_model(42));
        let mut streams = mix.instantiate(spec.footprint_scale(), 42);
        drive_cycles(&mut h, &mut streams, 2_000_000.0);

        println!("— {name} —");
        println!(
            "{:>5}  {:<30} {:>12} {:>8}",
            "epoch", "sampler hits per CP_th", "max-hits", "winner"
        );
        let dueling = h.llc().dueling().expect("CP_SD has a controller");
        for (i, e) in dueling.history().iter().enumerate() {
            let hits: Vec<String> = e.hits.iter().map(|h| format!("{h:>4}")).collect();
            let best = e
                .max_hits_candidate()
                .map_or("-".to_string(), |k| CP_TH_CANDIDATES[k].to_string());
            println!(
                "{i:>5}  [{}] {best:>11} {:>8}",
                hits.join(","),
                CP_TH_CANDIDATES[e.winner]
            );
        }
        println!(
            "final follower CP_th: {} (candidates {:?})\n",
            dueling.current_cp_th(),
            CP_TH_CANDIDATES
        );
    }
    println!("CP_SD follows the max-hits candidate; the Th8 rule deviates toward");
    println!("smaller thresholds whenever that cuts NVM bytes by ≥5% while");
    println!("costing at most 8% of the sampler hits.");
}
