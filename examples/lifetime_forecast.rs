//! Lifetime forecast: watch the NVM part of a hybrid LLC age under two
//! policies — the NVM-unaware baseline (BH) and the paper's CP_SD — and
//! print the performance/capacity timeline until 50 % capacity is gone.
//!
//! ```sh
//! cargo run --release --example lifetime_forecast
//! ```

use hybrid_llc::forecast::{Forecast, ForecastConfig};
use hybrid_llc::llc::Policy;
use hybrid_llc::trace::mixes;

fn main() {
    let mix = &mixes()[0];
    println!(
        "forecasting NVM aging on {} (scaled config, mu = 1e8)...",
        mix.name
    );
    println!("multiply times by 100 for paper-equivalent wall-clock (mu = 1e10).\n");

    for policy in [Policy::Bh, Policy::cp_sd()] {
        let series = Forecast::new(ForecastConfig::scaled(policy)).run(mix, 42);
        println!("— policy {} —", series.label);
        println!(
            "{:>12} {:>10} {:>8} {:>10}",
            "time [h]", "capacity", "IPC", "hit rate"
        );
        for p in &series.points {
            println!(
                "{:>12.2} {:>9.1}% {:>8.3} {:>9.1}%",
                p.time_seconds / 3600.0,
                p.capacity * 100.0,
                p.ipc,
                p.hit_rate * 100.0
            );
        }
        match series.lifetime_seconds(0.5) {
            Some(s) => println!(
                "=> 50% capacity reached after {:.2} scaled hours (~{:.1} paper-months)\n",
                s / 3600.0,
                100.0 * s / (30.44 * 86_400.0)
            ),
            None => println!("=> never reached 50% capacity within the forecast horizon\n"),
        }
    }
    println!("The compression-aware CP_SD policy outlives the naive baseline by");
    println!("roughly an order of magnitude while staying within a few percent of");
    println!("its performance — the paper's central claim.");
}
