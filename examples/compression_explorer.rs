//! Compression explorer: walk a 64-byte block through the complete NVM
//! write/read datapath of §III-B — BDI compression, SECDED protection,
//! scattering over a partially faulty frame with the rearrangement
//! circuitry, a bit-error on the way back, and recovery.
//!
//! ```sh
//! cargo run --release --example compression_explorer
//! ```

use hybrid_llc::compress::{Block, Compressor};
use hybrid_llc::ecc::{Decoded, FrameCodec};
use hybrid_llc::nvm::{rearrange, FaultMap};

fn main() {
    // Some representative cache-block payloads.
    let samples: Vec<(&str, Block)> = vec![
        ("zero block", Block::zeroed()),
        ("repeated value", Block::from_u64_lanes([0xDEAD_BEEF; 8])),
        (
            "pointer array (small deltas)",
            Block::from_u64_lanes(core::array::from_fn(|i| 0x7f00_0000_1000 + 64 * i as u64)),
        ),
        (
            "float-ish data (wide deltas)",
            Block::from_u64_lanes(core::array::from_fn(|i| {
                0x3FF0_0000_0000_0000u64
                    .wrapping_add(0x000F_3A00_0000_0000u64.wrapping_mul(i as u64))
            })),
        ),
        ("random bytes", {
            let mut b = [0u8; 64];
            let mut x = 0x243F_6A88_85A3_08D3u64;
            for v in b.iter_mut() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *v = (x >> 40) as u8;
            }
            Block::new(b)
        }),
    ];

    let compressor = Compressor::new();
    println!(
        "{:<30} {:>9} {:>8} {:>9}",
        "payload", "encoding", "CB size", "ECB size"
    );
    for (name, block) in &samples {
        let cb = compressor.compress(block);
        println!(
            "{name:<30} {:>9} {:>7}B {:>8}B",
            cb.encoding().to_string(),
            cb.size(),
            cb.ecb_size()
        );
    }

    // Now push the pointer-array block through a worn frame.
    let (_, block) = &samples[2];
    let cb = compressor.compress(block);
    println!("\n— full §III-B datapath for the pointer array —");

    // The frame has lost five bytes to wear.
    let fault_map = FaultMap::from_faulty([2, 9, 33, 40, 65]);
    println!(
        "target frame: {} live bytes of 66 (faulty: 2, 9, 33, 40, 65)",
        fault_map.live_bytes()
    );
    assert!(
        cb.ecb_size() as usize <= fault_map.live_bytes(),
        "block must fit"
    );

    // SECDED-protect CE + zero-padded block data (516 bits -> 527), then
    // pack only the stored bits: check bits + CE + compressed payload.
    let codec = FrameCodec::new();
    let mut padded = [0u8; 64];
    padded[..cb.payload().len()].copy_from_slice(cb.payload());
    let word = codec.encode(cb.encoding().ce(), &padded);
    let ecb = codec.pack_ecb(&word, cb.size());
    println!(
        "code word: {} bits, packed ECB: {} bytes (CB {} + 2)",
        word.len(),
        ecb.len(),
        cb.size()
    );

    // Scatter over the live bytes starting at the wear-leveling offset.
    let offset = 17;
    let (recb, mask) = rearrange::scatter(&ecb, &fault_map, offset);
    println!("scattered with write mask of {} bytes", mask.count_ones());

    // ... time passes; read it back and flip one stored bit (a soft error
    // or a byte going weak) ...
    let mut gathered = rearrange::gather(&recb, &fault_map, offset, ecb.len());
    gathered[9] ^= 0x04;
    let word_back = codec.unpack_ecb(&gathered, cb.size());

    match codec.decode(&word_back) {
        Decoded::Corrected { position, data } => {
            println!("SECDED corrected a single-bit error at code-word bit {position}");
            let (ce, bytes) = FrameCodec::split_payload(&data);
            let recovered = hybrid_llc::compress::CompressedBlock::from_parts(
                hybrid_llc::compress::Encoding::from_ce(ce).expect("valid CE"),
                &bytes[..cb.size() as usize],
            )
            .expect("payload length matches encoding");
            assert_eq!(recovered.decompress(), *block);
            println!("decompressed block matches the original exactly ✓");
        }
        other => panic!("unexpected decode outcome: {other:?}"),
    }
}
