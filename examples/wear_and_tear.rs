//! Wear and tear: inject progressive byte failures into the NVM part and
//! watch how frame-disabling (BH) and byte-disabling + compression (CP_SD)
//! caches cope — the capacity-resilience story of §III-B.
//!
//! ```sh
//! cargo run --release --example wear_and_tear
//! ```

use hybrid_llc::config::ExperimentSpec;
use hybrid_llc::llc::{HybridLlc, Policy};
use hybrid_llc::nvm::FRAME_BYTES;
use hybrid_llc::sim::Hierarchy;
use hybrid_llc::trace::{drive_cycles, mixes};
use hybrid_llc::LlcPort;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Disables `n` random bytes per NVM frame, honouring each policy's
/// granularity through the normal wear path.
fn injure(llc: &mut HybridLlc, bytes_per_frame: usize, rng: &mut StdRng) {
    let Some(array) = llc.array_mut() else { return };
    for set in 0..array.sets() {
        for way in 0..array.ways() {
            for _ in 0..bytes_per_frame {
                let b = rng.gen_range(0..FRAME_BYTES);
                array.frame_mut(set, way).disable_byte(b);
            }
            // Frame-granularity caches react to the first fault.
            if array.granularity() == hybrid_llc::nvm::DisableGranularity::Frame
                && array.frame(set, way).fault_map().faulty_bytes() > 0
            {
                array.disable_frame(set, way);
            }
        }
    }
}

fn measure(policy: Policy, bytes_per_frame: usize) -> (f64, f64) {
    let spec = ExperimentSpec::preset("scaled").expect("builtin preset");
    let system = spec.system_config();
    let mix = &mixes()[0];
    let cfg = spec.llc_config_for(policy);
    let mut llc = HybridLlc::new(&cfg);
    let mut rng = StdRng::seed_from_u64(9);
    injure(&mut llc, bytes_per_frame, &mut rng);
    let capacity = llc.capacity_fraction();
    let mut h = Hierarchy::new(&system, llc, mix.data_model(42));
    let mut streams = mix.instantiate(spec.footprint_scale(), 42);
    drive_cycles(&mut h, &mut streams, 400_000.0);
    h.reset_stats();
    drive_cycles(&mut h, &mut streams, 2_000_000.0);
    (capacity, h.llc().stats().hit_rate())
}

fn main() {
    println!("injecting n random byte faults into every NVM frame:\n");
    println!(
        "{:>8} | {:>14} {:>10} | {:>14} {:>10}",
        "faults", "BH capacity", "hit rate", "CP_SD capacity", "hit rate"
    );
    for n in [0usize, 1, 2, 4, 8, 16] {
        let (bh_cap, bh_hit) = measure(Policy::Bh, n);
        let (sd_cap, sd_hit) = measure(Policy::cp_sd(), n);
        println!(
            "{n:>8} | {:>13.1}% {:>9.1}% | {:>13.1}% {:>9.1}%",
            bh_cap * 100.0,
            bh_hit * 100.0,
            sd_cap * 100.0,
            sd_hit * 100.0
        );
    }
    println!("\nOne faulty byte kills a whole frame under frame-disabling (BH),");
    println!("but costs only 1/66 of the frame under byte-disabling: compressed");
    println!("blocks keep flowing into the surviving bytes (CP_SD).");
}
