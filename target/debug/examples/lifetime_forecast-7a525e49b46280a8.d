/root/repo/target/debug/examples/lifetime_forecast-7a525e49b46280a8.d: examples/lifetime_forecast.rs Cargo.toml

/root/repo/target/debug/examples/liblifetime_forecast-7a525e49b46280a8.rmeta: examples/lifetime_forecast.rs Cargo.toml

examples/lifetime_forecast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
