/root/repo/target/debug/examples/dueling_dynamics-a28684fe98247c48.d: examples/dueling_dynamics.rs

/root/repo/target/debug/examples/dueling_dynamics-a28684fe98247c48: examples/dueling_dynamics.rs

examples/dueling_dynamics.rs:
