/root/repo/target/debug/examples/policy_faceoff-0bd9fa223592091d.d: examples/policy_faceoff.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_faceoff-0bd9fa223592091d.rmeta: examples/policy_faceoff.rs Cargo.toml

examples/policy_faceoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
