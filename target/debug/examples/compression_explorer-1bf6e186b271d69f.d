/root/repo/target/debug/examples/compression_explorer-1bf6e186b271d69f.d: examples/compression_explorer.rs

/root/repo/target/debug/examples/compression_explorer-1bf6e186b271d69f: examples/compression_explorer.rs

examples/compression_explorer.rs:
