/root/repo/target/debug/examples/lifetime_forecast-c786e64a5329dadf.d: examples/lifetime_forecast.rs Cargo.toml

/root/repo/target/debug/examples/liblifetime_forecast-c786e64a5329dadf.rmeta: examples/lifetime_forecast.rs Cargo.toml

examples/lifetime_forecast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
