/root/repo/target/debug/examples/policy_faceoff-eec49e1b5d421e43.d: examples/policy_faceoff.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_faceoff-eec49e1b5d421e43.rmeta: examples/policy_faceoff.rs Cargo.toml

examples/policy_faceoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
