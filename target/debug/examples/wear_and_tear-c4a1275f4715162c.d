/root/repo/target/debug/examples/wear_and_tear-c4a1275f4715162c.d: examples/wear_and_tear.rs Cargo.toml

/root/repo/target/debug/examples/libwear_and_tear-c4a1275f4715162c.rmeta: examples/wear_and_tear.rs Cargo.toml

examples/wear_and_tear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
