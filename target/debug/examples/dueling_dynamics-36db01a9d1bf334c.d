/root/repo/target/debug/examples/dueling_dynamics-36db01a9d1bf334c.d: examples/dueling_dynamics.rs

/root/repo/target/debug/examples/dueling_dynamics-36db01a9d1bf334c: examples/dueling_dynamics.rs

examples/dueling_dynamics.rs:
