/root/repo/target/debug/examples/quickstart-41f38f72370b9395.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-41f38f72370b9395: examples/quickstart.rs

examples/quickstart.rs:
