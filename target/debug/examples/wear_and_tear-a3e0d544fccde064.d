/root/repo/target/debug/examples/wear_and_tear-a3e0d544fccde064.d: examples/wear_and_tear.rs

/root/repo/target/debug/examples/wear_and_tear-a3e0d544fccde064: examples/wear_and_tear.rs

examples/wear_and_tear.rs:
