/root/repo/target/debug/examples/wear_and_tear-a09037337f592037.d: examples/wear_and_tear.rs

/root/repo/target/debug/examples/wear_and_tear-a09037337f592037: examples/wear_and_tear.rs

examples/wear_and_tear.rs:
