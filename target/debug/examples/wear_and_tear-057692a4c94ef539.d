/root/repo/target/debug/examples/wear_and_tear-057692a4c94ef539.d: examples/wear_and_tear.rs Cargo.toml

/root/repo/target/debug/examples/libwear_and_tear-057692a4c94ef539.rmeta: examples/wear_and_tear.rs Cargo.toml

examples/wear_and_tear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
