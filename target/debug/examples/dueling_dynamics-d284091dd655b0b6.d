/root/repo/target/debug/examples/dueling_dynamics-d284091dd655b0b6.d: examples/dueling_dynamics.rs

/root/repo/target/debug/examples/dueling_dynamics-d284091dd655b0b6: examples/dueling_dynamics.rs

examples/dueling_dynamics.rs:
