/root/repo/target/debug/examples/policy_faceoff-ed2f79a8c2bc119b.d: examples/policy_faceoff.rs

/root/repo/target/debug/examples/policy_faceoff-ed2f79a8c2bc119b: examples/policy_faceoff.rs

examples/policy_faceoff.rs:
