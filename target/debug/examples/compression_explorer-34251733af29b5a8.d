/root/repo/target/debug/examples/compression_explorer-34251733af29b5a8.d: examples/compression_explorer.rs

/root/repo/target/debug/examples/compression_explorer-34251733af29b5a8: examples/compression_explorer.rs

examples/compression_explorer.rs:
