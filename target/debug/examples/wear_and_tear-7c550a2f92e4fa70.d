/root/repo/target/debug/examples/wear_and_tear-7c550a2f92e4fa70.d: examples/wear_and_tear.rs

/root/repo/target/debug/examples/wear_and_tear-7c550a2f92e4fa70: examples/wear_and_tear.rs

examples/wear_and_tear.rs:
