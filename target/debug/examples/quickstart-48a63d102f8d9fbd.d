/root/repo/target/debug/examples/quickstart-48a63d102f8d9fbd.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-48a63d102f8d9fbd.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
