/root/repo/target/debug/examples/lifetime_forecast-9d304cc7069585a4.d: examples/lifetime_forecast.rs

/root/repo/target/debug/examples/lifetime_forecast-9d304cc7069585a4: examples/lifetime_forecast.rs

examples/lifetime_forecast.rs:
