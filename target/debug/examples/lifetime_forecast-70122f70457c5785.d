/root/repo/target/debug/examples/lifetime_forecast-70122f70457c5785.d: examples/lifetime_forecast.rs

/root/repo/target/debug/examples/lifetime_forecast-70122f70457c5785: examples/lifetime_forecast.rs

examples/lifetime_forecast.rs:
