/root/repo/target/debug/examples/lifetime_forecast-8b427ee2f4f1c5f0.d: examples/lifetime_forecast.rs

/root/repo/target/debug/examples/lifetime_forecast-8b427ee2f4f1c5f0: examples/lifetime_forecast.rs

examples/lifetime_forecast.rs:
