/root/repo/target/debug/examples/quickstart-f48e87ff79794839.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f48e87ff79794839: examples/quickstart.rs

examples/quickstart.rs:
