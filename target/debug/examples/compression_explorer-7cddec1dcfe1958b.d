/root/repo/target/debug/examples/compression_explorer-7cddec1dcfe1958b.d: examples/compression_explorer.rs

/root/repo/target/debug/examples/compression_explorer-7cddec1dcfe1958b: examples/compression_explorer.rs

examples/compression_explorer.rs:
