/root/repo/target/debug/examples/policy_faceoff-e68d0512c42e9c64.d: examples/policy_faceoff.rs

/root/repo/target/debug/examples/policy_faceoff-e68d0512c42e9c64: examples/policy_faceoff.rs

examples/policy_faceoff.rs:
