/root/repo/target/debug/examples/quickstart-7803037f047e4041.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7803037f047e4041: examples/quickstart.rs

examples/quickstart.rs:
