/root/repo/target/debug/examples/dueling_dynamics-916ff1bca3a6a559.d: examples/dueling_dynamics.rs Cargo.toml

/root/repo/target/debug/examples/libdueling_dynamics-916ff1bca3a6a559.rmeta: examples/dueling_dynamics.rs Cargo.toml

examples/dueling_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
