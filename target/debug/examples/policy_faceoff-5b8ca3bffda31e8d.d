/root/repo/target/debug/examples/policy_faceoff-5b8ca3bffda31e8d.d: examples/policy_faceoff.rs

/root/repo/target/debug/examples/policy_faceoff-5b8ca3bffda31e8d: examples/policy_faceoff.rs

examples/policy_faceoff.rs:
