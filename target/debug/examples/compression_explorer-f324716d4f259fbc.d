/root/repo/target/debug/examples/compression_explorer-f324716d4f259fbc.d: examples/compression_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcompression_explorer-f324716d4f259fbc.rmeta: examples/compression_explorer.rs Cargo.toml

examples/compression_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
