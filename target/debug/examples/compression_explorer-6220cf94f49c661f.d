/root/repo/target/debug/examples/compression_explorer-6220cf94f49c661f.d: examples/compression_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcompression_explorer-6220cf94f49c661f.rmeta: examples/compression_explorer.rs Cargo.toml

examples/compression_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
