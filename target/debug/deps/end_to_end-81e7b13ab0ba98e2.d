/root/repo/target/debug/deps/end_to_end-81e7b13ab0ba98e2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-81e7b13ab0ba98e2: tests/end_to_end.rs

tests/end_to_end.rs:
