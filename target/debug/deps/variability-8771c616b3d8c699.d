/root/repo/target/debug/deps/variability-8771c616b3d8c699.d: crates/bench/benches/variability.rs Cargo.toml

/root/repo/target/debug/deps/libvariability-8771c616b3d8c699.rmeta: crates/bench/benches/variability.rs Cargo.toml

crates/bench/benches/variability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
