/root/repo/target/debug/deps/hllc-2e99733a2e52603e.d: src/bin/hllc.rs

/root/repo/target/debug/deps/hllc-2e99733a2e52603e: src/bin/hllc.rs

src/bin/hllc.rs:
