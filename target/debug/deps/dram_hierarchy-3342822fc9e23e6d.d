/root/repo/target/debug/deps/dram_hierarchy-3342822fc9e23e6d.d: tests/dram_hierarchy.rs

/root/repo/target/debug/deps/dram_hierarchy-3342822fc9e23e6d: tests/dram_hierarchy.rs

tests/dram_hierarchy.rs:
