/root/repo/target/debug/deps/ablation_epoch-7061a370638ef960.d: crates/bench/benches/ablation_epoch.rs Cargo.toml

/root/repo/target/debug/deps/libablation_epoch-7061a370638ef960.rmeta: crates/bench/benches/ablation_epoch.rs Cargo.toml

crates/bench/benches/ablation_epoch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
